//! The defense ablation matrix: which §8/§9 countermeasure blocks which
//! attack ingredient, demonstrated live.
//!
//! Run with: `cargo run --example defense_matrix`

use dma_lab::attacks::cpu::MiniCpu;
use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::kaslr::AttackerKnowledge;
use dma_lab::attacks::rop::PoisonedBuffer;
use dma_lab::defenses::bounce::BounceDma;
use dma_lab::defenses::cet::CetCpu;
use dma_lab::defenses::damn::DamnAllocator;
use dma_lab::defenses::karl;
use dma_lab::defenses::subpage::SubPageIommu;
use dma_lab::dma_core::vuln::DmaDirection;
use dma_lab::dma_core::{Iova, Kva, SimCtx, PAGE_SIZE};
use dma_lab::sim_iommu::{dma_map_single, InvalidationMode, Iommu, IommuConfig};
use dma_lab::sim_mem::{MemConfig, MemorySystem};
use dma_lab::sim_net::shinfo::{SHINFO_DESTRUCTOR_ARG, SHINFO_SIZE};

fn check(label: &str, blocked: bool, note: &str) {
    println!(
        "  {:<44} {:<10} {}",
        label,
        if blocked { "BLOCKED" } else { "EXPOSED" },
        note
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = KernelImage::build(1, 16 << 20);
    let mut ctx = SimCtx::new();
    let mut mem = MemorySystem::new(&MemConfig {
        kaslr_seed: Some(5),
        ..Default::default()
    });
    mem.install_text(&image.bytes);
    let mut iommu = Iommu::new(IommuConfig {
        mode: InvalidationMode::Strict,
        ..Default::default()
    });
    iommu.attach_device(1);
    let nic = dma_lab::devsim::MaliciousNic::new(1);

    println!("defense                                        verdict    detail");
    println!("{}", "-".repeat(100));

    // --- Baseline: page-granular IOMMU alone. ---
    {
        let io = mem.kmalloc(&mut ctx, 512, "io")?;
        let victim = mem.kmalloc(&mut ctx, 512, "victim")?;
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            io,
            512,
            DmaDirection::Bidirectional,
            "m",
        )?;
        let hit = nic
            .write(
                &mut ctx,
                &mut iommu,
                &mut mem.phys,
                Iova(m.iova.raw() + (victim - io)),
                b"x",
            )
            .is_ok();
        check(
            "IOMMU alone (page granularity)",
            !hit,
            "co-located object writable",
        );
    }

    // --- Bounce buffers: co-location gone. ---
    {
        let mut pool = BounceDma::new(&mut ctx, &mut mem, &mut iommu, 1, 4)?;
        let io = mem.kmalloc(&mut ctx, 512, "io")?;
        let m = pool.map(&mut ctx, &mut mem, io, 512, DmaDirection::Bidirectional)?;
        let leaks = nic.scan_for_pointers(
            &mut ctx,
            &mut iommu,
            &mem.phys,
            Iova(m.iova.raw() & !0xfff),
            PAGE_SIZE,
        )?;
        check(
            "bounce buffers [47]",
            leaks.is_empty(),
            &format!(
                "{} pointers on the device-visible page (copy cost {} cycles)",
                leaks.len(),
                pool.copy_cycles
            ),
        );
    }

    // --- DAMN: random co-location gone, shinfo exposure remains. ---
    {
        let mut damn = DamnAllocator::new();
        let buf = damn.alloc(&mut ctx, &mut mem, 2048)?;
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            buf,
            2048,
            DmaDirection::FromDevice,
            "rx",
        )?;
        let leaks = nic.scan_descriptors(
            &mut ctx,
            &mut iommu,
            &mem.phys,
            &[(Iova(m.iova.raw() & !0xfff), PAGE_SIZE)],
        );
        check(
            "DAMN dedicated allocator [49] vs type (d)",
            leaks.is_empty(),
            "I/O pages hold no kernel objects",
        );
        let shinfo_hit = nic
            .write_u64(
                &mut ctx,
                &mut iommu,
                &mut mem.phys,
                Iova(m.iova.raw() + (2048 - SHINFO_SIZE + SHINFO_DESTRUCTOR_ARG) as u64),
                0xbad,
            )
            .is_ok();
        check(
            "DAMN vs skb_shared_info (build_skb, §9.2)",
            !shinfo_hit,
            "the OS still embeds metadata in I/O buffers",
        );
    }

    // --- Sub-page protection. ---
    {
        let mut sp = SubPageIommu::new();
        let io = mem.kmalloc(&mut ctx, 256, "io")?;
        let victim = mem.kmalloc(&mut ctx, 256, "victim")?;
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            io,
            256,
            DmaDirection::Bidirectional,
            "m",
        )?;
        sp.register(1, m.iova, 256);
        let hit = sp
            .dev_write(
                &mut ctx,
                &mut iommu,
                &mut mem.phys,
                1,
                Iova(m.iova.raw() + (victim - io)),
                b"x",
            )
            .is_ok();
        check(
            "Intel sub-page bounds [34] (tight range)",
            !hit,
            "neighbour outside the byte range",
        );
        // But with the realistic full-buffer registration:
        let rx = mem.page_frag_alloc(&mut ctx, 2048, "rx")?;
        let m2 = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            1,
            rx,
            2048,
            DmaDirection::FromDevice,
            "rx",
        )?;
        sp.register(1, m2.iova, 2048);
        let hit2 = sp
            .dev_write(
                &mut ctx,
                &mut iommu,
                &mut mem.phys,
                1,
                Iova(m2.iova.raw() + (2048 - SHINFO_SIZE + SHINFO_DESTRUCTOR_ARG) as u64),
                &0xbad_u64.to_le_bytes(),
            )
            .is_ok();
        check(
            "Intel sub-page bounds (full-buffer range)",
            !hit2,
            "shinfo is inside the mapped range",
        );
    }

    // --- NX / plain KASLR baseline and CET / KARL. ---
    {
        let knowledge = AttackerKnowledge {
            text_base: Some(mem.layout.text_base),
            page_offset_base: Some(mem.layout.page_offset_base),
            vmemmap_base: Some(mem.layout.vmemmap_base),
        };
        let poison = PoisonedBuffer::build(&image, &knowledge)?;
        let buf = mem.kzalloc(&mut ctx, 512, "payload")?;
        mem.cpu_write(&mut ctx, buf, &poison.bytes, "deposit")?;
        let jop = image
            .symbol_addr("jop_rsp_rdi", mem.layout.text_base)
            .unwrap();

        let plain = MiniCpu::new(&image, mem.layout.text_base);
        let nx_direct = plain.invoke_callback(&mut ctx, &mem, buf, buf).is_err();
        check(
            "NX / W^X vs direct code injection",
            nx_direct,
            "data pages are not executable",
        );
        let rop_works = plain
            .invoke_callback(&mut ctx, &mem, jop, Kva(buf.raw()))?
            .escalated;
        check(
            "NX vs ROP/JOP (§2.4 subversion)",
            !rop_works,
            "gadget reuse bypasses NX",
        );

        let cet = CetCpu::new(&image, mem.layout.text_base);
        let cet_blocked = cet
            .invoke_callback(&mut ctx, &mem, jop, Kva(buf.raw()))
            .is_err();
        check(
            "Intel CET [33]",
            cet_blocked,
            "pivot is not an ENDBR target",
        );
    }
    {
        let victim_img = karl::karl_boot_image(7, 16 << 20);
        let attacker_img = karl::karl_boot_image(8, 16 << 20);
        let mut kmem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(5),
            ..Default::default()
        });
        kmem.install_text(&victim_img.bytes);
        let blocked =
            match karl::attack_karl_victim(&mut ctx, &mut kmem, &victim_img, &attacker_img) {
                Err(_) => true,
                Ok(out) => !out.escalated,
            };
        check(
            "OpenBSD KARL [18]",
            blocked,
            "per-boot link invalidates offline gadget offsets",
        );
    }

    println!("\nok: defense matrix evaluated");
    Ok(())
}
