//! The §5.2.1 stale-TLB window, measured: one RingFlood run through the
//! deferred-IOTLB window, then an instrumented flood whose metrics
//! registry captures how long each unmapped RX buffer stayed reachable
//! from the device — printed as a histogram next to the paper's numbers
//! (deferred invalidation flushes every 10 ms; at the simulated 2 GHz
//! clock that is a 20,000,000-cycle worst-case window).
//!
//! Run with: `cargo run --example observability`

use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::ringflood::{self, BootSurvey};
use dma_lab::dkasan::{investigate, DKasan};
use dma_lab::dma_core::clock::{CYCLES_PER_MS, DEFERRED_FLUSH_PERIOD};
use dma_lab::dma_core::metrics::bucket_bound;
use dma_lab::dma_core::vuln::WindowPath;
use dma_lab::dma_core::{ProvenanceGraph, Trace};
use dma_lab::sim_net::packet::Packet;

/// Bounded flight-recorder capacity for the instrumented flood — small
/// enough that eviction accounting is visible, large enough that each
/// per-burst drain empties it before it wraps.
const RECORDER_CAPACITY: usize = 2048;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let driver = ringflood::kernel50_driver();

    println!("== One RingFlood run through the deferred-IOTLB window (§5.2 + §5.3) ==");
    let image = KernelImage::build(1, 16 << 20);
    let survey = BootSurvey::run(driver, 64, 0)?;
    let (pfn, frac) = survey.most_common().unwrap();
    println!(
        "  survey: top RX PFN {pfn} repeats in {:.0}% of 64 boots",
        frac * 100.0
    );
    let report = ringflood::run(&image, driver, WindowPath::DeferredIotlb, 9003, &survey)?;
    println!(
        "  guessed PFN {} (resident this boot: {})",
        report.guessed_pfn, report.guess_was_resident
    );
    println!(
        "  outcome after {} trigger(s): {:?}",
        report.triggers, report.outcome
    );

    // The attack consumed its own testbed; re-run the same flood on an
    // instrumented boot so the registry is still in hand afterwards.
    println!("\n== Instrumented flood: how long does each stale mapping live? ==");
    let mut tb = ringflood::boot(driver, WindowPath::DeferredIotlb, 9003)?;
    // Swap the trace for a bounded flight recorder and drain it once per
    // burst: D-KASAN replays each drained batch while the provenance
    // graph keeps the causal structure — no unbounded buffering.
    tb.ctx.trace = Trace::recorded(RECORDER_CAPACITY);
    tb.ctx.trace.enabled = true;
    let mut dkasan = DKasan::new();
    let mut graph = ProvenanceGraph::new();
    for burst in 0..10u64 {
        for i in 0..24u32 {
            tb.deliver_packet(&Packet::udp(9, 1, vec![(burst as u8) ^ (i as u8); 128]))?;
        }
        // Bursts land at different offsets into the 10 ms flush period,
        // spreading the observed windows across the buckets.
        tb.advance_ms(2);
        let events = tb.ctx.trace.drain();
        dkasan.process(&events);
        graph.ingest_all(events);
    }
    let leaked = tb.shutdown()?;
    assert_eq!(leaked, 0, "flood leaked mappings");
    tb.advance_ms(12); // final periodic flush drains the last deferred unmaps
    let events = tb.ctx.trace.drain();
    dkasan.process(&events);
    graph.ingest_all(events);

    let h = tb
        .ctx
        .metrics
        .histogram("sim_iommu.stale_window.cycles")
        .expect("deferred mode must record stale windows");
    println!(
        "  sim_iommu.stale_window.cycles — {} windows observed",
        h.count
    );
    let peak = h.buckets.iter().copied().max().unwrap_or(1).max(1);
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let bar = "#".repeat((n * 40 / peak).max(1) as usize);
        println!(
            "  <= {:>10} cycles ({:>6.2} ms) {:>6}  {bar}",
            bucket_bound(i),
            bucket_bound(i) as f64 / CYCLES_PER_MS as f64,
            n
        );
    }
    println!(
        "  mean {} cycles ({:.2} ms), p50 <= {}, p99 <= {}, max {} cycles ({:.2} ms)",
        h.mean(),
        h.mean() as f64 / CYCLES_PER_MS as f64,
        h.quantile_bound(500),
        h.quantile_bound(990),
        h.max,
        h.max as f64 / CYCLES_PER_MS as f64,
    );

    println!("\n== Paper §5.2 reference ==");
    println!(
        "  deferred invalidation flushes every 10 ms -> nominal worst-case stale window \
         {DEFERRED_FLUSH_PERIOD} cycles"
    );
    println!(
        "  measured worst case: {} cycles ({:.1}% of the flush period — the flush \
         timer fires at the next housekeeping tick, so real windows overshoot it)",
        h.max,
        h.max as f64 * 100.0 / DEFERRED_FLUSH_PERIOD as f64
    );
    assert!(
        h.max <= 2 * DEFERRED_FLUSH_PERIOD,
        "a stale window outlived even a late flush"
    );

    // Strict invalidation (the other §5.2 arm): the window never opens,
    // so the histogram never materializes.
    let mut strict = ringflood::boot(driver, WindowPath::UnmapAfterBuild, 9003)?;
    for i in 0..24u32 {
        strict.deliver_packet(&Packet::udp(9, 1, vec![i as u8; 128]))?;
    }
    strict.shutdown()?;
    strict.advance_ms(12);
    assert!(
        strict
            .ctx
            .metrics
            .histogram("sim_iommu.stale_window.cycles")
            .is_none(),
        "strict mode must not leave stale windows"
    );
    println!("  strict mode, same flood: no stale-window histogram — invalidated at unmap");

    // One forensic timeline from the recorded flood: walk the
    // provenance graph backward from a D-KASAN finding and print the
    // cycle-stamped causal story behind it.
    println!("\n== Forensic timeline (flight recorder -> provenance graph) ==");
    println!(
        "  graph holds {} event(s); recorder evicted {} (counter `trace.dropped`)",
        graph.events().len(),
        tb.ctx.metrics.counter("trace.dropped")
    );
    let finding = dkasan
        .findings()
        .last()
        .expect("the deferred-mode flood always exposes mapped pages");
    let incident = investigate(&graph, finding);
    print!("{}", incident.render(1));

    println!("\nok: stale-window observability demonstrated");
    Ok(())
}
