//! The RingFlood compound attack (§5.3) end to end, including the §6
//! demonstration: reboot survey → KASLR break → flood → JOP pivot → ROP
//! chain → privilege escalation.
//!
//! Run with: `cargo run --example ringflood`

use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::ringflood::{self, BootSurvey};
use dma_lab::attacks::{scan_gadgets, GadgetKind};
use dma_lab::dma_core::vuln::WindowPath;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = KernelImage::build(1, 16 << 20);

    println!("== Offline: gadget hunt on the attacker's identical kernel build (§6) ==");
    let gadgets = scan_gadgets(&image.bytes);
    for g in &gadgets {
        println!("  {:?} at image offset {:#x}", g.kind, g.offset);
    }
    assert!(gadgets
        .iter()
        .any(|g| matches!(g.kind, GadgetKind::JopRspRdi { .. })));

    println!("\n== Offline: 256-reboot PFN survey of an identical machine (§5.3) ==");
    let driver = ringflood::kernel50_driver();
    let survey = BootSurvey::run(driver, 256, 0)?;
    let (pfn, frac) = survey.most_common().unwrap();
    println!(
        "  kernel-5.0 config (2 KiB buffers, {} KiB RX footprint):",
        ringflood::rx_footprint(&driver) / 1024
    );
    println!(
        "  most common RX PFN: {pfn} — present in {:.1}% of boots",
        frac * 100.0
    );
    println!("  PFNs above 50%: {}", survey.pfns_above(0.5));

    let d415 = ringflood::kernel415_driver();
    let survey415 = BootSurvey::run(d415, 256, 0)?;
    let (pfn415, frac415) = survey415.most_common().unwrap();
    println!(
        "  kernel-4.15 config (64 KiB HW-LRO buffers, {} MiB footprint):",
        ringflood::rx_footprint(&d415) >> 20
    );
    println!(
        "  most common RX PFN: {pfn415} — present in {:.1}% of boots",
        frac415 * 100.0
    );
    println!("  PFNs above 95%: {}", survey415.pfns_above(0.95));

    println!("\n== Online: attacking a fresh victim boot ==");
    for path in [
        WindowPath::UnmapAfterBuild,
        WindowPath::DeferredIotlb,
        WindowPath::NeighborIova,
    ] {
        let mut success = None;
        for victim_seed in 9000..9012 {
            let report = ringflood::run(&image, driver, path, victim_seed, &survey)?;
            if report.outcome.succeeded() {
                success = Some((victim_seed, report));
                break;
            }
        }
        match success {
            Some((seed, report)) => {
                println!("  window {path}:");
                println!(
                    "    victim boot seed {seed}: guessed PFN {} resident = {}",
                    report.guessed_pfn, report.guess_was_resident
                );
                println!(
                    "    recovered text base:  {:?}",
                    report.knowledge.text_base.unwrap()
                );
                println!(
                    "    recovered dmap base:  {:?}",
                    report.knowledge.page_offset_base.unwrap()
                );
                println!("    outcome: {:?}", report.outcome);
            }
            None => println!("  window {path}: no success in 12 victim boots"),
        }
    }
    println!("\nok: RingFlood demonstrated");
    Ok(())
}
