//! The Forward Thinking compound attack (§5.5, Figure 9): GRO fills the
//! forwarded packet's `frags[]` with `struct page` pointers of the
//! attacker's own payload pages — plus the surveillance variant that
//! reads arbitrary physical frames by forging `frags[]`.
//!
//! Run with: `cargo run --example forward_thinking`

use dma_lab::attacks::forward_thinking;
use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::ringflood::break_kaslr;
use dma_lab::dma_core::vuln::WindowPath;
use dma_lab::dma_core::Kva;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = KernelImage::build(1, 16 << 20);

    println!("== Code injection on a forwarding box (Figure 9) ==");
    let report = forward_thinking::run(&image, WindowPath::DeferredIotlb, 11)?;
    println!(
        "  vmemmap base learned from GRO frag: {:?}",
        report.knowledge.vmemmap_base.unwrap()
    );
    println!("  poison KVA recovered: {:?}", report.poison_kva.unwrap());
    println!("  outcome: {:?}", report.outcome);
    assert!(report.outcome.succeeded());

    println!("\n== Surveillance variant: reading arbitrary pages ==");
    let mut tb = forward_thinking::boot(WindowPath::UnmapAfterBuild, 31)?;
    tb.mem.install_text(&image.bytes);
    let knowledge = break_kaslr(&mut tb)?;
    let knowledge = forward_thinking::leak_vmemmap(&mut tb, &knowledge)?;

    // The kernel keeps a secret in some random buffer...
    let secret = tb.mem.kmalloc(&mut tb.ctx, 4096, "keyring_payload")?;
    tb.mem.cpu_write(
        &mut tb.ctx,
        Kva(secret.raw() + 64),
        b"ssh-private-key-bytes",
        "keyring",
    )?;
    let target = tb.mem.layout.kva_to_pfn(secret)?;
    println!("  target frame: {target} (never DMA-mapped by the kernel)");

    let stolen = forward_thinking::surveil(&mut tb, &knowledge, target, 64, 21)?;
    println!(
        "  device read via forged frags[]: {:?}",
        String::from_utf8_lossy(&stolen.stolen)
    );
    assert_eq!(&stolen.stolen, b"ssh-private-key-bytes");

    println!("\nok: Forward Thinking + surveillance demonstrated");
    Ok(())
}
