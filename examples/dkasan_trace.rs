//! Runs the D-KASAN workload of §4.2 — simulated project build under
//! light network traffic — and prints the Figure-3-style report, then
//! replays the workload's flight recorder through the provenance graph
//! to explain the most recent finding as a causal timeline.
//!
//! Run with: `cargo run --example dkasan_trace`

use dma_lab::dkasan::{investigate, run_workload, DKasan, FindingKind, WorkloadConfig};
use dma_lab::dma_core::ProvenanceGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = run_workload(WorkloadConfig::default())?;
    println!(
        "workload: {} allocations, {} packets processed\n",
        report.allocs, report.packets
    );

    println!("== Figure 3: D-KASAN report (once per site) ==");
    println!("{}\n", report.render());

    println!("== Findings by class (§4.2) ==");
    for kind in [
        FindingKind::AllocAfterMap,
        FindingKind::MapAfterAlloc,
        FindingKind::AccessAfterMap,
        FindingKind::MultipleMap,
    ] {
        println!("  {:<18} {}", kind.to_string(), report.count(kind));
    }
    println!(
        "\npages currently holding both live kernel objects and live DMA mappings: {}",
        report.dkasan.exposed_pages()
    );

    // The workload keeps a bounded flight recorder (the "black box")
    // alongside the oracle: the tail of the event stream, with an
    // eviction count for everything that fell out. Rebuilding the
    // provenance graph from that tail is enough to explain recent
    // findings without ever retaining the full trace.
    println!("\n== Forensics: black-box replay of the latest finding ==");
    println!(
        "flight recorder: {} of {} slots used, {} events evicted",
        report.black_box.len(),
        report.black_box.capacity(),
        report.black_box.dropped()
    );
    // Replay the retained tail through a fresh oracle: findings and
    // graph then come from the same window, so every incident timeline
    // is fully reconstructible — exactly what a post-incident analyst
    // holding only the black box would do.
    let tail = report.black_box.snapshot();
    let mut graph = ProvenanceGraph::new();
    graph.ingest_all(tail.iter().cloned());
    let mut replay = DKasan::new();
    replay.process(&tail);
    let finding = replay
        .findings()
        .last()
        .expect("the retained tail always re-exposes at least one site");
    let incident = investigate(&graph, finding);
    print!("{}", incident.render(1));

    println!("\n{}", report.summary().render());
    Ok(())
}
