//! Runs the D-KASAN workload of §4.2 — simulated project build under
//! light network traffic — and prints the Figure-3-style report.
//!
//! Run with: `cargo run --example dkasan_trace`

use dma_lab::dkasan::{run_workload, FindingKind, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = run_workload(WorkloadConfig::default())?;
    println!(
        "workload: {} allocations, {} packets processed\n",
        report.allocs, report.packets
    );

    println!("== Figure 3: D-KASAN report (once per site) ==");
    println!("{}\n", report.render());

    println!("== Findings by class (§4.2) ==");
    for kind in [
        FindingKind::AllocAfterMap,
        FindingKind::MapAfterAlloc,
        FindingKind::AccessAfterMap,
        FindingKind::MultipleMap,
    ] {
        println!("  {:<18} {}", kind.to_string(), report.count(kind));
    }
    println!(
        "\npages currently holding both live kernel objects and live DMA mappings: {}",
        report.dkasan.exposed_pages()
    );
    Ok(())
}
