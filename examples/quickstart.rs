//! Quickstart: boot a simulated machine, print the Table-1 memory
//! layout, deliver a packet, and show the sub-page exposure that makes
//! the whole paper possible — mapping 64 bytes exposes 4096.
//!
//! Run with: `cargo run --example quickstart`

use dma_lab::devsim::{Testbed, TestbedConfig};
use dma_lab::dma_core::vuln::DmaDirection;
use dma_lab::dma_core::{Iova, KernelLayout};
use dma_lab::sim_iommu::dma_map_single;
use dma_lab::sim_net::packet::Packet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Table 1: Linux kernel memory layout ==");
    println!(
        "{:<18} {:<18} {:>8}  VM area description",
        "Start Addr", "End Addr", "Size"
    );
    for (start, end, size, desc) in KernelLayout::table1() {
        println!("{start:<18} {end:<18} {size:>8}  {desc}");
    }

    let mut tb = Testbed::new(TestbedConfig::default())?;
    println!("\n== Boot ==");
    println!("KASLR text base:        {}", tb.mem.layout.text_base);
    println!("KASLR page_offset_base: {}", tb.mem.layout.page_offset_base);
    println!("KASLR vmemmap_base:     {}", tb.mem.layout.vmemmap_base);
    println!(
        "RX ring: {} buffers posted",
        tb.driver.rx_descriptors().len()
    );

    println!("\n== Benign traffic ==");
    tb.deliver_packet(&Packet::udp(9, 1, b"hello, iommu".to_vec()))?;
    println!(
        "delivered {} packet(s); payload: {:?}",
        tb.stack.stats.delivered,
        String::from_utf8_lossy(&tb.stack.delivered()[0].payload)
    );

    println!("\n== The sub-page vulnerability (§3.2) ==");
    // Map a tiny 64-byte buffer; a co-located neighbour object on the
    // same kmalloc page becomes device-writable.
    let io_buf = tb.mem.kmalloc(&mut tb.ctx, 64, "driver_cmd")?;
    let victim = tb.mem.kmalloc(&mut tb.ctx, 64, "unrelated_kernel_object")?;
    println!("I/O buffer   {io_buf}");
    println!(
        "victim       {victim}   (same page: {})",
        io_buf.page_align_down() == victim.page_align_down()
    );
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        io_buf,
        64,
        DmaDirection::FromDevice,
        "example_map",
    )?;
    println!(
        "dma_map_single(len=64) returned IOVA {} — but the WHOLE page is writable",
        m.iova
    );
    let victim_iova = Iova(m.iova.raw() + (victim - io_buf));
    tb.nic.write(
        &mut tb.ctx,
        &mut tb.iommu,
        &mut tb.mem.phys,
        victim_iova,
        b"PWNED!",
    )?;
    let mut readback = [0u8; 6];
    tb.mem
        .cpu_read(&mut tb.ctx, victim, &mut readback, "example")?;
    println!(
        "device wrote through the 64-byte mapping into the victim object: {:?}",
        String::from_utf8_lossy(&readback)
    );
    assert_eq!(&readback, b"PWNED!");
    println!("\nok: sub-page exposure demonstrated");
    Ok(())
}
