//! Runs SPADE over the bundled Linux-5.0-shaped corpus, printing the
//! Figure-2 trace for the nvme_fc finding and the Table-2 summary.
//!
//! Run with: `cargo run --example spade_scan`
//! Filter:   `cargo run --example spade_scan -- nvme` (substring of path)

use dma_lab::spade::analysis::analyze;
use dma_lab::spade::corpus::{full_corpus, CorpusMix};
use dma_lab::spade::report::{Table2, TraceReport};
use dma_lab::spade::xref::SourceTree;

fn main() {
    let filter = std::env::args().nth(1);
    let corpus = full_corpus(&CorpusMix::default(), 1);
    let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    let findings = analyze(&tree);

    if let Some(pat) = filter {
        for f in findings.iter().filter(|f| f.file.contains(&pat)) {
            println!("--- {}:{} ({}) ---", f.file, f.line, f.caller);
            println!("{}", TraceReport(f));
        }
        return;
    }

    println!("== Figure 2: SPADE output for the nvme_fc driver ==");
    let nvme = findings
        .iter()
        .find(|f| f.file.contains("nvme/host/fc.c") && f.trace.iter().any(|t| t.contains("rsp_iu")))
        .expect("nvme_fc exemplar present");
    println!("{}", TraceReport(nvme));

    println!("== Table 2: SPADE results summary ==");
    let table = Table2::from_findings(&findings);
    println!("{}", table.render());
    let vuln = Table2::vulnerable_calls(&findings);
    println!(
        "Total dma-map calls with a potential vulnerability: {} ({:.1}%)",
        vuln,
        100.0 * vuln as f64 / table.total.calls as f64
    );
    println!("(paper: 742 of 1019 calls, 72.8%)");
}
