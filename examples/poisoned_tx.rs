//! The Poisoned TX compound attack (§5.4, Figure 8) end to end: the
//! echo service leaks the malicious buffer's KVA through the TX
//! packet's `skb_shared_info.frags[]`.
//!
//! Run with: `cargo run --example poisoned_tx`

use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::poisoned_tx;
use dma_lab::dma_core::vuln::WindowPath;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = KernelImage::build(1, 16 << 20);
    for (path, note) in [
        (WindowPath::DeferredIotlb, "default Linux IOMMU mode"),
        (WindowPath::UnmapAfterBuild, "i40e-style driver ordering"),
        (
            WindowPath::NeighborIova,
            "strict mode, type-(c) page sharing",
        ),
    ] {
        println!("== Poisoned TX via window {path} ({note}) ==");
        let report = poisoned_tx::run(&image, path, 42)?;
        println!(
            "  round 1 (probe echo) KASLR break complete: {}",
            report.knowledge.complete()
        );
        if let Some(k) = report.poison_kva {
            println!("  round 2: poison KVA read from TX frags: {k}");
        }
        println!("  TX watchdog fired: {}", report.watchdog_fired);
        println!("  outcome: {:?}\n", report.outcome);
        assert!(report.outcome.succeeded(), "attack failed via {path}");
    }
    println!("ok: Poisoned TX demonstrated (no PFN guessing required)");
    Ok(())
}
