//! The device-zoo contract: channel inference is byte-deterministic on
//! every machine shape, rediscovers the NIC's hand-wired channels from
//! the trace alone, and the pinned seed-7 campaign reproduces Figure-1
//! vulnerability classes on non-NIC devices — byte-identically.

use dma_lab::devsim::DeviceKind;
use dma_lab::fuzz::{
    config_device, config_name, infer_channels, ChannelKind, ShardConfig, ShardedCampaign,
    NUM_CONFIGS,
};

/// The pinned campaign seed every surface shares (CI smoke, README).
const SEED: u64 = 7;

#[test]
fn inference_is_byte_deterministic_on_every_machine_shape() {
    for id in 0..NUM_CONFIGS {
        let a = infer_channels(SEED, id).expect("inference runs").to_json();
        let b = infer_channels(SEED, id).expect("inference runs").to_json();
        assert_eq!(
            a,
            b,
            "config {id} ({}) inference diverged across runs",
            config_name(id)
        );
        assert!(
            a.starts_with("{\"schema\":\"dma-infer.channel-map.v1\""),
            "{a}"
        );
        // Every machine exposes at least one DMA channel, and the map is
        // seed-sensitive (a different boot layout shifts the IOVAs the
        // workload exercises, so *some* byte differs).
        assert!(a.contains("\"site\":"), "config {id} found nothing:\n{a}");
    }
}

#[test]
fn inference_rediscovers_every_hand_wired_nic_channel() {
    // Config 1 is the i40e-style build-then-unmap shape: skb metadata is
    // initialised while the RX buffer is still device-visible, which is
    // exactly when the co-location is observable in the trace. Nothing
    // below names a driver offset — every number is inferred.
    let map = infer_channels(SEED, 1).expect("inference runs");

    let rx = map.by_site("nic_rx_map").expect("rx ring discovered");
    assert_eq!(rx.kind, ChannelKind::PayloadRing);
    assert_eq!(rx.slots, 64, "full ring depth observed");
    assert_eq!((rx.len_min, rx.len_max), (2048, 2048));
    assert!(rx.dev_writes > 0);
    // The skb_shared_info block: a CPU-write window the device never
    // touches, co-located at the tail of every RX buffer (Figure 1 (b)).
    assert_eq!(rx.meta.len(), 1, "one metadata block:\n{:?}", rx.meta);
    assert_eq!(rx.meta[0].site, "skb_init_shared_info");
    assert_eq!((rx.meta[0].lo, rx.meta[0].hi), (1728, 2048));
    // The payload window the device does write never reaches the
    // metadata block.
    let (_, dev_hi) = rx.dev_window.expect("device wrote the ring");
    assert!(
        dev_hi <= rx.meta[0].lo,
        "{:?} vs {:?}",
        rx.dev_window,
        rx.meta
    );

    let tx = map.by_site("nic_tx_map").expect("tx stream discovered");
    assert_eq!(tx.kind, ChannelKind::ReadonlyStream);
    assert_eq!(tx.dev_writes, 0);

    // Config 2 maps the command queue (map_ctrl_block): a long-lived
    // kmalloc-backed control block.
    let map = infer_channels(SEED, 2).expect("inference runs");
    let cmdq = map.by_site("nic_map_cmd_queue").expect("cmd queue found");
    assert_eq!(cmdq.kind, ChannelKind::CtrlBlock);
    assert_eq!(cmdq.slots, 1);
}

#[test]
fn inference_classifies_the_virtio_and_nvme_transports_by_role() {
    // Virtio split ring: the descriptor table is read and followed
    // (DICE base/pointer), the used ring is a persistent device-written
    // block, and the buffers form a device-writable ring.
    let map = infer_channels(SEED, 5).expect("virtio inference");
    let desc = map.by_site("virtq_desc_map").expect("desc table");
    assert_eq!(desc.kind, ChannelKind::DescriptorRing);
    assert!(desc.follow_hits > 0, "pointer-follow evidence missing");
    let used = map.by_site("virtq_used_map").expect("used ring");
    assert_eq!(used.kind, ChannelKind::CtrlBlock);
    let bufs = map.by_site("virtio_buf_map").expect("buffers");
    assert_eq!(bufs.kind, ChannelKind::PayloadRing);

    // NVMe queue pair: SQ read+followed, CQ persistent device-written,
    // PRP data pages a small transient pool.
    let map = infer_channels(SEED, 7).expect("nvme inference");
    let sq = map.by_site("nvme_sq_map").expect("submission queue");
    assert_eq!(sq.kind, ChannelKind::DescriptorRing);
    let cq = map.by_site("nvme_cq_map").expect("completion queue");
    assert_eq!(cq.kind, ChannelKind::CtrlBlock);
    let prp = map.by_site("nvme_prp_map").expect("data pages");
    assert_eq!(prp.kind, ChannelKind::PayloadBuffer);
}

/// Runs the pinned sharded campaign restricted to one machine shape and
/// returns its full JSON report.
fn campaign_json(config: u8) -> String {
    let mut cfg = ShardConfig::new(SEED, 48, 4, 2);
    cfg.only_config = Some(config);
    ShardedCampaign::new(cfg)
        .run()
        .expect("campaign runs")
        .to_json()
}

#[test]
fn seed7_campaign_rediscovers_figure1_classes_on_non_nic_devices() {
    for config in [5, 7] {
        assert_ne!(
            config_device(config),
            DeviceKind::Nic,
            "the whole point is a non-NIC device"
        );
        let report = campaign_json(config);
        // §2/Figure 1 class (b): OS metadata on a mapped page — the used
        // ring / completion queue and slab co-location findings the
        // inferred-channel vocabulary reaches with zero hand-wiring.
        assert!(
            report.contains("\"taxonomy\":\"b\""),
            "no OS-metadata finding on {} ({report})",
            config_name(config)
        );
        // Class (d) random co-location: stale device writes corrupting
        // co-located slab objects (the freelist hazard).
        assert!(
            report.contains("\"taxonomy\":\"d\""),
            "no random-colocation finding on {} ({report})",
            config_name(config)
        );
        // The run is byte-reproducible end to end.
        assert_eq!(
            report,
            campaign_json(config),
            "{} campaign diverged across runs",
            config_name(config)
        );
    }
}
