//! The cycle-attribution profiler's determinism contract: folded
//! output is byte-identical across runs and shard counts, the per-exec
//! phase breakdown is pinned for every zoo config, and the hottest
//! self-cycle frame names an IOMMU invalidation path.

use dma_lab::fuzz::{config_name, NUM_CONFIGS};
use dma_lab::profiling::{run_profile, ProfileConfig};

const SEED: u64 = 7;
const ITERS: u64 = 24;

fn profiled(shards: u32, only_config: Option<u8>) -> dma_lab::dma_core::Profile {
    run_profile(&ProfileConfig {
        shards,
        only_config,
        ..ProfileConfig::new(SEED, ITERS)
    })
    .expect("profile workload")
    .profile
}

#[test]
fn two_runs_fold_to_identical_bytes() {
    let a = profiled(1, None);
    let b = profiled(1, None);
    assert_eq!(a.folded(), b.folded(), "folded output must be replayable");
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn shard_count_never_changes_the_merged_tree() {
    let one = profiled(1, None);
    for shards in [2, 3, 8] {
        let sharded = profiled(shards, None);
        assert_eq!(
            one.folded(),
            sharded.folded(),
            "{shards} contiguous chunks merged to a different tree"
        );
    }
}

#[test]
fn the_hottest_self_frame_is_an_iommu_invalidation_path() {
    let run = run_profile(&ProfileConfig::new(SEED, 96)).expect("profile workload");
    let (frame, cycles) = run.profile.top_self().expect("non-empty profile");
    assert!(
        frame.starts_with("iommu."),
        "hottest frame {frame} ({cycles} self cycles) is not an IOMMU path"
    );
    assert!(cycles > 0);
    // The paper's cost story: invalidation dominates the IOMMU's
    // simulated cycle budget, and the profiler must say so.
    assert!(
        frame.contains("iotlb"),
        "expected an IOTLB invalidation path, got {frame}"
    );
}

#[test]
fn phase_breakdown_is_pinned_for_every_zoo_config() {
    for config in 0..NUM_CONFIGS {
        let name = config_name(config);
        let profile = profiled(1, Some(config));
        let phases = profile.phases();
        let calls = |phase: &str| -> u64 {
            phases
                .iter()
                .find(|(n, _, _)| n == phase)
                .map(|(_, c, _)| *c)
                .unwrap_or(0)
        };
        // Every exec opens with a clone marker and closes with exactly
        // one teardown, whatever the machine shape.
        assert_eq!(calls("exec.clone"), ITERS, "{name}");
        assert_eq!(calls("exec.teardown"), ITERS, "{name}");
        assert!(calls("exec.deliver") > 0, "{name} never delivered");
        assert!(calls("exec.oracle") > 0, "{name} never ran the oracle");
        assert_eq!(
            calls("exec.oracle"),
            calls("exec.infer"),
            "{name}: oracle and inference drain the same trace batches"
        );
        // Delivery moves simulated time on every shape (teardown may
        // not: deferred-invalidation configs batch the unmap cost into
        // timer ticks); breakdown bytes are pinned by a second run.
        let cycles = |phase: &str| -> u64 {
            phases
                .iter()
                .find(|(n, _, _)| n == phase)
                .map(|(_, _, c)| *c)
                .unwrap_or(0)
        };
        assert!(cycles("exec.deliver") > 0, "{name}: free delivery");
        let again = profiled(1, Some(config));
        assert_eq!(profile.folded(), again.folded(), "{name} not deterministic");
    }
}

#[test]
fn attributed_cycles_never_exceed_total_cycles() {
    let run = run_profile(&ProfileConfig::new(SEED, ITERS)).expect("profile workload");
    assert!(run.profile.attributed_cycles() <= run.total_cycles);
    assert_eq!(run.execs, ITERS);
}
