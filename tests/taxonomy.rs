//! Figure 1: constructs each of the four sub-page vulnerability types
//! in the simulator and verifies the exposure is real (the device can
//! actually touch the co-located data through the IOMMU).

use dma_lab::devsim::{Testbed, TestbedConfig};
use dma_lab::dma_core::vuln::{DmaDirection, SubPageVulnerability};
use dma_lab::dma_core::{Iova, Kva};
use dma_lab::sim_iommu::{dma_map_single, dma_unmap_single};
use dma_lab::sim_net::shinfo::SHINFO_DESTRUCTOR_ARG;
use dma_lab::sim_net::skb::alloc_skb;

fn tb() -> Testbed {
    Testbed::new(TestbedConfig::default()).unwrap()
}

#[test]
fn type_a_driver_metadata_exposed() {
    // (a) The I/O buffer is part of a bigger data structure with
    // function pointers.
    let mut tb = tb();
    // A driver struct: [64B buffer][callback pointer][...] on one page.
    let op = tb.mem.kzalloc(&mut tb.ctx, 128, "drv_op").unwrap();
    let cb_kva = Kva(op.raw() + 64);
    tb.mem
        .cpu_write_u64(&mut tb.ctx, cb_kva, 0xffff_ffff_8111_0000, "drv_init")
        .unwrap();
    // Driver maps only the 64-byte buffer...
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        op,
        64,
        DmaDirection::Bidirectional,
        "drv_map",
    )
    .unwrap();
    // ...but the device can rewrite the callback pointer.
    tb.nic
        .write_u64(
            &mut tb.ctx,
            &mut tb.iommu,
            &mut tb.mem.phys,
            Iova(m.iova.raw() + 64),
            0x4141_4141,
        )
        .unwrap();
    assert_eq!(
        tb.mem.cpu_read_u64(&mut tb.ctx, cb_kva, "t").unwrap(),
        0x4141_4141
    );
    assert_eq!(SubPageVulnerability::DriverMetadata.letter(), 'a');
}

#[test]
fn type_b_os_metadata_exposed() {
    // (b) The OS places its own metadata on the mapped page: both the
    // SLUB freelist pointer and skb_shared_info.
    let mut tb = tb();
    // Freelist variant: a freed neighbour's next-pointer shares the page.
    let io = tb.mem.kmalloc(&mut tb.ctx, 512, "io").unwrap();
    let neighbour = tb.mem.kmalloc(&mut tb.ctx, 512, "tmp").unwrap();
    tb.mem.kfree(&mut tb.ctx, neighbour).unwrap();
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        io,
        512,
        DmaDirection::Bidirectional,
        "io_map",
    )
    .unwrap();
    let leaks = tb
        .nic
        .scan_for_pointers(
            &mut tb.ctx,
            &mut tb.iommu,
            &tb.mem.phys,
            Iova(m.iova.raw() & !0xfff),
            4096,
        )
        .unwrap();
    assert!(
        !leaks.is_empty(),
        "allocator metadata (freelist pointers) must leak from the mapped page"
    );

    // skb_shared_info variant: always inside the data buffer.
    let skb = alloc_skb(&mut tb.ctx, &mut tb.mem, 1500).unwrap();
    let m2 = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        skb.data,
        skb.buf_size,
        DmaDirection::FromDevice,
        "rx_map",
    )
    .unwrap();
    let shinfo_off = skb.shinfo_kva() - skb.data;
    tb.nic
        .write_u64(
            &mut tb.ctx,
            &mut tb.iommu,
            &mut tb.mem.phys,
            Iova(m2.iova.raw() + shinfo_off + SHINFO_DESTRUCTOR_ARG as u64),
            0xbad,
        )
        .unwrap();
    assert_eq!(
        skb.shinfo().destructor_arg(&mut tb.ctx, &tb.mem).unwrap(),
        0xbad
    );
}

#[test]
fn type_c_multiple_iova_retains_access() {
    // (c) The page is mapped by multiple IOVAs: unmapping one does not
    // revoke the device's access through the other.
    let mut tb = tb();
    let a = tb.mem.page_frag_alloc(&mut tb.ctx, 2048, "rx_a").unwrap();
    let b = tb.mem.page_frag_alloc(&mut tb.ctx, 2048, "rx_b").unwrap();
    assert_eq!(
        a.page_align_down(),
        b.page_align_down(),
        "page_frag pairs share a page"
    );
    let ma = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        a,
        2048,
        DmaDirection::FromDevice,
        "map_a",
    )
    .unwrap();
    let mb = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        b,
        2048,
        DmaDirection::FromDevice,
        "map_b",
    )
    .unwrap();
    dma_unmap_single(&mut tb.ctx, &mut tb.iommu, &ma).unwrap();
    // The device aliases A's bytes through B's still-live mapping.
    let alias = tb.nic.alias_through_neighbor(ma.iova, mb.iova).unwrap();
    tb.nic
        .write(
            &mut tb.ctx,
            &mut tb.iommu,
            &mut tb.mem.phys,
            alias,
            b"ghost",
        )
        .unwrap();
    let mut buf = [0u8; 5];
    tb.mem.cpu_read(&mut tb.ctx, a, &mut buf, "t").unwrap();
    assert_eq!(&buf, b"ghost");
}

#[test]
fn type_d_random_colocation_leaks() {
    // (d) An unrelated kernel buffer coincidentally shares the page with
    // the I/O buffer: the device reads data it was never meant to see.
    let mut tb = tb();
    let io = tb.mem.kmalloc(&mut tb.ctx, 1024, "io_buf").unwrap();
    let secret = tb.mem.kmalloc(&mut tb.ctx, 1024, "session_keys").unwrap();
    assert_eq!(io.page_align_down(), secret.page_align_down());
    tb.mem
        .cpu_write(&mut tb.ctx, secret, b"hunter2!", "keystore")
        .unwrap();
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        io,
        1024,
        DmaDirection::ToDevice,
        "tx_map",
    )
    .unwrap();
    let mut stolen = [0u8; 8];
    tb.nic
        .read(
            &mut tb.ctx,
            &mut tb.iommu,
            &tb.mem.phys,
            Iova(m.iova.raw() + (secret - io)),
            &mut stolen,
        )
        .unwrap();
    assert_eq!(&stolen, b"hunter2!");
}

#[test]
fn all_four_types_have_distinct_letters() {
    use SubPageVulnerability::*;
    let letters: Vec<char> = [DriverMetadata, OsMetadata, MultipleIova, RandomColocation]
        .iter()
        .map(|v| v.letter())
        .collect();
    assert_eq!(letters, vec!['a', 'b', 'c', 'd']);
}
