//! §3.3: all three vulnerability attributes are *required* — the
//! hypothetical scenario of the paper, where a device with write access
//! but missing attributes has "no viable attack options", plus the
//! defenses ablation: which configurations block which attacks.

use dma_lab::attacks::cpu::MiniCpu;
use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::kaslr::AttackerKnowledge;
use dma_lab::attacks::rop::PoisonedBuffer;
use dma_lab::attacks::window::{rx_with_window, PoisonPlan};
use dma_lab::devsim::testbed::TestbedConfig;
use dma_lab::devsim::Testbed;
use dma_lab::dma_core::vuln::{VulnerabilityAttributes, WindowPath};
use dma_lab::dma_core::Kva;
use dma_lab::sim_iommu::{InvalidationMode, IommuConfig};
use dma_lab::sim_net::driver::{AllocPolicy, DriverConfig, UnmapOrder};
use dma_lab::sim_net::packet::Packet;
use dma_lab::sim_net::skb::kfree_skb;

#[test]
fn attribute_tracker_demands_all_three() {
    let mut a = VulnerabilityAttributes::none();
    assert!(!a.is_complete());
    a.malicious_kva = Some(Kva(0xffff_8880_0000_1000));
    a.window = Some(dma_lab::dma_core::vuln::TimeWindow {
        start: 0,
        end: 100,
        path: WindowPath::DeferredIotlb,
    });
    assert!(!a.is_complete(), "still missing the callback");
    assert_eq!(a.missing(), vec!["writable callback pointer"]);
}

/// Without attribute 1 (a correct KVA), the poisoned pointer leads the
/// CPU to garbage: a fault (kernel oops), not code execution.
#[test]
fn wrong_kva_guess_crashes_instead_of_escalating() {
    let image = KernelImage::build(1, 16 << 20);
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    tb.mem.install_text(&image.bytes);
    // Device has a window and a callback to clobber, but guesses a KVA
    // pointing at unrelated zeroed memory.
    let bogus = tb.mem.kzalloc(&mut tb.ctx, 512, "innocent").unwrap();
    let plan = PoisonPlan {
        poison_kva: bogus.raw(),
    };
    let p = Packet::udp(9, 1, b"x".to_vec());
    let (skb, ok) = rx_with_window(&mut tb, WindowPath::NeighborIova, &p, &plan).unwrap();
    assert!(ok);
    let pending = kfree_skb(&mut tb.ctx, &mut tb.mem, skb).unwrap();
    // ubuf_info.callback reads as 0 from the zeroed buffer → no pending
    // callback at all (or, if nonzero, the CPU would NX-fault).
    assert!(pending.is_none());
}

/// Without attribute 3 (a time window), the CPU's shared-info
/// initialization erases the device's writes: strict mode + correct
/// unmap ordering + isolated pages = no attack.
#[test]
fn hardened_configuration_closes_every_window() {
    let mut tb = Testbed::new(TestbedConfig {
        iommu: IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        },
        driver: DriverConfig {
            unmap_order: UnmapOrder::UnmapThenBuild,
            alloc: AllocPolicy::PagePerBuffer,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let plan = PoisonPlan {
        poison_kva: 0xffff_8880_0bad_0000,
    };
    for path in [
        WindowPath::UnmapAfterBuild,
        WindowPath::DeferredIotlb,
        WindowPath::NeighborIova,
    ] {
        let p = Packet::udp(9, 1, b"x".to_vec());
        let (skb, ok) = rx_with_window(&mut tb, path, &p, &plan).unwrap();
        let darg = skb.shinfo().destructor_arg(&mut tb.ctx, &tb.mem).unwrap();
        assert!(
            !ok || darg == 0,
            "window {path} should be closed in the hardened config (write ok={ok}, darg={darg:#x})"
        );
        kfree_skb(&mut tb.ctx, &mut tb.mem, skb).unwrap();
    }
}

/// NX (§2.4): even with all three attributes, pointing the callback at
/// the malicious *data* buffer itself faults — which is why the attacks
/// need the JOP pivot into kernel text.
#[test]
fn nx_forces_the_jop_detour() {
    let image = KernelImage::build(1, 16 << 20);
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    tb.mem.install_text(&image.bytes);
    let cpu = MiniCpu::new(&image, tb.mem.layout.text_base);

    let buf = tb.mem.kzalloc(&mut tb.ctx, 512, "payload").unwrap();
    // Naive attacker: callback = the buffer (data page).
    let err = cpu
        .invoke_callback(&mut tb.ctx, &tb.mem, buf, buf)
        .unwrap_err();
    assert!(matches!(err, dma_lab::dma_core::DmaError::CpuFault(_)));

    // Informed attacker: callback = JOP gadget, chain in the buffer.
    let knowledge = AttackerKnowledge {
        text_base: Some(tb.mem.layout.text_base),
        page_offset_base: Some(tb.mem.layout.page_offset_base),
        vmemmap_base: Some(tb.mem.layout.vmemmap_base),
    };
    let poison = PoisonedBuffer::build(&image, &knowledge).unwrap();
    tb.mem
        .cpu_write(&mut tb.ctx, buf, &poison.bytes, "deposit")
        .unwrap();
    let jop = image
        .symbol_addr("jop_rsp_rdi", tb.mem.layout.text_base)
        .unwrap();
    let out = cpu.invoke_callback(&mut tb.ctx, &tb.mem, jop, buf).unwrap();
    assert!(out.escalated);
}

/// §7: the MacOS XOR cookie stops the single-step use of a leaked
/// pointer, but two samples with known candidates recover it.
#[test]
fn macos_cookie_blinding_and_its_break() {
    use dma_lab::attacks::cookie::{blind, recover_cookie};
    let image = KernelImage::build(1, 16 << 20);
    let base = 0xffff_ffff_8800_0000u64;
    let ext_free_a = base + image.symbol_offset("sock_zerocopy_callback").unwrap();
    let ext_free_b = base + image.symbol_offset("nvme_fc_fcpio_done").unwrap();
    let cookie = 0x5eed_c0de_1234_5678;
    // The blinded value is useless alone...
    let sample_a = blind(ext_free_a, cookie);
    assert_ne!(sample_a, ext_free_a);
    // ...but with KASLR broken the candidate plaintexts are known and
    // one XOR reveals the cookie (§7 MacOS).
    let recovered = recover_cookie(
        &[sample_a, blind(ext_free_b, cookie)],
        &[ext_free_a, ext_free_b],
    );
    assert_eq!(recovered, Some(cookie));
}
