//! The paper, end to end, as one test: **characterize → detect →
//! exploit → defend**, each stage feeding the next, across every crate
//! in the workspace.

use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::ringflood::{self, BootSurvey};
use dma_lab::defenses::bounce::BounceDma;
use dma_lab::dkasan::{run_workload, FindingKind, WorkloadConfig};
use dma_lab::dma_core::vuln::{SubPageVulnerability, WindowPath};
use dma_lab::dma_core::{Iova, SimCtx, PAGE_SIZE};
use dma_lab::sim_iommu::{InvalidationMode, Iommu, IommuConfig};
use dma_lab::sim_mem::{MemConfig, MemorySystem};
use dma_lab::spade::analysis::analyze;
use dma_lab::spade::corpus::{full_corpus, CorpusMix};
use dma_lab::spade::report::Table2;
use dma_lab::spade::xref::SourceTree;

#[test]
fn characterize_detect_exploit_defend() {
    // ------------------------------------------------------------------
    // 1. CHARACTERIZE (§3): the four sub-page vulnerability types exist
    //    as a taxonomy, and the attack needs all three attributes.
    // ------------------------------------------------------------------
    let taxonomy: Vec<char> = [
        SubPageVulnerability::DriverMetadata,
        SubPageVulnerability::OsMetadata,
        SubPageVulnerability::MultipleIova,
        SubPageVulnerability::RandomColocation,
    ]
    .iter()
    .map(|v| v.letter())
    .collect();
    assert_eq!(taxonomy, vec!['a', 'b', 'c', 'd']);

    // ------------------------------------------------------------------
    // 2. DETECT, statically (§4.1): SPADE finds the exposure the attack
    //    will later use — skb_shared_info on DMA-mapped pages, at scale.
    // ------------------------------------------------------------------
    let corpus = full_corpus(&CorpusMix::default(), 1);
    let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    let findings = analyze(&tree);
    let table = Table2::from_findings(&findings);
    let vulnerable = Table2::vulnerable_calls(&findings);
    assert!(
        vulnerable * 100 / table.total.calls >= 65,
        "the kernel-wide exposure the paper reports must be visible statically"
    );
    let shinfo_share = table.shinfo_mapped.calls * 100 / table.total.calls;
    assert!(
        (38..=55).contains(&shinfo_share),
        "skb_shared_info drives the exposure ({shinfo_share}%)"
    );

    // ------------------------------------------------------------------
    // 3. DETECT, dynamically (§4.2): D-KASAN sees live co-location under
    //    a realistic workload — the type (d) cases SPADE cannot.
    // ------------------------------------------------------------------
    let report = run_workload(WorkloadConfig {
        rounds: 80,
        seed: 0xabc,
        fault_seed: None,
    })
    .unwrap();
    assert!(report.count(FindingKind::AllocAfterMap) > 0);
    assert!(report.count(FindingKind::MultipleMap) > 0);

    // ------------------------------------------------------------------
    // 4. EXPLOIT (§5, §6): the compound attack converts the detected
    //    exposure into kernel code execution.
    // ------------------------------------------------------------------
    let image = KernelImage::build(1, 16 << 20);
    let survey = BootSurvey::run(ringflood::kernel50_driver(), 48, 0).unwrap();
    let mut escalated = false;
    for victim_seed in 4000..4010 {
        let r = ringflood::run(
            &image,
            ringflood::kernel50_driver(),
            WindowPath::NeighborIova,
            victim_seed,
            &survey,
        )
        .unwrap();
        if r.outcome.succeeded() {
            escalated = true;
            // The exploit used exactly the ingredients the detectors
            // flagged: the recovered KASLR bases and the shinfo exposure.
            assert!(r.knowledge.text_base.is_some());
            assert!(r.knowledge.page_offset_base.is_some());
            break;
        }
    }
    assert!(
        escalated,
        "the compound attack must land on some fresh boot"
    );

    // ------------------------------------------------------------------
    // 5. DEFEND (§8/§9): bounce buffers remove the exposure class the
    //    whole chain stood on.
    // ------------------------------------------------------------------
    let mut ctx = SimCtx::new();
    let mut mem = MemorySystem::new(&MemConfig::default());
    let mut iommu = Iommu::new(IommuConfig {
        mode: InvalidationMode::Deferred, // even in the weak mode
        ..Default::default()
    });
    let mut pool = BounceDma::new(&mut ctx, &mut mem, &mut iommu, 1, 4).unwrap();
    let nic = dma_lab::devsim::MaliciousNic::new(1);
    let io = mem.kmalloc(&mut ctx, 512, "io").unwrap();
    let m = pool
        .map(
            &mut ctx,
            &mut mem,
            io,
            512,
            dma_lab::dma_core::vuln::DmaDirection::Bidirectional,
        )
        .unwrap();
    let leaks = nic
        .scan_for_pointers(
            &mut ctx,
            &mut iommu,
            &mem.phys,
            Iova(m.iova.raw() & !0xfff),
            PAGE_SIZE,
        )
        .unwrap();
    assert!(
        leaks.is_empty(),
        "with bounce buffers there is nothing left to characterize, detect, or exploit"
    );
}
