//! §5.3 scaling: "The memory footprint, in turn, depends on the NIC
//! capabilities and the number of cores (number of RX rings) on the
//! server. This means such attacks have a higher chance of success on
//! larger machines."

use dma_lab::attacks::ringflood::{self, BootSurvey};
use dma_lab::devsim::testbed::{MemConfigLite, TestbedConfig};
use dma_lab::devsim::Testbed;
use dma_lab::sim_net::driver::DriverConfig;

fn driver_with_queues(queues: usize) -> DriverConfig {
    DriverConfig {
        num_queues: queues,
        map_ctrl_block: true,
        ..ringflood::kernel50_driver()
    }
}

#[test]
fn rings_scale_with_queue_count() {
    for queues in [1usize, 4, 8] {
        let tb = Testbed::new(TestbedConfig {
            mem: MemConfigLite {
                num_cpus: queues,
                ..Default::default()
            },
            driver: driver_with_queues(queues),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(tb.driver.rx_descriptors().len(), 64 * queues);
    }
}

#[test]
fn per_queue_buffers_come_from_distinct_regions() {
    let queues = 4;
    let tb = Testbed::new(TestbedConfig {
        mem: MemConfigLite {
            num_cpus: queues,
            ..Default::default()
        },
        driver: driver_with_queues(queues),
        ..Default::default()
    })
    .unwrap();
    // §5.2.2 / Figure 5: "each RX ring is served by its own (per-CPU)
    // contiguous buffer". The first slot of each queue must live on a
    // different page_frag region.
    let kvas: Vec<u64> = tb
        .driver
        .posted_slots()
        .take(queues)
        .map(|s| s.mapping.kva.raw() & !(32 * 1024 - 1))
        .collect();
    let distinct: std::collections::HashSet<u64> = kvas.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        queues,
        "per-CPU regions must differ: {kvas:x?}"
    );
}

#[test]
fn more_queues_mean_more_predictable_pfns() {
    // The RingFlood success driver: a 8-queue machine covers 8× the
    // frames each boot, so far more PFNs repeat across boots.
    let survey = |queues: usize| {
        let cfg = driver_with_queues(queues);
        let mut freq: std::collections::HashMap<u64, u32> = Default::default();
        let boots = 24;
        for seed in 0..boots {
            let tb = Testbed::new(TestbedConfig {
                mem: MemConfigLite {
                    num_cpus: queues,
                    kaslr_seed: Some(seed),
                    ..Default::default()
                },
                driver: cfg,
                boot_noise_seed: Some(seed),
                ..Default::default()
            })
            .unwrap();
            let mut seen = std::collections::HashSet::new();
            for slot in tb.driver.posted_slots() {
                seen.insert(tb.mem.layout.kva_to_pfn(slot.mapping.kva).unwrap().raw());
            }
            for p in seen {
                *freq.entry(p).or_insert(0) += 1;
            }
        }
        let majority = freq
            .values()
            .filter(|c| **c as usize * 2 > boots as usize)
            .count();
        majority
    };
    let one = survey(1);
    let eight = survey(8);
    assert!(
        eight > 2 * one,
        "8-queue machine should have far more majority PFNs: 1q={one}, 8q={eight}"
    );
}

#[test]
fn survey_works_with_multiqueue_profile() {
    // The stock BootSurvey machinery handles multi-queue drivers too.
    let s = BootSurvey::run(driver_with_queues(2), 16, 0).unwrap();
    let (_, frac) = s.most_common().unwrap();
    assert!(frac > 0.5);
}
