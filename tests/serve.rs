//! Integration tests for `dma-lab serve`: the determinism contract the
//! telemetry service ships on (same seed + same script ⇒ byte-identical
//! transcript, over TCP and in memory), the posture audit's
//! strict-vs-deferred verdicts, line-JSON framing edges, and the
//! snapshot round-trip `stats --diff` depends on.

use dma_lab::dma_core::Snapshot;
use dma_lab::serve::{
    run_scripted_session, ConnState, Flow, ServeConfig, Server, END_MARKER, MAX_LINE,
};

/// The pinned campaign every surface shares (CI smoke, README, tests).
const SEED: u64 = 7;

/// The session script CI replays twice and `cmp`s.
const SCRIPT: &str = "\
{\"req\":\"hello\"}
{\"req\":\"step\",\"n\":32}
{\"req\":\"stats\"}
{\"req\":\"watch\",\"findings\":2}
{\"req\":\"stats\",\"mode\":\"delta\"}
{\"req\":\"health\"}
{\"req\":\"posture\"}
{\"req\":\"shutdown\"}
";

fn transcript(seed: u64) -> String {
    let mut server = Server::new(ServeConfig::new(seed, 10_000)).expect("server");
    server.run_script(SCRIPT)
}

#[test]
fn two_seeded_runs_yield_byte_identical_transcripts() {
    let a = transcript(SEED);
    let b = transcript(SEED);
    assert_eq!(a, b, "same seed + same script must replay byte-for-byte");
    assert_ne!(a, transcript(SEED + 1), "a different seed must diverge");
    // Every frame is one line of valid single-line JSON, and every
    // request's final frame carries the end marker as its last field.
    for line in a.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'));
    }
    assert!(a.lines().any(|l| l.ends_with(END_MARKER)));
}

#[test]
fn tcp_transcript_matches_the_in_memory_replay() {
    let over_tcp = run_scripted_session(ServeConfig::new(SEED, 10_000), SCRIPT).expect("session");
    assert_eq!(
        over_tcp,
        transcript(SEED),
        "the socket layer must add nothing to the frame stream"
    );
}

#[test]
fn streamed_findings_carry_taxonomy_classes_the_iteration_they_land() {
    let t = transcript(SEED);
    let findings: Vec<&str> = t
        .lines()
        .filter(|l| l.contains("\"frame\":\"finding\""))
        .collect();
    assert!(!findings.is_empty(), "pinned campaign finds nothing?\n{t}");
    for f in &findings {
        assert!(
            f.contains("\"id\":\"dk-") || f.contains("\"id\":\"dq-"),
            "{f}"
        );
        assert!(f.contains("\"taxonomy\":"), "{f}");
        assert!(f.contains("\"class\":"), "{f}");
        assert!(f.contains("\"iteration\":"), "{f}");
    }
}

#[test]
fn posture_sweep_distinguishes_strict_from_deferred_and_flags_the_window() {
    let t = transcript(SEED);
    let postures: Vec<&str> = t
        .lines()
        .filter(|l| l.contains("\"frame\":\"posture\","))
        .collect();
    assert_eq!(postures.len(), 9, "one frame per machine config:\n{t}");
    // Every frame names its device family, and the sweep covers the
    // whole zoo.
    for device in [
        "\"device\":\"nic\"",
        "\"device\":\"virtio\"",
        "\"device\":\"nvme\"",
    ] {
        assert!(
            postures.iter().any(|l| l.contains(device)),
            "{device} missing from the posture sweep:\n{t}"
        );
    }
    // The summary carries one per-device-model section per family.
    let done = t
        .lines()
        .find(|l| l.contains("\"frame\":\"posture_done\""))
        .expect("posture_done frame");
    assert!(
        done.contains("\"devices\":[{\"device\":\"nic\",\"configs\":5,")
            && done.contains("{\"device\":\"virtio\",\"configs\":2,")
            && done.contains("{\"device\":\"nvme\",\"configs\":2,"),
        "{done}"
    );
    let deferred: Vec<&&str> = postures
        .iter()
        .filter(|l| l.contains("\"invalidation\":\"deferred\""))
        .collect();
    let strict: Vec<&&str> = postures
        .iter()
        .filter(|l| l.contains("\"invalidation\":\"strict\""))
        .collect();
    assert!(!deferred.is_empty() && !strict.is_empty());
    // Every deferred config is exposed to the §5.2.1 stale-translation
    // window; no strict config may carry that finding.
    for l in &deferred {
        assert!(l.contains("stale-translation-window"), "{l}");
        assert!(l.contains("5.2.1"), "{l}");
        assert!(l.contains("\"grade\":\"exposed\""), "{l}");
    }
    for l in &strict {
        assert!(!l.contains("stale-translation-window"), "{l}");
    }
    // The page-per-buffer strict config has no sub-page sharing either:
    // the sweep must contain at least one fully hardened posture.
    assert!(
        strict.iter().any(|l| l.contains("\"grade\":\"hardened\"")),
        "{t}"
    );
}

#[test]
fn framing_edges_answer_errors_without_panicking() {
    let mut server = Server::new(ServeConfig::new(SEED, 100)).expect("server");
    let mut conn = ConnState::default();
    let mut out = Vec::new();

    // Unknown request type: one error frame, connection stays open.
    let flow = server.handle_line(r#"{"req":"frobnicate"}"#, &mut conn, &mut out);
    assert!(matches!(flow, Flow::Continue));
    assert_eq!(out.len(), 1);
    assert!(out[0].contains("\"frame\":\"error\""), "{}", out[0]);
    assert!(out[0].ends_with(END_MARKER), "{}", out[0]);

    // Malformed JSON and a non-object line: same contract.
    for bad in [r#"{"req":"#, r#"[1,2,3]"#, "not json at all"] {
        out.clear();
        let flow = server.handle_line(bad, &mut conn, &mut out);
        assert!(matches!(flow, Flow::Continue), "{bad}");
        assert!(
            out[0].contains("\"frame\":\"error\""),
            "{bad} -> {}",
            out[0]
        );
    }

    // An oversized request line answers an error and closes the
    // connection instead of buffering without bound.
    out.clear();
    let huge = format!("{{\"req\":\"{}\"}}", "x".repeat(MAX_LINE));
    let flow = server.handle_line(&huge, &mut conn, &mut out);
    assert!(matches!(flow, Flow::CloseConn));
    assert!(out[0].contains("\"frame\":\"error\""), "{}", out[0]);

    // The server is still usable afterwards on a fresh connection.
    let mut conn = ConnState::default();
    out.clear();
    let flow = server.handle_line(r#"{"req":"hello"}"#, &mut conn, &mut out);
    assert!(matches!(flow, Flow::Continue));
    assert!(out[0].contains("\"frame\":\"hello\""), "{}", out[0]);
}

#[test]
fn partial_frame_then_disconnect_leaves_the_server_serving() {
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = Server::new(ServeConfig::new(SEED, 100)).expect("server");
    let handle = std::thread::spawn(move || server.serve(listener, Some(2)));

    // First client sends half a frame and vanishes.
    {
        let mut c = TcpStream::connect(addr).expect("connect");
        c.write_all(b"{\"req\":\"hel").expect("write");
    }
    // Second client gets a full, normal session.
    {
        use std::io::{BufRead, BufReader};
        let mut c = TcpStream::connect(addr).expect("connect");
        c.write_all(b"{\"req\":\"hello\"}\n{\"req\":\"shutdown\"}\n")
            .expect("write");
        let mut lines = Vec::new();
        for line in BufReader::new(c).lines() {
            lines.push(line.expect("frame"));
        }
        assert!(lines[0].contains("\"frame\":\"hello\""), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("\"frame\":\"bye\"")));
    }
    handle.join().expect("serve thread").expect("serve io");
}

#[test]
fn stats_frames_round_trip_through_the_snapshot_parser() {
    let mut server = Server::new(ServeConfig::new(SEED, 10_000)).expect("server");
    let t = server
        .run_script("{\"req\":\"step\",\"n\":24}\n{\"req\":\"stats\"}\n{\"req\":\"shutdown\"}\n");
    let stats = t
        .lines()
        .find(|l| l.contains("\"frame\":\"stats\""))
        .expect("stats frame");
    // The embedded snapshot is exactly what the snapshot parser
    // accepts — the contract `dma-lab stats --diff` is built on.
    let frame = dma_lab::dma_core::jsonr::parse(stats).expect("frame parses");
    let snap = Snapshot::from_jvalue(frame.get("snapshot").expect("snapshot field"))
        .expect("snapshot parses from the frame");
    assert!(!snap.is_empty());
    assert_eq!(
        snap.diff(&snap).regressed_counters().len(),
        0,
        "self-diff regresses nothing"
    );
}
