//! MSG_ZEROCOPY: the *benign* owner of `destructor_arg` (§5.1
//! footnote 4) — and what happens when the attacker piggybacks on it.

use dma_lab::attacks::cpu::MiniCpu;
use dma_lab::attacks::image::KernelImage;
use dma_lab::devsim::{Testbed, TestbedConfig};

fn armed() -> (Testbed, KernelImage) {
    let image = KernelImage::build(1, 16 << 20);
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    tb.mem.install_text(&image.bytes);
    (tb, image)
}

#[test]
fn benign_zerocopy_send_invokes_the_real_callback() {
    let (mut tb, image) = armed();
    let cb_addr = image
        .symbol_addr("sock_zerocopy_callback", tb.mem.layout.text_base)
        .unwrap();
    // A "userspace" buffer pinned for zero-copy TX.
    let user_buf = tb
        .mem
        .kmalloc(&mut tb.ctx, 4096, "pinned_user_pages")
        .unwrap();
    tb.mem
        .cpu_write(&mut tb.ctx, user_buf, b"zero-copy payload bytes", "user")
        .unwrap();

    tb.stack
        .send_zerocopy(
            &mut tb.ctx,
            &mut tb.mem,
            &mut tb.iommu,
            &mut tb.driver,
            42,
            user_buf,
            23,
            cb_addr,
        )
        .unwrap();

    // The device reads the user bytes straight from the pinned page.
    let descs = tb.driver.tx_descriptors();
    assert_eq!(descs[0].frags.len(), 1);
    let (frag_iova, frag_len) = descs[0].frags[0];
    let mut wire = vec![0u8; frag_len];
    tb.nic
        .read(
            &mut tb.ctx,
            &mut tb.iommu,
            &tb.mem.phys,
            frag_iova,
            &mut wire,
        )
        .unwrap();
    assert_eq!(&wire, b"zero-copy payload bytes");

    // Completion surfaces the real callback; the CPU runs it benignly.
    let cbs = tb.complete_all_tx().unwrap();
    assert_eq!(cbs.len(), 1);
    assert_eq!(cbs[0].callback, cb_addr);
    let cpu = MiniCpu::new(&image, tb.mem.layout.text_base);
    let out = cpu
        .invoke_callback(&mut tb.ctx, &tb.mem, cbs[0].callback, cbs[0].arg)
        .unwrap();
    assert!(!out.escalated);
    assert_eq!(out.entry_symbol, Some("sock_zerocopy_callback"));
}

#[test]
fn attacker_can_retarget_a_live_zerocopy_ubuf() {
    // The ubuf_info is a kmalloc-32 object; if the attacker gets write
    // reach to its page (type (d) co-location with any mapped buffer),
    // retargeting `callback` turns the *legitimate* completion path into
    // the exploit trigger — no shared-info race needed at all.
    use dma_lab::dma_core::vuln::DmaDirection;
    use dma_lab::sim_iommu::dma_map_single;

    let (mut tb, image) = armed();
    let cb_addr = image
        .symbol_addr("sock_zerocopy_callback", tb.mem.layout.text_base)
        .unwrap();
    let user_buf = tb
        .mem
        .kmalloc(&mut tb.ctx, 4096, "pinned_user_pages")
        .unwrap();
    tb.stack
        .send_zerocopy(
            &mut tb.ctx,
            &mut tb.mem,
            &mut tb.iommu,
            &mut tb.driver,
            42,
            user_buf,
            64,
            cb_addr,
        )
        .unwrap();

    // The driver maps a small kmalloc-32 control element; it lands on
    // the same slab page as the live ubuf_info (kmalloc-32 too).
    let ctrl = tb.mem.kmalloc(&mut tb.ctx, 24, "nic_small_ctrl").unwrap();
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        ctrl,
        24,
        DmaDirection::Bidirectional,
        "m",
    )
    .unwrap();

    // Device-side: scan the mapped page for the known callback address,
    // then replace it with the JOP pivot.
    let page_iova = dma_lab::dma_core::Iova(m.iova.raw() & !0xfff);
    let leaks = tb
        .nic
        .scan_for_pointers(&mut tb.ctx, &mut tb.iommu, &tb.mem.phys, page_iova, 4096)
        .unwrap();
    let hit = leaks.iter().find(|l| l.value == cb_addr.raw());
    if let Some(hit) = hit {
        let jop = image
            .symbol_addr("jop_rsp_rdi", tb.mem.layout.text_base)
            .unwrap();
        tb.nic
            .write_u64(
                &mut tb.ctx,
                &mut tb.iommu,
                &mut tb.mem.phys,
                hit.iova,
                jop.raw(),
            )
            .unwrap();
        let cbs = tb.complete_all_tx().unwrap();
        assert_eq!(
            cbs[0].callback, jop,
            "completion now dispatches to the pivot"
        );
    } else {
        // Slab placement kept them apart this time — the attack simply
        // does not fire; nothing crashes.
        let cbs = tb.complete_all_tx().unwrap();
        assert_eq!(cbs[0].callback, cb_addr);
    }
}

#[test]
fn zerocopy_ubuf_is_the_template_the_forgeries_imitate() {
    // The forged ubuf_info the compound attacks plant is byte-compatible
    // with the real one: same offsets, same dispatch.
    use dma_lab::sim_net::shinfo::{UBUF_CALLBACK, UBUF_INFO_SIZE};
    assert_eq!(UBUF_CALLBACK, 0);
    assert_eq!(UBUF_INFO_SIZE, 24);
}
