//! End-to-end observability contract: `dma-lab stats --json` is
//! byte-deterministic per seed, covers every subsystem, and the span
//! timeline reflects real phase attribution.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn stats_json_is_byte_identical_per_seed() {
    let (c1, a) = run(&["stats", "--seed", "11", "--rounds", "60", "--json"]);
    let (c2, b) = run(&["stats", "--seed", "11", "--rounds", "60", "--json"]);
    assert_eq!((c1, c2), (0, 0));
    assert_eq!(a, b, "same seed must export byte-identical JSON");
    let (_, c) = run(&["stats", "--seed", "12", "--rounds", "60", "--json"]);
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn stats_json_spans_all_four_subsystems_with_enough_metrics() {
    let (code, out) = run(&["stats", "--rounds", "80", "--json"]);
    assert_eq!(code, 0);
    for prefix in ["sim_mem.", "sim_iommu.", "sim_net.", "dkasan."] {
        assert!(out.contains(prefix), "missing {prefix} metrics:\n{out}");
    }
    // ≥ 15 distinct metric names: count the dotted keys.
    let distinct: std::collections::BTreeSet<&str> = out
        .match_indices('"')
        .zip(out.match_indices('"').skip(1))
        .map(|((s, _), (e, _))| &out[s + 1..e])
        .filter(|k| k.contains('.') && k.chars().next().is_some_and(|c| c.is_ascii_lowercase()))
        .collect();
    assert!(
        distinct.len() >= 15,
        "only {} distinct metrics: {distinct:?}",
        distinct.len()
    );
    // The §5.2.1 stale-window histogram is present under deferred mode.
    assert!(out.contains("sim_iommu.stale_window.cycles"), "{out}");
}

#[test]
fn stats_text_renders_all_tables() {
    let (code, out) = run(&["stats", "--rounds", "40"]);
    assert_eq!(code, 0);
    for needle in ["counters:", "gauges:", "histograms:", "spans:", "packets"] {
        assert!(out.contains(needle), "missing {needle}:\n{out}");
    }
}

#[test]
fn stats_runs_under_fault_injection_deterministically() {
    let (c1, a) = run(&["stats", "--seed", "7", "--faults", "7", "--json"]);
    let (c2, b) = run(&["stats", "--seed", "7", "--faults", "7", "--json"]);
    assert_eq!((c1, c2), (0, 0));
    assert_eq!(a, b, "fault runs must replay byte-identically");
    assert!(
        a.contains("fault.injected"),
        "armed plan never counted:\n{a}"
    );
}

#[test]
fn trace_prints_span_timeline() {
    let (code, out) = run(&["trace", "--spans", "--rounds", "20"]);
    assert_eq!(code, 0);
    for span in ["rx.refill", "rx.poll", "tx.xmit"] {
        assert!(out.contains(span), "timeline missing {span}:\n{out}");
    }
    assert!(out.contains("cycles"), "{out}");
}

#[test]
fn trace_json_lists_span_records() {
    let (code, out) = run(&["trace", "--rounds", "10", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"spans\":["));
    assert!(out.contains("\"name\":\"rx.poll\""));
    assert!(out.contains("\"depth\":"));
}

#[test]
fn json_flag_works_on_existing_subcommands() {
    let (code, out) = run(&["spade", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"table2\":"), "{out}");
    assert!(out.contains("\"vulnerable_calls\":"), "{out}");

    let (code, out) = run(&["dkasan", "--rounds", "40", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"findings\":["), "{out}");
    assert!(out.contains("\"alloc-after-map\":"), "{out}");

    let (code, out) = run(&["chaos", "--runs", "1", "--json"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"leaked_pages\":0"), "{out}");
    assert!(out.contains("\"stats\":{"), "{out}");
}
