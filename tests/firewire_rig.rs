//! The §6 test rig: "we used a FireWire device ... We created an IOVA
//! page table that is shared between the FireWire and the actual NIC.
//! Because the attacker machine can access the same pages as the NIC,
//! this allowed us to execute an attack using a programmable interface,
//! emulating a malicious NIC."
//!
//! The FireWire controller (a separate DeviceId, driven over the
//! simulated SBP-2-style interface) joins the NIC's translation domain
//! and performs the actual attack DMA.

use dma_lab::devsim::{MaliciousNic, Testbed, TestbedConfig};
use dma_lab::dma_core::vuln::DmaDirection;
use dma_lab::dma_core::Iova;
use dma_lab::sim_iommu::dma_map_single;
use dma_lab::sim_net::shinfo::SHINFO_DESTRUCTOR_ARG;

const FIREWIRE: u32 = 0x1394;

#[test]
fn firewire_joins_the_nic_domain_and_sees_its_pages() {
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    tb.iommu.attach_device_shared(FIREWIRE, tb.nic.id).unwrap();
    assert!(tb.iommu.same_domain(FIREWIRE, tb.nic.id));

    // Everything the NIC driver posted is reachable from the FireWire
    // controller through the shared page table.
    let fw = MaliciousNic::new(FIREWIRE);
    let (iova, _) = tb.driver.rx_descriptors()[0];
    fw.write(
        &mut tb.ctx,
        &mut tb.iommu,
        &mut tb.mem.phys,
        iova,
        b"from firewire",
    )
    .unwrap();
    let kva = tb.driver.posted_slots().next().unwrap().mapping.kva;
    let mut b = [0u8; 13];
    tb.mem.cpu_read(&mut tb.ctx, kva, &mut b, "t").unwrap();
    assert_eq!(&b, b"from firewire");
}

#[test]
fn firewire_can_run_the_shinfo_overwrite() {
    // The attack write of Figure 4, issued by the FireWire controller
    // against a buffer the *NIC* driver mapped.
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    tb.iommu.attach_device_shared(FIREWIRE, tb.nic.id).unwrap();
    let fw = MaliciousNic::new(FIREWIRE);

    let (iova, buf_size) = tb.driver.rx_descriptors()[0];
    fw.overwrite_destructor_arg(
        &mut tb.ctx,
        &mut tb.iommu,
        &mut tb.mem.phys,
        Iova(iova.raw() + buf_size as u64),
        0xffff_8880_0bad_0000,
    )
    .unwrap();
    let slot_kva = tb.driver.posted_slots().next().unwrap().mapping.kva;
    let got = tb
        .mem
        .cpu_read_u64(
            &mut tb.ctx,
            dma_lab::dma_core::Kva(slot_kva.raw() + buf_size as u64 + SHINFO_DESTRUCTOR_ARG as u64),
            "t",
        )
        .unwrap();
    assert_eq!(got, 0xffff_8880_0bad_0000);
}

#[test]
fn unshared_devices_stay_isolated() {
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    // A second device with its own domain sees nothing of the NIC's.
    tb.iommu.attach_device(0x5555);
    assert!(!tb.iommu.same_domain(0x5555, tb.nic.id));
    let stranger = MaliciousNic::new(0x5555);
    let (iova, _) = tb.driver.rx_descriptors()[0];
    assert!(stranger
        .write(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, iova, b"nope")
        .is_err());
}

#[test]
fn domain_wide_invalidation_covers_all_sharers() {
    // Strict unmap by the NIC driver must also kill the FireWire
    // controller's cached translation.
    use dma_lab::sim_iommu::{dma_unmap_single, InvalidationMode, IommuConfig};
    let mut tb = Testbed::new(TestbedConfig {
        iommu: IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    tb.iommu.attach_device_shared(FIREWIRE, tb.nic.id).unwrap();
    let fw = MaliciousNic::new(FIREWIRE);

    let buf = tb.mem.kmalloc(&mut tb.ctx, 512, "io").unwrap();
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        buf,
        512,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    // FireWire warms its IOTLB entry.
    fw.write(
        &mut tb.ctx,
        &mut tb.iommu,
        &mut tb.mem.phys,
        m.iova,
        b"warm",
    )
    .unwrap();
    dma_unmap_single(&mut tb.ctx, &mut tb.iommu, &m).unwrap();
    assert!(
        fw.write(
            &mut tb.ctx,
            &mut tb.iommu,
            &mut tb.mem.phys,
            m.iova,
            b"late"
        )
        .is_err(),
        "strict invalidation must cover every device in the domain"
    );
}
