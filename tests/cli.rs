//! End-to-end CLI tests: every subcommand runs, exits zero, and prints
//! the paper-shaped output it promises.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn help_lists_all_subcommands() {
    let (code, out) = run(&["help"]);
    assert_eq!(code, 0);
    for cmd in [
        "layout",
        "spade",
        "dkasan",
        "survey",
        "attack",
        "surveil",
        "dos",
        "dump",
        "chaos",
        "stats",
        "trace",
        "fuzz",
        "forensics",
    ] {
        assert!(out.contains(cmd), "help missing {cmd}:\n{out}");
    }
    assert!(out.contains("EXIT CODES"), "help documents exit codes");
}

#[test]
fn no_args_prints_help_and_exits_zero() {
    let (code, out) = run(&[]);
    assert_eq!(code, 0);
    assert!(out.contains("USAGE"));
}

#[test]
fn unknown_command_exits_two_with_help_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command 'frobnicate'"), "{err}");
    assert!(err.contains("USAGE"), "help goes to stderr: {err}");
    assert!(out.stdout.is_empty(), "nothing on stdout for usage errors");
}

#[test]
fn layout_prints_table1() {
    let (code, out) = run(&["layout"]);
    assert_eq!(code, 0);
    assert!(out.contains("direct map of phys memory"));
    assert!(out.contains("ffff888000000000"));
    assert!(out.contains("KASLR sample"));
}

#[test]
fn spade_prints_table2() {
    let (code, out) = run(&["spade"]);
    assert_eq!(code, 0);
    assert!(out.contains("skb_shared_info mapped"));
    assert!(out.contains("Total dma-map calls"));
    assert!(out.contains("72.8%"), "paper reference figure shown");
}

#[test]
fn spade_filter_prints_figure2_trace() {
    let (code, out) = run(&["spade", "--filter", "nvme"]);
    assert_eq!(code, 0);
    assert!(out.contains("EXPOSED: 1 callback pointer"));
    assert!(out.contains("SPOOFABLE"));
}

#[test]
fn dkasan_prints_figure3_lines() {
    let (code, out) = run(&["dkasan", "--rounds", "60"]);
    assert_eq!(code, 0);
    assert!(out.contains("[1] size "));
    assert!(out.contains("alloc-after-map"));
}

#[test]
fn survey_reports_fractions() {
    let (code, out) = run(&["survey", "--boots", "24"]);
    assert_eq!(code, 0);
    assert!(out.contains("top PFN"));
    assert!(out.contains("% of boots"));
}

#[test]
fn attacks_escalate_and_exit_zero() {
    for which in ["poisoned-tx", "forward-thinking", "single-step"] {
        let (code, out) = run(&["attack", which, "--seed", "5"]);
        assert_eq!(code, 0, "{which} failed:\n{out}");
        assert!(out.contains("CodeExecution"), "{which}:\n{out}");
    }
}

#[test]
fn ringflood_attack_via_cli() {
    // RingFlood's success depends on the PFN guess; accept either verdict
    // but demand a well-formed report.
    let (_code, out) = run(&["attack", "ringflood", "--seed", "1001", "--window", "iii"]);
    assert!(out.contains("guessed PFN"));
    assert!(out.contains("outcome:"));
}

#[test]
fn dos_panics_the_allocator() {
    let (code, out) = run(&["dos"]);
    assert_eq!(code, 0);
    assert!(out.contains("kernel panicked: true"));
}

#[test]
fn dump_reads_frames() {
    let (code, out) = run(&["dump", "--frames", "2"]);
    assert_eq!(code, 0);
    assert!(out.contains("dumped 2 frame(s)"));
}

#[test]
fn unknown_attack_exits_nonzero() {
    let (code, _) = run(&["attack", "nonsense"]);
    assert_eq!(code, 2);
}

#[test]
fn fuzz_finds_the_planted_callback_exposure() {
    // The pinned smoke campaign (also run by CI): seed 7, 24 iterations
    // is enough to hit the seeded destructor_arg exposure.
    let (code, out) = run(&["fuzz", "--seed", "7", "--iters", "24"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("coverage bits"), "{out}");
    assert!(
        out.contains("skb_shared_info.destructor_arg"),
        "planted callback exposure not rediscovered:\n{out}"
    );
    assert!(out.contains("dkasan"), "oracle findings missing:\n{out}");
}

#[test]
fn fuzz_json_has_the_documented_schema() {
    let (code, out) = run(&["fuzz", "--seed", "7", "--iters", "12", "--json"]);
    assert_eq!(code, 0);
    for key in [
        "\"seed\":7",
        "\"iters\":12",
        "\"execs\":12",
        "\"coverage_bits\":",
        "\"corpus\":[",
        "\"findings\":[",
        "\"series\":",
        "\"stats\":",
        "\"signature\":",
        "\"program\":[",
        "\"taxonomy\":",
        "\"fuzz.execs\"",
    ] {
        assert!(out.contains(key), "missing {key} in:\n{out}");
    }
}

#[test]
fn fuzz_usage_errors_exit_two() {
    for args in [
        &["fuzz", "--iters", "0"][..],
        &["fuzz", "--iters", "banana"][..],
        &["fuzz", "--seed", "0x7"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(out.stdout.is_empty(), "usage errors keep stdout clean");
    }
}

#[test]
fn forensics_renders_incident_timelines() {
    let (code, out) = run(&["forensics", "--seed", "7", "--iters", "24"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("incident [1]"), "{out}");
    assert!(out.contains("taxonomy:"), "{out}");
    assert!(out.contains("window:"), "{out}");
    assert!(out.contains("timeline:"), "{out}");
    assert!(out.contains("skb_shared_info.destructor_arg"), "{out}");
}

#[test]
fn forensics_usage_errors_exit_two() {
    for args in [
        &["forensics", "--iters", "0"][..],
        &["forensics", "--seed", "banana"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(out.stdout.is_empty(), "usage errors keep stdout clean");
    }
}

#[test]
fn trace_chrome_writes_a_trace_event_file() {
    let path = std::env::temp_dir().join(format!("dma-lab-chrome-{}.json", std::process::id()));
    let (code, out) = run(&[
        "trace",
        "--rounds",
        "40",
        "--chrome",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("ui.perfetto.dev"), "{out}");
    let body = std::fs::read_to_string(&path).expect("trace file written");
    assert!(body.contains("\"traceEvents\":["), "{body:.200}");
    assert!(body.contains("\"displayTimeUnit\""), "{body:.200}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn fuzz_writes_a_corpus_dir() {
    let dir = std::env::temp_dir().join(format!("dma-lab-corpus-{}", std::process::id()));
    let (code, _) = run(&[
        "fuzz",
        "--seed",
        "7",
        "--iters",
        "8",
        "--corpus-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir created")
        .flatten()
        .collect();
    assert!(!entries.is_empty(), "no corpus files written");
    for e in &entries {
        let name = e.file_name().to_string_lossy().into_owned();
        assert!(
            name.starts_with("entry-") && name.ends_with(".json"),
            "{name}"
        );
        let body = std::fs::read_to_string(e.path()).unwrap();
        assert!(body.contains("\"program\""), "{name} lacks a program");
    }
    std::fs::remove_dir_all(&dir).ok();
}
