//! End-to-end CLI tests: every subcommand runs, exits zero, and prints
//! the paper-shaped output it promises.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn help_lists_all_subcommands() {
    let (code, out) = run(&["help"]);
    assert_eq!(code, 0);
    for cmd in [
        "layout",
        "spade",
        "dkasan",
        "survey",
        "attack",
        "surveil",
        "dos",
        "dump",
        "chaos",
        "stats",
        "trace",
        "fuzz",
        "infer",
        "forensics",
        "serve",
        "profile",
        "bench",
    ] {
        assert!(out.contains(cmd), "help missing {cmd}:\n{out}");
    }
    assert!(out.contains("EXIT CODES"), "help documents exit codes");
}

#[test]
fn no_args_prints_help_and_exits_zero() {
    let (code, out) = run(&[]);
    assert_eq!(code, 0);
    assert!(out.contains("USAGE"));
}

#[test]
fn unknown_command_exits_two_with_help_on_stderr() {
    let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command 'frobnicate'"), "{err}");
    assert!(err.contains("USAGE"), "help goes to stderr: {err}");
    assert!(out.stdout.is_empty(), "nothing on stdout for usage errors");
}

#[test]
fn layout_prints_table1() {
    let (code, out) = run(&["layout"]);
    assert_eq!(code, 0);
    assert!(out.contains("direct map of phys memory"));
    assert!(out.contains("ffff888000000000"));
    assert!(out.contains("KASLR sample"));
}

#[test]
fn spade_prints_table2() {
    let (code, out) = run(&["spade"]);
    assert_eq!(code, 0);
    assert!(out.contains("skb_shared_info mapped"));
    assert!(out.contains("Total dma-map calls"));
    assert!(out.contains("72.8%"), "paper reference figure shown");
}

#[test]
fn spade_filter_prints_figure2_trace() {
    let (code, out) = run(&["spade", "--filter", "nvme"]);
    assert_eq!(code, 0);
    assert!(out.contains("EXPOSED: 1 callback pointer"));
    assert!(out.contains("SPOOFABLE"));
}

#[test]
fn dkasan_prints_figure3_lines() {
    let (code, out) = run(&["dkasan", "--rounds", "60"]);
    assert_eq!(code, 0);
    assert!(out.contains("[1] size "));
    assert!(out.contains("alloc-after-map"));
}

#[test]
fn survey_reports_fractions() {
    let (code, out) = run(&["survey", "--boots", "24"]);
    assert_eq!(code, 0);
    assert!(out.contains("top PFN"));
    assert!(out.contains("% of boots"));
}

#[test]
fn attacks_escalate_and_exit_zero() {
    for which in ["poisoned-tx", "forward-thinking", "single-step"] {
        let (code, out) = run(&["attack", which, "--seed", "5"]);
        assert_eq!(code, 0, "{which} failed:\n{out}");
        assert!(out.contains("CodeExecution"), "{which}:\n{out}");
    }
}

#[test]
fn ringflood_attack_via_cli() {
    // RingFlood's success depends on the PFN guess; accept either verdict
    // but demand a well-formed report.
    let (_code, out) = run(&["attack", "ringflood", "--seed", "1001", "--window", "iii"]);
    assert!(out.contains("guessed PFN"));
    assert!(out.contains("outcome:"));
}

#[test]
fn dos_panics_the_allocator() {
    let (code, out) = run(&["dos"]);
    assert_eq!(code, 0);
    assert!(out.contains("kernel panicked: true"));
}

#[test]
fn dump_reads_frames() {
    let (code, out) = run(&["dump", "--frames", "2"]);
    assert_eq!(code, 0);
    assert!(out.contains("dumped 2 frame(s)"));
}

#[test]
fn unknown_attack_exits_nonzero() {
    let (code, _) = run(&["attack", "nonsense"]);
    assert_eq!(code, 2);
}

#[test]
fn fuzz_finds_the_planted_callback_exposure() {
    // The pinned smoke campaign (also run by CI): seed 7, 24 iterations
    // is enough to hit the seeded destructor_arg exposure.
    let (code, out) = run(&["fuzz", "--seed", "7", "--iters", "24"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("coverage bits"), "{out}");
    assert!(
        out.contains("skb_shared_info.destructor_arg"),
        "planted callback exposure not rediscovered:\n{out}"
    );
    assert!(out.contains("dkasan"), "oracle findings missing:\n{out}");
}

#[test]
fn fuzz_json_has_the_documented_schema() {
    let (code, out) = run(&["fuzz", "--seed", "7", "--iters", "12", "--json"]);
    assert_eq!(code, 0);
    for key in [
        "\"seed\":7",
        "\"iters\":12",
        "\"execs\":12",
        "\"coverage_bits\":",
        "\"corpus\":[",
        "\"findings\":[",
        "\"series\":",
        "\"stats\":",
        "\"signature\":",
        "\"program\":[",
        "\"taxonomy\":",
        "\"fuzz.execs\"",
    ] {
        assert!(out.contains(key), "missing {key} in:\n{out}");
    }
}

#[test]
fn fuzz_usage_errors_exit_two() {
    for args in [
        &["fuzz", "--iters", "0"][..],
        &["fuzz", "--iters", "banana"][..],
        &["fuzz", "--seed", "0x7"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(out.stdout.is_empty(), "usage errors keep stdout clean");
    }
}

#[test]
fn fuzz_config_pins_every_exec_to_one_machine_shape() {
    // By id and by name resolve to the same machine, and the pinned
    // campaign's coverage proves only that shape ran: the config facet
    // carries exactly one machine name.
    let (code, by_id) = run(&[
        "fuzz", "--seed", "7", "--iters", "12", "--config", "5", "--json",
    ]);
    assert_eq!(code, 0, "{by_id}");
    let (code, by_name) = run(&[
        "fuzz",
        "--seed",
        "7",
        "--iters",
        "12",
        "--config",
        "virtio-split-deferred",
        "--json",
    ]);
    assert_eq!(code, 0);
    assert_eq!(by_id, by_name, "id and name must select the same machine");
    assert!(
        by_id.contains("\"config\":\"virtio-split-deferred\""),
        "{by_id}"
    );
    for other in ["pagefrag", "i40e", "nvme-qpair", "pageperbuffer"] {
        assert!(!by_id.contains(other), "foreign shape leaked in:\n{by_id}");
    }
    // Sharded engine honors the restriction identically.
    let (code, sharded) = run(&[
        "fuzz", "--seed", "7", "--iters", "12", "--config", "5", "--shards", "1", "--json",
    ]);
    assert_eq!(code, 0);
    assert_eq!(sharded, by_id, "1-shard output matches the legacy path");
}

#[test]
fn infer_prints_one_deterministic_channel_map_per_config() {
    let (code, all) = run(&["infer", "--seed", "7"]);
    assert_eq!(code, 0, "{all}");
    assert_eq!(
        all.lines().count(),
        9,
        "one line per machine config:\n{all}"
    );
    for line in all.lines() {
        assert!(
            line.starts_with("{\"schema\":\"dma-infer.channel-map.v1\""),
            "{line}"
        );
    }
    let (code, one) = run(&["infer", "--seed", "7", "--config", "nvme-qpair-deferred"]);
    assert_eq!(code, 0);
    assert_eq!(one.lines().count(), 1);
    assert!(one.contains("nvme_sq_map"), "{one}");
    let (_, again) = run(&["infer", "--seed", "7", "--config", "nvme-qpair-deferred"]);
    assert_eq!(one, again, "inference must be byte-deterministic");
}

#[test]
fn forensics_renders_incident_timelines() {
    let (code, out) = run(&["forensics", "--seed", "7", "--iters", "24"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("incident [1]"), "{out}");
    assert!(out.contains("taxonomy:"), "{out}");
    assert!(out.contains("window:"), "{out}");
    assert!(out.contains("timeline:"), "{out}");
    assert!(out.contains("skb_shared_info.destructor_arg"), "{out}");
}

#[test]
fn forensics_usage_errors_exit_two() {
    for args in [
        &["forensics", "--iters", "0"][..],
        &["forensics", "--seed", "banana"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(out.stdout.is_empty(), "usage errors keep stdout clean");
    }
}

#[test]
fn trace_chrome_writes_a_trace_event_file() {
    let path = std::env::temp_dir().join(format!("dma-lab-chrome-{}.json", std::process::id()));
    let (code, out) = run(&[
        "trace",
        "--rounds",
        "40",
        "--chrome",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("ui.perfetto.dev"), "{out}");
    let body = std::fs::read_to_string(&path).expect("trace file written");
    assert!(body.contains("\"traceEvents\":["), "{body:.200}");
    assert!(body.contains("\"displayTimeUnit\""), "{body:.200}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn fuzz_resume_roundtrip_is_byte_identical_to_uninterrupted() {
    // The CLI half of the kill-and-resume contract: a campaign
    // truncated at iteration 6 (the "kill"), resumed from its
    // checkpoint directory, must print the exact bytes an
    // uninterrupted 12-iteration run prints.
    let dir = std::env::temp_dir().join(format!("dma-lab-cli-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (code, _) = run(&[
        "fuzz",
        "--seed",
        "7",
        "--iters",
        "6",
        "--checkpoint-every",
        "3",
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, 0);
    let (code, resumed) = run(&[
        "fuzz",
        "--iters",
        "12",
        "--resume",
        dir.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(code, 0);
    let (code, uninterrupted) = run(&["fuzz", "--seed", "7", "--iters", "12", "--json"]);
    assert_eq!(code, 0);
    assert_eq!(
        resumed, uninterrupted,
        "resumed --json output diverged from the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_plant_panic_quarantines_via_the_cli() {
    let dir = std::env::temp_dir().join(format!("dma-lab-cli-plant-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let result = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .args([
            "fuzz",
            "--seed",
            "7",
            "--iters",
            "6",
            "--plant-panic",
            "2",
            "--corpus-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let (code, out) = (
        result.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&result.stdout).into_owned(),
    );
    assert_eq!(code, 0, "planted panic must not abort the campaign");
    let err = String::from_utf8_lossy(&result.stderr);
    assert!(
        !err.contains("panicked at"),
        "contained panic leaked hook output to stderr:\n{err}"
    );
    assert!(out.contains("quarantined"), "{out}");
    assert!(out.contains("dq-"), "stable quarantine id missing:\n{out}");
    let quarantined: Vec<_> = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir created")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        quarantined
            .iter()
            .any(|n| n.starts_with("dq-") && n.ends_with(".json")),
        "{quarantined:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hardened_arg_parsing_rejects_malformed_numbers_everywhere() {
    for args in [
        // u64::MAX + 1 overflows --seed
        &["fuzz", "--seed", "18446744073709551616"][..],
        &["fuzz", "--watchdog-budget", "0"][..],
        &["fuzz", "--checkpoint-every", "junk"][..],
        &["fuzz", "--iters", "4", "--checkpoint-every", "2"][..], // no dir
        &["fuzz", "--resume", "/nonexistent/checkpoints"][..],
        &["stats", "--rounds", "junk"][..],
        &["trace", "--spans", "--seed", ""][..],
        &["dkasan", "--rounds", "1e3"][..],
        &["survey", "--boots", "-4"][..],
        &["dump", "--frames", "two"][..],
        &["serve", "--iters", "0"][..],
        &["serve", "--port", "70000"][..],
        &["serve", "--checkpoint-every", "2"][..], // no dir
        &["stats", "--diff"][..],                  // no dump paths
        // The machine matrix has NUM_CONFIGS entries; anything outside
        // it must be a usage error, never a modulo-wrapped alias.
        &["fuzz", "--config", "9"][..],
        &["fuzz", "--config", "255"][..],
        &["fuzz", "--config", "no-such-machine"][..],
        &["fuzz", "--config", ""][..],
        &["fuzz", "--config", "-1"][..],
        &["infer", "--config", "9"][..],
        &["infer", "--config", "banana"][..],
        &["infer", "--seed", "junk"][..],
        &["profile", "--iters", "0"][..],
        &["profile", "--iters", "banana"][..],
        &["profile", "--seed", "0x7"][..],
        &["profile", "--shards", "0"][..],
        &["profile", "--shards", "257"][..],
        &["profile", "--config", "9"][..],
        &["profile", "--config", "no-such-machine"][..],
        &["profile", "--folded", ""][..],
        &["bench"][..],            // --check is mandatory
        &["bench", "--check"][..], // ... with at least one file
        &["bench", "--check", "/nonexistent/BENCH_x.json"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            out.stdout.is_empty(),
            "usage errors keep stdout clean: {args:?}"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("USAGE"), "help on stderr for {args:?}: {err}");
    }
}

#[test]
fn profile_prints_the_call_tree_and_writes_folded_stacks() {
    let path = std::env::temp_dir().join(format!("dma-lab-folded-{}.txt", std::process::id()));
    let (code, out) = run(&[
        "profile",
        "--seed",
        "7",
        "--iters",
        "12",
        "--folded",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("hottest frames"), "{out}");
    assert!(out.contains("exec.deliver"), "{out}");
    assert!(out.contains("iommu."), "IOMMU frames missing:\n{out}");
    let folded = std::fs::read_to_string(&path).expect("folded file written");
    for line in folded.lines() {
        let (stack, cycles) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty(), "{line}");
        cycles.parse::<u64>().expect("folded weight is a number");
    }
    assert!(
        folded.lines().any(|l| l.contains(";iommu.")),
        "no nested IOMMU frame in:\n{folded}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn profile_json_is_valid_speedscope() {
    let (code, out) = run(&["profile", "--seed", "7", "--iters", "8", "--json"]);
    assert_eq!(code, 0);
    for key in [
        "\"$schema\":\"https://www.speedscope.app/file-format-schema.json\"",
        "\"frames\":[",
        "\"type\":\"sampled\"",
        "\"unit\":\"none\"",
    ] {
        assert!(out.contains(key), "missing {key} in:\n{out}");
    }
}

#[test]
fn bench_check_passes_the_committed_zoo_trajectory() {
    // BENCH_zoo.json's deterministic half re-derives in seconds (three
    // traced boots); the heavier fuzz/scale/profile gates run in CI's
    // release job.
    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let (code, out) = run(&[
        "bench",
        "--check",
        repo.join("BENCH_zoo.json").to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("trace_events: committed"), "{out}");
    assert!(!out.contains("REGRESSED"), "{out}");
}

#[test]
fn bench_check_fails_on_a_planted_regression_and_malformed_files() {
    let dir = std::env::temp_dir().join(format!("dma-lab-cli-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A zoo trajectory whose committed channel count is wrong: the
    // re-run disagrees, so the gate must exit 1 and say REGRESSED.
    let planted = dir.join("BENCH_planted.json");
    std::fs::write(
        &planted,
        "{\"report\":\"zoo\",\"deterministic\":{\"seed\":7,\"devices\":[\
         {\"device\":\"nic\",\"config\":\"pagefrag-deferred\",\"channels\":99}]}}",
    )
    .unwrap();
    let result = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .args(["bench", "--check", planted.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(result.status.code(), Some(1), "planted regression passes?");
    let out = String::from_utf8_lossy(&result.stdout);
    assert!(out.contains("REGRESSED"), "{out}");

    // Structurally invalid files are run errors (1), not regressions.
    let malformed = dir.join("BENCH_malformed.json");
    std::fs::write(&malformed, "{\"report\":\"zoo\"}").unwrap();
    let result = Command::new(env!("CARGO_BIN_EXE_dma-lab"))
        .args(["bench", "--check", malformed.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(result.status.code(), Some(1));
    let err = String::from_utf8_lossy(&result.stderr);
    assert!(err.contains("deterministic"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_scripted_sessions_are_byte_identical_across_runs() {
    let dir = std::env::temp_dir().join(format!("dma-lab-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("session.jsonl");
    std::fs::write(
        &script,
        "{\"req\":\"hello\"}\n{\"req\":\"step\",\"n\":32}\n{\"req\":\"stats\"}\n\
         {\"req\":\"posture\"}\n{\"req\":\"shutdown\"}\n",
    )
    .unwrap();

    let session = || {
        let (code, out) = run(&["serve", "--seed", "7", "--script", script.to_str().unwrap()]);
        assert_eq!(code, 0);
        out
    };
    let a = session();
    let b = session();
    assert_eq!(
        a, b,
        "two seeded scripted sessions must match byte-for-byte"
    );
    assert!(a.contains("\"frame\":\"hello\""), "{a}");
    assert!(a.contains("\"frame\":\"finding\""), "{a}");
    assert!(a.contains("\"frame\":\"posture\""), "{a}");
    assert!(a.contains("stale-translation-window"), "{a}");
    assert!(a.contains("\"frame\":\"bye\""), "{a}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_diff_exits_one_only_on_counter_regressions() {
    let dir = std::env::temp_dir().join(format!("dma-lab-cli-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    let dump = |rounds: &str, path: &std::path::Path| {
        let (code, out) = run(&["stats", "--json", "--seed", "7", "--rounds", rounds]);
        assert_eq!(code, 0);
        std::fs::write(path, out).unwrap();
    };
    dump("40", &old);
    dump("80", &new);

    // Forward diff: counters only grew, exit 0 and report deltas.
    let (code, out) = run(&[
        "stats",
        "--diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("delta") || out.contains("+"), "{out}");
    assert!(!out.contains("REGRESSED"), "{out}");

    // Reversed: every counter drops, exit 1 and name the regression.
    let (code, out) = run(&[
        "stats",
        "--diff",
        new.to_str().unwrap(),
        old.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("REGRESSED"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_output_exposes_trace_dropped() {
    let (code, out) = run(&["stats", "--json", "--rounds", "30"]);
    assert_eq!(code, 0);
    assert!(out.contains("\"trace.dropped\""), "{out}");
}

#[test]
fn fuzz_writes_a_corpus_dir() {
    let dir = std::env::temp_dir().join(format!("dma-lab-corpus-{}", std::process::id()));
    let (code, _) = run(&[
        "fuzz",
        "--seed",
        "7",
        "--iters",
        "8",
        "--corpus-dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir created")
        .flatten()
        .collect();
    assert!(!entries.is_empty(), "no corpus files written");
    for e in &entries {
        let name = e.file_name().to_string_lossy().into_owned();
        assert!(
            name.starts_with("entry-") && name.ends_with(".json"),
            "{name}"
        );
        let body = std::fs::read_to_string(e.path()).unwrap();
        assert!(body.contains("\"program\""), "{name} lacks a program");
    }
    std::fs::remove_dir_all(&dir).ok();
}
