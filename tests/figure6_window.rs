//! Figure 6: strict vs deferred IOTLB invalidation — measures the
//! actual width of the stale-translation window and the per-unmap cost
//! asymmetry that motivates deferred mode (§5.2.1).

use dma_lab::devsim::{Testbed, TestbedConfig};
use dma_lab::dma_core::clock::{DEFERRED_FLUSH_PERIOD, IOTLB_INV_CYCLES};
use dma_lab::dma_core::vuln::DmaDirection;
use dma_lab::sim_iommu::{dma_map_single, dma_unmap_single, InvalidationMode, IommuConfig};

fn tb(mode: InvalidationMode) -> Testbed {
    Testbed::new(TestbedConfig {
        iommu: IommuConfig {
            mode,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn deferred_window_is_wide_then_slams_shut() {
    let mut tb = tb(InvalidationMode::Deferred);
    let buf = tb.mem.kmalloc(&mut tb.ctx, 2048, "io").unwrap();
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        buf,
        2048,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    // Device uses the mapping (fills the IOTLB), driver unmaps.
    tb.nic
        .write(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, m.iova, b"io")
        .unwrap();
    let unmap_time = tb.ctx.clock.now();
    dma_unmap_single(&mut tb.ctx, &mut tb.iommu, &m).unwrap();

    // Probe the window: the device keeps writing as time passes.
    let mut last_ok = 0;
    loop {
        let r = tb
            .nic
            .write(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, m.iova, b"!");
        if r.is_err() {
            break;
        }
        last_ok = tb.ctx.clock.now();
        tb.ctx.clock.advance_us(100);
    }
    let width = last_ok - unmap_time;
    // The window is macroscopic — on the order of the flush period
    // ("may be as high as 10 milliseconds"), not microseconds.
    assert!(
        width > DEFERRED_FLUSH_PERIOD / 2,
        "window only {width} cycles"
    );
    assert!(tb.iommu.stats.stale_hits > 10);
}

#[test]
fn strict_window_is_zero() {
    let mut tb = tb(InvalidationMode::Strict);
    let buf = tb.mem.kmalloc(&mut tb.ctx, 2048, "io").unwrap();
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        buf,
        2048,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    tb.nic
        .write(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, m.iova, b"io")
        .unwrap();
    dma_unmap_single(&mut tb.ctx, &mut tb.iommu, &m).unwrap();
    assert!(tb
        .nic
        .write(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, m.iova, b"!")
        .is_err());
    assert_eq!(tb.iommu.stats.stale_hits, 0);
}

#[test]
fn strict_mode_pays_per_unmap_deferred_amortizes() {
    // The performance asymmetry that makes deferred the Linux default:
    // strict pays ~2000 cycles on every unmap; deferred pays one global
    // flush per period regardless of unmap rate.
    let n = 200;
    let run = |mode| -> (u64, u64) {
        let mut tb = tb(mode);
        let mut cycles_unmapping = 0;
        for _ in 0..n {
            let buf = tb.mem.kmalloc(&mut tb.ctx, 2048, "io").unwrap();
            let m = dma_map_single(
                &mut tb.ctx,
                &mut tb.iommu,
                &tb.mem.layout,
                tb.nic.id,
                buf,
                2048,
                DmaDirection::FromDevice,
                "m",
            )
            .unwrap();
            tb.nic
                .write(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, m.iova, b"x")
                .unwrap();
            let before = tb.ctx.clock.now();
            dma_unmap_single(&mut tb.ctx, &mut tb.iommu, &m).unwrap();
            cycles_unmapping += tb.ctx.clock.now() - before;
            tb.mem.kfree(&mut tb.ctx, buf).unwrap();
        }
        (cycles_unmapping, tb.iommu.stats.invalidation_cycles)
    };
    let (strict_unmap, strict_inv) = run(InvalidationMode::Strict);
    let (deferred_unmap, deferred_inv) = run(InvalidationMode::Deferred);
    assert_eq!(strict_unmap, n * IOTLB_INV_CYCLES);
    assert_eq!(deferred_unmap, 0);
    assert!(
        strict_inv > 10 * deferred_inv.max(1),
        "strict {strict_inv} vs deferred {deferred_inv} invalidation cycles"
    );
}

#[test]
fn deferred_mode_frees_iovas_only_at_flush() {
    // IOVA reuse while a stale translation exists would be catastrophic;
    // the deferred queue must hold the range until the flush.
    let mut tb = tb(InvalidationMode::Deferred);
    let buf = tb.mem.kmalloc(&mut tb.ctx, 2048, "io").unwrap();
    let m = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        buf,
        2048,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    dma_unmap_single(&mut tb.ctx, &mut tb.iommu, &m).unwrap();
    // A new mapping right away must not reuse the stale IOVA.
    let buf2 = tb.mem.kmalloc(&mut tb.ctx, 2048, "io2").unwrap();
    let m2 = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        buf2,
        2048,
        DmaDirection::FromDevice,
        "m2",
    )
    .unwrap();
    assert_ne!(m.iova.page_align_down(), m2.iova.page_align_down());
    // After the flush, the range may circulate again.
    tb.advance_ms(11);
    let buf3 = tb.mem.kmalloc(&mut tb.ctx, 2048, "io3").unwrap();
    let _m3 = dma_map_single(
        &mut tb.ctx,
        &mut tb.iommu,
        &tb.mem.layout,
        tb.nic.id,
        buf3,
        2048,
        DmaDirection::FromDevice,
        "m3",
    )
    .unwrap();
}
