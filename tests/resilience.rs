//! Crash-safety model (DESIGN.md §11), end to end: kill-and-resume
//! byte-identity, panic/hang quarantine with two-integer replay, and
//! the A/B checkpoint store falling back past every corruption shape
//! the model promises to survive (torn write, bit flip, version skew).

use dma_lab::dma_core::checkpoint::SLOT_FILES;
use dma_lab::fuzz::{
    crash_id, kill_and_resume, replay_with_budget, Campaign, CampaignConfig, CrashKind, ExecStatus,
    FuzzInput, MutationOp, PLANT_HANG_BIT, PLANT_PANIC_BIT,
};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dma-lab-resilience-{}-{name}", std::process::id()))
}

/// Path of the slot holding the highest-sequence generation.
fn newest_slot(dir: &Path) -> PathBuf {
    SLOT_FILES
        .iter()
        .map(|f| dir.join(f))
        .filter(|p| p.exists())
        .max_by_key(|p| {
            let body = std::fs::read_to_string(p).unwrap();
            let tail = &body[body.find("\"sequence\":").unwrap() + 11..];
            let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse::<u64>().unwrap()
        })
        .expect("no checkpoint generation on disk")
}

/// A campaign that has written three generations (iters 2, 4, 6 with a
/// cadence of 2), killed at iteration 7.
fn killed_campaign(dir: &Path) -> CampaignConfig {
    let _ = std::fs::remove_dir_all(dir);
    let mut cfg = CampaignConfig::new(7, 10);
    cfg.checkpoint_dir = Some(dir.to_path_buf());
    cfg.checkpoint_every = 2;
    let mut doomed = Campaign::new(cfg.clone()).unwrap();
    doomed.run_until(7).unwrap();
    drop(doomed); // simulated SIGKILL
    cfg
}

fn uninterrupted_json(seed: u64, iters: u64) -> String {
    Campaign::run(CampaignConfig::new(seed, iters))
        .unwrap()
        .to_json()
}

#[test]
fn kill_and_resume_is_byte_identical() {
    let dir = tmp("kill-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = CampaignConfig::new(7, 12);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 3;
    let out = kill_and_resume(&cfg, 8).unwrap();
    assert_eq!(out.resumed_from, 6, "resume point is the last checkpoint");
    assert!(
        out.identical(),
        "resumed vs uninterrupted reports diverged:\n{}\n{}",
        out.resumed_json,
        out.uninterrupted_json
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn planted_panic_and_hang_are_both_quarantined_without_aborting() {
    let mut cfg = CampaignConfig::new(7, 8);
    cfg.plant_panic_at = Some(2);
    cfg.plant_hang_at = Some(5);
    let report = Campaign::run(cfg).unwrap();
    // Neither contained failure stopped the campaign.
    assert_eq!(report.execs, 8);
    assert_eq!(report.crashes.len(), 2);
    let panic = &report.crashes[0];
    let hang = &report.crashes[1];
    assert_eq!(panic.kind, CrashKind::Panic);
    assert_eq!(panic.iteration, 2 | PLANT_PANIC_BIT);
    assert_eq!(hang.kind, CrashKind::Hang);
    assert_eq!(hang.iteration, 5 | PLANT_HANG_BIT);
    for c in &report.crashes {
        assert_eq!(c.id, crash_id(c.kind, c.seed, c.iteration), "unstable id");
        assert!(c.id.starts_with("dq-"), "{}", c.id);
    }
    // The quarantined executions still count in the metrics snapshot.
    assert!(report.stats_json.contains("\"fuzz.crashes\":1"));
    assert!(report.stats_json.contains("\"fuzz.hangs\":1"));
    // The normal findings pipeline was unaffected by the quarantines.
    assert!(report.coverage_bits > 0);
}

#[test]
fn quarantined_findings_replay_from_two_integers() {
    let mut cfg = CampaignConfig::new(23, 6);
    cfg.plant_panic_at = Some(1);
    cfg.plant_hang_at = Some(3);
    let report = Campaign::run(cfg.clone()).unwrap();
    let panic = &report.crashes[0];
    let hang = &report.crashes[1];

    // The hang replays under the same budget and aborts at the same
    // deterministic cycle the campaign recorded.
    let out = replay_with_budget(hang.seed, hang.iteration, cfg.watchdog_budget).unwrap();
    match out.status {
        ExecStatus::HangAborted { at_cycles, .. } => {
            assert!(
                hang.detail.contains(&format!("{at_cycles}")),
                "replayed abort cycle {at_cycles} not in detail {:?}",
                hang.detail
            );
        }
        ExecStatus::Completed => panic!("hang replay did not trip the watchdog"),
    }

    // The panic replays too: regenerating from (seed, iteration) yields
    // the same panicking program the campaign contained.
    let input = FuzzInput::generate(panic.seed, panic.iteration);
    assert!(matches!(input.ops.last(), Some(MutationOp::DebugPanic)));
    let caught = std::panic::catch_unwind(|| dma_lab::fuzz::execute(&input));
    assert!(caught.is_err(), "panic replay did not panic");
}

#[test]
fn truncated_newest_generation_falls_back_to_the_previous_one() {
    let dir = tmp("truncate");
    let cfg = killed_campaign(&dir);
    // Torn write: the newest generation is cut mid-payload.
    let newest = newest_slot(&dir);
    let body = std::fs::read_to_string(&newest).unwrap();
    std::fs::write(&newest, &body[..body.len() / 2]).unwrap();

    let mut resumed = Campaign::resume(cfg.clone()).unwrap();
    assert_eq!(resumed.next_iter(), 4, "fell back to the gen-4 checkpoint");
    assert_eq!(resumed.store().unwrap().recovered(), 1);
    resumed.run_to_end().unwrap();
    let json = resumed.finish().unwrap().to_json();
    assert_eq!(json, uninterrupted_json(7, 10));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_checksum_byte_falls_back_to_the_previous_generation() {
    let dir = tmp("bitflip");
    let cfg = killed_campaign(&dir);
    // One flipped payload byte must fail the FNV checksum.
    let newest = newest_slot(&dir);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&newest, &bytes).unwrap();

    let mut resumed = Campaign::resume(cfg).unwrap();
    assert_eq!(resumed.next_iter(), 4);
    assert_eq!(resumed.store().unwrap().recovered(), 1);
    resumed.run_to_end().unwrap();
    assert_eq!(
        resumed.finish().unwrap().to_json(),
        uninterrupted_json(7, 10)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skew_is_treated_as_corruption_not_misparse() {
    let dir = tmp("version-skew");
    let cfg = killed_campaign(&dir);
    // A generation stamped by a hypothetical newer build must not be
    // half-understood: it is rejected wholesale and the store falls
    // back, exactly like any other corruption.
    let newest = newest_slot(&dir);
    let body = std::fs::read_to_string(&newest).unwrap();
    assert!(body.contains("\"version\":1"));
    std::fs::write(&newest, body.replace("\"version\":1", "\"version\":99")).unwrap();

    let mut resumed = Campaign::resume(cfg).unwrap();
    assert_eq!(resumed.next_iter(), 4);
    assert_eq!(resumed.store().unwrap().recovered(), 1);
    resumed.run_to_end().unwrap();
    assert_eq!(
        resumed.finish().unwrap().to_json(),
        uninterrupted_json(7, 10)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn both_generations_corrupt_is_a_clean_resume_error() {
    let dir = tmp("both-corrupt");
    let cfg = killed_campaign(&dir);
    for f in SLOT_FILES {
        let p = dir.join(f);
        if p.exists() {
            std::fs::write(&p, "garbage").unwrap();
        }
    }
    assert!(Campaign::resume(cfg).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_and_rng_state_survive_a_resume_byte_identically() {
    let dir = tmp("journal");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = CampaignConfig::new(11, 9);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 4;

    let mut doomed = Campaign::new(cfg.clone()).unwrap();
    doomed.run_until(6).unwrap();
    drop(doomed);

    let mut resumed = Campaign::resume(cfg.clone()).unwrap();
    assert_eq!(resumed.next_iter(), 4);
    resumed.run_to_end().unwrap();

    let mut control = Campaign::new(CampaignConfig::new(11, 9)).unwrap();
    control.run_to_end().unwrap();

    // The snapshot payload captures *everything* — journal ring,
    // eviction count, DetRng position, metrics, series — so comparing
    // payloads proves the resumed campaign's internal state, not just
    // its report, reconverged exactly.
    assert_eq!(resumed.snapshot_payload(), control.snapshot_payload());
    let _ = std::fs::remove_dir_all(&dir);
}
