//! Fuzzing-subsystem determinism: the whole point of the design is that
//! a campaign is a pure function of its seed. These tests hold the
//! subsystem to that — identical corpora, identical series, identical
//! reports across runs — and pin the acceptance scenario: the seeded
//! `skb_shared_info` callback exposure is rediscovered end to end with
//! a D-KASAN-confirmed report.

use dma_lab::dma_core::vuln::{SubPageVulnerability, WindowPath};
use dma_lab::fuzz::{replay, run_fuzz, FuzzConfig};

/// The pinned campaign shared with CI, the README, and `fuzz_bench`.
const SEED: u64 = 7;
const ITERS: u64 = 96;

fn pinned() -> FuzzConfig {
    FuzzConfig {
        seed: SEED,
        iters: ITERS,
        corpus_dir: None,
    }
}

#[test]
fn two_runs_build_identical_corpora_and_series() {
    let a = run_fuzz(&pinned()).unwrap();
    let b = run_fuzz(&pinned()).unwrap();
    // Corpus: same signatures, same order, same minimized programs.
    assert_eq!(
        a.corpus.iter().map(|e| e.signature).collect::<Vec<_>>(),
        b.corpus.iter().map(|e| e.signature).collect::<Vec<_>>(),
        "corpus signatures diverged between identically-seeded runs"
    );
    for (ea, eb) in a.corpus.iter().zip(&b.corpus) {
        assert_eq!(ea.to_json(), eb.to_json());
    }
    // Simulated-cycle series: byte-identical (the BENCH_fuzz.json
    // deterministic half).
    assert_eq!(a.series_json(), b.series_json());
    // Metrics snapshot and full report too.
    assert_eq!(a.stats_json, b.stats_json);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn every_corpus_entry_replays_from_two_integers() {
    let report = run_fuzz(&FuzzConfig {
        seed: SEED,
        iters: 24,
        corpus_dir: None,
    })
    .unwrap();
    assert!(!report.corpus.is_empty());
    for e in &report.corpus {
        let out = replay(e.seed, e.iteration).unwrap();
        assert_eq!(
            out.signature, e.signature,
            "iter {}: replay signature diverged from the admitted one",
            e.iteration
        );
    }
}

#[test]
fn campaign_rediscovers_the_planted_figure1_classes() {
    let report = run_fuzz(&pinned()).unwrap();

    // The seeded skb_shared_info callback exposure, complete with the
    // §3.3 attributes: a device-writable callback slot hit inside a
    // §5.2 window.
    let exposure = report
        .findings
        .iter()
        .find(|f| f.site == "skb_shared_info.destructor_arg" && f.attrs.window.is_some())
        .expect("destructor_arg callback exposure not rediscovered");
    assert_eq!(exposure.taxonomy, SubPageVulnerability::OsMetadata);
    let cb = exposure
        .attrs
        .callback
        .as_ref()
        .expect("callback attribute");
    assert_eq!(cb.field, "destructor_arg");
    assert!(cb.page_offset < dma_lab::dma_core::PAGE_SIZE);

    // Both §5.2.2 window paths show up across the config sweep: the
    // planted i40e shape yields (i), deferred invalidation yields (ii).
    let paths: Vec<WindowPath> = report
        .findings
        .iter()
        .filter_map(|f| f.attrs.window.map(|w| w.path))
        .collect();
    assert!(paths.contains(&WindowPath::UnmapAfterBuild), "{paths:?}");
    assert!(paths.contains(&WindowPath::DeferredIotlb), "{paths:?}");

    // The D-KASAN oracle confirms all four Figure-1 taxonomy letters.
    let mut letters: Vec<char> = report
        .findings
        .iter()
        .map(|f| f.taxonomy.letter())
        .collect();
    letters.sort_unstable();
    letters.dedup();
    assert_eq!(
        letters,
        vec!['a', 'b', 'c', 'd'],
        "taxonomy sweep incomplete"
    );
    assert!(
        report.findings.iter().any(|f| f.dkasan.is_some()),
        "no D-KASAN-confirmed finding"
    );
}

#[test]
fn coverage_and_metrics_are_internally_consistent() {
    let report = run_fuzz(&FuzzConfig {
        seed: 3,
        iters: 16,
        corpus_dir: None,
    })
    .unwrap();
    // The final series point equals the report totals.
    let last = report.series.last().expect("non-empty series");
    assert_eq!(last.coverage_bits, report.coverage_bits);
    assert_eq!(last.corpus_size, report.corpus.len());
    assert_eq!(last.sim_cycles, report.total_cycles);
    // The metrics snapshot carries the campaign gauges.
    assert!(
        report.stats_json.contains("\"fuzz.execs\":16"),
        "{}",
        report.stats_json
    );
    assert!(report.stats_json.contains("\"fuzz.corpus.size\""));
    assert!(report.stats_json.contains("\"fuzz.coverage.bits\""));
}
