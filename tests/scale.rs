//! Sharded-campaign scale contracts (DESIGN.md §13): the merged report
//! is a pure function of `(seed, iters, shards)` — never of the thread
//! count — a 1-shard sharded run is the legacy engine byte for byte,
//! kill+resume restores every shard (RNG position included), and the
//! warm boot-template executor is outcome-identical to the cold
//! boot-per-exec path it replaced.

use dma_lab::fuzz::{
    execute, run_fuzz, snapshot, Campaign, ExecContext, FuzzConfig, FuzzInput, ShardConfig,
    ShardedCampaign,
};

/// The pinned campaign shared with CI, the README, and `fuzz_bench`.
const SEED: u64 = 7;
const ITERS: u64 = 96;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dma-scale-{}-{name}", std::process::id()))
}

#[test]
fn merged_report_is_identical_for_any_thread_count() {
    let run = |threads: usize| {
        ShardedCampaign::new(ShardConfig::new(SEED, 12, 8, threads))
            .run()
            .unwrap()
            .to_json()
    };
    let t1 = run(1);
    let t4 = run(4);
    let t8 = run(8);
    assert_eq!(t1, t4, "T=1 vs T=4 merged reports differ");
    assert_eq!(t1, t8, "T=1 vs T=8 merged reports differ");
}

#[test]
fn one_shard_run_is_the_legacy_engine_byte_for_byte() {
    // Shard 0 keeps the base seed unchanged, so a 1-shard sharded run
    // must reproduce the legacy single-campaign pinned report exactly.
    let legacy = run_fuzz(&FuzzConfig {
        seed: SEED,
        iters: ITERS,
        corpus_dir: None,
    })
    .unwrap();
    let sharded = ShardedCampaign::new(ShardConfig::new(SEED, ITERS, 1, 1))
        .run()
        .unwrap();
    assert_eq!(legacy.to_json(), sharded.to_json());
    assert_eq!(legacy.series_json(), sharded.series_json());
    assert_eq!(legacy.stats_json, sharded.stats_json);
}

#[test]
fn killed_shards_resume_to_the_uninterrupted_bytes() {
    let dir = tmp("kill-resume");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ShardConfig::new(11, 10, 3, 1);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.checkpoint_every = 3;
    let sc = ShardedCampaign::new(cfg.clone());

    // Kill each shard at a different point: shard 0 past two cadences,
    // shard 1 past one, shard 2 before its first checkpoint (the
    // restart-from-scratch path).
    for (shard_id, kill_at) in [(0u32, 7u64), (1, 4), (2, 2)] {
        let mut doomed = Campaign::new(sc.shard_campaign_config(shard_id)).unwrap();
        doomed.run_until(kill_at).unwrap();
        drop(doomed);
    }

    // Every shard's RNG position (with the rest of its state) must come
    // back exactly: the resumed state captures byte-identically to a
    // fresh campaign advanced to the same iteration.
    for (shard_id, resumes_from) in [(0u32, 6u64), (1, 3)] {
        let shard_cfg = sc.shard_campaign_config(shard_id);
        let resumed = Campaign::resume(shard_cfg.clone()).unwrap();
        assert_eq!(resumed.next_iter(), resumes_from, "shard {shard_id}");
        let mut control_cfg = shard_cfg.clone();
        control_cfg.checkpoint_dir = None;
        control_cfg.checkpoint_every = 0;
        let mut control = Campaign::new(control_cfg).unwrap();
        control.run_until(resumes_from).unwrap();
        assert_eq!(
            snapshot::capture(shard_cfg.seed, resumed.state()),
            snapshot::capture(shard_cfg.seed, control.state()),
            "shard {shard_id} state (RNG position included) diverged on resume"
        );
    }

    let resumed = sc.resume().unwrap();
    let mut control_cfg = ShardConfig::new(11, 10, 3, 1);
    control_cfg.checkpoint_dir = None;
    let control = ShardedCampaign::new(control_cfg).run().unwrap();
    assert_eq!(
        resumed.to_json(),
        control.to_json(),
        "kill+resume must land on the uninterrupted merged bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_executor_matches_the_cold_path() {
    let mut cx = ExecContext::new();
    for i in 0..8 {
        let input = FuzzInput::generate(SEED, i);
        let cold = execute(&input).unwrap();
        let warm = cx.execute(&input).unwrap();
        assert_eq!(cold.signature, warm.signature, "iteration {i}");
        assert_eq!(cold.status, warm.status, "iteration {i}");
    }
}
