//! Soak tests: steady-state memory behaviour, long-run determinism, and
//! clock monotonicity under sustained traffic. A simulator that leaks
//! or drifts would silently invalidate the reboot-survey and
//! window-timing experiments built on it.

use dma_lab::devsim::{Testbed, TestbedConfig};
use dma_lab::sim_net::packet::Packet;
use dma_lab::sim_net::stack::StackConfig;

fn pump(tb: &mut Testbed, n: usize, flow_src: u32) {
    for i in 0..n {
        let p = Packet::udp(flow_src, 1, vec![i as u8; 64]);
        tb.deliver_packet(&p).unwrap();
    }
}

#[test]
fn rx_path_reaches_memory_steady_state() {
    // One flow → one socket allocation; after warm-up, free memory must
    // stop decreasing (RX buffers and page_frag regions recycle).
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    pump(&mut tb, 500, 9);
    let after_warmup = tb.mem.buddy.free_page_count();
    pump(&mut tb, 2000, 9);
    let after_soak = tb.mem.buddy.free_page_count();
    assert!(
        after_soak >= after_warmup.saturating_sub(16),
        "RX path leaks memory: {after_warmup} -> {after_soak} free pages"
    );
    assert_eq!(tb.stack.stats.delivered, 2500);
}

#[test]
fn echo_path_reaches_memory_steady_state() {
    let cfg = TestbedConfig {
        stack: StackConfig {
            echo_service: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut tb = Testbed::new(cfg).unwrap();
    for i in 0..500usize {
        let p = Packet::udp(9, 1, vec![i as u8; 128]);
        tb.deliver_packet(&p).unwrap();
        if i % 16 == 15 {
            tb.complete_all_tx().unwrap();
        }
    }
    tb.complete_all_tx().unwrap();
    let after_warmup = tb.mem.buddy.free_page_count();
    for i in 0..1500usize {
        let p = Packet::udp(9, 1, vec![i as u8; 128]);
        tb.deliver_packet(&p).unwrap();
        if i % 16 == 15 {
            tb.complete_all_tx().unwrap();
        }
    }
    tb.complete_all_tx().unwrap();
    let after_soak = tb.mem.buddy.free_page_count();
    assert!(
        after_soak >= after_warmup.saturating_sub(16),
        "echo path leaks memory: {after_warmup} -> {after_soak} free pages"
    );
    assert_eq!(tb.stack.stats.echoed, 2000);
}

#[test]
fn iommu_mappings_do_not_accumulate() {
    // Every completed RX/TX must give back its translations; only the
    // steady-state ring (+ctrl block) stays mapped.
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    let baseline = tb.iommu.mapped_pages(tb.nic.id);
    pump(&mut tb, 1000, 9);
    // Deferred mode parks unmapped IOVAs until the flush; force one.
    tb.advance_ms(11);
    let after = tb.iommu.mapped_pages(tb.nic.id);
    assert!(
        after <= baseline + 8,
        "page-table entries accumulate: {baseline} -> {after}"
    );
}

#[test]
fn identical_runs_are_bit_identical() {
    let run = || {
        let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
        pump(&mut tb, 300, 9);
        (
            tb.ctx.clock.now(),
            tb.stack.stats.delivered,
            tb.driver.stats.rx_packets,
            tb.iommu.stats.pages_mapped,
            tb.mem.buddy.free_page_count(),
        )
    };
    assert_eq!(run(), run(), "simulation must be fully deterministic");
}

#[test]
fn clock_is_strictly_monotonic_under_load() {
    let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    let mut last = tb.ctx.clock.now();
    for i in 0..200usize {
        let p = Packet::udp(9, 1, vec![i as u8; 64]);
        tb.deliver_packet(&p).unwrap();
        let now = tb.ctx.clock.now();
        assert!(now >= last);
        last = now;
    }
    assert!(last > 0, "work must cost simulated time");
}

#[test]
fn attack_outcomes_are_deterministic() {
    use dma_lab::attacks::image::KernelImage;
    use dma_lab::attacks::poisoned_tx;
    use dma_lab::dma_core::vuln::WindowPath;
    let image = KernelImage::build(1, 16 << 20);
    let a = poisoned_tx::run(&image, WindowPath::DeferredIotlb, 77).unwrap();
    let b = poisoned_tx::run(&image, WindowPath::DeferredIotlb, 77).unwrap();
    assert_eq!(format!("{:?}", a.outcome), format!("{:?}", b.outcome));
    assert_eq!(a.poison_kva, b.poison_kva);
    assert_eq!(a.knowledge, b.knowledge);
}
