//! IOTLB capacity ablation: the deferred-invalidation window (Figure 6)
//! exists because the *cache* keeps answering after the page table is
//! cleared. If the entry is evicted before the attacker uses it, the
//! window closes early — capacity pressure is an accidental mitigation
//! (and why the paper's attack prefers path (iii), which does not need
//! the stale entry at all).

use dma_lab::devsim::{Testbed, TestbedConfig};
use dma_lab::dma_core::vuln::{DmaDirection, WindowPath};
use dma_lab::sim_iommu::{dma_map_single, dma_unmap_single, InvalidationMode, IommuConfig};

fn tb(iotlb_capacity: usize) -> Testbed {
    Testbed::new(TestbedConfig {
        iommu: IommuConfig {
            mode: InvalidationMode::Deferred,
            iotlb_capacity,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn tiny_iotlb_closes_the_deferred_window_under_pressure() {
    let mut t = tb(4);
    let buf = t.mem.kmalloc(&mut t.ctx, 512, "io").unwrap();
    let m = dma_map_single(
        &mut t.ctx,
        &mut t.iommu,
        &t.mem.layout,
        t.nic.id,
        buf,
        512,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    t.nic
        .write(&mut t.ctx, &mut t.iommu, &mut t.mem.phys, m.iova, b"warm")
        .unwrap();
    dma_unmap_single(&mut t.ctx, &mut t.iommu, &m).unwrap();

    // Competing traffic: other mappings churn the tiny IOTLB.
    for i in 0..8 {
        let b2 = t.mem.kmalloc(&mut t.ctx, 512, "other").unwrap();
        let m2 = dma_map_single(
            &mut t.ctx,
            &mut t.iommu,
            &t.mem.layout,
            t.nic.id,
            b2,
            512,
            DmaDirection::FromDevice,
            "m2",
        )
        .unwrap();
        t.nic
            .write(&mut t.ctx, &mut t.iommu, &mut t.mem.phys, m2.iova, &[i])
            .unwrap();
    }

    // The stale entry has been evicted; the page-table walk faults.
    assert!(
        t.nic
            .write(&mut t.ctx, &mut t.iommu, &mut t.mem.phys, m.iova, b"late")
            .is_err(),
        "evicted stale entry must not keep translating"
    );
}

#[test]
fn large_iotlb_keeps_the_window_open_under_the_same_pressure() {
    let mut t = tb(4096);
    let buf = t.mem.kmalloc(&mut t.ctx, 512, "io").unwrap();
    let m = dma_map_single(
        &mut t.ctx,
        &mut t.iommu,
        &t.mem.layout,
        t.nic.id,
        buf,
        512,
        DmaDirection::FromDevice,
        "m",
    )
    .unwrap();
    t.nic
        .write(&mut t.ctx, &mut t.iommu, &mut t.mem.phys, m.iova, b"warm")
        .unwrap();
    dma_unmap_single(&mut t.ctx, &mut t.iommu, &m).unwrap();
    for i in 0..8 {
        let b2 = t.mem.kmalloc(&mut t.ctx, 512, "other").unwrap();
        let m2 = dma_map_single(
            &mut t.ctx,
            &mut t.iommu,
            &t.mem.layout,
            t.nic.id,
            b2,
            512,
            DmaDirection::FromDevice,
            "m2",
        )
        .unwrap();
        t.nic
            .write(&mut t.ctx, &mut t.iommu, &mut t.mem.phys, m2.iova, &[i])
            .unwrap();
    }
    assert!(
        t.nic
            .write(&mut t.ctx, &mut t.iommu, &mut t.mem.phys, m.iova, b"late")
            .is_ok(),
        "roomy IOTLB keeps the stale window open"
    );
    assert!(t.iommu.stats.stale_hits >= 1);
}

#[test]
fn path_iii_is_immune_to_iotlb_pressure() {
    // The type-(c) neighbour IOVA is a *live* mapping: eviction only
    // costs a page-table walk, never access.
    use dma_lab::attacks::window::{rx_with_window, PoisonPlan};
    use dma_lab::sim_net::packet::Packet;
    let mut t = Testbed::new(TestbedConfig {
        iommu: IommuConfig {
            mode: InvalidationMode::Strict,
            iotlb_capacity: 2, // pathological pressure
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap();
    let plan = PoisonPlan {
        poison_kva: 0xffff_8880_0bad_0000,
    };
    let p = Packet::udp(9, 1, b"x".to_vec());
    let (skb, ok) = rx_with_window(&mut t, WindowPath::NeighborIova, &p, &plan).unwrap();
    assert!(ok);
    assert_eq!(
        skb.shinfo().destructor_arg(&mut t.ctx, &t.mem).unwrap(),
        plan.poison_kva
    );
}
