//! End-to-end forensics tests: Chrome export determinism and the
//! planted stale-write (RingFlood-style) incident timeline.

use dma_lab::dma_core::{chrome, Event};
use dma_lab::fuzz::{execute_with_forensics, run_forensics, FuzzInput, MutationOp};
use dma_lab::obs::{run_observed, ObsConfig};

#[test]
fn chrome_export_is_byte_identical_across_same_seed_runs() {
    let cfg = ObsConfig {
        seed: 42,
        rounds: 60,
        fault_seed: None,
    };
    let a = run_observed(cfg).unwrap();
    let b = run_observed(cfg).unwrap();
    let ja = chrome::export(&a.timeline, &a.events);
    let jb = chrome::export(&b.timeline, &b.events);
    assert_eq!(ja, jb, "same seed must export byte-identical traces");
    // The file has the trace_event shape Perfetto expects: complete
    // spans, thread-scoped instants, and a process-name record.
    assert!(ja.contains("\"displayTimeUnit\":\"ns\""));
    assert!(ja.contains("\"ph\":\"M\""));
    assert!(ja.contains("\"ph\":\"X\""));
    assert!(ja.contains("\"ph\":\"i\""));
    assert!(ja.contains("\"name\":\"rx.poll\""), "span names exported");
    assert!(ja.contains("\"name\":\"DmaMap\""), "event names exported");
}

#[test]
fn chrome_export_differs_across_seeds() {
    let a = run_observed(ObsConfig {
        seed: 1,
        rounds: 40,
        fault_seed: None,
    })
    .unwrap();
    let b = run_observed(ObsConfig {
        seed: 2,
        rounds: 40,
        fault_seed: None,
    })
    .unwrap();
    assert_ne!(
        chrome::export(&a.timeline, &a.events),
        chrome::export(&b.timeline, &b.events)
    );
}

#[test]
fn forensics_campaign_is_byte_deterministic() {
    let a = run_forensics(7, 24).unwrap();
    let b = run_forensics(7, 24).unwrap();
    assert_eq!(a.render_text(), b.render_text());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn pinned_campaign_names_sites_taxonomy_and_windows() {
    let report = run_forensics(7, 48).unwrap();
    let text = report.render_text();
    // The planted destructor_arg exposure, with both §5.2 window paths.
    assert!(text.contains("skb_shared_info.destructor_arg"), "{text}");
    assert!(text.contains("(ii) deferred IOTLB invalidation"), "{text}");
    assert!(text.contains("(i) unmap after sk_buff build"), "{text}");
    // Incidents name allocation sites, mapping sites, and taxonomy.
    assert!(text.contains("alloc site:"), "{text}");
    assert!(text.contains("nic_rx_map"), "{text}");
    assert!(text.contains("type (a)"), "{text}");
    assert!(text.contains("type (c)"), "{text}");
    assert!(text.contains("type (d)"), "{text}");
    // Every incident carries a cycle-stamped timeline.
    assert_eq!(
        text.matches("incident [").count(),
        text.matches("timeline:").count()
    );
}

#[test]
fn planted_stale_write_produces_the_ringflood_timeline() {
    // The RingFlood preamble by hand: consume the head RX buffer (the
    // driver unmaps it; invalidation is deferred on config 0), then
    // write through the captured IOVA — only a stale IOTLB entry lets
    // the destructor_arg write land.
    let input = FuzzInput {
        seed: 7,
        iteration: 0,
        config_id: 0,
        ops: vec![
            MutationOp::Deliver { len: 64, fill: 7 },
            MutationOp::StaleWrite {
                value: 0xffff_ffff_8100_0000,
            },
        ],
    };
    let run = execute_with_forensics(&input).unwrap();

    // The exposure is observed with its §5.2.1 window attributes.
    let f = run
        .outcome
        .findings
        .iter()
        .find(|f| f.site == "skb_shared_info.destructor_arg")
        .expect("stale write lands on config 0");
    let w = f.attrs.window.expect("timed window recorded");
    assert_eq!(w.path.to_string(), "(ii) deferred IOTLB invalidation");
    assert!(w.end > w.start, "window has extent");
    assert!(f.attrs.malicious_kva.is_some(), "value parses as a KVA");

    // The provenance graph saw the stale device write itself.
    assert!(
        run.graph
            .events()
            .iter()
            .any(|e| matches!(e, Event::DevAccess { stale: true, .. })),
        "no stale device access in the graph"
    );

    // And the oracle-backed incidents name the RX mapping site.
    assert!(!run.incidents.is_empty());
    let rendered: String = run
        .incidents
        .iter()
        .enumerate()
        .map(|(i, inc)| inc.render(i + 1))
        .collect();
    assert!(rendered.contains("nic_rx_map"), "{rendered}");
    assert!(rendered.contains("netdev_alloc_frag"), "{rendered}");
}
