//! Chaos soak: randomized-but-seeded fault schedules over the whole
//! simulated machine (allocators → IOMMU → driver → stack → device).
//!
//! The acceptance bar for the graceful-degradation layer:
//!
//! 1. **No panics** — every schedule runs to completion; non-tolerated
//!    errors fail the soak inside `run_soak` itself.
//! 2. **No leaked DMA mappings** — after `Testbed::shutdown` the device
//!    must hold zero mapped pages, every schedule.
//! 3. **Every schedule actually injects** — a soak that never fires a
//!    fault proves nothing.
//! 4. **Deterministic replay** — the same seed reproduces the same fault
//!    sequence and therefore the identical `SoakReport` (delivered,
//!    dropped, and per-site hit counters included).

use dma_lab::devsim::chaos::{run_soak, SoakReport};

/// Seeds for the soak matrix. 26 schedules ≥ the 24 the acceptance
/// criteria require; a spread of small, large, and bit-pattern seeds.
const SEEDS: [u64; 26] = [
    1,
    2,
    3,
    5,
    7,
    11,
    13,
    17,
    19,
    23,
    42,
    64,
    99,
    128,
    255,
    256,
    1024,
    4096,
    65535,
    0xdead_beef,
    0xcafe_babe,
    0x0123_4567_89ab_cdef,
    0xffff_ffff_ffff_fffe,
    0xaaaa_aaaa_5555_5555,
    0x1_0000_0001,
    0x7fff_ffff_ffff_ffff,
];

#[test]
fn chaos_soak_survives_every_schedule_without_leaks() {
    let mut total_injected = 0u64;
    for &seed in &SEEDS {
        let r = run_soak(seed)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: stack failed to degrade: {e}"));
        assert!(
            r.injected_total >= 1,
            "seed {seed:#x}: schedule never injected a fault"
        );
        assert_eq!(
            r.leaked_pages, 0,
            "seed {seed:#x}: {} DMA-mapped pages leaked past shutdown",
            r.leaked_pages
        );
        assert!(
            r.delivered + r.echoed + r.dropped > 0,
            "seed {seed:#x}: workload did no work"
        );
        total_injected += r.injected_total;
    }
    // Across the matrix the faults must be plentiful, not incidental.
    assert!(
        total_injected >= SEEDS.len() as u64 * 2,
        "only {total_injected} faults injected across {} schedules",
        SEEDS.len()
    );
}

#[test]
fn chaos_soak_replays_identically_from_the_same_seed() {
    for &seed in &[7u64, 42, 0xdead_beef] {
        let a: SoakReport = run_soak(seed).unwrap();
        let b: SoakReport = run_soak(seed).unwrap();
        assert_eq!(
            a, b,
            "seed {seed:#x}: replay diverged — fault engine is not deterministic"
        );
    }
}

/// Pulls `"name":value` out of a flat JSON counter table.
fn counter(json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)? + key.len();
    let rest = &json[at..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

#[test]
fn metrics_survive_fault_schedules_without_drift() {
    // Under every schedule the registry must (a) replay byte-identically
    // and (b) stay consistent with the fault engine's own census: the
    // `fault.injected` counter is incremented at the injection sites,
    // `injected_total` is counted by the plan — if they ever disagree, a
    // code path bumped one but not the other.
    for &seed in &[3u64, 42, 0xcafe_babe] {
        let a = run_soak(seed).unwrap();
        let b = run_soak(seed).unwrap();
        assert_eq!(
            a.stats_json, b.stats_json,
            "seed {seed:#x}: metrics snapshot diverged across replays"
        );
        assert_eq!(
            counter(&a.stats_json, "fault.injected").unwrap_or(0),
            a.injected_total,
            "seed {seed:#x}: fault.injected counter drifted from the plan census"
        );
        // The recovery paths count what the report counts as drops.
        assert_eq!(
            counter(&a.stats_json, "fault.recovered").unwrap_or(0),
            a.dropped,
            "seed {seed:#x}: fault.recovered counter drifted from dropped"
        );
    }
}

#[test]
fn fuzz_corpus_entry_survives_chaos_fault_schedules() {
    // Cross-subsystem soak: take a real admitted corpus entry from the
    // pinned campaign and re-execute it with a chaos fault plan armed on
    // top of whatever faults the input itself carries. The combined
    // schedule must degrade gracefully — no panics, no leaked DMA
    // mappings — and replay identically.
    use dma_lab::fuzz::{replay_under_faults, run_fuzz, FuzzConfig};
    let report = run_fuzz(&FuzzConfig {
        seed: 7,
        iters: 8,
        corpus_dir: None,
    })
    .unwrap();
    let entry = report.corpus.first().expect("campaign admitted an entry");
    for fault_seed in [1u64, 42, 0xdead_beef] {
        let a = replay_under_faults(entry.seed, entry.iteration, fault_seed)
            .unwrap_or_else(|e| panic!("fault seed {fault_seed:#x}: failed to degrade: {e}"));
        assert_eq!(
            a.leaked_pages, 0,
            "fault seed {fault_seed:#x}: DMA mappings leaked past shutdown"
        );
        let b = replay_under_faults(entry.seed, entry.iteration, fault_seed).unwrap();
        assert_eq!(
            a.signature, b.signature,
            "fault seed {fault_seed:#x}: replay under faults diverged"
        );
        assert_eq!(a.dropped, b.dropped);
    }
}

#[test]
fn different_seeds_produce_different_schedules() {
    let a = run_soak(1).unwrap();
    let b = run_soak(2).unwrap();
    // The reports may coincide on a single counter, but not in full
    // (different plans, different traffic, different hit maps).
    assert_ne!(a, b, "seeds 1 and 2 produced identical soak reports");
}
