//! The observability workload behind `dma-lab stats` and `dma-lab
//! trace`: one deterministic run of the full stack with every metric
//! source lit up.
//!
//! A seeded [`Testbed`] is driven through a mixed workload (kmalloc
//! churn, RX/echo traffic, TX completions, time advances that trigger
//! deferred IOTLB flushes), the event trace is replayed through
//! D-KASAN, and everything — live registry counters, span timeline,
//! D-KASAN shadow costs, per-layer stats structs — lands in one
//! [`Snapshot`]. Same seed, same snapshot, byte for byte: that is the
//! contract `dma-lab stats --json` exports and the determinism tests
//! pin down.

use devsim::testbed::{MemConfigLite, TestbedConfig};
use devsim::Testbed;
use dkasan::DKasan;
use dma_core::metrics::SpanRecord;
use dma_core::{DetRng, DmaError, Event, Result, Snapshot};
use sim_iommu::IommuConfig;
use sim_net::driver::{AllocPolicy, DriverConfig};
use sim_net::packet::Packet;
use sim_net::stack::StackConfig;

/// Parameters of one observed run.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Seed for KASLR, boot noise, and the workload mix.
    pub seed: u64,
    /// Rounds of interleaved activity.
    pub rounds: usize,
    /// When set, arms [`devsim::build_fault_plan`] with this seed so the
    /// registry also counts `fault.injected` / `fault.recovered`.
    pub fault_seed: Option<u64>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            seed: 0x0b5e_21ab,
            rounds: 200,
            fault_seed: None,
        }
    }
}

/// Everything one observed run produced.
pub struct ObsReport {
    /// The frozen metrics registry (counters, gauges, histograms, span
    /// aggregates), stamped with the final simulated cycle.
    pub snapshot: Snapshot,
    /// The span timeline: every completed phase occurrence in order.
    pub timeline: Vec<SpanRecord>,
    /// The full event stream of the run, in emission order — what
    /// `dma-lab trace --chrome` exports and the provenance graph
    /// ingests.
    pub events: Vec<Event>,
    /// Packets that made it through the stack.
    pub packets: u64,
    /// Operations absorbed as drops under fault injection.
    pub dropped: u64,
    /// Mappings the device still held after shutdown (0 on clean runs).
    pub leaked_pages: usize,
}

/// The kmalloc sites of the background "build" churn, sized to spread
/// across several SLUB caches.
const CHURN_SITES: &[(&str, usize)] = &[
    ("load_elf_phdrs", 512),
    ("sock_alloc_inode", 64),
    ("kstrdup", 32),
    ("vfs_read", 256),
    ("getname_flags", 1024),
];

/// Errors the workload absorbs when a fault plan is armed.
fn tolerated(e: &DmaError) -> bool {
    e.is_transient()
        || matches!(
            e,
            DmaError::IommuFault { .. } | DmaError::IommuPermission { .. }
        )
}

/// Runs the observability workload and returns the full report.
pub fn run_observed(cfg: ObsConfig) -> Result<ObsReport> {
    // kmalloc-backed RX buffers so allocator reuse/fresh counters and
    // D-KASAN exposure findings both fire; deferred invalidation (the
    // IommuConfig default) so the stale-window histogram fills.
    let mut tb = Testbed::new_traced(TestbedConfig {
        device: Default::default(),
        mem: MemConfigLite {
            kaslr_seed: Some(cfg.seed),
            ..Default::default()
        },
        iommu: IommuConfig::default(),
        driver: DriverConfig {
            alloc: AllocPolicy::Kmalloc,
            rx_buf_size: 2048,
            map_ctrl_block: true,
            ..Default::default()
        },
        stack: StackConfig {
            echo_service: true,
            ..Default::default()
        },
        boot_noise_seed: Some(cfg.seed),
    })?;
    tb.ctx.trace.record_cpu_access = true;
    if let Some(fault_seed) = cfg.fault_seed {
        tb.ctx.faults = devsim::build_fault_plan(fault_seed);
    }

    let mut rng = DetRng::new(cfg.seed ^ 0x0b5e_0b5e);
    let mut dkasan = DKasan::new();
    let mut all_events: Vec<Event> = Vec::new();
    let mut live = Vec::new();
    let mut packets = 0u64;
    let mut dropped = 0u64;

    for round in 0..cfg.rounds {
        // Allocator churn: exercises slab fresh/reuse and kfree paths.
        for _ in 0..(1 + rng.below(3)) {
            let (site, size) = CHURN_SITES[rng.below(CHURN_SITES.len() as u64) as usize];
            match tb.mem.kmalloc(&mut tb.ctx, size, site) {
                Ok(kva) => live.push(kva),
                Err(e) if tolerated(&e) => dropped += 1,
                Err(e) => return Err(e),
            }
        }
        while live.len() > 48 {
            let idx = rng.below(live.len() as u64) as usize;
            let kva = live.swap_remove(idx);
            tb.mem.kfree(&mut tb.ctx, kva)?;
        }

        // Traffic: RX + echo TX drives the rx.refill/rx.poll/tx.xmit
        // spans, ring occupancy, and skb map/unmap latency histograms.
        let pkt = Packet::udp(60 + (round % 4) as u32, 1, vec![round as u8; 96]);
        match tb.deliver_packet(&pkt) {
            Ok(()) => packets += 1,
            Err(e) if tolerated(&e) => {
                dropped += 1;
                tb.ctx.metrics.incr("fault.recovered");
                tb.driver
                    .rx_refill(&mut tb.ctx, &mut tb.mem, &mut tb.iommu)?;
            }
            Err(e) => return Err(e),
        }
        if round % 4 == 3 {
            match tb.complete_all_tx() {
                Ok(_) => {}
                Err(e) if tolerated(&e) => {
                    dropped += 1;
                    tb.ctx.metrics.incr("fault.recovered");
                }
                Err(e) => return Err(e),
            }
        }
        // Advancing past the deferred-flush period turns pending
        // unmaps into stale-window observations (§5.2.1).
        if round % 16 == 15 {
            tb.advance_ms(4);
        }

        let events = tb.ctx.trace.drain();
        dkasan.process(&events);
        all_events.extend(events);
    }

    let leaked_pages = tb.shutdown()?;
    let events = tb.ctx.trace.drain();
    dkasan.process(&events);
    all_events.extend(events);

    // Fold in sources that live outside the registry: the D-KASAN
    // replay engine (no SimCtx of its own) and the one per-layer stat
    // the live counters do not already cover.
    dkasan.publish_metrics(&mut tb.ctx.metrics);
    tb.ctx.metrics.add(
        "sim_iommu.iotlb.invalidation_cycles",
        tb.iommu.stats.invalidation_cycles,
    );
    // FlightRecorder eviction accounting (0 under this run's unbounded
    // trace, but always present so long campaigns can watch it move and
    // detect silent event loss from `stats` output alone).
    tb.ctx
        .metrics
        .restore_counter("trace.dropped", tb.ctx.trace.dropped());

    let timeline = tb.ctx.metrics.span_timeline().to_vec();
    let snapshot = tb.ctx.metrics_snapshot();
    Ok(ObsReport {
        snapshot,
        timeline,
        events: all_events,
        packets,
        dropped,
        leaked_pages,
    })
}

/// Renders a span timeline as an indented, cycle-stamped table.
pub fn render_timeline(records: &[SpanRecord]) -> String {
    let mut out = String::from("       start          end       cycles  span\n");
    for r in records {
        out.push_str(&format!(
            "{:>12} {:>12} {:>12}  {}{}\n",
            r.start,
            r.end,
            r.end - r.start,
            "  ".repeat(r.depth as usize),
            r.name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_run_lights_all_four_subsystems() {
        let r = run_observed(ObsConfig::default()).unwrap();
        assert_eq!(r.leaked_pages, 0);
        assert!(r.packets > 0);
        let json = r.snapshot.to_json();
        for prefix in ["sim_mem.", "sim_iommu.", "sim_net.", "dkasan."] {
            assert!(json.contains(prefix), "no {prefix} metrics in:\n{json}");
        }
        assert!(
            r.snapshot.len() >= 15,
            "only {} distinct metrics",
            r.snapshot.len()
        );
        // The §5.2.1 stale-window histogram fills under deferred mode.
        assert!(json.contains("sim_iommu.stale_window.cycles"), "{json}");
    }

    #[test]
    fn observed_runs_are_byte_deterministic() {
        let cfg = ObsConfig {
            seed: 99,
            rounds: 80,
            fault_seed: Some(99),
        };
        let a = run_observed(cfg).unwrap();
        let b = run_observed(cfg).unwrap();
        assert_eq!(a.snapshot.to_json(), b.snapshot.to_json());
        assert_eq!(a.timeline, b.timeline);
    }

    #[test]
    fn timeline_renders_spans_with_nesting() {
        let r = run_observed(ObsConfig {
            rounds: 20,
            ..Default::default()
        })
        .unwrap();
        assert!(!r.timeline.is_empty());
        let txt = render_timeline(&r.timeline);
        assert!(txt.contains("rx.refill"), "{txt}");
        assert!(txt.contains("rx.poll"), "{txt}");
    }
}
