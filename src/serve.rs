//! `dma-lab serve` — live campaign telemetry over line-JSON TCP.
//!
//! A resident, dependency-free service (`std::net` only) that runs a
//! fuzz campaign in-process and exposes it live, instead of the
//! batch-only reports every other subcommand prints at exit:
//!
//! - **Pull**: `stats` frames carry full [`Snapshot`]s or — once a
//!   connection has a baseline —
//!   [`SnapshotDelta`](dma_core::metrics::SnapshotDelta)s, so pollers
//!   ship only the metrics that moved since their last request.
//! - **Push**: `step`/`watch` advance the campaign and stream every
//!   [`CampaignEvent`] — `dk-…` findings with their Figure-1 taxonomy
//!   letter, `dq-…` quarantines, coverage growth, checkpoints — the
//!   iteration it happens.
//! - **Audit**: `posture` renders an `iommu_status.py`-style
//!   [`PostureReport`] for every machine configuration in the fuzz
//!   sweep, distinguishing strict from deferred invalidation and
//!   flagging the §5.2.1 stale-translation window.
//! - **Trace**: `chrome` exports the campaign journal as a Perfetto
//!   `trace_event` document via [`dma_core::chrome`].
//! - **Profile**: `profile` returns the merged cycle-attribution call
//!   tree ([`dma_core::Profile`]) of every execution admitted so far,
//!   folded across shards in shard-id order.
//!
//! ## Protocol
//!
//! One request per line: a JSON object with a `"req"` key. Each request
//! yields one or more single-line JSON response frames; the final frame
//! of a request carries `"end":true` as its **last** field, so a client
//! detects completion with `line.ends_with("\"end\":true}")` and never
//! needs a streaming JSON parser. Unknown requests, malformed JSON, and
//! non-object lines are answered with an `error` frame (and the
//! connection stays open); a request line longer than [`MAX_LINE`]
//! bytes is answered with an `error` frame and the connection is
//! closed. A half-sent line followed by disconnect is discarded
//! quietly. The campaign advances *only* in response to requests, and
//! no frame contains a wall-clock or socket-dependent value, so for a
//! fixed `(seed, script)` pair the complete transcript is byte-
//! identical across runs — pinned in `tests/serve.rs` and CI.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use dma_core::checkpoint::{shard_dir, shard_generations};
use dma_core::jsonw::JsonWriter;
use dma_core::metrics::Snapshot;
use dma_core::posture::PostureReport;
use dma_core::{chrome, shard_seed, JValue};
use fuzz::{
    config_device, config_name, machine_config, Campaign, CampaignConfig, CampaignEvent,
    NUM_CONFIGS,
};

/// Protocol version announced by the `hello` frame.
pub const PROTO_VERSION: u64 = 1;

/// Longest accepted request line in bytes. Anything longer gets an
/// `error` frame and the connection is dropped — a line-oriented
/// protocol must bound its framing buffer or a single hostile line
/// becomes an allocation attack.
pub const MAX_LINE: usize = 64 * 1024;

/// Marker suffix of the final frame of every request.
pub const END_MARKER: &str = "\"end\":true}";

/// Packets delivered per machine config by the posture sweep's warmup
/// traffic (enough to open deferred windows without slowing requests).
const POSTURE_WARMUP_PACKETS: u32 = 3;

/// Configuration of one serve session.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Base campaign seed; shard `i` runs under `shard_seed(seed, i)`.
    pub seed: u64,
    /// Iteration budget **per shard** (`step`/`watch` stop once every
    /// shard has exhausted it).
    pub iters: u64,
    /// Checkpoint directory (enables `checkpoint` events and ages).
    /// With more than one shard, each shard checkpoints under its own
    /// `shard-NNNN/` subdirectory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in iterations; 0 disables periodic saves.
    pub checkpoint_every: u64,
    /// Independent campaign shards stepped round-robin (clamped to
    /// ≥ 1). Event frames carry the shard id that produced them.
    pub shards: u32,
}

impl ServeConfig {
    /// A plain session: seed + budget, one shard, no checkpoints.
    pub fn new(seed: u64, iters: u64) -> ServeConfig {
        ServeConfig {
            seed,
            iters,
            checkpoint_dir: None,
            checkpoint_every: 0,
            shards: 1,
        }
    }
}

/// What the connection loop should do after a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Keep reading requests on this connection.
    Continue,
    /// Close this connection; keep serving new ones.
    CloseConn,
    /// Stop the server after flushing the response.
    Shutdown,
}

/// Per-connection state: the delta baseline for `stats` polling.
#[derive(Default)]
pub struct ConnState {
    last_stats: Option<Snapshot>,
}

/// The serve engine. Owns the campaign; [`Server::handle_line`] is the
/// entire protocol, so tests and benches drive it without sockets and
/// the TCP loop stays a thin transport.
pub struct Server {
    cfg: ServeConfig,
    /// One independent campaign per shard, stepped round-robin.
    shards: Vec<Campaign>,
    /// Round-robin cursor: index of the next shard to step.
    rr: usize,
}

impl Server {
    /// Builds the session and its in-process campaign shard(s).
    pub fn new(cfg: ServeConfig) -> dma_core::Result<Server> {
        let n = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(n as usize);
        for id in 0..n {
            let mut ccfg = CampaignConfig::new(shard_seed(cfg.seed, id), cfg.iters);
            // A single shard keeps the flat checkpoint layout so
            // `dma-lab fuzz --resume DIR` still understands it; sharded
            // sessions nest one store per shard.
            ccfg.checkpoint_dir = match (&cfg.checkpoint_dir, n) {
                (None, _) => None,
                (Some(dir), 1) => Some(dir.clone()),
                (Some(dir), _) => Some(shard_dir(dir, id)),
            };
            ccfg.checkpoint_every = cfg.checkpoint_every;
            shards.push(Campaign::new(ccfg)?);
        }
        Ok(Server { cfg, shards, rr: 0 })
    }

    /// The session configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Total iterations executed across all shards.
    fn total_next_iter(&self) -> u64 {
        self.shards.iter().map(|c| c.next_iter()).sum()
    }

    /// Steps the next non-exhausted shard in round-robin order.
    /// Returns the shard index stepped, or `None` when every shard has
    /// exhausted its budget.
    fn step_round_robin(&mut self) -> dma_core::Result<Option<usize>> {
        let n = self.shards.len();
        for _ in 0..n {
            let idx = self.rr;
            self.rr = (self.rr + 1) % n;
            if self.shards[idx].step()? {
                return Ok(Some(idx));
            }
        }
        Ok(None)
    }

    /// Handles one request line, appending response frames to `out`.
    pub fn handle_line(&mut self, line: &str, conn: &mut ConnState, out: &mut Vec<String>) -> Flow {
        if line.len() > MAX_LINE {
            out.push(error_frame("request line exceeds 65536 bytes"));
            return Flow::CloseConn;
        }
        let line = line.trim();
        if line.is_empty() {
            return Flow::Continue;
        }
        let req = match dma_core::jsonr::parse(line) {
            Ok(v) => v,
            Err(_) => {
                out.push(error_frame("malformed JSON request"));
                return Flow::Continue;
            }
        };
        let Some(kind) = req.str_field("req").map(|s| s.to_string()) else {
            out.push(error_frame("request must be an object with a \"req\" key"));
            return Flow::Continue;
        };
        match kind.as_str() {
            "hello" => {
                out.push(self.hello_frame());
                Flow::Continue
            }
            "stats" => {
                out.push(self.stats_frame(&req, conn));
                Flow::Continue
            }
            "step" => {
                self.step_frames(&req, out);
                Flow::Continue
            }
            "watch" => {
                self.watch_frames(&req, out);
                Flow::Continue
            }
            "health" => {
                out.push(self.health_frame());
                Flow::Continue
            }
            "posture" => {
                self.posture_frames(out);
                Flow::Continue
            }
            "profile" => {
                out.push(self.profile_frame());
                Flow::Continue
            }
            "chrome" => {
                out.push(self.chrome_frame());
                Flow::Continue
            }
            "shutdown" => {
                let mut w = JsonWriter::new();
                w.obj(|w| {
                    w.field_str("frame", "bye");
                    w.field_u64("next_iter", self.total_next_iter());
                    w.field_bool("end", true);
                });
                out.push(w.finish());
                Flow::Shutdown
            }
            other => {
                out.push(error_frame(&format!("unknown request type {other:?}")));
                Flow::Continue
            }
        }
    }

    fn hello_frame(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "hello");
            w.field_u64("proto", PROTO_VERSION);
            w.field_u64("seed", self.cfg.seed);
            w.field_u64("iters", self.cfg.iters);
            w.field_u64("shards", self.shards.len() as u64);
            w.field_u64("next_iter", self.total_next_iter());
            w.field_bool("end", true);
        });
        w.finish()
    }

    /// `stats` — full snapshot, or the delta against this connection's
    /// previous snapshot when `"mode":"delta"` is requested (first
    /// delta request on a connection falls back to a full frame).
    fn stats_frame(&mut self, req: &JValue, conn: &mut ConnState) -> String {
        // The session-wide view: shard snapshots folded with the
        // deterministic merge (identity for a single shard).
        let mut snap = {
            let s = self.shards[0].state();
            s.metrics.snapshot(s.total_cycles)
        };
        for c in &self.shards[1..] {
            let s = c.state();
            snap.merge(&s.metrics.snapshot(s.total_cycles));
        }
        let want_delta = req.str_field("mode") == Some("delta");
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "stats");
            match (&conn.last_stats, want_delta) {
                (Some(prev), true) => {
                    w.field_str("mode", "delta");
                    w.field("delta", |w| w.raw(&snap.diff(prev).to_json()));
                }
                _ => {
                    w.field_str("mode", "full");
                    w.field("snapshot", |w| w.raw(&snap.to_json()));
                }
            }
            w.field_bool("end", true);
        });
        conn.last_stats = Some(snap);
        w.finish()
    }

    /// `step {"n":K}` — advance up to K iterations (default 1) spread
    /// round-robin over the shards, streaming campaign events (tagged
    /// with their shard id), then a `stepped` summary.
    fn step_frames(&mut self, req: &JValue, out: &mut Vec<String>) {
        let n = req.u64_field("n").unwrap_or(1);
        let mut ran = 0u64;
        let mut errors = 0u64;
        for _ in 0..n {
            match self.step_round_robin() {
                Ok(Some(idx)) => {
                    ran += 1;
                    for ev in self.shards[idx].drain_events() {
                        out.push(event_frame(&ev, idx as u64));
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    errors += 1;
                    break;
                }
            }
        }
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "stepped");
            w.field_u64("ran", ran);
            w.field_u64("errors", errors);
            w.field_u64("next_iter", self.total_next_iter());
            w.field_u64("findings", self.total_findings());
            w.field_u64("quarantined", self.total_crashes());
            w.field_bool("end", true);
        });
        out.push(w.finish());
    }

    /// `profile` — the merged cycle-attribution profile of every
    /// execution admitted so far, folded across shards in shard-id
    /// order (the same deterministic merge `stats` uses for
    /// snapshots), so the frame is byte-identical for a fixed
    /// `(seed, script)` regardless of shard count timing.
    fn profile_frame(&self) -> String {
        let mut profile = self.shards[0].state().profile.clone();
        for c in &self.shards[1..] {
            profile.merge(&c.state().profile);
        }
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "profile");
            w.field_u64("next_iter", self.total_next_iter());
            w.field("profile", |w| w.raw(&profile.to_json()));
            w.field_bool("end", true);
        });
        w.finish()
    }

    fn total_findings(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.state().findings.len() as u64)
            .sum()
    }

    fn total_crashes(&self) -> u64 {
        self.shards
            .iter()
            .map(|c| c.state().crashes.len() as u64)
            .sum()
    }

    /// `watch {"findings":N}` — run until the combined finding +
    /// quarantine count reaches N (or the budget ends), streaming each
    /// discovery the iteration it lands, then a `watched` summary.
    fn watch_frames(&mut self, req: &JValue, out: &mut Vec<String>) {
        let current = self.total_findings() + self.total_crashes();
        let target = req.u64_field("findings").unwrap_or(current + 1);
        let mut ran = 0u64;
        let mut errors = 0u64;
        loop {
            if self.total_findings() + self.total_crashes() >= target {
                break;
            }
            match self.step_round_robin() {
                Ok(Some(idx)) => {
                    ran += 1;
                    for ev in self.shards[idx].drain_events() {
                        out.push(event_frame(&ev, idx as u64));
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    errors += 1;
                    break;
                }
            }
        }
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "watched");
            w.field_u64("target", target);
            w.field_u64("ran", ran);
            w.field_u64("errors", errors);
            w.field_u64("findings", self.total_findings());
            w.field_u64("quarantined", self.total_crashes());
            w.field_u64("next_iter", self.total_next_iter());
            w.field_bool("end", true);
        });
        out.push(w.finish());
    }

    /// `health` — liveness counters, checkpoint age, and silent-loss
    /// indicators (journal evictions, per-exec recorder drops), summed
    /// across shards. Sharded sessions with a checkpoint dir also carry
    /// the per-shard on-disk generation vector.
    fn health_frame(&self) -> String {
        let next_iter = self.total_next_iter();
        let s0 = self.shards[0].state();
        let mut coverage = s0.global.clone();
        for c in &self.shards[1..] {
            coverage.merge(&c.state().global);
        }
        let corpus: u64 = self
            .shards
            .iter()
            .map(|c| c.state().corpus.len() as u64)
            .sum();
        let journal_len: u64 = self
            .shards
            .iter()
            .map(|c| c.state().journal.len() as u64)
            .sum();
        let journal_dropped: u64 = self
            .shards
            .iter()
            .map(|c| c.state().journal.dropped())
            .sum();
        let trace_dropped: u64 = self.shards.iter().map(|c| c.state().trace_dropped).sum();
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "health");
            w.field_u64("next_iter", next_iter);
            w.field_u64("iters", self.cfg.iters * self.shards.len() as u64);
            w.field_u64("shards", self.shards.len() as u64);
            w.field_u64("findings", self.total_findings());
            w.field_u64("quarantined", self.total_crashes());
            w.field_u64("corpus", corpus);
            w.field_u64("coverage_bits", coverage.count_ones() as u64);
            w.field("checkpoint", |w| match self.shards[0].last_checkpoint() {
                None => w.raw("null"),
                Some((sequence, at_iter)) => w.obj(|w| {
                    w.field_u64("sequence", sequence);
                    w.field_u64("at_iter", at_iter);
                    w.field_u64(
                        "age_iters",
                        self.shards[0].next_iter().saturating_sub(at_iter),
                    );
                }),
            });
            // The durable complement of the live ages above: what a
            // resume would actually find on disk, per shard.
            if self.shards.len() > 1 {
                if let Some(dir) = &self.cfg.checkpoint_dir {
                    let gens = shard_generations(dir);
                    w.field("generations", |w| {
                        w.arr(|w| {
                            for (shard, sequence) in gens {
                                w.elem(|w| {
                                    w.obj(|w| {
                                        w.field_u64("shard", u64::from(shard));
                                        w.field_u64("sequence", sequence);
                                    });
                                });
                            }
                        });
                    });
                }
            }
            w.field_u64("journal_len", journal_len);
            w.field_u64("journal_dropped", journal_dropped);
            w.field_u64("trace_dropped", trace_dropped);
            w.field_bool("end", true);
        });
        w.finish()
    }

    /// `posture` — one audit frame per fuzz machine configuration
    /// (tagged with its device family), then per-device-model summary
    /// sections and a sweep total. Each config boots a fresh machine of
    /// its family through the [`devsim::DeviceModel`] trait, gets a
    /// short warmup (RX traffic plus a flush period) so deferred
    /// configs actually open §5.2.1 windows, and an assessed
    /// [`PostureReport`].
    fn posture_frames(&self, out: &mut Vec<String>) {
        let mut exposed = 0u64;
        // (device name, configs swept, exposed count) in matrix order.
        let mut sections: Vec<(&'static str, u64, u64)> = Vec::new();
        for config_id in 0..NUM_CONFIGS {
            let device = config_device(config_id).name();
            let report = posture_of_config(config_id, self.cfg.seed);
            let is_exposed = report.grade == "exposed";
            if is_exposed {
                exposed += 1;
            }
            match sections.iter_mut().find(|(d, ..)| *d == device) {
                Some(s) => {
                    s.1 += 1;
                    s.2 += is_exposed as u64;
                }
                None => sections.push((device, 1, is_exposed as u64)),
            }
            let mut w = JsonWriter::new();
            w.obj(|w| {
                w.field_str("frame", "posture");
                w.field_u64("config", config_id as u64);
                w.field_str("device", device);
                w.field("report", |w| w.raw(&report.to_json()));
            });
            out.push(w.finish());
        }
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "posture_done");
            w.field_u64("configs", NUM_CONFIGS as u64);
            w.field_u64("exposed", exposed);
            w.field("devices", |w| {
                w.arr(|w| {
                    for (device, configs, dev_exposed) in &sections {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_str("device", device);
                                w.field_u64("configs", *configs);
                                w.field_u64("exposed", *dev_exposed);
                            });
                        });
                    }
                });
            });
            w.field_bool("end", true);
        });
        out.push(w.finish());
    }

    /// `chrome` — the campaign journal(s), concatenated in shard
    /// order, as a Perfetto trace document.
    fn chrome_frame(&self) -> String {
        let mut events = Vec::new();
        for c in &self.shards {
            events.extend(c.state().journal.snapshot());
        }
        let trace = chrome::export(&[], &events);
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("frame", "chrome");
            w.field_u64("events", events.len() as u64);
            w.field("trace", |w| w.raw(&trace));
            w.field_bool("end", true);
        });
        w.finish()
    }

    /// Runs a whole client script in-memory (no sockets): one request
    /// per line, blank lines and `#` comments skipped. Returns the
    /// newline-terminated transcript — exactly what a TCP client would
    /// have read. Tests and the bench harness use this; byte-equality
    /// with two identically-seeded servers is the determinism pin.
    pub fn run_script(&mut self, script: &str) -> String {
        let mut conn = ConnState::default();
        let mut transcript = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut out = Vec::new();
            let flow = self.handle_line(line, &mut conn, &mut out);
            for frame in out {
                transcript.push_str(&frame);
                transcript.push('\n');
            }
            match flow {
                Flow::Continue => {}
                Flow::CloseConn => conn = ConnState::default(),
                Flow::Shutdown => break,
            }
        }
        transcript
    }

    /// Serves connections from `listener` until a `shutdown` request
    /// (or, when `max_conns` is set, that many connections have come
    /// and gone). Single-threaded by design: connections are handled
    /// strictly in accept order, which keeps the campaign free of
    /// interleaving nondeterminism.
    pub fn serve(mut self, listener: TcpListener, max_conns: Option<usize>) -> std::io::Result<()> {
        for (served, stream) in listener.incoming().enumerate() {
            let stream = stream?;
            let done = self.serve_conn(stream)?;
            if done || max_conns.is_some_and(|m| served + 1 >= m) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Handles one TCP connection; `Ok(true)` means shutdown was
    /// requested.
    fn serve_conn(&mut self, stream: TcpStream) -> std::io::Result<bool> {
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut conn = ConnState::default();
        loop {
            let line = match read_capped_line(&mut reader)? {
                ReadLine::Eof => return Ok(false),
                ReadLine::TooLong => {
                    // Answer, then drop the connection: the rest of the
                    // oversized line is unframed garbage.
                    writer.write_all(error_frame("request line exceeds 65536 bytes").as_bytes())?;
                    writer.write_all(b"\n")?;
                    return Ok(false);
                }
                ReadLine::Line(l) => l,
            };
            let mut out = Vec::new();
            let flow = self.handle_line(&line, &mut conn, &mut out);
            for frame in out {
                writer.write_all(frame.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            match flow {
                Flow::Continue => {}
                Flow::CloseConn => return Ok(false),
                Flow::Shutdown => return Ok(true),
            }
        }
    }
}

/// Builds the assessed posture report for one fuzz machine config:
/// fresh machine of the config's device family, short warmup, one
/// deferred-flush period, then the audit. Pure function of
/// `(config_id, seed)`.
pub fn posture_of_config(config_id: u8, seed: u64) -> PostureReport {
    let name = config_name(config_id);
    let cfg = machine_config(config_id, seed);
    match devsim::boot_model(cfg, devsim::BootSpec::Quiet) {
        Ok(mut m) => {
            for i in 0..POSTURE_WARMUP_PACKETS {
                let _ = m.deliver(64, i as u8);
            }
            // One full flush period so deferred configs retire their
            // unmaps and record §5.2.1 window widths.
            m.tick_ms(11);
            m.posture(name)
        }
        Err(_) => {
            // A config that cannot even boot is its own (worst) answer.
            let mut r = PostureReport::new(name, "strict");
            r.assess();
            r
        }
    }
}

/// Renders one [`CampaignEvent`] as a (non-final) stream frame tagged
/// with the shard that produced it.
fn event_frame(ev: &CampaignEvent, shard: u64) -> String {
    let mut w = JsonWriter::new();
    w.obj(|w| match ev {
        CampaignEvent::Finding {
            iteration,
            id,
            taxonomy,
            class,
            site,
            window,
        } => {
            w.field_str("frame", "finding");
            w.field_u64("shard", shard);
            w.field_u64("iteration", *iteration);
            w.field_str("id", id);
            w.field_str("taxonomy", &taxonomy.to_string());
            w.field_str("class", class);
            w.field_str("site", site);
            w.field("window", |w| match window {
                Some(p) => w.str(p),
                None => w.raw("null"),
            });
        }
        CampaignEvent::Quarantine {
            iteration,
            id,
            kind,
            detail,
        } => {
            w.field_str("frame", "quarantine");
            w.field_u64("shard", shard);
            w.field_u64("iteration", *iteration);
            w.field_str("id", id);
            w.field_str("kind", kind.as_str());
            w.field_str("detail", detail);
        }
        CampaignEvent::CoverageGrew {
            iteration,
            bits,
            corpus,
        } => {
            w.field_str("frame", "coverage");
            w.field_u64("shard", shard);
            w.field_u64("iteration", *iteration);
            w.field_u64("bits", *bits as u64);
            w.field_u64("corpus", *corpus as u64);
        }
        CampaignEvent::Checkpoint {
            iteration,
            sequence,
        } => {
            w.field_str("frame", "checkpoint");
            w.field_u64("shard", shard);
            w.field_u64("iteration", *iteration);
            w.field_u64("sequence", *sequence);
        }
    });
    w.finish()
}

/// The `error` frame every refused request gets.
fn error_frame(msg: &str) -> String {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("frame", "error");
        w.field_bool("ok", false);
        w.field_str("error", msg);
        w.field_bool("end", true);
    });
    w.finish()
}

enum ReadLine {
    Line(String),
    TooLong,
    Eof,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// [`MAX_LINE`] bytes of it; the remainder of an over-long line is not
/// consumed (the caller closes the connection).
fn read_capped_line(reader: &mut impl BufRead) -> std::io::Result<ReadLine> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                ReadLine::Eof
            } else {
                // Partial frame then disconnect: discard quietly.
                ReadLine::Eof
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > MAX_LINE {
                    return Ok(ReadLine::TooLong);
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return Ok(ReadLine::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            None => {
                let n = buf.len();
                if line.len() + n > MAX_LINE {
                    return Ok(ReadLine::TooLong);
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// The scripted-client front-end: binds an ephemeral local port, serves
/// the campaign on a background thread, and plays `script` against it
/// over real TCP — one request per line, reading frames until the
/// [`END_MARKER`] after each. A `shutdown` request is appended when the
/// script does not end with one, so the server thread always exits.
/// Returns the full transcript (every response line, in order).
pub fn run_scripted_session(cfg: ServeConfig, script: &str) -> std::io::Result<String> {
    let server = Server::new(cfg)
        .map_err(|e| std::io::Error::other(format!("campaign setup failed: {e:?}")))?;
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || server.serve(listener, Some(1)));

    let mut requests: Vec<String> = script
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    if requests.last().map(|l| l.contains("\"shutdown\"")) != Some(true) {
        requests.push("{\"req\":\"shutdown\"}".to_string());
    }

    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut transcript = String::new();
    for req in &requests {
        writer.write_all(req.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        loop {
            let mut frame = String::new();
            if reader.read_line(&mut frame)? == 0 {
                break;
            }
            transcript.push_str(&frame);
            if frame.trim_end().ends_with(END_MARKER) {
                break;
            }
        }
    }
    drop(writer);
    drop(reader);
    handle
        .join()
        .map_err(|_| std::io::Error::other("server thread panicked"))?
        .map(|_| transcript)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(seed: u64, iters: u64) -> Server {
        Server::new(ServeConfig::new(seed, iters)).unwrap()
    }

    #[test]
    fn hello_and_shutdown_frames() {
        let mut s = server(7, 4);
        let t = s.run_script("{\"req\":\"hello\"}\n{\"req\":\"shutdown\"}");
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"frame\":\"hello\",\"proto\":1,\"seed\":7,"));
        assert!(lines[0].ends_with(END_MARKER));
        assert!(lines[1].starts_with("{\"frame\":\"bye\""));
    }

    #[test]
    fn unknown_and_malformed_requests_answer_error_frames() {
        let mut s = server(7, 4);
        let mut conn = ConnState::default();
        for bad in ["{\"req\":\"warp\"}", "{not json", "42", "[]"] {
            let mut out = Vec::new();
            let flow = s.handle_line(bad, &mut conn, &mut out);
            assert_eq!(flow, Flow::Continue, "{bad}");
            assert_eq!(out.len(), 1);
            assert!(
                out[0].starts_with("{\"frame\":\"error\",\"ok\":false,"),
                "{bad}"
            );
            assert!(out[0].ends_with(END_MARKER));
        }
        // The connection survived: a good request still works.
        let mut out = Vec::new();
        s.handle_line("{\"req\":\"hello\"}", &mut conn, &mut out);
        assert!(out[0].starts_with("{\"frame\":\"hello\""));
    }

    #[test]
    fn oversized_request_line_closes_the_connection() {
        let mut s = server(7, 4);
        let mut conn = ConnState::default();
        let mut out = Vec::new();
        let huge = format!("{{\"req\":\"{}\"}}", "x".repeat(MAX_LINE));
        let flow = s.handle_line(&huge, &mut conn, &mut out);
        assert_eq!(flow, Flow::CloseConn);
        assert!(out[0].contains("exceeds"));
    }

    #[test]
    fn stats_delta_needs_a_baseline_then_shrinks() {
        let mut s = server(7, 16);
        let mut conn = ConnState::default();
        let mut out = Vec::new();
        // First delta request has no baseline: falls back to full.
        s.handle_line(
            "{\"req\":\"stats\",\"mode\":\"delta\"}",
            &mut conn,
            &mut out,
        );
        assert!(out[0].contains("\"mode\":\"full\""));
        s.handle_line("{\"req\":\"step\",\"n\":4}", &mut conn, &mut out);
        out.clear();
        s.handle_line(
            "{\"req\":\"stats\",\"mode\":\"delta\"}",
            &mut conn,
            &mut out,
        );
        assert!(out[0].contains("\"mode\":\"delta\""), "{}", out[0]);
        let v = dma_core::jsonr::parse(&out[0]).unwrap();
        let delta = v.get("delta").unwrap();
        assert!(delta.u64_field("changed").unwrap() > 0);
    }

    #[test]
    fn step_streams_finding_frames_with_taxonomy() {
        let mut s = server(7, 96);
        let t = s.run_script("{\"req\":\"step\",\"n\":96}\n{\"req\":\"shutdown\"}");
        let findings: Vec<&str> = t
            .lines()
            .filter(|l| l.starts_with("{\"frame\":\"finding\""))
            .collect();
        assert!(!findings.is_empty(), "seed 7 x 96 must rediscover classes");
        for f in &findings {
            let v = dma_core::jsonr::parse(f).unwrap();
            let id = v.str_field("id").unwrap();
            assert!(id.starts_with("dk-") && id.len() == 19, "{id}");
            let tax = v.str_field("taxonomy").unwrap();
            assert!(["a", "b", "c", "d"].contains(&tax), "{tax}");
        }
        assert!(t.lines().any(|l| l.starts_with("{\"frame\":\"stepped\"")));
    }

    #[test]
    fn watch_reaches_a_finding_target() {
        let mut s = server(7, 96);
        let t = s.run_script("{\"req\":\"watch\",\"findings\":2}\n{\"req\":\"health\"}");
        let summary = t
            .lines()
            .find(|l| l.starts_with("{\"frame\":\"watched\""))
            .expect("watched frame");
        let v = dma_core::jsonr::parse(summary).unwrap();
        assert!(v.u64_field("findings").unwrap() + v.u64_field("quarantined").unwrap() >= 2);
        let health = t
            .lines()
            .find(|l| l.starts_with("{\"frame\":\"health\""))
            .expect("health frame");
        let h = dma_core::jsonr::parse(health).unwrap();
        assert!(h.u64_field("next_iter").unwrap() > 0);
        assert!(matches!(h.get("checkpoint"), Some(JValue::Null)));
    }

    #[test]
    fn posture_sweep_distinguishes_strict_and_deferred() {
        let mut s = server(7, 4);
        let t = s.run_script("{\"req\":\"posture\"}");
        let frames: Vec<&str> = t
            .lines()
            .filter(|l| l.starts_with("{\"frame\":\"posture\","))
            .collect();
        assert_eq!(frames.len(), NUM_CONFIGS as usize);
        let mut grades = Vec::new();
        for f in &frames {
            let v = dma_core::jsonr::parse(f).unwrap();
            let r = v.get("report").unwrap();
            grades.push((
                r.str_field("invalidation").unwrap().to_string(),
                r.str_field("grade").unwrap().to_string(),
            ));
        }
        assert!(grades.iter().any(|(i, _)| i == "strict"));
        assert!(grades.iter().any(|(i, _)| i == "deferred"));
        // Every deferred config is exposed via the Sec. 5.2.1 window.
        for (inval, grade) in &grades {
            if inval == "deferred" {
                assert_eq!(grade, "exposed");
            }
        }
        // The page-per-buffer strict config has no warn/high finding at
        // all — the sweep distinguishes hardened from exposed stacks.
        assert!(grades.contains(&("strict".to_string(), "hardened".to_string())));
        assert!(t.contains("stale-translation-window"));
        assert!(t.contains("5.2.1"));
    }

    #[test]
    fn chrome_frame_embeds_a_trace_document() {
        let mut s = server(7, 32);
        let t = s.run_script("{\"req\":\"step\",\"n\":32}\n{\"req\":\"chrome\"}");
        let frame = t
            .lines()
            .find(|l| l.starts_with("{\"frame\":\"chrome\""))
            .expect("chrome frame");
        let v = dma_core::jsonr::parse(frame).unwrap();
        assert!(v.u64_field("events").unwrap() > 0);
        assert!(v.get("trace").unwrap().get("traceEvents").is_some());
    }

    #[test]
    fn identical_scripts_yield_byte_identical_transcripts() {
        let script = "{\"req\":\"hello\"}\n{\"req\":\"step\",\"n\":48}\n\
                      {\"req\":\"stats\"}\n{\"req\":\"stats\",\"mode\":\"delta\"}\n\
                      {\"req\":\"posture\"}\n{\"req\":\"health\"}\n{\"req\":\"shutdown\"}";
        let a = server(7, 64).run_script(script);
        let b = server(7, 64).run_script(script);
        assert_eq!(a, b);
        let c = server(8, 64).run_script(script);
        assert_ne!(a, c, "different seed must diverge");
    }

    #[test]
    fn tcp_scripted_session_matches_in_memory_transcript() {
        let script = "{\"req\":\"hello\"}\n{\"req\":\"step\",\"n\":8}\n{\"req\":\"health\"}\n{\"req\":\"shutdown\"}";
        let tcp = run_scripted_session(ServeConfig::new(7, 16), script).unwrap();
        let mem = server(7, 16).run_script(script);
        assert_eq!(tcp, mem);
    }

    #[test]
    fn partial_frame_then_disconnect_is_discarded() {
        let server = Server::new(ServeConfig::new(7, 4)).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve(listener, Some(2)));
        {
            // Half a request, no newline, then disconnect.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"{\"req\":\"hel").unwrap();
        }
        // The server must still be alive for the next connection.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        w.write_all(b"{\"req\":\"hello\"}\n{\"req\":\"shutdown\"}\n")
            .unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"frame\":\"hello\""), "{line}");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_line_over_tcp_gets_error_then_close() {
        let server = Server::new(ServeConfig::new(7, 4)).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.serve(listener, Some(2)));
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = stream.try_clone().unwrap();
            let mut r = BufReader::new(stream);
            let huge = vec![b'x'; MAX_LINE + 1024];
            w.write_all(&huge).unwrap();
            w.flush().unwrap();
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert!(line.contains("\"frame\":\"error\""), "{line}");
            // Connection is closed afterwards.
            let mut rest = String::new();
            assert_eq!(r.read_line(&mut rest).unwrap(), 0);
        }
        // Server accepts a fresh connection and shuts down cleanly.
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = BufReader::new(stream);
        w.write_all(b"{\"req\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.starts_with("{\"frame\":\"bye\""));
        handle.join().unwrap().unwrap();
    }
}
