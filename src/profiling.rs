//! The `dma-lab profile` workload and the `dma-lab bench --check`
//! trajectory gate.
//!
//! ## The profile workload
//!
//! [`run_profile`] executes the canonical fuzz inputs for a seed —
//! `FuzzInput::generate(seed, it)` for `it` in `[0, iters)` — on warm
//! template executors and folds every per-exec cycle-attribution
//! profile ([`dma_core::Profile`]) into one call tree. `--shards N`
//! partitions the *iteration range* into `N` contiguous chunks run on
//! `N` threads; because an input is a pure function of
//! `(seed, iteration)` and [`dma_core::Profile::merge`] is an
//! associative, commutative sum folded in chunk order, the merged
//! profile is **byte-identical for any shard count** — unlike the
//! campaign engine's shards, which deliberately re-seed per shard.
//!
//! ## The trajectory gate
//!
//! [`check_bench_file`] re-runs the deterministic simulated-cycle
//! workload behind a committed `BENCH_*.json` (fuzz / scale / zoo /
//! profile) and compares the watched metrics against the committed
//! values, each under a per-metric tolerance (exact for counts, a
//! small relative band for cycle totals so deliberate cost-model
//! tweaks don't churn the gate). `dma-lab bench --check` exits 1 when
//! any metric regresses beyond its tolerance.

use std::fmt::Write as _;
use std::path::Path;

use dma_core::jsonw::JsonWriter;
use dma_core::{DmaError, JValue, Profile, Result};
use fuzz::{parse_config, ExecContext, FuzzConfig, FuzzInput, ShardConfig, ShardedCampaign};

/// Configuration of one `dma-lab profile` run.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Input seed; every iteration derives from it.
    pub seed: u64,
    /// Number of inputs executed (`[0, iters)`).
    pub iters: u64,
    /// When set, every input is pinned to this machine config.
    pub only_config: Option<u8>,
    /// Contiguous iteration chunks run on this many threads.
    pub shards: u32,
}

impl ProfileConfig {
    /// A plain single-threaded run.
    pub fn new(seed: u64, iters: u64) -> ProfileConfig {
        ProfileConfig {
            seed,
            iters,
            only_config: None,
            shards: 1,
        }
    }
}

/// What one profile run produced.
#[derive(Clone, Debug)]
pub struct ProfileRun {
    /// The run seed.
    pub seed: u64,
    /// Requested iteration budget.
    pub iters: u64,
    /// Inputs executed (== `iters`; errors abort the run).
    pub execs: u64,
    /// Total simulated cycles across all executions.
    pub total_cycles: u64,
    /// The merged cycle-attribution call tree.
    pub profile: Profile,
}

/// Runs the profile workload. See the module docs for the sharding
/// model and its byte-identity argument.
pub fn run_profile(cfg: &ProfileConfig) -> Result<ProfileRun> {
    let shards = cfg.shards.max(1).min(cfg.iters.max(1) as u32) as u64;
    let chunks: Vec<(u64, u64)> = (0..shards)
        .map(|s| (cfg.iters * s / shards, cfg.iters * (s + 1) / shards))
        .collect();
    let run_chunk = |(lo, hi): (u64, u64)| -> Result<(Profile, u64, u64)> {
        let mut cx = ExecContext::new();
        let mut profile = Profile::new();
        let mut execs = 0u64;
        let mut cycles = 0u64;
        for it in lo..hi {
            let mut input = FuzzInput::generate(cfg.seed, it);
            if let Some(c) = cfg.only_config {
                input.config_id = c;
            }
            let out = cx.execute(&input)?;
            profile.merge(&out.profile);
            execs += 1;
            cycles += out.cycles;
        }
        Ok((profile, execs, cycles))
    };
    let results: Vec<Result<(Profile, u64, u64)>> = if chunks.len() == 1 {
        vec![run_chunk(chunks[0])]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&chunk| scope.spawn(move || run_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or(Err(DmaError::Invariant("profile worker panicked")))
                })
                .collect()
        })
    };
    // Fold in chunk (== iteration) order: any contiguous partition of
    // the same range merges to the same tree.
    let mut run = ProfileRun {
        seed: cfg.seed,
        iters: cfg.iters,
        execs: 0,
        total_cycles: 0,
        profile: Profile::new(),
    };
    for r in results {
        let (profile, execs, cycles) = r?;
        run.profile.merge(&profile);
        run.execs += execs;
        run.total_cycles += cycles;
    }
    Ok(run)
}

impl ProfileRun {
    /// The deterministic half of `BENCH_profile.json`, and what
    /// [`check_bench_file`] re-derives to gate it: run facts, the
    /// per-phase (`exec.*`) breakdown, and the top self-cycle frame.
    pub fn deterministic_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("seed", self.seed);
            w.field_u64("iters", self.iters);
            w.field_u64("execs", self.execs);
            w.field_u64("total_cycles", self.total_cycles);
            w.field_u64("attributed_cycles", self.profile.attributed_cycles());
            if let Some((frame, cycles)) = self.profile.top_self() {
                w.field("top_self", |w| {
                    w.obj(|w| {
                        w.field_str("frame", &frame);
                        w.field_u64("self_cycles", cycles);
                    });
                });
            }
            w.field("phases", |w| {
                w.arr(|w| {
                    for (name, calls, cycles) in self
                        .profile
                        .phases()
                        .into_iter()
                        .filter(|(name, _, _)| name.starts_with("exec."))
                    {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_str("phase", &name);
                                w.field_u64("calls", calls);
                                w.field_u64("cycles", cycles);
                            });
                        });
                    }
                });
            });
        });
        w.finish()
    }

    /// Human-readable summary: run facts, phase breakdown, hottest
    /// self-cycle frames, then the full call tree.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile seed {}: {} execs, {} simulated cycles ({} attributed)",
            self.seed,
            self.execs,
            self.total_cycles,
            self.profile.attributed_cycles()
        );
        let phases: Vec<String> = self
            .profile
            .phases()
            .into_iter()
            .filter(|(name, _, _)| name.starts_with("exec."))
            .map(|(name, calls, cycles)| format!("{name} {cycles}cyc/{calls}"))
            .collect();
        if !phases.is_empty() {
            let _ = writeln!(out, "phases: {}", phases.join("  "));
        }
        let _ = writeln!(out, "\nhottest frames (self cycles):");
        for (name, cycles) in self.profile.self_by_name().into_iter().take(8) {
            let _ = writeln!(out, "  {cycles:>14}  {name}");
        }
        let _ = writeln!(out, "\ncall tree:");
        out.push_str(&self.profile.render_text());
        out
    }
}

// ---------------------------------------------------------------------
// The bench-trajectory regression gate.
// ---------------------------------------------------------------------

/// One compared metric of a bench check.
#[derive(Clone, Debug)]
pub struct CheckRow {
    /// Dotted metric path, e.g. `rows[8].coverage_bits`.
    pub metric: String,
    /// Committed value.
    pub expected: String,
    /// Re-derived value.
    pub actual: String,
    /// Whether the actual value is within tolerance.
    pub ok: bool,
}

/// The verdict on one `BENCH_*.json` file.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The file's `report` kind (`fuzz`, `scale`, `zoo`, `profile`).
    pub report: String,
    /// Compared metrics, in document order.
    pub rows: Vec<CheckRow>,
    /// Set when the report kind has no re-runnable deterministic
    /// series (e.g. `observability`); such files are not a failure.
    pub skipped: Option<String>,
}

impl CheckOutcome {
    /// True when every compared metric is within tolerance.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }
}

/// Relative tolerance, in permille, for simulated-cycle totals: counts
/// (coverage bits, execs, channels) must match exactly, but cycle sums
/// may drift this much before the gate trips, so a deliberate
/// cost-constant tweak is a bench refresh, not a broken build.
pub const CYCLE_TOLERANCE_PERMILLE: u64 = 10;

fn within_permille(expected: u64, actual: u64, permille: u64) -> bool {
    let diff = expected.abs_diff(actual);
    // u128 keeps `diff * 1000` exact for cycle-scale values.
    (diff as u128) * 1000 <= (expected as u128) * (permille as u128)
}

fn exact_row(rows: &mut Vec<CheckRow>, metric: &str, expected: u64, actual: u64) {
    rows.push(CheckRow {
        metric: metric.to_string(),
        expected: expected.to_string(),
        actual: actual.to_string(),
        ok: expected == actual,
    });
}

fn cycles_row(rows: &mut Vec<CheckRow>, metric: &str, expected: u64, actual: u64) {
    rows.push(CheckRow {
        metric: metric.to_string(),
        expected: expected.to_string(),
        actual: actual.to_string(),
        ok: within_permille(expected, actual, CYCLE_TOLERANCE_PERMILLE),
    });
}

fn str_row(rows: &mut Vec<CheckRow>, metric: &str, expected: &str, actual: &str) {
    rows.push(CheckRow {
        metric: metric.to_string(),
        expected: expected.to_string(),
        actual: actual.to_string(),
        ok: expected == actual,
    });
}

fn malformed(path: &Path, what: &str) -> String {
    format!("{}: {what}", path.display())
}

/// Re-runs the deterministic workload behind one committed
/// `BENCH_*.json` and compares the watched metrics. `Err` means the
/// file is unreadable or structurally invalid — distinct from a
/// regression, which is a `CheckOutcome` with failing rows.
pub fn check_bench_file(path: &Path) -> std::result::Result<CheckOutcome, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| malformed(path, &format!("unreadable: {e}")))?;
    let doc = dma_core::jsonr::parse(&body).map_err(|_| malformed(path, "not valid JSON"))?;
    let report = doc
        .str_field("report")
        .ok_or_else(|| malformed(path, "missing \"report\" field"))?
        .to_string();
    let det = doc
        .get("deterministic")
        .ok_or_else(|| malformed(path, "missing \"deterministic\" section"))?;
    let mut rows = Vec::new();
    match report.as_str() {
        "fuzz" => check_fuzz(det, &mut rows).map_err(|w| malformed(path, w))?,
        "scale" => check_scale(det, &mut rows).map_err(|w| malformed(path, w))?,
        "zoo" => check_zoo(det, &mut rows).map_err(|w| malformed(path, w))?,
        "profile" => check_profile(det, &mut rows).map_err(|w| malformed(path, w))?,
        other => {
            return Ok(CheckOutcome {
                report: other.to_string(),
                rows,
                skipped: Some(format!(
                    "report kind '{other}' has no re-runnable deterministic series"
                )),
            });
        }
    }
    Ok(CheckOutcome {
        report,
        rows,
        skipped: None,
    })
}

fn check_fuzz(det: &JValue, rows: &mut Vec<CheckRow>) -> std::result::Result<(), &'static str> {
    let seed = det.u64_field("seed").ok_or("deterministic.seed missing")?;
    let iters = det
        .u64_field("iters")
        .ok_or("deterministic.iters missing")?;
    let report = fuzz::run_fuzz(&FuzzConfig {
        seed,
        iters,
        corpus_dir: None,
    })
    .map_err(|_| "fuzz campaign re-run failed")?;
    if let Some(execs) = det.u64_field("execs") {
        exact_row(rows, "execs", execs, report.execs);
    }
    if let Some(bits) = det.u64_field("coverage_bits") {
        exact_row(rows, "coverage_bits", bits, report.coverage_bits as u64);
    }
    if let Some(entries) = det.u64_field("corpus_entries") {
        exact_row(rows, "corpus_entries", entries, report.corpus.len() as u64);
    }
    if let Some(classes) = det.u64_field("finding_classes") {
        exact_row(
            rows,
            "finding_classes",
            classes,
            report.findings.len() as u64,
        );
    }
    if let Some(cycles) = det
        .get("series")
        .and_then(|s| s.u64_field("total_sim_cycles"))
    {
        cycles_row(rows, "series.total_sim_cycles", cycles, report.total_cycles);
    }
    Ok(())
}

fn check_scale(det: &JValue, rows: &mut Vec<CheckRow>) -> std::result::Result<(), &'static str> {
    let seed = det.u64_field("seed").ok_or("deterministic.seed missing")?;
    let iters = det
        .u64_field("iters_per_shard")
        .ok_or("deterministic.iters_per_shard missing")?;
    let committed = det
        .get("rows")
        .and_then(|r| r.as_arr())
        .ok_or("deterministic.rows missing")?;
    for row in committed {
        let shards = row.u64_field("shards").ok_or("rows[].shards missing")? as u32;
        let report = ShardedCampaign::new(ShardConfig::new(seed, iters, shards, 1))
            .run()
            .map_err(|_| "sharded campaign re-run failed")?;
        let tag = |m: &str| format!("rows[shards={shards}].{m}");
        if let Some(execs) = row.u64_field("execs") {
            exact_row(rows, &tag("execs"), execs, report.execs);
        }
        if let Some(bits) = row.u64_field("coverage_bits") {
            exact_row(
                rows,
                &tag("coverage_bits"),
                bits,
                report.coverage_bits as u64,
            );
        }
        if let Some(entries) = row.u64_field("corpus_entries") {
            exact_row(
                rows,
                &tag("corpus_entries"),
                entries,
                report.corpus.len() as u64,
            );
        }
        if let Some(classes) = row.u64_field("finding_classes") {
            exact_row(
                rows,
                &tag("finding_classes"),
                classes,
                report.findings.len() as u64,
            );
        }
        if let Some(cycles) = row.u64_field("total_cycles") {
            cycles_row(rows, &tag("total_cycles"), cycles, report.total_cycles);
        }
    }
    Ok(())
}

fn check_zoo(det: &JValue, rows: &mut Vec<CheckRow>) -> std::result::Result<(), &'static str> {
    let seed = det.u64_field("seed").ok_or("deterministic.seed missing")?;
    let devices = det
        .get("devices")
        .and_then(|d| d.as_arr())
        .ok_or("deterministic.devices missing")?;
    for dev in devices {
        let config_name = dev.str_field("config").ok_or("devices[].config missing")?;
        let config = parse_config(config_name).ok_or("devices[].config names no machine config")?;
        let map = fuzz::infer_channels(seed, config).map_err(|_| "channel inference failed")?;
        let tag = |m: &str| format!("devices[{config_name}].{m}");
        if let Some(events) = dev.u64_field("trace_events") {
            exact_row(rows, &tag("trace_events"), events, map.events);
        }
        if let Some(channels) = dev.u64_field("channels") {
            exact_row(rows, &tag("channels"), channels, map.channels.len() as u64);
        }
        if let Some(kinds) = dev.get("kinds").and_then(|k| k.as_arr()) {
            let expected: Vec<&str> = kinds.iter().filter_map(|k| k.as_str()).collect();
            let actual: Vec<&str> = map.channels.iter().map(|c| c.kind.name()).collect();
            str_row(rows, &tag("kinds"), &expected.join(","), &actual.join(","));
        }
    }
    Ok(())
}

fn check_profile(det: &JValue, rows: &mut Vec<CheckRow>) -> std::result::Result<(), &'static str> {
    let seed = det.u64_field("seed").ok_or("deterministic.seed missing")?;
    let iters = det
        .u64_field("iters")
        .ok_or("deterministic.iters missing")?;
    let run = run_profile(&ProfileConfig::new(seed, iters))
        .map_err(|_| "profile workload re-run failed")?;
    if let Some(execs) = det.u64_field("execs") {
        exact_row(rows, "execs", execs, run.execs);
    }
    if let Some(cycles) = det.u64_field("total_cycles") {
        cycles_row(rows, "total_cycles", cycles, run.total_cycles);
    }
    if let Some(attributed) = det.u64_field("attributed_cycles") {
        cycles_row(
            rows,
            "attributed_cycles",
            attributed,
            run.profile.attributed_cycles(),
        );
    }
    if let Some(top) = det.get("top_self") {
        let (frame, _) = run.profile.top_self().unwrap_or_default();
        if let Some(expected) = top.str_field("frame") {
            str_row(rows, "top_self.frame", expected, &frame);
        }
    }
    if let Some(phases) = det.get("phases").and_then(|p| p.as_arr()) {
        let actual = run.profile.phases();
        for p in phases {
            let name = p.str_field("phase").ok_or("phases[].phase missing")?;
            let found = actual.iter().find(|(n, _, _)| n == name);
            let (calls, cycles) = found.map(|(_, c, cy)| (*c, *cy)).unwrap_or((0, 0));
            if let Some(expected) = p.u64_field("calls") {
                exact_row(rows, &format!("phases[{name}].calls"), expected, calls);
            }
            if let Some(expected) = p.u64_field("cycles") {
                cycles_row(rows, &format!("phases[{name}].cycles"), expected, cycles);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_band_is_relative_and_exact_at_zero() {
        assert!(within_permille(1000, 1000, 0));
        assert!(!within_permille(1000, 1001, 0));
        assert!(within_permille(100_000, 100_999, 10));
        assert!(!within_permille(100_000, 101_001, 10));
        assert!(within_permille(100_000, 99_001, 10));
        // A zero expectation tolerates only zero.
        assert!(within_permille(0, 0, 10));
        assert!(!within_permille(0, 1, 10));
    }

    #[test]
    fn profile_run_is_byte_identical_across_shard_counts() {
        let mut one = ProfileConfig::new(3, 6);
        let mut three = ProfileConfig::new(3, 6);
        one.shards = 1;
        three.shards = 3;
        let a = run_profile(&one).unwrap();
        let b = run_profile(&three).unwrap();
        assert_eq!(a.profile.folded(), b.profile.folded());
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn unknown_report_kinds_are_skipped_not_failed() {
        let dir = std::env::temp_dir().join(format!("dma-lab-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_other.json");
        std::fs::write(&p, r#"{"report":"serve","deterministic":{}}"#).unwrap();
        let out = check_bench_file(&p).unwrap();
        assert!(out.skipped.is_some());
        assert!(out.passed());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_planted_regression_fails_the_check() {
        let dir = std::env::temp_dir().join(format!("dma-lab-plant-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("BENCH_fuzz.json");
        // A tiny campaign with a deliberately wrong coverage claim.
        let real = fuzz::run_fuzz(&FuzzConfig {
            seed: 5,
            iters: 4,
            corpus_dir: None,
        })
        .unwrap();
        std::fs::write(
            &p,
            format!(
                r#"{{"report":"fuzz","deterministic":{{"seed":5,"iters":4,"coverage_bits":{}}}}}"#,
                u64::from(real.coverage_bits) + 7
            ),
        )
        .unwrap();
        let out = check_bench_file(&p).unwrap();
        assert!(!out.passed());
        // And the honest value passes.
        std::fs::write(
            &p,
            format!(
                r#"{{"report":"fuzz","deterministic":{{"seed":5,"iters":4,"coverage_bits":{}}}}}"#,
                real.coverage_bits
            ),
        )
        .unwrap();
        assert!(check_bench_file(&p).unwrap().passed());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
