//! # dma-lab
//!
//! A full reproduction, in Rust, of *"Characterizing, Exploiting, and
//! Detecting DMA Code Injection Vulnerabilities in the Presence of an
//! IOMMU"* (Markuze et al., EuroSys '21).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`core`](dma_core) — addresses, the Table-1 kernel memory layout +
//!   KASLR, the sub-page vulnerability taxonomy (§3.2) and the three
//!   vulnerability attributes (§3.3).
//! - [`mem`](sim_mem) — simulated physical memory and the Linux-style
//!   allocators (buddy, SLUB kmalloc, page_frag).
//! - [`iommu`](sim_iommu) — the IOMMU: page tables, IOTLB,
//!   strict/deferred invalidation (§5.2.1), and the DMA API.
//! - [`net`](sim_net) — the network substrate: sk_buff /
//!   `skb_shared_info` byte layouts, drivers, GRO, forwarding.
//! - [`device`](devsim) — honest and malicious DMA device models plus
//!   the [`devsim::Testbed`] machine assembly.
//! - [`attacks`] — KASLR subversion, the gadget scanner and mini CPU,
//!   and the single-step + three compound attacks (§5, §6).
//! - [`spade`] — the static analyzer (§4.1) with its driver corpus.
//! - [`dkasan`] — the run-time sanitizer (§4.2).
//! - [`fuzz`] — deterministic coverage-guided DMA-input fuzzing with
//!   D-KASAN as oracle, behind `dma-lab fuzz`.
//! - [`defenses`] — the §8/§9 countermeasures (bounce buffers, DAMN,
//!   sub-page limits, KARL, CET) as executable ablations.
//! - [`obs`] — the observability workload: one deterministic run with
//!   every metric source lit, behind `dma-lab stats`/`dma-lab trace`.
//! - [`serve`] — live campaign telemetry: the line-JSON-over-TCP
//!   service behind `dma-lab serve` (streaming findings, metric
//!   deltas, the IOMMU posture audit, Perfetto export).
//! - [`profiling`] — the deterministic cycle-attribution profiler
//!   behind `dma-lab profile` (hierarchical span trees, flamegraph
//!   export) and the `dma-lab bench --check` trajectory gate.
//!
//! ## Quickstart
//!
//! ```
//! use dma_lab::devsim::{Testbed, TestbedConfig};
//! use dma_lab::sim_net::packet::Packet;
//!
//! let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
//! tb.deliver_packet(&Packet::udp(9, 1, b"hello".to_vec())).unwrap();
//! assert_eq!(tb.stack.stats.delivered, 1);
//! ```

pub mod obs;
pub mod profiling;
pub mod serve;

pub use attacks;
pub use defenses;
pub use devsim;
pub use dkasan;
pub use dma_core;
pub use fuzz;
pub use sim_iommu;
pub use sim_mem;
pub use sim_net;
pub use spade;
