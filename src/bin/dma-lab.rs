//! The dma-lab command-line interface: one binary driving every
//! experiment in the reproduction.
//!
//! ```text
//! dma-lab layout                          Table 1 + a KASLR sample
//! dma-lab spade [--filter P] [--seed N]   §4.1: Figure 2 + Table 2
//! dma-lab dkasan [--rounds N] [--seed N]  §4.2: Figure 3 report
//! dma-lab survey [--boots N] [--profile 5.0|4.15]   §5.3 reboot survey
//! dma-lab attack <ringflood|poisoned-tx|forward-thinking|single-step>
//!                [--window i|ii|iii] [--seed N]
//! dma-lab surveil [--seed N]              §5.5 arbitrary-page read
//! dma-lab stats [--seed N] [--json]       metrics snapshot of one run
//! dma-lab stats --diff A.json B.json      per-metric delta of two dumps
//! dma-lab trace --spans [--seed N]        span-scoped cycle timeline
//! dma-lab trace --chrome OUT.json         Perfetto/Chrome trace export
//! dma-lab serve [--seed N] [--iters N] [--port P] [--script FILE]
//!               live line-JSON campaign telemetry over TCP
//! dma-lab fuzz [--seed N] [--iters N] [--corpus-dir D] [--json]
//!              [--shards N] [--threads T] [--config ID|NAME]
//!              [--checkpoint-every N] [--checkpoint-dir D] [--resume D]
//!              [--watchdog-budget CYCLES] [--plant-panic K] [--plant-hang K]
//! dma-lab infer [--seed N] [--config ID|NAME]
//!               inferred DMA-channel maps (one JSON line per config)
//! dma-lab forensics [--seed N] [--iters N] [--json]
//! dma-lab help
//! ```
//!
//! Exit codes: `0` success, `1` experiment/run error, `2` usage error
//! (unknown command or malformed arguments).

use dma_lab::attacks::image::KernelImage;
use dma_lab::attacks::ringflood::{self, BootSurvey};
use dma_lab::attacks::{forward_thinking, poisoned_tx, single_step};
use dma_lab::devsim::MaliciousNic;
use dma_lab::dkasan::{run_workload, FindingKind, WorkloadConfig};
use dma_lab::dma_core::jsonw::JsonWriter;
use dma_lab::dma_core::vuln::WindowPath;
use dma_lab::dma_core::{DetRng, KernelLayout, SimCtx};
use dma_lab::obs::{render_timeline, run_observed, ObsConfig};
use dma_lab::sim_iommu::{InvalidationMode, Iommu, IommuConfig};
use dma_lab::sim_mem::{MemConfig, MemorySystem};
use dma_lab::spade::analysis::analyze;
use dma_lab::spade::corpus::{full_corpus, CorpusMix};
use dma_lab::spade::report::{Table2, TraceReport};
use dma_lab::spade::xref::SourceTree;

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                // A flag only consumes the next token as its value when
                // that token is not itself a flag, so bare booleans
                // compose: `--json --seed 5` keeps both.
                if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                    flags.insert(key.to_string(), raw[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string(), String::new());
                    i += 1;
                }
            } else {
                positional.push(raw[i].clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    /// Parses `--key` as u64, erroring on anything present but
    /// malformed (junk, empty, or overflowing) instead of silently
    /// falling back to the default — a mistyped seed must be a usage
    /// error, not a different experiment.
    fn u64_flag(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} wants an unsigned 64-bit integer, got '{v}'")),
        }
    }

    fn str_flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// True when `--key` was given at all (with or without a value).
    fn bool_flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

/// Unwraps a hardened numeric flag, turning a parse failure into the
/// documented exit-code-2 usage error.
macro_rules! num_flag {
    ($args:expr, $key:expr, $default:expr) => {
        match $args.u64_flag($key, $default) {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("{msg}\n{HELP}");
                return 2;
            }
        }
    };
}

fn window_of(args: &Args) -> WindowPath {
    match args.str_flag("window") {
        Some("i") => WindowPath::UnmapAfterBuild,
        Some("iii") => WindowPath::NeighborIova,
        _ => WindowPath::DeferredIotlb,
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cmd = raw
        .first()
        .map(|s| s.as_str())
        .unwrap_or("help")
        .to_string();
    let args = Args::parse(&raw[raw.len().min(1)..]);
    let code = match cmd.as_str() {
        "layout" => cmd_layout(&args),
        "spade" => cmd_spade(&args),
        "dkasan" => cmd_dkasan(&args),
        "survey" => cmd_survey(&args),
        "attack" => cmd_attack(&args),
        "surveil" => cmd_surveil(&args),
        "dos" => cmd_dos(&args),
        "dump" => cmd_dump(&args),
        "chaos" => cmd_chaos(&args),
        "stats" => cmd_stats(&args),
        "trace" => cmd_trace(&args),
        "fuzz" => cmd_fuzz(&args),
        "profile" => cmd_profile(&args),
        "bench" => cmd_bench(&args),
        "infer" => cmd_infer(&args),
        "forensics" => cmd_forensics(&args),
        "serve" => cmd_serve(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            0
        }
        other => {
            eprintln!("unknown command '{other}'\n{HELP}");
            2
        }
    };
    std::process::exit(code);
}

const HELP: &str = "\
dma-lab — reproduction of 'DMA Code Injection Vulnerabilities in the
Presence of an IOMMU' (EuroSys '21)

USAGE:
    dma-lab layout
    dma-lab spade [--filter PATH-SUBSTRING] [--seed N] [--tsv 1] [--json]
    dma-lab survey [--boots N] [--profile 5.0|4.15]
    dma-lab attack <ringflood|poisoned-tx|forward-thinking|single-step>
                   [--window i|ii|iii] [--seed N]
    dma-lab surveil [--seed N]
    dma-lab dos [--seed N]
    dma-lab dump [--seed N] [--start PFN] [--frames N]
    dma-lab dkasan [--rounds N] [--seed N] [--faults SEED] [--json]
    dma-lab chaos [--seed N] [--runs N] [--json]
    dma-lab stats [--seed N] [--rounds N] [--faults SEED] [--json]
                  [--checkpoint-dir DIR]
    dma-lab stats --diff OLD.json NEW.json [--json]
    dma-lab trace --spans [--seed N] [--rounds N] [--json] [--chrome OUT.json]
    dma-lab serve [--seed N] [--iters N] [--port P] [--script FILE] [--shards N]
                  [--transcript OUT] [--checkpoint-dir DIR] [--checkpoint-every N]
    dma-lab fuzz [--seed N] [--iters N] [--corpus-dir DIR] [--json]
                 [--shards N] [--threads T] [--config ID|NAME]
                 [--checkpoint-every N] [--checkpoint-dir DIR] [--resume DIR]
                 [--watchdog-budget CYCLES] [--plant-panic K] [--plant-hang K]
    dma-lab profile [--seed N] [--iters N] [--config ID|NAME] [--shards N]
                    [--folded OUT.txt] [--json]
    dma-lab bench --check BENCH.json [BENCH.json ...]
    dma-lab infer [--seed N] [--config ID|NAME]
    dma-lab forensics [--seed N] [--iters N] [--json]
    dma-lab help

EXIT CODES:
    0 success    1 experiment/run error    2 usage error
";

fn cmd_layout(args: &Args) -> i32 {
    println!(
        "{:<18} {:<18} {:>8}  VM area description",
        "Start Addr", "End Addr", "Size"
    );
    for (start, end, size, desc) in KernelLayout::table1() {
        println!("{start:<18} {end:<18} {size:>8}  {desc}");
    }
    let seed = num_flag!(args, "seed", 1);
    let mut rng = DetRng::new(seed);
    let l = KernelLayout::randomize(&mut rng, 256 << 20);
    println!("\nKASLR sample (seed {seed}):");
    println!("  text_base        = {}", l.text_base);
    println!("  page_offset_base = {}", l.page_offset_base);
    println!("  vmemmap_base     = {}", l.vmemmap_base);
    0
}

fn cmd_spade(args: &Args) -> i32 {
    let seed = num_flag!(args, "seed", 1);
    let corpus = full_corpus(&CorpusMix::default(), seed);
    let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    let findings = analyze(&tree);
    if let Some(pat) = args.str_flag("filter") {
        let mut shown = 0;
        for f in findings.iter().filter(|f| f.file.contains(pat)) {
            println!("--- {}:{} ({}) ---", f.file, f.line, f.caller);
            println!("{}", TraceReport(f));
            shown += 1;
        }
        println!("{shown} finding(s) matched '{pat}'");
        return 0;
    }
    if args.str_flag("tsv").is_some() {
        print!("{}", dma_lab::spade::report::render_tsv(&findings));
        return 0;
    }
    if args.bool_flag("json") {
        let t = Table2::from_findings(&findings);
        let rows = [
            ("callbacks_exposed", &t.callbacks_exposed),
            ("shinfo_mapped", &t.shinfo_mapped),
            ("callbacks_direct", &t.callbacks_direct),
            ("private_data", &t.private_data),
            ("stack_mapped", &t.stack_mapped),
            ("type_c", &t.type_c),
            ("build_skb", &t.build_skb),
            ("total", &t.total),
        ];
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("seed", seed);
            w.field("table2", |w| {
                w.obj(|w| {
                    for (name, row) in rows {
                        w.field(name, |w| {
                            w.obj(|w| {
                                w.field_u64("calls", row.calls as u64);
                                w.field_u64("files", row.files as u64);
                            });
                        });
                    }
                });
            });
            w.field_u64(
                "vulnerable_calls",
                Table2::vulnerable_calls(&findings) as u64,
            );
        });
        println!("{}", w.finish());
        return 0;
    }
    let t = Table2::from_findings(&findings);
    println!("{}", t.render());
    let v = Table2::vulnerable_calls(&findings);
    println!(
        "Potentially vulnerable: {v}/{} ({:.1}%)   [paper: 742/1019 (72.8%)]",
        t.total.calls,
        100.0 * v as f64 / t.total.calls as f64
    );
    0
}

fn cmd_dkasan(args: &Args) -> i32 {
    let cfg = WorkloadConfig {
        rounds: num_flag!(args, "rounds", 200) as usize,
        seed: num_flag!(args, "seed", 0xd0_ca5a),
        fault_seed: match args.str_flag("faults") {
            None => None,
            Some(_) => Some(num_flag!(args, "faults", 0)),
        },
    };
    match run_workload(cfg) {
        Ok(report) => {
            if args.bool_flag("json") {
                let mut w = JsonWriter::new();
                w.obj(|w| {
                    w.field_u64("packets", report.packets);
                    w.field_u64("allocs", report.allocs);
                    w.field_u64("dropped", report.dropped);
                    w.field("counts", |w| {
                        w.obj(|w| {
                            for kind in FindingKind::ALL {
                                w.field_u64(&kind.to_string(), report.count(kind) as u64);
                            }
                        });
                    });
                    w.field("findings", |w| {
                        w.arr(|w| {
                            for f in report.dkasan.findings() {
                                w.elem(|w| {
                                    w.obj(|w| {
                                        w.field_str("kind", &f.kind.to_string());
                                        w.field_u64("size", f.size as u64);
                                        w.field_str("rights", &f.rights.to_string());
                                        w.field_str("site", f.site);
                                        w.field_u64("page", f.page);
                                    });
                                });
                            }
                        });
                    });
                });
                println!("{}", w.finish());
                return 0;
            }
            println!("{}", report.render());
            println!();
            for kind in FindingKind::ALL {
                println!("{:<18} {}", kind.to_string(), report.count(kind));
            }
            0
        }
        Err(e) => {
            eprintln!("workload failed: {e}");
            1
        }
    }
}

fn cmd_chaos(args: &Args) -> i32 {
    // The isolated soak converts a panicking schedule into a reported
    // per-seed failure instead of killing the whole sweep.
    use dma_lab::devsim::chaos::run_soak_isolated as run_soak;
    let base = num_flag!(args, "seed", 1);
    let runs = num_flag!(args, "runs", 8);
    if args.bool_flag("json") {
        let mut failed = 0;
        let mut w = JsonWriter::new();
        w.arr(|w| {
            for seed in base..base + runs {
                w.elem(|w| match run_soak(seed) {
                    Ok(r) => {
                        w.obj(|w| {
                            w.field_u64("seed", r.seed);
                            w.field_u64("delivered", r.delivered);
                            w.field_u64("echoed", r.echoed);
                            w.field_u64("dropped", r.dropped);
                            w.field_u64("injected_total", r.injected_total);
                            w.field("hits_by_site", |w| {
                                w.obj(|w| {
                                    for (site, n) in &r.hits_by_site {
                                        w.field_u64(site, *n);
                                    }
                                });
                            });
                            w.field_u64("leaked_pages", r.leaked_pages as u64);
                            w.field("stats", |w| w.raw(&r.stats_json));
                        });
                        if r.leaked_pages > 0 {
                            failed += 1;
                        }
                    }
                    Err(e) => {
                        w.obj(|w| {
                            w.field_u64("seed", seed);
                            w.field_str("error", &e.to_string());
                        });
                        failed += 1;
                    }
                });
            }
        });
        println!("{}", w.finish());
        return i32::from(failed > 0);
    }
    println!(
        "{:>18}  {:>6} {:>7} {:>8} {:>6}  fault sites hit",
        "seed", "echoed", "dropped", "injected", "leaked"
    );
    let mut failed = 0;
    for seed in base..base + runs {
        match run_soak(seed) {
            Ok(r) => {
                let sites: Vec<String> = r
                    .hits_by_site
                    .iter()
                    .map(|(s, n)| format!("{s}×{n}"))
                    .collect();
                println!(
                    "{seed:>18}  {:>6} {:>7} {:>8} {:>6}  {}",
                    r.delivered + r.echoed,
                    r.dropped,
                    r.injected_total,
                    r.leaked_pages,
                    sites.join(" ")
                );
                if r.leaked_pages > 0 {
                    failed += 1;
                }
            }
            Err(e) => {
                println!("{seed:>18}  SOAK FAILED: {e}");
                failed += 1;
            }
        }
    }
    i32::from(failed > 0)
}

/// Shared config for the `stats` and `trace` observability commands.
/// `Err` carries the usage message of a malformed numeric flag.
fn obs_config(args: &Args) -> Result<ObsConfig, String> {
    Ok(ObsConfig {
        seed: args.u64_flag("seed", ObsConfig::default().seed)?,
        rounds: args.u64_flag("rounds", 200)? as usize,
        fault_seed: match args.str_flag("faults") {
            None => None,
            Some(_) => Some(args.u64_flag("faults", 0)?),
        },
    })
}

/// Unwraps [`obs_config`] into the exit-2 usage path.
macro_rules! obs_config_or_usage {
    ($args:expr) => {
        match obs_config($args) {
            Ok(cfg) => cfg,
            Err(msg) => {
                eprintln!("{msg}\n{HELP}");
                return 2;
            }
        }
    };
}

fn cmd_stats(args: &Args) -> i32 {
    // `--diff OLD.json NEW.json` is a pure file mode: no simulated run,
    // just the per-metric delta of two dumps written by `stats --json`
    // (or fetched from a `serve` stats frame). Exit 1 when any counter
    // regressed — counters are monotone in a live registry, so a drop
    // between dumps always marks a suspect trajectory.
    if args.bool_flag("diff") {
        let old_path = match args.str_flag("diff") {
            Some(p) if !p.is_empty() => p,
            _ => {
                eprintln!("--diff wants two metric dump paths\n{HELP}");
                return 2;
            }
        };
        let Some(new_path) = args.positional.first() else {
            eprintln!("--diff wants a second (newer) dump path\n{HELP}");
            return 2;
        };
        let load = |path: &str| -> Result<dma_lab::dma_core::Snapshot, String> {
            let doc =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            dma_lab::dma_core::Snapshot::from_json(&doc)
                .ok_or_else(|| format!("{path} is not a metrics dump"))
        };
        let (old, new) = match (load(old_path), load(new_path)) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return 1;
            }
        };
        let delta = new.diff(&old);
        if args.bool_flag("json") {
            println!("{}", delta.to_json());
        } else {
            print!("{}", delta.render_text());
        }
        // A watched metric that vanished from the newer dump is just as
        // suspect as a counter that went backwards — a zero-valued
        // counter or a dropped histogram would otherwise slip through
        // the value diff unnoticed.
        return i32::from(delta.has_regressions());
    }
    // `--checkpoint-dir DIR` folds the newest campaign checkpoint
    // generation into the report, so long campaigns can audit silent
    // loss (trace.dropped) and checkpoint age from one command.
    let checkpoint = match args.str_flag("checkpoint-dir") {
        None => None,
        Some("") => {
            eprintln!("--checkpoint-dir wants a path\n{HELP}");
            return 2;
        }
        Some(dir) => {
            use dma_lab::dma_core::CheckpointStore;
            let loaded = CheckpointStore::open(dir).and_then(|mut s| s.load());
            match loaded {
                Ok(Some(c)) => {
                    let next_iter = c.payload.u64_field("next_iter").unwrap_or(0);
                    Some((c.sequence, next_iter))
                }
                Ok(None) => {
                    eprintln!("no valid checkpoint generation under {dir}");
                    return 1;
                }
                Err(e) => {
                    eprintln!("cannot open checkpoint dir {dir}: {e}");
                    return 1;
                }
            }
        }
    };
    match run_observed(obs_config_or_usage!(args)) {
        Ok(r) => {
            if args.bool_flag("json") {
                match checkpoint {
                    // The bare shape is unchanged so existing pipelines
                    // keep parsing; the checkpoint wrapper only appears
                    // when explicitly requested.
                    None => println!("{}", r.snapshot.to_json()),
                    Some((sequence, next_iter)) => {
                        let mut w = JsonWriter::new();
                        w.obj(|w| {
                            w.field("snapshot", |w| w.raw(&r.snapshot.to_json()));
                            w.field("checkpoint", |w| {
                                w.obj(|w| {
                                    w.field_u64("sequence", sequence);
                                    w.field_u64("next_iter", next_iter);
                                });
                            });
                        });
                        println!("{}", w.finish());
                    }
                }
            } else {
                print!("{}", r.snapshot.render_text());
                if let Some((sequence, next_iter)) = checkpoint {
                    println!("\ncheckpoint generation {sequence}  next_iter {next_iter}");
                }
                println!(
                    "\npackets {}  dropped {}  leaked_pages {}",
                    r.packets, r.dropped, r.leaked_pages
                );
            }
            0
        }
        Err(e) => {
            eprintln!("stats run failed: {e}");
            1
        }
    }
}

fn cmd_serve(args: &Args) -> i32 {
    use dma_lab::fuzz::silence_quarantined_panics;
    use dma_lab::serve::{run_scripted_session, ServeConfig, Server};
    use std::path::PathBuf;
    silence_quarantined_panics();
    let seed = num_flag!(args, "seed", 7);
    let iters = num_flag!(args, "iters", 10_000);
    let port = num_flag!(args, "port", 0);
    let checkpoint_every = num_flag!(args, "checkpoint-every", 0);
    let shards = num_flag!(args, "shards", 1);
    if iters == 0 {
        eprintln!("--iters must be at least 1\n{HELP}");
        return 2;
    }
    if shards == 0 || shards > 4096 {
        eprintln!("--shards must be between 1 and 4096\n{HELP}");
        return 2;
    }
    if port > u16::MAX as u64 {
        eprintln!("--port must fit in 16 bits\n{HELP}");
        return 2;
    }
    let checkpoint_dir = match args.str_flag("checkpoint-dir") {
        Some("") => {
            eprintln!("--checkpoint-dir wants a path\n{HELP}");
            return 2;
        }
        other => other.map(PathBuf::from),
    };
    if checkpoint_every > 0 && checkpoint_dir.is_none() {
        eprintln!("--checkpoint-every needs --checkpoint-dir\n{HELP}");
        return 2;
    }
    let cfg = ServeConfig {
        seed,
        iters,
        checkpoint_dir,
        checkpoint_every,
        shards: shards as u32,
    };
    if let Some(script_path) = args.str_flag("script") {
        if script_path.is_empty() {
            eprintln!("--script wants a path\n{HELP}");
            return 2;
        }
        let script = match std::fs::read_to_string(script_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {script_path}: {e}");
                return 1;
            }
        };
        let transcript = match run_scripted_session(cfg, &script) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scripted session failed: {e}");
                return 1;
            }
        };
        match args.str_flag("transcript") {
            Some(out) if !out.is_empty() => {
                if let Err(e) = std::fs::write(out, &transcript) {
                    eprintln!("cannot write {out}: {e}");
                    return 1;
                }
                eprintln!(
                    "wrote {out}: {} frames ({} bytes)",
                    transcript.lines().count(),
                    transcript.len()
                );
            }
            _ => print!("{transcript}"),
        }
        return 0;
    }
    let server = match Server::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("campaign setup failed: {e}");
            return 1;
        }
    };
    let listener = match std::net::TcpListener::bind(("127.0.0.1", port as u16)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            return 1;
        }
    };
    match listener.local_addr() {
        Ok(addr) => eprintln!("listening on {addr} (seed {seed}, {iters} iters)"),
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return 1;
        }
    }
    match server.serve(listener, None) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve loop failed: {e}");
            1
        }
    }
}

fn cmd_trace(args: &Args) -> i32 {
    // `--spans` selects the default view; `--chrome OUT.json` writes a
    // Perfetto/Chrome `trace_event` file instead. Tolerate the absence
    // of both so `dma-lab trace` alone also works.
    if args.bool_flag("chrome") && args.str_flag("chrome").unwrap_or("").is_empty() {
        eprintln!("--chrome wants an output path\n{HELP}");
        return 2;
    }
    match run_observed(obs_config_or_usage!(args)) {
        Ok(r) => {
            if let Some(path) = args.str_flag("chrome") {
                let json = dma_lab::dma_core::chrome::export(&r.timeline, &r.events);
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    return 1;
                }
                println!(
                    "wrote {path}: {} spans + {} events ({} bytes) — open at ui.perfetto.dev",
                    r.timeline.len(),
                    r.events.len(),
                    json.len()
                );
                return 0;
            }
            if args.bool_flag("json") {
                let mut w = JsonWriter::new();
                w.obj(|w| {
                    w.field("spans", |w| {
                        w.arr(|w| {
                            for rec in &r.timeline {
                                w.elem(|w| {
                                    w.obj(|w| {
                                        w.field_str("name", rec.name);
                                        w.field_u64("start", rec.start);
                                        w.field_u64("end", rec.end);
                                        w.field_u64("depth", rec.depth as u64);
                                    });
                                });
                            }
                        });
                    });
                    w.field_u64("dropped", r.snapshot.timeline_dropped);
                });
                println!("{}", w.finish());
            } else {
                print!("{}", render_timeline(&r.timeline));
                if r.snapshot.timeline_dropped > 0 {
                    println!("({} records past the cap)", r.snapshot.timeline_dropped);
                }
            }
            0
        }
        Err(e) => {
            eprintln!("trace run failed: {e}");
            1
        }
    }
}

fn cmd_fuzz(args: &Args) -> i32 {
    use dma_lab::fuzz::{
        silence_quarantined_panics, Campaign, CampaignConfig, ShardConfig, ShardedCampaign,
        DEFAULT_WATCHDOG_BUDGET,
    };
    use std::path::PathBuf;
    // Contained panics become quarantined findings; their default-hook
    // backtrace spew would only pollute stderr.
    silence_quarantined_panics();
    let seed = num_flag!(args, "seed", 7);
    let iters = num_flag!(args, "iters", 96);
    let checkpoint_every = num_flag!(args, "checkpoint-every", 0);
    let watchdog_budget = num_flag!(args, "watchdog-budget", DEFAULT_WATCHDOG_BUDGET);
    let shards = num_flag!(args, "shards", 1);
    let threads = num_flag!(args, "threads", 1);
    if iters == 0 {
        eprintln!("--iters must be at least 1\n{HELP}");
        return 2;
    }
    if watchdog_budget == 0 {
        eprintln!("--watchdog-budget must be at least 1 cycle\n{HELP}");
        return 2;
    }
    if shards == 0 || shards > 4096 {
        eprintln!("--shards must be between 1 and 4096\n{HELP}");
        return 2;
    }
    if threads == 0 {
        eprintln!("--threads must be at least 1\n{HELP}");
        return 2;
    }
    // `--config` pins every iteration to one machine shape. Out-of-range
    // ids and unknown names are usage errors — never silently aliased
    // into the matrix by a modulo wrap.
    let only_config = match args.str_flag("config") {
        None => None,
        Some(s) => match dma_lab::fuzz::parse_config(s) {
            Some(id) => Some(id),
            None => {
                eprintln!(
                    "--config '{s}' is not a machine config; want an id below {} or a name \
                     (see `dma-lab infer`)\n{HELP}",
                    dma_lab::fuzz::NUM_CONFIGS
                );
                return 2;
            }
        },
    };
    // `--shards` (even `--shards 1`) selects the sharded engine; its
    // 1-shard output is byte-identical to the legacy path, which the
    // scale tests pin.
    let sharded = args.flags.contains_key("shards") || args.flags.contains_key("threads");
    if sharded && (args.str_flag("plant-panic").is_some() || args.str_flag("plant-hang").is_some())
    {
        eprintln!("--plant-panic/--plant-hang only apply to single-shard campaigns\n{HELP}");
        return 2;
    }
    let plant_panic_at = match args.str_flag("plant-panic") {
        None => None,
        Some(_) => Some(num_flag!(args, "plant-panic", 0)),
    };
    let plant_hang_at = match args.str_flag("plant-hang") {
        None => None,
        Some(_) => Some(num_flag!(args, "plant-hang", 0)),
    };
    let corpus_dir = match args.str_flag("corpus-dir") {
        Some("") => {
            eprintln!("--corpus-dir wants a path\n{HELP}");
            return 2;
        }
        other => other.map(PathBuf::from),
    };
    // The corpus dir itself may be fresh (it is created on demand), but
    // a missing parent is almost always a typo — reject it up front.
    if let Some(parent) = corpus_dir.as_deref().and_then(|d| d.parent()) {
        if !parent.as_os_str().is_empty() && !parent.exists() {
            eprintln!(
                "--corpus-dir parent '{}' does not exist\n{HELP}",
                parent.display()
            );
            return 2;
        }
    }
    let resume_dir = match args.str_flag("resume") {
        None => None,
        Some("") => {
            eprintln!("--resume wants a checkpoint directory\n{HELP}");
            return 2;
        }
        Some(d) if !std::path::Path::new(d).is_dir() => {
            eprintln!("--resume '{d}' is not an existing directory\n{HELP}");
            return 2;
        }
        Some(d) => Some(PathBuf::from(d)),
    };
    let checkpoint_dir = match args.str_flag("checkpoint-dir") {
        Some("") => {
            eprintln!("--checkpoint-dir wants a path\n{HELP}");
            return 2;
        }
        other => other.map(PathBuf::from).or_else(|| resume_dir.clone()),
    };
    if checkpoint_every > 0 && checkpoint_dir.is_none() {
        eprintln!("--checkpoint-every needs --checkpoint-dir or --resume\n{HELP}");
        return 2;
    }

    let resuming = resume_dir.is_some();
    let run = if sharded {
        let mut scfg = ShardConfig::new(seed, iters, shards as u32, threads as usize);
        scfg.corpus_dir = corpus_dir;
        scfg.checkpoint_dir = checkpoint_dir;
        scfg.checkpoint_every = checkpoint_every;
        scfg.watchdog_budget = watchdog_budget;
        scfg.only_config = only_config;
        let sc = ShardedCampaign::new(scfg);
        if resuming {
            eprintln!("resuming {shards} shard(s) across {threads} thread(s)");
            sc.resume()
        } else {
            sc.run()
        }
    } else {
        let mut cfg = CampaignConfig::new(seed, iters);
        cfg.corpus_dir = corpus_dir;
        cfg.checkpoint_dir = checkpoint_dir;
        cfg.checkpoint_every = checkpoint_every;
        cfg.watchdog_budget = watchdog_budget;
        cfg.plant_panic_at = plant_panic_at;
        cfg.plant_hang_at = plant_hang_at;
        cfg.only_config = only_config;
        (|| {
            let mut campaign = if resuming {
                let c = Campaign::resume(cfg)?;
                eprintln!(
                    "resumed at iteration {} (seed {})",
                    c.next_iter(),
                    c.config().seed
                );
                c
            } else {
                Campaign::new(cfg)?
            };
            campaign.run_to_end()?;
            if let Some(store) = campaign.store() {
                let writes = store.io_metrics().counter("checkpoint.writes");
                let recovered = store.recovered();
                if writes > 0 || recovered > 0 {
                    eprintln!("checkpoints: {writes} written, {recovered} recovered");
                }
            }
            campaign.finish()
        })()
    };
    match run {
        Ok(report) => {
            if args.bool_flag("json") {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            0
        }
        Err(e) => {
            eprintln!("fuzz run failed: {e}");
            1
        }
    }
}

/// `dma-lab profile`: runs the deterministic cycle-attribution
/// profiler over the canonical fuzz inputs and prints the merged call
/// tree (text), a speedscope document (`--json`), and/or a folded-stack
/// file (`--folded`, the `flamegraph.pl`/inferno input format). Output
/// is byte-identical across runs and across `--shards` counts.
fn cmd_profile(args: &Args) -> i32 {
    use dma_lab::profiling::{run_profile, ProfileConfig};
    let seed = num_flag!(args, "seed", 7);
    let iters = num_flag!(args, "iters", 96);
    let shards = num_flag!(args, "shards", 1);
    if iters == 0 {
        eprintln!("--iters must be at least 1\n{HELP}");
        return 2;
    }
    if shards == 0 || shards > 256 {
        eprintln!("--shards must be between 1 and 256\n{HELP}");
        return 2;
    }
    let only_config = match args.str_flag("config") {
        None => None,
        Some(s) => match dma_lab::fuzz::parse_config(s) {
            Some(id) => Some(id),
            None => {
                eprintln!(
                    "--config '{s}' is not a machine config; want an id below {} or a name \
                     (see `dma-lab infer`)\n{HELP}",
                    dma_lab::fuzz::NUM_CONFIGS
                );
                return 2;
            }
        },
    };
    let folded_path = match args.str_flag("folded") {
        Some("") => {
            eprintln!("--folded wants an output path\n{HELP}");
            return 2;
        }
        other => other,
    };
    let run = match run_profile(&ProfileConfig {
        seed,
        iters,
        only_config,
        shards: shards as u32,
    }) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("profile run failed: {e}");
            return 1;
        }
    };
    if let Some(path) = folded_path {
        if let Err(e) = std::fs::write(path, run.profile.folded()) {
            eprintln!("cannot write --folded '{path}': {e}");
            return 1;
        }
    }
    if args.bool_flag("json") {
        println!(
            "{}",
            run.profile
                .speedscope_json(&format!("dma-lab profile seed {seed}"))
        );
    } else {
        print!("{}", run.render_text());
    }
    0
}

/// `dma-lab bench --check`: re-runs the deterministic simulated-cycle
/// workload behind each committed `BENCH_*.json` and exits 1 when any
/// watched metric regresses beyond its tolerance — the trajectory gate
/// CI runs against the committed bench files.
fn cmd_bench(args: &Args) -> i32 {
    use dma_lab::profiling::check_bench_file;
    if !args.bool_flag("check") {
        eprintln!("bench wants --check with at least one BENCH_*.json\n{HELP}");
        return 2;
    }
    // The flag parser hands `--check A B C` over as flag value `A` plus
    // positionals `B C`; fold them back into one file list.
    let mut files: Vec<String> = Vec::new();
    if let Some(first) = args.str_flag("check") {
        if !first.is_empty() {
            files.push(first.to_string());
        }
    }
    files.extend(args.positional.iter().cloned());
    if files.is_empty() {
        eprintln!("--check wants at least one BENCH_*.json path\n{HELP}");
        return 2;
    }
    for f in &files {
        if !std::path::Path::new(f).is_file() {
            eprintln!("--check '{f}' is not an existing file\n{HELP}");
            return 2;
        }
    }
    let mut failed = 0usize;
    for f in &files {
        match check_bench_file(std::path::Path::new(f)) {
            Err(why) => {
                eprintln!("{why}");
                return 1;
            }
            Ok(outcome) => {
                if let Some(why) = &outcome.skipped {
                    println!("{f}: skipped ({why})");
                    continue;
                }
                for row in &outcome.rows {
                    let verdict = if row.ok { "ok" } else { "REGRESSED" };
                    println!(
                        "{f} [{}] {}: committed {} vs {} {verdict}",
                        outcome.report, row.metric, row.expected, row.actual
                    );
                }
                if !outcome.passed() {
                    failed += 1;
                }
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} bench file(s) regressed beyond tolerance");
        1
    } else {
        0
    }
}

/// `dma-lab infer`: boots the selected machine(s) with a traced boot,
/// runs the canonical inference workload, and prints one deterministic
/// `ChannelMap` JSON line per config — the zero-hand-wiring channel
/// discovery the fuzzer's mutation vocabulary is built on.
fn cmd_infer(args: &Args) -> i32 {
    use dma_lab::fuzz::{infer_channels, parse_config, NUM_CONFIGS};
    let seed = num_flag!(args, "seed", 7);
    let configs: Vec<u8> = match args.str_flag("config") {
        None => (0..NUM_CONFIGS).collect(),
        Some(s) => match parse_config(s) {
            Some(id) => vec![id],
            None => {
                eprintln!(
                    "--config '{s}' is not a machine config; want an id below {NUM_CONFIGS} \
                     or a name\n{HELP}"
                );
                return 2;
            }
        },
    };
    for id in configs {
        match infer_channels(seed, id) {
            Ok(map) => println!("{}", map.to_json()),
            Err(e) => {
                eprintln!("inference failed on config {id}: {e}");
                return 1;
            }
        }
    }
    0
}

fn cmd_forensics(args: &Args) -> i32 {
    use dma_lab::fuzz::run_forensics;
    let seed = num_flag!(args, "seed", 7);
    let iters = num_flag!(args, "iters", 96);
    if iters == 0 {
        eprintln!("--iters must be at least 1\n{HELP}");
        return 2;
    }
    match run_forensics(seed, iters) {
        Ok(report) => {
            if args.bool_flag("json") {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            0
        }
        Err(e) => {
            eprintln!("forensics run failed: {e}");
            1
        }
    }
}

fn cmd_survey(args: &Args) -> i32 {
    let boots = num_flag!(args, "boots", 256) as usize;
    let driver = match args.str_flag("profile") {
        Some("4.15") => ringflood::kernel415_driver(),
        _ => ringflood::kernel50_driver(),
    };
    match BootSurvey::run(driver, boots, 0) {
        Ok(s) => {
            let (pfn, frac) = s.most_common().expect("non-empty survey");
            println!("driver profile : {}", driver.name);
            println!(
                "RX footprint   : {} KiB",
                ringflood::rx_footprint(&driver) / 1024
            );
            println!("boots surveyed : {boots}");
            println!("top PFN        : {pfn} ({:.1}% of boots)", frac * 100.0);
            println!("PFNs >50%      : {}", s.pfns_above(0.5));
            println!("PFNs >95%      : {}", s.pfns_above(0.95));
            0
        }
        Err(e) => {
            eprintln!("survey failed: {e}");
            1
        }
    }
}

fn cmd_attack(args: &Args) -> i32 {
    let which = args.positional.first().map(|s| s.as_str()).unwrap_or("");
    let seed = num_flag!(args, "seed", 42);
    let window = window_of(args);
    let image = KernelImage::build(1, 16 << 20);
    let outcome = match which {
        "ringflood" => {
            let survey = match BootSurvey::run(ringflood::kernel50_driver(), 64, 0) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("survey failed: {e}");
                    return 1;
                }
            };
            ringflood::run(&image, ringflood::kernel50_driver(), window, seed, &survey).map(|r| {
                println!(
                    "guessed PFN {} (resident: {})",
                    r.guessed_pfn, r.guess_was_resident
                );
                r.outcome
            })
        }
        "poisoned-tx" => poisoned_tx::run(&image, window, seed).map(|r| {
            if let Some(k) = r.poison_kva {
                println!("poison KVA read from TX frags: {k}");
            }
            r.outcome
        }),
        "forward-thinking" => forward_thinking::run(&image, window, seed).map(|r| {
            if let Some(k) = r.poison_kva {
                println!("poison KVA from GRO frags: {k}");
            }
            r.outcome
        }),
        "single-step" => {
            let mut ctx = SimCtx::new();
            let mut mem = MemorySystem::new(&MemConfig {
                kaslr_seed: Some(seed),
                ..Default::default()
            });
            mem.install_text(&image.bytes);
            let mut iommu = Iommu::new(IommuConfig {
                mode: InvalidationMode::Strict,
                ..Default::default()
            });
            iommu.attach_device(7);
            let nic = MaliciousNic::new(7);
            single_step::driver_setup_op(&mut ctx, &mut mem, &mut iommu, &image, 7)
                .and_then(|(_, mapping)| {
                    single_step::run(&mut ctx, &mut mem, &mut iommu, &image, &nic, &mapping)
                })
                .map(|r| {
                    println!(
                        "leaked op KVA {} / text base {}",
                        r.leaked_op_kva, r.recovered_text_base
                    );
                    r.outcome
                })
        }
        other => {
            eprintln!("unknown attack '{other}'\n{HELP}");
            return 2;
        }
    };
    match outcome {
        Ok(o) => {
            println!("window : {window}");
            println!("outcome: {o:?}");
            i32::from(!o.succeeded())
        }
        Err(e) => {
            eprintln!("attack errored: {e}");
            1
        }
    }
}

fn cmd_dos(args: &Args) -> i32 {
    use dma_lab::attacks::dos;
    use dma_lab::dma_core::vuln::DmaDirection;
    use dma_lab::sim_iommu::dma_map_single;
    let seed = num_flag!(args, "seed", 9);
    let mut ctx = SimCtx::new();
    let mut mem = MemorySystem::new(&MemConfig {
        kaslr_seed: Some(seed),
        ..Default::default()
    });
    let mut iommu = Iommu::new(IommuConfig {
        mode: InvalidationMode::Strict,
        ..Default::default()
    });
    iommu.attach_device(7);
    let nic = MaliciousNic::new(7);
    let mut run = || -> dma_lab::dma_core::Result<dos::DosReport> {
        let cmdq = mem.kzalloc(&mut ctx, 512, "nic_cmd_queue")?;
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            cmdq,
            512,
            DmaDirection::Bidirectional,
            "m",
        )?;
        dos::run_dos(&nic, &mut ctx, &mut iommu, &mut mem, &m, 512)
    };
    match run() {
        Ok(r) => {
            println!("corrupted freelist slot: {}", r.corrupted_slot);
            println!(
                "kernel panicked: {} (after {} allocations)",
                r.panicked, r.allocations_until_panic
            );
            i32::from(!r.panicked)
        }
        Err(e) => {
            eprintln!("dos failed: {e}");
            1
        }
    }
}

fn cmd_dump(args: &Args) -> i32 {
    use dma_lab::attacks::memory_dump::dump_range;
    use dma_lab::attacks::ringflood::break_kaslr;
    use dma_lab::dma_core::Pfn;
    let seed = num_flag!(args, "seed", 31);
    let start = Pfn(num_flag!(args, "start", 0x400));
    let frames = num_flag!(args, "frames", 4) as usize;
    let image = KernelImage::build(1, 16 << 20);
    let run = || -> dma_lab::dma_core::Result<()> {
        let mut tb = forward_thinking::boot(WindowPath::UnmapAfterBuild, seed)?;
        tb.mem.install_text(&image.bytes);
        let k = break_kaslr(&mut tb)?;
        let k = forward_thinking::leak_vmemmap(&mut tb, &k)?;
        let dump = dump_range(&mut tb, &k, start, frames)?;
        println!(
            "dumped {} frame(s) from {start} ({} failed) in {} simulated cycles",
            dump.frames(),
            dump.failed_frames.len(),
            dump.cycles
        );
        // Hexdump the first 64 bytes of each frame.
        for i in 0..dump.frames() {
            let head = &dump.frame(i)[..64];
            let hex: String = head.iter().map(|b| format!("{b:02x}")).collect();
            println!(
                "  frame {}: {}",
                start.raw() + i as u64,
                &hex[..64.min(hex.len())]
            );
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("dump failed: {e}");
            1
        }
    }
}

fn cmd_surveil(args: &Args) -> i32 {
    let seed = num_flag!(args, "seed", 31);
    let image = KernelImage::build(1, 16 << 20);
    let run = || -> dma_lab::dma_core::Result<()> {
        let mut tb = forward_thinking::boot(WindowPath::UnmapAfterBuild, seed)?;
        tb.mem.install_text(&image.bytes);
        let knowledge = ringflood::break_kaslr(&mut tb)?;
        let knowledge = forward_thinking::leak_vmemmap(&mut tb, &knowledge)?;
        let secret = tb.mem.kmalloc(&mut tb.ctx, 4096, "vault")?;
        tb.mem
            .cpu_write(&mut tb.ctx, secret, b"<secret-demo-bytes>", "vault")?;
        let pfn = tb.mem.layout.kva_to_pfn(secret)?;
        let r = forward_thinking::surveil(&mut tb, &knowledge, pfn, 0, 19)?;
        println!("read frame {pfn}: {:?}", String::from_utf8_lossy(&r.stolen));
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("surveillance failed: {e}");
            1
        }
    }
}
