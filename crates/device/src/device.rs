//! The malicious NIC: attacker primitives, all routed through the IOMMU.

use dma_core::layout::VmRegion;
use dma_core::trace::DeviceId;
use dma_core::{Iova, Result, SimCtx};
use sim_iommu::Iommu;
use sim_mem::PhysMemory;
use sim_net::packet::Packet;
use sim_net::shinfo::{SHINFO_DESTRUCTOR_ARG, UBUF_CALLBACK, UBUF_CTX, UBUF_DESC};
use sim_net::skb::NET_SKB_PAD;

/// A kernel pointer the device found while scanning mapped memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakedPointer {
    /// IOVA at which the value was read.
    pub iova: Iova,
    /// The leaked 64-bit value.
    pub value: u64,
    /// Which kernel VM region the value points into.
    pub region: VmRegion,
}

/// A malicious bus endpoint: the device-agnostic DMA attacker
/// primitives every zoo model shares. It holds nothing but its device
/// ID — all knowledge must be *earned* by DMA (that is the point of the
/// compound attacks). [`MaliciousNic`] layers the NIC-specific helpers
/// (skb geometry, `ubuf_info` forgery) on top via `Deref`.
#[derive(Clone, Copy, Debug)]
pub struct MaliciousEndpoint {
    /// The device's bus identity.
    pub id: DeviceId,
}

impl MaliciousEndpoint {
    /// Creates an endpoint with the given identity.
    pub fn new(id: DeviceId) -> Self {
        MaliciousEndpoint { id }
    }

    /// DMA-read `buf.len()` bytes at `iova`.
    ///
    /// Fault site `device.dma_read`: an injected fault aborts the
    /// transaction before it reaches memory and surfaces as an
    /// [`dma_core::DmaError::IommuFault`] — the same error a real aborted
    /// bus transaction produces — never as a panic.
    pub fn read(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &PhysMemory,
        iova: Iova,
        buf: &mut [u8],
    ) -> Result<()> {
        if ctx.fault("device.dma_read") {
            return Err(dma_core::DmaError::IommuFault {
                device: self.id,
                iova: iova.raw(),
                write: false,
            });
        }
        iommu.dev_read(ctx, phys, self.id, iova, buf)
    }

    /// DMA-write `buf` at `iova`.
    ///
    /// Fault site `device.dma_write`: injected faults abort the write
    /// without touching memory (see [`MaliciousEndpoint::read`]).
    pub fn write(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &mut PhysMemory,
        iova: Iova,
        buf: &[u8],
    ) -> Result<()> {
        if ctx.fault("device.dma_write") {
            return Err(dma_core::DmaError::IommuFault {
                device: self.id,
                iova: iova.raw(),
                write: true,
            });
        }
        iommu.dev_write(ctx, phys, self.id, iova, buf)
    }

    /// DMA-read a little-endian u64 (routes through
    /// [`MaliciousEndpoint::read`] so the `device.dma_read` fault site
    /// covers it too).
    pub fn read_u64(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &PhysMemory,
        iova: Iova,
    ) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(ctx, iommu, phys, iova, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// DMA-write a little-endian u64 (routes through
    /// [`MaliciousEndpoint::write`] so the `device.dma_write` fault
    /// site covers it too).
    pub fn write_u64(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &mut PhysMemory,
        iova: Iova,
        v: u64,
    ) -> Result<()> {
        self.write(ctx, iommu, phys, iova, &v.to_le_bytes())
    }

    /// Scans a readable mapped range for 8-byte-aligned values that look
    /// like kernel pointers (§2.4: "malicious devices can scan the pages
    /// mapped for reading, looking for kernel pointers leaked due to
    /// sub-page vulnerability").
    pub fn scan_for_pointers(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &PhysMemory,
        iova: Iova,
        len: usize,
    ) -> Result<Vec<LeakedPointer>> {
        let mut page = vec![0u8; len];
        self.read(ctx, iommu, phys, iova, &mut page)?;
        let mut found = Vec::new();
        for (i, chunk) in page.chunks_exact(8).enumerate() {
            let value = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            if let Some(region) = VmRegion::classify(value) {
                found.push(LeakedPointer {
                    iova: Iova(iova.raw() + (i * 8) as u64),
                    value,
                    region,
                });
            }
        }
        Ok(found)
    }

    /// Scans every descriptor the device can read, ignoring ranges whose
    /// permissions deny reads (WRITE-only RX mappings).
    pub fn scan_descriptors(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &PhysMemory,
        descriptors: &[(Iova, usize)],
    ) -> Vec<LeakedPointer> {
        let mut all = Vec::new();
        for &(iova, len) in descriptors {
            if let Ok(mut v) = self.scan_for_pointers(ctx, iommu, phys, iova, len) {
                all.append(&mut v);
            }
        }
        all
    }

    /// Writes arbitrary bytes into a buffer at a byte offset from its
    /// IOVA (e.g. depositing a poisoned ROP stack in the payload area).
    pub fn deposit(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &mut PhysMemory,
        iova: Iova,
        offset: usize,
        bytes: &[u8],
    ) -> Result<()> {
        self.write(ctx, iommu, phys, Iova(iova.raw() + offset as u64), bytes)
    }
}

/// A malicious NIC: the shared [`MaliciousEndpoint`] primitives plus
/// the skb-geometry helpers only the NIC machine shape needs.
#[derive(Clone, Copy, Debug)]
pub struct MaliciousNic {
    /// The underlying bus endpoint.
    pub ep: MaliciousEndpoint,
}

impl std::ops::Deref for MaliciousNic {
    type Target = MaliciousEndpoint;
    fn deref(&self) -> &MaliciousEndpoint {
        &self.ep
    }
}

impl std::ops::DerefMut for MaliciousNic {
    fn deref_mut(&mut self) -> &mut MaliciousEndpoint {
        &mut self.ep
    }
}

impl MaliciousNic {
    /// Creates a device with the given identity.
    pub fn new(id: DeviceId) -> Self {
        MaliciousNic {
            ep: MaliciousEndpoint::new(id),
        }
    }

    /// Injects an RX packet: writes the wire bytes at the buffer's
    /// payload offset (where a NIC DMA-writes received frames).
    ///
    /// The caller signals completion to the driver separately, as the
    /// interrupt would.
    pub fn inject_rx(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &mut PhysMemory,
        rx_iova: Iova,
        packet: &Packet,
    ) -> Result<usize> {
        let wire = packet.to_wire();
        self.write(
            ctx,
            iommu,
            phys,
            Iova(rx_iova.raw() + NET_SKB_PAD as u64),
            &wire,
        )?;
        Ok(wire.len())
    }

    /// Forges a `ubuf_info` structure at `iova` (Figure 4 step (b)/(c)):
    /// callback pointer, ctx, desc.
    #[allow(clippy::too_many_arguments)]
    pub fn forge_ubuf_info(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &mut PhysMemory,
        iova: Iova,
        callback: u64,
        ubuf_ctx: u64,
        desc: u64,
    ) -> Result<()> {
        self.write_u64(
            ctx,
            iommu,
            phys,
            Iova(iova.raw() + UBUF_CALLBACK as u64),
            callback,
        )?;
        self.write_u64(
            ctx,
            iommu,
            phys,
            Iova(iova.raw() + UBUF_CTX as u64),
            ubuf_ctx,
        )?;
        self.write_u64(ctx, iommu, phys, Iova(iova.raw() + UBUF_DESC as u64), desc)
    }

    /// Overwrites `skb_shared_info.destructor_arg` given the IOVA of the
    /// shared info's base.
    pub fn overwrite_destructor_arg(
        &self,
        ctx: &mut SimCtx,
        iommu: &mut Iommu,
        phys: &mut PhysMemory,
        shinfo_iova: Iova,
        value: u64,
    ) -> Result<()> {
        self.write_u64(
            ctx,
            iommu,
            phys,
            Iova(shinfo_iova.raw() + SHINFO_DESTRUCTOR_ARG as u64),
            value,
        )
    }

    /// Computes the IOVA of a buffer's `skb_shared_info` from its RX
    /// descriptor: the shared info sits `buf_size` bytes into the
    /// mapping (the device knows the driver's buffer geometry — it is in
    /// the driver source).
    pub fn shinfo_iova(&self, rx_iova: Iova, buf_size: usize) -> Iova {
        Iova(rx_iova.raw() + buf_size as u64)
    }

    /// The page-sharing trick of §5.2.2 path (iii): given two RX
    /// descriptors whose buffers share a physical page (consecutive
    /// page_frag carvings), derive the IOVA *through descriptor B* of a
    /// byte that descriptor A names.
    ///
    /// Works because the low [`dma_core::PAGE_SIZE`]-offset bits of an IOVA match
    /// the physical offset: the device re-bases A's page offset onto B's
    /// mapping.
    pub fn alias_through_neighbor(&self, target_a: Iova, neighbor_b: Iova) -> Option<Iova> {
        // Same physical page ⇔ same in-page offset arithmetic applies.
        let a_off = target_a.page_offset() as u64;
        let b_page = neighbor_b.page_align_down().raw();
        // Only valid when both carvings are on one page; the caller
        // checks that via descriptor geometry (buf_size < PAGE_SIZE).
        Some(Iova(b_page + a_off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::vuln::DmaDirection;
    use dma_core::Kva;
    use sim_iommu::{dma_map_single, InvalidationMode, IommuConfig};
    use sim_mem::{MemConfig, MemorySystem};

    fn setup() -> (SimCtx, MemorySystem, Iommu, MaliciousNic) {
        let ctx = SimCtx::new();
        let mem = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(3),
            ..Default::default()
        });
        let mut iommu = Iommu::new(IommuConfig {
            mode: InvalidationMode::Strict,
            ..Default::default()
        });
        iommu.attach_device(7);
        (ctx, mem, iommu, MaliciousNic::new(7))
    }

    #[test]
    fn scan_finds_planted_kernel_pointer() {
        let (mut ctx, mut mem, mut iommu, nic) = setup();
        let buf = mem.kzalloc(&mut ctx, 512, "leaky").unwrap();
        // Plant a text pointer mid-buffer, CPU-side.
        let ptr = mem.layout.text_base.raw() + 0x12340;
        mem.cpu_write_u64(&mut ctx, Kva(buf.raw() + 256), ptr, "t")
            .unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            buf,
            512,
            DmaDirection::Bidirectional,
            "t",
        )
        .unwrap();
        let found = nic
            .scan_for_pointers(&mut ctx, &mut iommu, &mem.phys, m.iova, 512)
            .unwrap();
        assert!(found
            .iter()
            .any(|l| l.value == ptr && l.region == VmRegion::KernelText));
    }

    #[test]
    fn scan_skips_unreadable_mappings() {
        let (mut ctx, mut mem, mut iommu, nic) = setup();
        let buf = mem.kzalloc(&mut ctx, 256, "rx").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            buf,
            256,
            DmaDirection::FromDevice,
            "t",
        )
        .unwrap();
        // WRITE-only: scan yields nothing rather than erroring out.
        let found = nic.scan_descriptors(&mut ctx, &mut iommu, &mem.phys, &[(m.iova, 256)]);
        assert!(found.is_empty());
    }

    #[test]
    fn forge_ubuf_and_overwrite_darg_land_in_memory() {
        let (mut ctx, mut mem, mut iommu, nic) = setup();
        let buf = mem.kzalloc(&mut ctx, 2048, "rxbuf").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            buf,
            2048,
            DmaDirection::FromDevice,
            "t",
        )
        .unwrap();
        // Forge ubuf at offset 100; point destructor_arg (shinfo at 1728).
        nic.forge_ubuf_info(
            &mut ctx,
            &mut iommu,
            &mut mem.phys,
            Iova(m.iova.raw() + 100),
            0xdead,
            0,
            0,
        )
        .unwrap();
        nic.overwrite_destructor_arg(
            &mut ctx,
            &mut iommu,
            &mut mem.phys,
            nic.shinfo_iova(m.iova, 1728),
            0xbeef,
        )
        .unwrap();
        assert_eq!(
            mem.cpu_read_u64(&mut ctx, Kva(buf.raw() + 100), "t")
                .unwrap(),
            0xdead
        );
        assert_eq!(
            mem.cpu_read_u64(
                &mut ctx,
                Kva(buf.raw() + 1728 + SHINFO_DESTRUCTOR_ARG as u64),
                "t"
            )
            .unwrap(),
            0xbeef
        );
    }

    #[test]
    fn alias_through_neighbor_rebases_offset() {
        let nic = MaliciousNic::new(7);
        // A maps page offset 0x800; B maps the same physical page at its
        // own IOVA page.
        let a = Iova(0xfff0_0800);
        let b = Iova(0xffe0_0000);
        assert_eq!(nic.alias_through_neighbor(a, b), Some(Iova(0xffe0_0800)));
    }

    #[test]
    fn injected_dma_faults_surface_as_iommu_faults_not_panics() {
        let (mut ctx, mut mem, mut iommu, nic) = setup();
        let buf = mem.kzalloc(&mut ctx, 256, "b").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            buf,
            256,
            DmaDirection::Bidirectional,
            "t",
        )
        .unwrap();
        ctx.faults = dma_core::FaultPlan::seeded(9)
            .fail_once("device.dma_write")
            .fail_once("device.dma_read");
        let err = nic
            .write(&mut ctx, &mut iommu, &mut mem.phys, m.iova, b"x")
            .unwrap_err();
        assert!(matches!(
            err,
            dma_core::DmaError::IommuFault { write: true, .. }
        ));
        let mut b = [0u8; 1];
        let err = nic
            .read(&mut ctx, &mut iommu, &mem.phys, m.iova, &mut b)
            .unwrap_err();
        assert!(matches!(
            err,
            dma_core::DmaError::IommuFault { write: false, .. }
        ));
        // Both one-shot rules disarmed: the same accesses now land.
        nic.write(&mut ctx, &mut iommu, &mut mem.phys, m.iova, b"x")
            .unwrap();
        nic.read(&mut ctx, &mut iommu, &mem.phys, m.iova, &mut b)
            .unwrap();
        assert_eq!(ctx.faults.injected_total(), 2);
    }

    #[test]
    fn inject_rx_places_wire_bytes_at_payload_offset() {
        let (mut ctx, mut mem, mut iommu, nic) = setup();
        let buf = mem.kzalloc(&mut ctx, 2048, "rxbuf").unwrap();
        let m = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            7,
            buf,
            2048,
            DmaDirection::FromDevice,
            "t",
        )
        .unwrap();
        let p = Packet::udp(5, 1, b"ping".to_vec());
        let n = nic
            .inject_rx(&mut ctx, &mut iommu, &mut mem.phys, m.iova, &p)
            .unwrap();
        assert_eq!(n, p.wire_len());
        let mut wire = vec![0u8; n];
        mem.cpu_read(
            &mut ctx,
            Kva(buf.raw() + NET_SKB_PAD as u64),
            &mut wire,
            "t",
        )
        .unwrap();
        assert_eq!(Packet::from_wire(&wire).unwrap(), p);
    }
}
