//! The `DeviceModel` trait: one device-agnostic surface over every
//! machine the zoo can boot.
//!
//! The fuzz executor, the posture audit, and the inference workload all
//! drive a machine through this trait instead of reaching into the NIC
//! testbed directly, which is what lets `machine_config` grow into a
//! device×mode matrix: a config id selects *which* device family boots
//! ([`DeviceKind`]) as well as its unmap ordering and invalidation mode,
//! and every downstream consumer — D-KASAN, SPADE posture, forensics,
//! the sharded campaign — runs unchanged across the zoo.

use crate::nvme::NvmeTestbed;
use crate::testbed::{Testbed, TestbedConfig};
use crate::virtio::VirtioTestbed;
use dma_core::posture::PostureReport;
use dma_core::vuln::WindowPath;
use dma_core::{Iova, Kva, Result, SimCtx};

/// Which device family a machine configuration boots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeviceKind {
    /// The original malicious NIC behind `sim-net`'s driver/stack.
    #[default]
    Nic,
    /// A virtio-style split-ring transport: an in-memory descriptor
    /// table the device *reads*, kmalloc-backed payload buffers it
    /// *writes*, and a long-lived used ring it publishes completions to.
    VirtioSplit,
    /// An NVMe-ish paired queue device: a submission queue the device
    /// reads commands (with PRP pointers) from, a completion queue it
    /// writes entries to, and page-frag data buffers.
    NvmeQueuePair,
}

impl DeviceKind {
    /// Short machine-readable family name (posture frames, reports).
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Nic => "nic",
            DeviceKind::VirtioSplit => "virtio",
            DeviceKind::NvmeQueuePair => "nvme",
        }
    }
}

/// A device write that landed inside a §5.2 time window. The executor
/// turns one of these into a taxonomy-classified fuzz finding; the
/// model only reports the mechanics (where it hit, through which path,
/// over which simulated-cycle span).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowHit {
    /// Finding site, e.g. `skb_shared_info.destructor_arg`.
    pub site: &'static str,
    /// The tampered field name (callback-exposure attribute).
    pub field: &'static str,
    /// IOVA the write landed at.
    pub target: Iova,
    /// Which §5.2.2 path the window opened through.
    pub path: WindowPath,
    /// Simulated cycle the window race began.
    pub start: u64,
    /// Simulated cycle the race resolved.
    pub end: u64,
}

/// How a model's boot should wire up event capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BootSpec {
    /// No tracing — posture audits and plain delivery tests.
    Quiet,
    /// Bounded flight recorder installed *after* boot, CPU accesses
    /// recorded: the fuzz executor's shape (boot events are not
    /// captured, exactly like `Testbed::new_recorded`).
    Recorded(usize),
    /// Unbounded trace enabled *before* boot, CPU accesses recorded:
    /// the inference workload's shape — `dma-infer` needs the boot-time
    /// ring population and control-block mappings in the stream.
    TracedBoot,
}

/// One device model the fuzzer can drive. Every method is deterministic
/// given the machine's state; none consults wall-clock time or host
/// randomness. `Send` because shard threads own warm boot templates.
pub trait DeviceModel: Send {
    /// Which family this machine is.
    fn kind(&self) -> DeviceKind;
    /// The simulation context (clock, trace, faults, metrics).
    fn sim(&mut self) -> &mut SimCtx;
    /// Read-only view of the simulation context.
    fn sim_ref(&self) -> &SimCtx;
    /// Deliver one well-formed unit of device input (a UDP frame, a
    /// virtio buffer, an NVMe read completion) of `len` payload bytes.
    fn deliver(&mut self, len: usize, fill: u8) -> Result<()>;
    /// Deliver raw adversarial bytes with no framing; the consumer is
    /// expected to drop garbage gracefully.
    fn inject_raw(&mut self, bytes: &[u8]) -> Result<()>;
    /// The device-visible posted buffers: `(iova, usable_len)` pairs.
    fn descriptors(&self) -> Vec<(Iova, usize)>;
    /// Raw device write at `iova + offset` (the mutation primitive the
    /// inferred-channel vocabulary drives).
    fn dev_deposit(&mut self, iova: Iova, offset: usize, bytes: &[u8]) -> Result<()>;
    /// Deliver a frame and fire a device write *inside* the consume
    /// window (§5.2.2 paths (i)/(ii)); `Some` when the write landed.
    fn window_race(&mut self, value: u64) -> Result<Option<WindowHit>>;
    /// Capture the head buffer, let the driver consume/unmap it, then
    /// write through the captured IOVA — lands only while a stale IOTLB
    /// entry survives (path (ii)); `Err` when the window was closed.
    fn window_stale(&mut self, value: u64) -> Result<WindowHit>;
    /// Advance simulated time (triggers deferred IOTLB flushes).
    fn tick_ms(&mut self, ms: u64);
    /// Kmalloc on the machine's memory system (churn vocabulary).
    fn churn_alloc(&mut self, size: usize, site: &'static str) -> Result<Kva>;
    /// Kfree for [`DeviceModel::churn_alloc`].
    fn churn_free(&mut self, kva: Kva) -> Result<()>;
    /// Device scans everything it can read for leaked kernel pointers;
    /// returns how many it found.
    fn scan_leaks(&mut self) -> usize;
    /// Honest completion of all in-flight device→driver work.
    fn complete_io(&mut self) -> Result<()>;
    /// Re-arm the receive path after a tolerated drop (ring refill).
    fn recover(&mut self) -> Result<()>;
    /// Tear the machine down; returns the number of pages the device
    /// can still DMA to afterwards (the mapping-leak audit).
    fn teardown(&mut self) -> Result<usize>;
    /// Units of input the consumer accepted so far.
    fn delivered_count(&self) -> u64;
    /// Whether this machine's DMA buffers co-locate *random* kernel
    /// objects (kmalloc-backed buffers, mapped control blocks) rather
    /// than driver-owned metadata — decides the Figure-1 letter for
    /// allocator-class D-KASAN findings.
    fn colocates_random(&self) -> bool;
    /// SPADE-style posture report from the live IOMMU state.
    fn posture(&self, label: &str) -> PostureReport;
    /// Deep copy (templates in the warm executor clone per exec).
    fn clone_model(&self) -> Box<dyn DeviceModel>;
}

/// Boots the device family `cfg.device` selects. This is the single
/// constructor every consumer (executor, posture audit, inference,
/// CLI) goes through.
pub fn boot_model(cfg: TestbedConfig, spec: BootSpec) -> Result<Box<dyn DeviceModel>> {
    Ok(match cfg.device {
        DeviceKind::Nic => Box::new(Testbed::boot(cfg, spec)?),
        DeviceKind::VirtioSplit => Box::new(VirtioTestbed::boot(cfg, spec)?),
        DeviceKind::NvmeQueuePair => Box::new(NvmeTestbed::boot(cfg, spec)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(DeviceKind::Nic.name(), "nic");
        assert_eq!(DeviceKind::VirtioSplit.name(), "virtio");
        assert_eq!(DeviceKind::NvmeQueuePair.name(), "nvme");
    }

    #[test]
    fn boot_model_dispatches_on_device_kind() {
        for kind in [
            DeviceKind::Nic,
            DeviceKind::VirtioSplit,
            DeviceKind::NvmeQueuePair,
        ] {
            let cfg = TestbedConfig {
                device: kind,
                ..Default::default()
            };
            let mut m = boot_model(cfg, BootSpec::Quiet).unwrap();
            assert_eq!(m.kind(), kind);
            m.deliver(64, 0xab).unwrap();
            assert_eq!(m.delivered_count(), 1);
            assert!(!m.descriptors().is_empty());
            assert_eq!(m.teardown().unwrap(), 0, "{:?} leaked mappings", kind);
        }
    }

    #[test]
    fn every_model_survives_raw_garbage() {
        for kind in [
            DeviceKind::Nic,
            DeviceKind::VirtioSplit,
            DeviceKind::NvmeQueuePair,
        ] {
            let cfg = TestbedConfig {
                device: kind,
                ..Default::default()
            };
            let mut m = boot_model(cfg, BootSpec::Quiet).unwrap();
            m.inject_raw(&[0xff; 97]).unwrap();
            m.deliver(32, 1).unwrap();
            assert!(m.delivered_count() >= 1);
        }
    }
}
