//! A virtio-style split-ring transport machine.
//!
//! Three DMA surfaces, mirroring a virtio-net receive queue:
//!
//! * a **descriptor table** the driver kmallocs once and maps
//!   `ToDevice` (`virtq_desc_map`) — the device *reads* `(iova, len)`
//!   entries out of it, which is the base+pointer pattern DICE-style
//!   inference keys on;
//! * a ring of **kmalloc-backed payload buffers** mapped `FromDevice`
//!   (`virtio_buf_map`), recycled on every consume — slab co-location
//!   makes these the type-(d) surface on a non-NIC device;
//! * a long-lived **used ring** mapped `FromDevice` (`virtq_used_map`)
//!   that the device publishes completions into — a device-writable
//!   control block, like the paper's mapped command queues.
//!
//! The driver-side consume order mirrors the NIC's `UnmapOrder` knob:
//! `BuildThenUnmap` parses the buffer while its mapping is live (the
//! §5.2.2 path (i) window, and a CPU access D-KASAN flags), while
//! `UnmapThenBuild` unmaps first and is only exposed through deferred
//! invalidation (path (ii)).

use crate::device::MaliciousEndpoint;
use crate::model::{BootSpec, DeviceKind, DeviceModel, WindowHit};
use crate::testbed::{boot_noise, TestbedConfig};
use dma_core::posture::PostureReport;
use dma_core::trace::DeviceId;
use dma_core::vuln::{DmaDirection, WindowPath};
use dma_core::{DmaError, Iova, Kva, Result, SimCtx};
use sim_iommu::{dma_map_single, dma_unmap_single, DmaMapping, Iommu};
use sim_mem::MemorySystem;
use sim_net::driver::UnmapOrder;
use std::collections::VecDeque;

/// Split-ring size (descriptor and used-ring entries).
pub const VIRTQ_SIZE: usize = 16;
/// Bytes per descriptor entry: IOVA (8) + length (8, oversized so the
/// device can read both with aligned u64 loads).
pub const VIRTQ_DESC_ENTRY: usize = 16;
/// Bytes per used-ring entry: buffer id (4) + written length (4).
pub const VIRTQ_USED_ENTRY: usize = 8;
/// Payload buffer size — a kmalloc-1024 object, so mapped buffers share
/// slab pages with whatever the allocator co-locates.
pub const VIRTIO_BUF_SIZE: usize = 1024;
/// Leading `virtio_net_hdr` bytes the device writes before the payload.
pub const VIRTIO_HDR_SIZE: usize = 12;

#[derive(Clone, Copy, Debug)]
struct PostedBuf {
    kva: Kva,
    mapping: DmaMapping,
    desc_idx: usize,
}

/// The assembled virtio-style machine.
#[derive(Clone)]
pub struct VirtioTestbed {
    /// Simulation context (clock + trace).
    pub ctx: SimCtx,
    /// Memory system.
    pub mem: MemorySystem,
    /// IOMMU.
    pub iommu: Iommu,
    /// The attacker-controlled endpoint.
    pub ep: MaliciousEndpoint,
    dev: DeviceId,
    order: UnmapOrder,
    desc_kva: Kva,
    desc: DmaMapping,
    used_kva: Kva,
    used: DmaMapping,
    posted: VecDeque<PostedBuf>,
    next_desc: usize,
    used_idx: usize,
    delivered: u64,
    torn_down: bool,
}

impl VirtioTestbed {
    /// Boots the machine under a [`BootSpec`].
    pub fn boot(cfg: TestbedConfig, spec: BootSpec) -> Result<Self> {
        match spec {
            BootSpec::Quiet => Self::build(SimCtx::new(), cfg),
            BootSpec::Recorded(cap) => {
                let mut tb = Self::build(SimCtx::new(), cfg)?;
                tb.ctx.trace = dma_core::Trace::recorded(cap);
                tb.ctx.trace.enabled = true;
                tb.ctx.trace.record_cpu_access = true;
                tb.ctx.clock.advance(0);
                Ok(tb)
            }
            BootSpec::TracedBoot => {
                let mut ctx = SimCtx::new();
                ctx.trace.enabled = true;
                ctx.trace.record_cpu_access = true;
                let mut tb = Self::build(ctx, cfg)?;
                tb.ctx.clock.advance(0);
                Ok(tb)
            }
        }
    }

    fn build(mut ctx: SimCtx, cfg: TestbedConfig) -> Result<Self> {
        let mut mem = MemorySystem::new(&cfg.mem.into());
        let mut iommu = Iommu::new(cfg.iommu);
        if let Some(seed) = cfg.boot_noise_seed {
            boot_noise(&mut ctx, &mut mem, seed)?;
        }
        let dev = cfg.driver.dev;
        iommu.attach_device(dev);
        let desc_kva = mem.kzalloc(&mut ctx, VIRTQ_SIZE * VIRTQ_DESC_ENTRY, "virtq_desc_alloc")?;
        let desc = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            dev,
            desc_kva,
            VIRTQ_SIZE * VIRTQ_DESC_ENTRY,
            DmaDirection::ToDevice,
            "virtq_desc_map",
        )?;
        let used_kva = mem.kzalloc(&mut ctx, VIRTQ_SIZE * VIRTQ_USED_ENTRY, "virtq_used_alloc")?;
        let used = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            dev,
            used_kva,
            VIRTQ_SIZE * VIRTQ_USED_ENTRY,
            DmaDirection::FromDevice,
            "virtq_used_map",
        )?;
        let mut tb = VirtioTestbed {
            ctx,
            mem,
            iommu,
            ep: MaliciousEndpoint::new(dev),
            dev,
            order: cfg.driver.unmap_order,
            desc_kva,
            desc,
            used_kva,
            used,
            posted: VecDeque::with_capacity(VIRTQ_SIZE),
            next_desc: 0,
            used_idx: 0,
            delivered: 0,
            torn_down: false,
        };
        for _ in 0..VIRTQ_SIZE {
            tb.post_buffer()?;
        }
        Ok(tb)
    }

    /// Driver side: kmalloc a fresh payload buffer, map it, and publish
    /// its `(iova, len)` through the descriptor table (a CPU write into
    /// a live `ToDevice` mapping — exactly what D-KASAN's
    /// access-after-map class watches for).
    fn post_buffer(&mut self) -> Result<()> {
        let kva = self
            .mem
            .kmalloc(&mut self.ctx, VIRTIO_BUF_SIZE, "virtio_buf_alloc")?;
        let mapping = match dma_map_single(
            &mut self.ctx,
            &mut self.iommu,
            &self.mem.layout,
            self.dev,
            kva,
            VIRTIO_BUF_SIZE,
            DmaDirection::FromDevice,
            "virtio_buf_map",
        ) {
            Ok(m) => m,
            Err(e) => {
                self.mem.kfree(&mut self.ctx, kva)?;
                return Err(e);
            }
        };
        let desc_idx = self.next_desc;
        self.next_desc = (self.next_desc + 1) % VIRTQ_SIZE;
        let entry = Kva(self.desc_kva.raw() + (desc_idx * VIRTQ_DESC_ENTRY) as u64);
        self.mem
            .cpu_write_u64(&mut self.ctx, entry, mapping.iova.raw(), "virtq_post_desc")?;
        self.mem.cpu_write_u64(
            &mut self.ctx,
            Kva(entry.raw() + 8),
            VIRTIO_BUF_SIZE as u64,
            "virtq_post_desc",
        )?;
        self.posted.push_back(PostedBuf {
            kva,
            mapping,
            desc_idx,
        });
        Ok(())
    }

    /// Device side: read the head descriptor, write header + payload
    /// into the buffer it names, and publish a used-ring entry.
    fn device_rx(&mut self, payload: &[u8]) -> Result<()> {
        let head = *self.posted.front().ok_or(DmaError::RingEmpty)?;
        let ep = self.ep;
        // Base+pointer step: the device learns the buffer IOVA by
        // DMA-reading the descriptor entry, not from the driver's state.
        let desc_iova = Iova(self.desc.iova.raw() + (head.desc_idx * VIRTQ_DESC_ENTRY) as u64);
        let buf_iova =
            Iova(ep.read_u64(&mut self.ctx, &mut self.iommu, &self.mem.phys, desc_iova)?);
        let mut hdr = [0u8; VIRTIO_HDR_SIZE];
        hdr[0] = 1; // num_buffers = 1
        ep.write(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            buf_iova,
            &hdr,
        )?;
        let n = payload.len().min(VIRTIO_BUF_SIZE - VIRTIO_HDR_SIZE);
        ep.deposit(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            buf_iova,
            VIRTIO_HDR_SIZE,
            &payload[..n],
        )?;
        let mut elem = [0u8; VIRTQ_USED_ENTRY];
        elem[..4].copy_from_slice(&(head.desc_idx as u32).to_le_bytes());
        elem[4..].copy_from_slice(&((n + VIRTIO_HDR_SIZE) as u32).to_le_bytes());
        ep.write(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            Iova(self.used.iova.raw() + (self.used_idx * VIRTQ_USED_ENTRY) as u64),
            &elem,
        )?;
        Ok(())
    }

    /// Driver side: consume the head used entry. With `race_value` set,
    /// the device fires a write at the buffer's header inside the
    /// consume window; returns the landed target, if any.
    fn consume_one(&mut self, race_value: Option<u64>, repost: bool) -> Result<Option<Iova>> {
        let buf = self.posted.pop_front().ok_or(DmaError::RingEmpty)?;
        let used_entry = Kva(self.used_kva.raw() + (self.used_idx * VIRTQ_USED_ENTRY) as u64);
        self.mem
            .cpu_read_u64(&mut self.ctx, used_entry, "virtq_read_used")?;
        self.used_idx = (self.used_idx + 1) % VIRTQ_SIZE;
        let ep = self.ep;
        let mut landed = None;
        let mut race = |ctx: &mut SimCtx, iommu: &mut Iommu, mem: &mut MemorySystem| {
            if let Some(v) = race_value {
                if ep
                    .write_u64(ctx, iommu, &mut mem.phys, buf.mapping.iova, v)
                    .is_ok()
                {
                    landed = Some(buf.mapping.iova);
                }
            }
        };
        match self.order {
            UnmapOrder::BuildThenUnmap => {
                let mut hdr = [0u8; VIRTIO_HDR_SIZE];
                self.mem
                    .cpu_read(&mut self.ctx, buf.kva, &mut hdr, "virtio_rx_parse")?;
                race(&mut self.ctx, &mut self.iommu, &mut self.mem);
                dma_unmap_single(&mut self.ctx, &mut self.iommu, &buf.mapping)?;
            }
            UnmapOrder::UnmapThenBuild => {
                dma_unmap_single(&mut self.ctx, &mut self.iommu, &buf.mapping)?;
                let mut hdr = [0u8; VIRTIO_HDR_SIZE];
                self.mem
                    .cpu_read(&mut self.ctx, buf.kva, &mut hdr, "virtio_rx_parse")?;
                race(&mut self.ctx, &mut self.iommu, &mut self.mem);
            }
        }
        self.mem.kfree(&mut self.ctx, buf.kva)?;
        self.delivered += 1;
        if repost {
            self.post_buffer()?;
        }
        Ok(landed)
    }

    fn rx_round(&mut self, payload: &[u8]) -> Result<()> {
        self.device_rx(payload)?;
        self.consume_one(None, true)?;
        Ok(())
    }
}

impl DeviceModel for VirtioTestbed {
    fn kind(&self) -> DeviceKind {
        DeviceKind::VirtioSplit
    }

    fn sim(&mut self) -> &mut SimCtx {
        &mut self.ctx
    }

    fn sim_ref(&self) -> &SimCtx {
        &self.ctx
    }

    fn deliver(&mut self, len: usize, fill: u8) -> Result<()> {
        let payload = vec![fill; len.min(VIRTIO_BUF_SIZE)];
        self.rx_round(&payload)
    }

    fn inject_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.rx_round(bytes)
    }

    fn descriptors(&self) -> Vec<(Iova, usize)> {
        self.posted
            .iter()
            .map(|b| (b.mapping.iova, VIRTIO_BUF_SIZE))
            .collect()
    }

    fn dev_deposit(&mut self, iova: Iova, offset: usize, bytes: &[u8]) -> Result<()> {
        let ep = self.ep;
        ep.deposit(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            iova,
            offset,
            bytes,
        )
    }

    fn window_race(&mut self, value: u64) -> Result<Option<WindowHit>> {
        let start = self.ctx.clock.now();
        self.device_rx(&[0xa5; 64])?;
        let landed = self.consume_one(Some(value), true)?;
        Ok(landed.map(|target| WindowHit {
            site: "virtio_net_hdr.flags",
            field: "hdr_flags",
            target,
            path: match self.order {
                UnmapOrder::BuildThenUnmap => WindowPath::UnmapAfterBuild,
                UnmapOrder::UnmapThenBuild => WindowPath::DeferredIotlb,
            },
            start,
            end: self.ctx.clock.now(),
        }))
    }

    fn window_stale(&mut self, value: u64) -> Result<WindowHit> {
        let head = *self.posted.front().ok_or(DmaError::RingEmpty)?;
        let target = head.mapping.iova;
        let start = self.ctx.clock.now();
        // The consume unmaps the captured buffer; the device wrote
        // through its IOVA during device_rx, so a deferred IOMMU still
        // holds the translation. The repost is delayed until after the
        // stale write so the recycled slot cannot re-claim the captured
        // IOVA page and mask the staleness.
        self.device_rx(&[0x5a; 48])?;
        self.consume_one(None, false)?;
        let ep = self.ep;
        let wrote = ep.write_u64(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            target,
            value,
        );
        self.post_buffer()?;
        wrote?;
        Ok(WindowHit {
            site: "virtio_net_hdr.flags",
            field: "hdr_flags",
            target,
            path: WindowPath::DeferredIotlb,
            start,
            end: self.ctx.clock.now(),
        })
    }

    fn tick_ms(&mut self, ms: u64) {
        self.ctx.clock.advance_ms(ms);
        self.iommu.tick(&mut self.ctx);
    }

    fn churn_alloc(&mut self, size: usize, site: &'static str) -> Result<Kva> {
        self.mem.kmalloc(&mut self.ctx, size, site)
    }

    fn churn_free(&mut self, kva: Kva) -> Result<()> {
        self.mem.kfree(&mut self.ctx, kva)
    }

    fn scan_leaks(&mut self) -> usize {
        let ep = self.ep;
        let mut ranges: Vec<(Iova, usize)> = vec![(self.desc.iova, VIRTQ_SIZE * VIRTQ_DESC_ENTRY)];
        ranges.extend(self.descriptors());
        ep.scan_descriptors(&mut self.ctx, &mut self.iommu, &self.mem.phys, &ranges)
            .len()
    }

    fn complete_io(&mut self) -> Result<()> {
        Ok(())
    }

    fn recover(&mut self) -> Result<()> {
        while self.posted.len() < VIRTQ_SIZE {
            self.post_buffer()?;
        }
        Ok(())
    }

    fn teardown(&mut self) -> Result<usize> {
        if !self.torn_down {
            self.torn_down = true;
            while let Some(buf) = self.posted.pop_front() {
                dma_unmap_single(&mut self.ctx, &mut self.iommu, &buf.mapping)?;
                self.mem.kfree(&mut self.ctx, buf.kva)?;
            }
            dma_unmap_single(&mut self.ctx, &mut self.iommu, &self.desc)?;
            self.mem.kfree(&mut self.ctx, self.desc_kva)?;
            dma_unmap_single(&mut self.ctx, &mut self.iommu, &self.used)?;
            self.mem.kfree(&mut self.ctx, self.used_kva)?;
        }
        Ok(self.iommu.mapped_pages(self.dev))
    }

    fn delivered_count(&self) -> u64 {
        self.delivered
    }

    fn colocates_random(&self) -> bool {
        // Kmalloc-backed buffers and kmalloc'd rings: mapped pages
        // co-locate whatever the slab allocator places next to them.
        true
    }

    fn posture(&self, label: &str) -> PostureReport {
        let stale = self.ctx.metrics.histogram("sim_iommu.stale_window.cycles");
        self.iommu.posture(label, VIRTIO_BUF_SIZE, stale)
    }

    fn clone_model(&self) -> Box<dyn DeviceModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_net::driver::DriverConfig;

    fn cfg(order: UnmapOrder, mode: InvalidationMode) -> TestbedConfig {
        TestbedConfig {
            device: DeviceKind::VirtioSplit,
            iommu: IommuConfig {
                mode,
                ..Default::default()
            },
            driver: DriverConfig {
                unmap_order: order,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn boot_deliver_and_clean_teardown() {
        let mut tb = VirtioTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        for i in 0..40u8 {
            tb.deliver(64 + i as usize, i).unwrap();
        }
        assert_eq!(tb.delivered_count(), 40);
        assert_eq!(tb.descriptors().len(), VIRTQ_SIZE);
        assert_eq!(tb.teardown().unwrap(), 0);
    }

    #[test]
    fn race_lands_in_live_window_under_build_then_unmap() {
        let mut tb = VirtioTestbed::boot(
            cfg(UnmapOrder::BuildThenUnmap, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        let hit = tb.window_race(0xffff_8880_0000_1000).unwrap().unwrap();
        assert_eq!(hit.path, WindowPath::UnmapAfterBuild);
        assert_eq!(hit.site, "virtio_net_hdr.flags");
    }

    #[test]
    fn race_is_closed_by_strict_unmap_then_build() {
        let mut tb = VirtioTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        assert!(tb.window_race(0xdead).unwrap().is_none());
    }

    #[test]
    fn stale_write_lands_only_under_deferred_invalidation() {
        let mut tb = VirtioTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Deferred),
            BootSpec::Quiet,
        )
        .unwrap();
        let hit = tb.window_stale(0xbeef).unwrap();
        assert_eq!(hit.path, WindowPath::DeferredIotlb);

        let mut strict = VirtioTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        assert!(strict.window_stale(0xbeef).is_err());
    }

    #[test]
    fn traced_boot_captures_ring_population() {
        let mut tb = VirtioTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Deferred),
            BootSpec::TracedBoot,
        )
        .unwrap();
        let events = tb.ctx.trace.drain();
        let maps = events
            .iter()
            .filter(
                |e| matches!(e, dma_core::Event::DmaMap { site, .. } if *site == "virtio_buf_map"),
            )
            .count();
        assert_eq!(maps, VIRTQ_SIZE);
    }
}
