//! DMA-capable device models.
//!
//! Per the threat model (§3.1): the attack is performed *solely* by the
//! malicious DMA-capable device, and all its memory accesses go through
//! the IOMMU ([`sim_iommu::Iommu::dev_read`]/[`dev_write`]) — the device
//! has no other way to touch memory. What a real NIC learns from its
//! DMA-mapped descriptor rings (buffer IOVAs and sizes), the model
//! receives as descriptor lists.
//!
//! - [`device`] — [`MaliciousNic`]: the attacker's primitives: scanning
//!   mapped pages for leaked kernel pointers, injecting RX packets,
//!   forging `ubuf_info` structures, overwriting `destructor_arg`, and
//!   withholding TX completions.
//! - [`testbed`] — [`Testbed`]: a whole simulated machine (memory,
//!   IOMMU, driver, stack) with benign traffic helpers, used by the
//!   attacks, the examples, D-KASAN workloads, and the benches.
//! - [`chaos`] — seeded fault-injection soaks over the whole machine:
//!   [`chaos::build_fault_plan`] derives a deterministic schedule from a
//!   seed and [`chaos::run_soak`] drives it to a leak-audited
//!   [`chaos::SoakReport`].
//! - [`model`] — the [`DeviceModel`] trait and [`boot_model`] dispatch:
//!   the device-agnostic surface the fuzzer, posture audit, and channel
//!   inference drive, so every consumer runs unchanged across the zoo.
//! - [`virtio`] / [`nvme`] — the non-NIC zoo members: a split-ring
//!   transport and a paired submission/completion queue device.
//!
//! [`dev_write`]: sim_iommu::Iommu::dev_write

pub mod chaos;
pub mod device;
pub mod model;
pub mod nvme;
pub mod testbed;
pub mod virtio;

pub use chaos::{build_fault_plan, run_soak, run_soak_isolated, SoakReport};
pub use device::{LeakedPointer, MaliciousEndpoint, MaliciousNic};
pub use model::{boot_model, BootSpec, DeviceKind, DeviceModel, WindowHit};
pub use nvme::NvmeTestbed;
pub use testbed::{Testbed, TestbedConfig};
pub use virtio::VirtioTestbed;
