//! Chaos harness: seeded fault schedules driven through the full stack.
//!
//! Each soak boots a [`Testbed`], arms a [`FaultPlan`] derived entirely
//! from one seed, and pushes a seed-derived traffic mix (RX injections,
//! echo TX, device scans, time advances) through it. The stack must
//! **degrade, not break**: transient errors and IOMMU faults are counted
//! as drops, anything else fails the soak. At the end the machine is
//! shut down and the IOMMU is audited for leaked mappings.
//!
//! Determinism: the same seed produces the same plan, the same traffic,
//! the same fault sequence, and therefore the same [`SoakReport`] —
//! which is exactly what the replay test asserts.

use crate::testbed::{Testbed, TestbedConfig};
use dma_core::{DetRng, DmaError, FaultPlan, Result};
use sim_net::driver::DriverConfig;
use sim_net::packet::Packet;
use sim_net::stack::StackConfig;
use std::collections::BTreeMap;

/// Every fault site the simulated stack exposes, one per layer.
pub const ALL_SITES: &[&str] = &[
    "sim_mem.alloc_pages",
    "sim_mem.kmalloc",
    "sim_mem.page_frag_alloc",
    "sim_iommu.dma_map",
    "sim_iommu.alloc_iova",
    "sim_iommu.flush_jitter",
    "sim_iommu.iotlb_evict",
    "sim_net.rx_refill",
    "device.dma_read",
    "device.dma_write",
];

/// Everything a soak run measured, in deterministic (BTreeMap) order.
/// Two runs with the same seed must produce `==` reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoakReport {
    /// The seed the schedule was derived from.
    pub seed: u64,
    /// Packets the stack delivered to local sockets.
    pub delivered: u64,
    /// Packets the echo service bounced back out (the soak runs with
    /// echo on, so healthy packets land here rather than in `delivered`).
    pub echoed: u64,
    /// Workload operations dropped because of a (tolerated) fault.
    pub dropped: u64,
    /// Total faults the plan injected.
    pub injected_total: u64,
    /// Injected faults per site.
    pub hits_by_site: BTreeMap<String, u64>,
    /// RX allocations that failed transiently in the driver.
    pub rx_alloc_failed: u64,
    /// TX rejections due to a full ring.
    pub tx_ring_full: u64,
    /// DMA-mapped pages still held by the device after shutdown.
    /// **Must be zero**: anything else is a leaked mapping.
    pub leaked_pages: usize,
    /// Events the bounded flight recorder evicted during the soak (the
    /// soak keeps a black-box window of recent events instead of an
    /// unbounded trace; this is how much history fell off the front).
    pub trace_dropped: u64,
    /// The full metrics snapshot of the run, rendered as JSON. Part of
    /// the report (and its `==`) so the replay test also asserts that
    /// every counter, gauge, histogram, and span is seed-deterministic.
    pub stats_json: String,
}

/// How many recent events the soak's flight recorder retains.
pub const SOAK_RECORDER_CAPACITY: usize = 2048;

/// Derives a randomized-but-deterministic fault schedule from `seed`:
/// a handful of rules spread across [`ALL_SITES`] with seed-chosen
/// triggers, plus one guaranteed-hot allocator rule so every schedule
/// injects at least one fault.
pub fn build_fault_plan(seed: u64) -> FaultPlan {
    let mut rng = DetRng::new(seed ^ 0xc4a0_55ed);
    let mut plan = FaultPlan::seeded(seed);
    let rules = 2 + rng.below(4);
    for _ in 0..rules {
        let site = ALL_SITES[rng.below(ALL_SITES.len() as u64) as usize];
        plan = match rng.below(4) {
            0 => plan.fail_nth(site, 1 + rng.below(24)),
            1 => plan.fail_every(site, 2 + rng.below(9)),
            2 => plan.fail_prob(site, 1, 4 + rng.below(16)),
            _ => plan.fail_once(site),
        };
    }
    // The allocator front door is on every packet's path; an every-k rule
    // here guarantees the schedule actually fires.
    plan.fail_every("sim_mem.*", 16 + rng.below(48))
}

/// True for errors the stack is *expected* to absorb under fault
/// injection: resource pressure and aborted DMA transactions.
fn tolerated(e: &DmaError) -> bool {
    e.is_transient()
        || matches!(
            e,
            DmaError::IommuFault { .. } | DmaError::IommuPermission { .. }
        )
}

/// Boots a machine, drives a seed-derived workload against the fault
/// plan for the same seed, shuts down, and audits for leaks.
///
/// Invariants enforced here (the chaos soak test layers more on top):
/// any non-tolerated error fails the run, and the teardown audit
/// (`leaked_pages`) is always taken.
pub fn run_soak(seed: u64) -> Result<SoakReport> {
    let mut rng = DetRng::new(seed ^ 0x50a7_50a7);
    let cfg = TestbedConfig {
        driver: DriverConfig {
            map_ctrl_block: true,
            num_queues: 1 + rng.below(3) as usize,
            ..Default::default()
        },
        stack: StackConfig {
            echo_service: true,
            ..Default::default()
        },
        boot_noise_seed: Some(seed),
        ..Default::default()
    };
    // The soak's trace is a black box: a bounded recorder keeps the
    // most recent events and counts evictions, so week-long schedules
    // cannot grow memory without bound.
    let mut tb = Testbed::new_recorded(cfg, SOAK_RECORDER_CAPACITY)?;
    // Arm the faults after boot so every schedule exercises the same
    // steady-state stack; probe-time degradation has its own unit tests.
    tb.ctx.faults = build_fault_plan(seed);

    let mut dropped = 0u64;
    let packets = 150 + rng.below(100);
    for i in 0..packets {
        let mut payload = vec![0u8; 1 + rng.below(900) as usize];
        rng.fill_bytes(&mut payload);
        let pkt = if rng.chance(1, 2) {
            Packet::udp(40 + (i as u32 % 8), 1, payload)
        } else {
            Packet::tcp(40 + (i as u32 % 8), 1, i as u32, payload)
        };
        match tb.deliver_packet(&pkt) {
            Ok(()) => {}
            Err(e) if tolerated(&e) => {
                dropped += 1;
                tb.ctx.metrics.incr("fault.recovered");
                // A starved ring cannot recover through rx_poll (nothing
                // completes), so kick the refill worker like a real
                // driver's NAPI reschedule would.
                tb.driver
                    .rx_refill(&mut tb.ctx, &mut tb.mem, &mut tb.iommu)?;
            }
            Err(e) => return Err(e),
        }
        if rng.chance(1, 8) {
            tb.advance_ms(1 + rng.below(20));
        }
        if rng.chance(1, 10) {
            // Device-side scans exercise the device.dma_read site (and
            // swallow per-range faults by design).
            let descs = tb.driver.rx_descriptors();
            let _ = tb
                .nic
                .scan_descriptors(&mut tb.ctx, &mut tb.iommu, &tb.mem.phys, &descs);
        }
        if rng.chance(1, 12) {
            match tb.complete_all_tx() {
                Ok(_) => {}
                Err(e) if tolerated(&e) => {
                    dropped += 1;
                    tb.ctx.metrics.incr("fault.recovered");
                }
                Err(e) => return Err(e),
            }
        }
    }

    let delivered = tb.stack.stats.delivered;
    let echoed = tb.stack.stats.echoed;
    let rx_alloc_failed = tb.driver.stats.rx_alloc_failed;
    let tx_ring_full = tb.driver.stats.tx_ring_full;
    let injected_total = tb.ctx.faults.injected_total();
    let hits_by_site = tb.ctx.faults.hits_by_site().clone();
    let leaked_pages = tb.shutdown()?;
    let trace_dropped = tb.ctx.trace.dropped();
    let stats_json = tb.ctx.metrics_snapshot().to_json();
    Ok(SoakReport {
        seed,
        delivered,
        echoed,
        dropped,
        injected_total,
        hits_by_site,
        rx_alloc_failed,
        tx_ring_full,
        leaked_pages,
        trace_dropped,
        stats_json,
    })
}

/// Panic-isolated soak: the campaign-facing entry point. A panic
/// anywhere inside the soak (a simulator invariant blowing up under a
/// hostile schedule) is contained by `catch_unwind` and surfaced as a
/// first-class [`DmaError::Invariant`] instead of tearing down the
/// whole campaign process — the same containment the fuzz engine's
/// quarantine applies per execution.
pub fn run_soak_isolated(seed: u64) -> Result<SoakReport> {
    match std::panic::catch_unwind(|| run_soak(seed)) {
        Ok(result) => result,
        Err(_) => Err(DmaError::Invariant("chaos soak panicked")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_soak_matches_the_plain_soak() {
        assert_eq!(run_soak_isolated(7).unwrap(), run_soak(7).unwrap());
    }

    #[test]
    fn isolated_soak_contains_panics() {
        let r = std::panic::catch_unwind(|| {
            match std::panic::catch_unwind(|| -> Result<SoakReport> {
                panic!("synthetic soak panic")
            }) {
                Ok(result) => result,
                Err(_) => Err(DmaError::Invariant("chaos soak panicked")),
            }
        })
        .expect("outer unwind must never fire");
        assert!(matches!(r, Err(DmaError::Invariant(_))));
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let a = build_fault_plan(42);
        let b = build_fault_plan(42);
        assert_eq!(a.rules().len(), b.rules().len());
        let c = build_fault_plan(43);
        // Different seeds virtually always differ in rule count or sites.
        let same = a.rules().len() == c.rules().len()
            && a.rules()
                .iter()
                .zip(c.rules())
                .all(|(x, y)| x.pattern == y.pattern);
        assert!(!same, "seed 43 produced the same plan as seed 42");
    }

    #[test]
    fn one_soak_runs_clean_and_leak_free() {
        let r = run_soak(7).unwrap();
        assert!(r.injected_total >= 1, "schedule must fire at least once");
        assert_eq!(r.leaked_pages, 0, "no mapping may survive shutdown");
        assert!(r.delivered + r.echoed + r.dropped > 0);
        // The soak emits far more events than the recorder retains; the
        // loss must be accounted, not silent — in the report AND in the
        // metrics snapshot.
        assert!(r.trace_dropped > 0, "soak should overflow the recorder");
        assert!(
            r.stats_json.contains("\"trace.dropped\""),
            "{}",
            r.stats_json
        );
    }
}
