//! A whole simulated machine: memory + IOMMU + NIC driver + stack +
//! malicious device, wired together.
//!
//! This mirrors the paper's test setup (§6): a victim machine with an
//! IOMMU and a NIC whose DMA the attacker controls.

use crate::device::MaliciousNic;
use crate::model::{BootSpec, DeviceKind, DeviceModel, WindowHit};
use dma_core::posture::PostureReport;
use dma_core::vuln::WindowPath;
use dma_core::{Iova, Kva, Result, SimCtx, PAGE_SIZE};
use sim_iommu::{Iommu, IommuConfig};
use sim_mem::{MemConfig, MemorySystem};
use sim_net::driver::{AllocPolicy, DriverConfig, NicDriver, UnmapOrder};
use sim_net::packet::Packet;
use sim_net::shinfo::SHINFO_DESTRUCTOR_ARG;
use sim_net::skb::{PendingCallback, NET_SKB_PAD};
use sim_net::stack::{NetStack, StackConfig};

/// Full machine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct TestbedConfig {
    /// Which device family to boot (see [`crate::model::boot_model`];
    /// [`Testbed::new`] itself always builds the NIC machine and
    /// ignores non-NIC values).
    pub device: DeviceKind,
    /// Memory/KASLR configuration.
    pub mem: MemConfigLite,
    /// IOMMU configuration.
    pub iommu: IommuConfig,
    /// NIC driver configuration. Non-NIC models reuse the shared knobs
    /// (`dev`, `unmap_order`, ring sizing) and ignore the rest.
    pub driver: DriverConfig,
    /// Upper-stack configuration.
    pub stack: StackConfig,
    /// Boot-time allocation jitter seed (§5.3): models the timing noise
    /// that makes per-boot PFN assignment *vary slightly* while the boot
    /// sequence itself stays deterministic. `None` = perfectly quiet
    /// boot.
    pub boot_noise_seed: Option<u64>,
}

/// A copyable subset of [`MemConfig`] (the full struct is not `Copy`).
#[derive(Clone, Copy, Debug)]
pub struct MemConfigLite {
    /// Physical memory bytes.
    pub phys_bytes: u64,
    /// CPU count.
    pub num_cpus: usize,
    /// KASLR seed (`None` = identity layout).
    pub kaslr_seed: Option<u64>,
}

impl Default for MemConfigLite {
    fn default() -> Self {
        MemConfigLite {
            phys_bytes: 256 << 20,
            num_cpus: 4,
            kaslr_seed: Some(0xd0e5_1e5e),
        }
    }
}

impl From<MemConfigLite> for MemConfig {
    fn from(l: MemConfigLite) -> MemConfig {
        MemConfig {
            phys_bytes: l.phys_bytes,
            num_cpus: l.num_cpus,
            kaslr_seed: l.kaslr_seed,
            ..Default::default()
        }
    }
}

/// The assembled machine.
///
/// `Clone` performs a deep copy of the whole machine — memory, IOMMU,
/// rings, stack — which is what lets a fuzzing shard boot one template
/// per machine config and stamp out per-exec copies instead of
/// re-running the (far more expensive) boot sequence.
#[derive(Clone)]
pub struct Testbed {
    /// Simulation context (clock + trace).
    pub ctx: SimCtx,
    /// Memory system.
    pub mem: MemorySystem,
    /// IOMMU.
    pub iommu: Iommu,
    /// NIC driver.
    pub driver: NicDriver,
    /// Upper stack.
    pub stack: NetStack,
    /// The attacker-controlled NIC (same device the driver serves).
    pub nic: MaliciousNic,
}

impl Testbed {
    /// Boots a machine.
    ///
    /// # Examples
    ///
    /// ```
    /// use devsim::{Testbed, TestbedConfig};
    /// use sim_net::packet::Packet;
    ///
    /// let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
    /// tb.deliver_packet(&Packet::udp(9, 1, b"hi".to_vec())).unwrap();
    /// assert_eq!(tb.stack.stats.delivered, 1);
    /// ```
    pub fn new(cfg: TestbedConfig) -> Result<Self> {
        Self::build(SimCtx::new(), cfg)
    }

    /// Boots a machine into a caller-prepared simulation context (the
    /// [`BootSpec::TracedBoot`] path enables tracing *before* boot so
    /// the boot-time ring population reaches the event stream).
    fn build(mut ctx: SimCtx, cfg: TestbedConfig) -> Result<Self> {
        let mut mem = MemorySystem::new(&cfg.mem.into());
        let mut iommu = Iommu::new(cfg.iommu);
        if let Some(seed) = cfg.boot_noise_seed {
            boot_noise(&mut ctx, &mut mem, seed)?;
        }
        let driver = NicDriver::probe(cfg.driver, &mut ctx, &mut mem, &mut iommu)?;
        let stack = NetStack::new(cfg.stack, &mem);
        let nic = MaliciousNic::new(cfg.driver.dev);
        Ok(Testbed {
            ctx,
            mem,
            iommu,
            driver,
            stack,
            nic,
        })
    }

    /// Boots a machine with event tracing enabled (for D-KASAN).
    pub fn new_traced(cfg: TestbedConfig) -> Result<Self> {
        let mut tb = Self::new(cfg)?;
        tb.ctx.trace.enabled = true;
        tb.ctx.clock.advance(0);
        Ok(tb)
    }

    /// Boots a machine whose event capture goes through a bounded
    /// flight recorder of `capacity` events (evictions are counted
    /// under the `trace.dropped` metric). The long-running harnesses —
    /// chaos soak, fuzz executor — use this instead of the unbounded
    /// trace.
    pub fn new_recorded(cfg: TestbedConfig, capacity: usize) -> Result<Self> {
        let mut tb = Self::new(cfg)?;
        tb.ctx.trace = dma_core::Trace::recorded(capacity);
        tb.ctx.trace.enabled = true;
        tb.ctx.clock.advance(0);
        Ok(tb)
    }

    /// Boots a machine under a [`BootSpec`] — the constructor the
    /// device-model dispatch ([`crate::model::boot_model`]) uses.
    pub fn boot(cfg: TestbedConfig, spec: BootSpec) -> Result<Self> {
        match spec {
            BootSpec::Quiet => Self::new(cfg),
            BootSpec::Recorded(cap) => {
                let mut tb = Self::new_recorded(cfg, cap)?;
                tb.ctx.trace.record_cpu_access = true;
                Ok(tb)
            }
            BootSpec::TracedBoot => {
                let mut ctx = SimCtx::new();
                ctx.trace.enabled = true;
                ctx.trace.record_cpu_access = true;
                let mut tb = Self::build(ctx, cfg)?;
                tb.ctx.clock.advance(0);
                Ok(tb)
            }
        }
    }

    /// Device delivers one packet and the driver/stack process it to
    /// completion (the benign fast path).
    pub fn deliver_packet(&mut self, packet: &Packet) -> Result<()> {
        let descs = self.driver.rx_descriptors();
        let (iova, _) = *descs.first().ok_or(dma_core::DmaError::RingEmpty)?;
        let n = self.nic.inject_rx(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            iova,
            packet,
        )?;
        self.driver.device_rx_complete(n)?;
        self.rx_process()
    }

    /// Device delivers `bytes` verbatim — no `Packet` framing — into the
    /// head RX buffer at the payload offset and signals completion. This
    /// is the fuzzer's malformed-frame path: the wire bytes need not
    /// parse, and the stack is expected to drop garbage gracefully
    /// rather than panic.
    pub fn deliver_raw(&mut self, bytes: &[u8]) -> Result<()> {
        let descs = self.driver.rx_descriptors();
        let (iova, buf_size) = *descs.first().ok_or(dma_core::DmaError::RingEmpty)?;
        let room = buf_size.saturating_sub(NET_SKB_PAD);
        if room == 0 {
            return Err(dma_core::DmaError::RingEmpty);
        }
        let n = bytes.len().min(room);
        self.nic.deposit(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            iova,
            NET_SKB_PAD,
            &bytes[..n],
        )?;
        self.driver.device_rx_complete(n)?;
        self.rx_process()
    }

    /// Polls RX until empty and runs the stack on everything.
    pub fn rx_process(&mut self) -> Result<()> {
        while let Some(skb) =
            self.driver
                .rx_poll_quiet(&mut self.ctx, &mut self.mem, &mut self.iommu)?
        {
            self.stack.rx(
                &mut self.ctx,
                &mut self.mem,
                &mut self.iommu,
                &mut self.driver,
                skb,
            )?;
        }
        self.stack.flush(
            &mut self.ctx,
            &mut self.mem,
            &mut self.iommu,
            &mut self.driver,
        )
    }

    /// Completes every in-flight TX (an honest device would) and reaps,
    /// returning any surfaced destructor callbacks.
    pub fn complete_all_tx(&mut self) -> Result<Vec<PendingCallback>> {
        let descs = self.driver.tx_descriptors();
        for d in &descs {
            self.driver.device_tx_complete(d.idx)?;
        }
        self.driver
            .tx_reap(&mut self.ctx, &mut self.mem, &mut self.iommu)
    }

    /// Advances simulated time.
    pub fn advance_ms(&mut self, ms: u64) {
        self.ctx.clock.advance_ms(ms);
        self.iommu.tick(&mut self.ctx);
    }

    /// Tears the machine down — completes and reaps all TX, unmaps and
    /// frees every driver-held buffer — and returns the number of pages
    /// the device can still DMA to afterwards.
    ///
    /// This is the mapping-leak audit: a clean shutdown returns `0`; any
    /// path that lost track of a mapping (for example under fault
    /// injection) shows up as a non-zero residue.
    pub fn shutdown(&mut self) -> Result<usize> {
        for d in &self.driver.tx_descriptors() {
            self.driver.device_tx_complete(d.idx)?;
        }
        let _ = self
            .driver
            .shutdown(&mut self.ctx, &mut self.mem, &mut self.iommu)?;
        Ok(self.iommu.mapped_pages(self.nic.id))
    }
}

impl DeviceModel for Testbed {
    fn kind(&self) -> DeviceKind {
        DeviceKind::Nic
    }

    fn sim(&mut self) -> &mut SimCtx {
        &mut self.ctx
    }

    fn sim_ref(&self) -> &SimCtx {
        &self.ctx
    }

    fn deliver(&mut self, len: usize, fill: u8) -> Result<()> {
        let pkt = Packet::udp(60 + (fill as u32 % 8), 1, vec![fill; len]);
        self.deliver_packet(&pkt)
    }

    fn inject_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.deliver_raw(bytes)
    }

    fn descriptors(&self) -> Vec<(Iova, usize)> {
        self.driver.rx_descriptors()
    }

    fn dev_deposit(&mut self, iova: Iova, offset: usize, bytes: &[u8]) -> Result<()> {
        let nic = self.nic;
        nic.deposit(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            iova,
            offset,
            bytes,
        )
    }

    /// Delivers a frame and fires the device write *inside* the rx_poll
    /// race window — between build_skb and dma_unmap on BuildThenUnmap
    /// drivers (path (i)), or after the unmap on UnmapThenBuild
    /// drivers, where it only lands through a stale IOTLB entry
    /// (path (ii)).
    fn window_race(&mut self, value: u64) -> Result<Option<WindowHit>> {
        let descs = self.driver.rx_descriptors();
        let (iova, _) = *descs.first().ok_or(dma_core::DmaError::RingEmpty)?;
        let pkt = Packet::udp(61, 1, vec![0xa5; 64]);
        let n = self.nic.inject_rx(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            iova,
            &pkt,
        )?;
        self.driver.device_rx_complete(n)?;

        let nic = self.nic;
        let start = self.ctx.clock.now();
        let mut landed: Option<Iova> = None;
        loop {
            let polled = self.driver.rx_poll(
                &mut self.ctx,
                &mut self.mem,
                &mut self.iommu,
                |ctx, mem, iommu, slot| {
                    let shinfo = nic.shinfo_iova(slot.mapping.iova, slot.buf_size);
                    let target = Iova(shinfo.raw() + SHINFO_DESTRUCTOR_ARG as u64);
                    if nic
                        .write_u64(ctx, iommu, &mut mem.phys, target, value)
                        .is_ok()
                    {
                        landed = Some(target);
                    }
                },
            )?;
            match polled {
                Some(skb) => self.stack.rx(
                    &mut self.ctx,
                    &mut self.mem,
                    &mut self.iommu,
                    &mut self.driver,
                    skb,
                )?,
                None => break,
            }
        }
        self.stack.flush(
            &mut self.ctx,
            &mut self.mem,
            &mut self.iommu,
            &mut self.driver,
        )?;

        Ok(landed.map(|target| {
            let path = match self.driver.cfg.unmap_order {
                UnmapOrder::BuildThenUnmap => WindowPath::UnmapAfterBuild,
                UnmapOrder::UnmapThenBuild => WindowPath::DeferredIotlb,
            };
            WindowHit {
                site: "skb_shared_info.destructor_arg",
                field: "destructor_arg",
                target,
                path,
                start,
                end: self.ctx.clock.now(),
            }
        }))
    }

    /// Captures the head descriptor, lets the driver consume and unmap
    /// it, then writes through the captured IOVA: only a stale IOTLB
    /// entry (deferred invalidation, §5.2.1) lets this land.
    fn window_stale(&mut self, value: u64) -> Result<WindowHit> {
        let descs = self.driver.rx_descriptors();
        let (iova, buf_size) = *descs.first().ok_or(dma_core::DmaError::RingEmpty)?;
        let target = Iova(iova.raw() + buf_size as u64 + SHINFO_DESTRUCTOR_ARG as u64);
        let start = self.ctx.clock.now();
        // Consuming the head frame fills the IOTLB through this IOVA and
        // then unmaps it; under deferred invalidation the entry lingers.
        self.deliver_packet(&Packet::udp(62, 1, vec![0x5a; 48]))?;
        self.nic.write_u64(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            target,
            value,
        )?;
        Ok(WindowHit {
            site: "skb_shared_info.destructor_arg",
            field: "destructor_arg",
            target,
            path: WindowPath::DeferredIotlb,
            start,
            end: self.ctx.clock.now(),
        })
    }

    fn tick_ms(&mut self, ms: u64) {
        self.advance_ms(ms);
    }

    fn churn_alloc(&mut self, size: usize, site: &'static str) -> Result<Kva> {
        self.mem.kmalloc(&mut self.ctx, size, site)
    }

    fn churn_free(&mut self, kva: Kva) -> Result<()> {
        self.mem.kfree(&mut self.ctx, kva)
    }

    fn scan_leaks(&mut self) -> usize {
        let descs = self.driver.rx_descriptors();
        let nic = self.nic;
        nic.scan_descriptors(&mut self.ctx, &mut self.iommu, &self.mem.phys, &descs)
            .len()
    }

    fn complete_io(&mut self) -> Result<()> {
        self.complete_all_tx().map(|_| ())
    }

    fn recover(&mut self) -> Result<()> {
        self.driver
            .rx_refill(&mut self.ctx, &mut self.mem, &mut self.iommu)
    }

    fn teardown(&mut self) -> Result<usize> {
        self.shutdown()
    }

    fn delivered_count(&self) -> u64 {
        self.stack.stats.delivered + self.stack.stats.echoed
    }

    fn colocates_random(&self) -> bool {
        matches!(self.driver.cfg.alloc, AllocPolicy::Kmalloc) || self.driver.cfg.map_ctrl_block
    }

    fn posture(&self, label: &str) -> PostureReport {
        // PagePerBuffer wastes the page's tail but shares it with
        // nothing: the effective sub-page surface is the whole page.
        let effective_buf = match self.driver.cfg.alloc {
            AllocPolicy::PagePerBuffer => PAGE_SIZE,
            _ => self.driver.cfg.rx_buf_size,
        };
        let stale = self.ctx.metrics.histogram("sim_iommu.stale_window.cycles");
        self.iommu.posture(label, effective_buf, stale)
    }

    fn clone_model(&self) -> Box<dyn DeviceModel> {
        Box::new(self.clone())
    }
}

/// Early-boot allocation jitter: a seed-dependent number of page and
/// object allocations made before the NIC driver probes, shifting where
/// its RX buffers land — "while the pages each module receives may vary
/// in a multi-core environment due to timing issues, we do not expect
/// the drift to be too large" (§5.3).
pub(crate) fn boot_noise(ctx: &mut SimCtx, mem: &mut MemorySystem, seed: u64) -> Result<()> {
    let mut rng = dma_core::DetRng::new(seed ^ 0xb007_b007);
    // Leaked (never-freed) early allocations: modules, firmware blobs...
    let pages = rng.below(49);
    for _ in 0..pages {
        mem.alloc_pages(ctx, 0, "boot_early_alloc")?;
    }
    let objs = rng.below(32);
    let mut transient = Vec::new();
    for _ in 0..objs {
        let size = 32 << rng.below(5);
        let kva = mem.kmalloc(ctx, size as usize, "boot_module_init")?;
        // Most early-boot allocations are short-lived (initdata, probe
        // scratch); roughly two thirds are freed again before drivers
        // settle, leaving partially filled slab pages behind.
        if rng.chance(2, 3) {
            transient.push(kva);
        }
    }
    for kva in transient {
        mem.kfree(ctx, kva)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_udp(payload: &[u8]) -> Packet {
        Packet::udp(99, 1, payload.to_vec())
    }

    #[test]
    fn boot_and_deliver() {
        let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
        tb.deliver_packet(&local_udp(b"hello world")).unwrap();
        assert_eq!(tb.stack.stats.delivered, 1);
        assert_eq!(tb.stack.delivered()[0].payload, b"hello world");
    }

    #[test]
    fn many_packets_cycle_the_ring() {
        let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
        for i in 0..200u32 {
            tb.deliver_packet(&local_udp(&i.to_le_bytes())).unwrap();
        }
        assert_eq!(tb.stack.stats.delivered, 200);
        assert_eq!(tb.driver.stats.rx_packets, 200);
    }

    #[test]
    fn echo_roundtrip_with_completion() {
        let cfg = TestbedConfig {
            stack: StackConfig {
                echo_service: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut tb = Testbed::new(cfg).unwrap();
        tb.deliver_packet(&local_udp(&[7u8; 128])).unwrap();
        assert_eq!(tb.stack.stats.echoed, 1);
        let cbs = tb.complete_all_tx().unwrap();
        assert!(cbs.is_empty());
    }

    #[test]
    fn raw_garbage_frames_are_dropped_not_fatal() {
        let mut tb = Testbed::new(TestbedConfig::default()).unwrap();
        tb.deliver_raw(&[0xff; 97]).unwrap();
        assert_eq!(tb.stack.stats.delivered, 0);
        assert_eq!(tb.stack.stats.dropped, 1, "garbage is dropped, not fatal");
        // A well-formed packet still flows afterwards.
        tb.deliver_packet(&local_udp(b"after")).unwrap();
        assert_eq!(tb.stack.stats.delivered, 1);
        assert_eq!(tb.shutdown().unwrap(), 0);
    }

    #[test]
    fn traced_testbed_captures_events() {
        let mut tb = Testbed::new_traced(TestbedConfig::default()).unwrap();
        tb.deliver_packet(&local_udp(b"x")).unwrap();
        assert!(!tb.ctx.trace.is_empty());
    }
}
