//! An NVMe-ish paired submission/completion queue machine.
//!
//! The DMA surfaces mirror an NVMe I/O queue pair:
//!
//! * a **submission queue** (kzalloc'd, mapped `ToDevice`,
//!   `nvme_sq_map`): the driver CPU-writes 64-byte commands carrying a
//!   PRP data pointer, and the device DMA-*reads* them — the
//!   base+pointer chain inference follows;
//! * a **completion queue** (kzalloc'd, mapped `FromDevice`,
//!   `nvme_cq_map`): a long-lived device-writable control block the
//!   device posts 16-byte entries into;
//! * **page-frag data buffers** mapped `FromDevice` per command
//!   (`nvme_prp_map`), unmapped and recycled at completion.
//!
//! A small pool of commands stays outstanding so the device always has
//! live data mappings; completion order mirrors the NIC's `UnmapOrder`
//! knob (read-the-data-then-unmap opens the §5.2.2 path (i) window).

use crate::device::MaliciousEndpoint;
use crate::model::{BootSpec, DeviceKind, DeviceModel, WindowHit};
use crate::testbed::{boot_noise, TestbedConfig};
use dma_core::posture::PostureReport;
use dma_core::trace::DeviceId;
use dma_core::vuln::{DmaDirection, WindowPath};
use dma_core::{DmaError, Iova, Kva, Result, SimCtx};
use sim_iommu::{dma_map_single, dma_unmap_single, DmaMapping, Iommu};
use sim_mem::MemorySystem;
use sim_net::driver::UnmapOrder;
use std::collections::VecDeque;

/// Queue depth (SQ and CQ entries).
pub const NVME_QUEUE_DEPTH: usize = 8;
/// Bytes per submission-queue entry.
pub const NVME_SQE_SIZE: usize = 64;
/// Byte offset of the PRP data pointer inside an SQE.
pub const NVME_SQE_PRP_OFFSET: usize = 24;
/// Bytes per completion-queue entry.
pub const NVME_CQE_SIZE: usize = 16;
/// Data buffer bytes per command (a page-frag carving, so several
/// commands' buffers share one physical page — the sub-page surface).
pub const NVME_DATA_SIZE: usize = 512;
/// Commands kept outstanding between deliveries.
pub const NVME_POOL: usize = 2;

#[derive(Clone, Copy, Debug)]
struct PendingCmd {
    kva: Kva,
    mapping: DmaMapping,
    slot: usize,
}

/// The assembled NVMe-style machine.
#[derive(Clone)]
pub struct NvmeTestbed {
    /// Simulation context (clock + trace).
    pub ctx: SimCtx,
    /// Memory system.
    pub mem: MemorySystem,
    /// IOMMU.
    pub iommu: Iommu,
    /// The attacker-controlled endpoint.
    pub ep: MaliciousEndpoint,
    dev: DeviceId,
    order: UnmapOrder,
    sq_kva: Kva,
    sq: DmaMapping,
    cq_kva: Kva,
    cq: DmaMapping,
    pending: VecDeque<PendingCmd>,
    sq_tail: usize,
    cq_head: usize,
    delivered: u64,
    torn_down: bool,
}

impl NvmeTestbed {
    /// Boots the machine under a [`BootSpec`].
    pub fn boot(cfg: TestbedConfig, spec: BootSpec) -> Result<Self> {
        match spec {
            BootSpec::Quiet => Self::build(SimCtx::new(), cfg),
            BootSpec::Recorded(cap) => {
                let mut tb = Self::build(SimCtx::new(), cfg)?;
                tb.ctx.trace = dma_core::Trace::recorded(cap);
                tb.ctx.trace.enabled = true;
                tb.ctx.trace.record_cpu_access = true;
                tb.ctx.clock.advance(0);
                Ok(tb)
            }
            BootSpec::TracedBoot => {
                let mut ctx = SimCtx::new();
                ctx.trace.enabled = true;
                ctx.trace.record_cpu_access = true;
                let mut tb = Self::build(ctx, cfg)?;
                tb.ctx.clock.advance(0);
                Ok(tb)
            }
        }
    }

    fn build(mut ctx: SimCtx, cfg: TestbedConfig) -> Result<Self> {
        let mut mem = MemorySystem::new(&cfg.mem.into());
        let mut iommu = Iommu::new(cfg.iommu);
        if let Some(seed) = cfg.boot_noise_seed {
            boot_noise(&mut ctx, &mut mem, seed)?;
        }
        let dev = cfg.driver.dev;
        iommu.attach_device(dev);
        let sq_kva = mem.kzalloc(&mut ctx, NVME_QUEUE_DEPTH * NVME_SQE_SIZE, "nvme_sq_alloc")?;
        let sq = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            dev,
            sq_kva,
            NVME_QUEUE_DEPTH * NVME_SQE_SIZE,
            DmaDirection::ToDevice,
            "nvme_sq_map",
        )?;
        let cq_kva = mem.kzalloc(&mut ctx, NVME_QUEUE_DEPTH * NVME_CQE_SIZE, "nvme_cq_alloc")?;
        let cq = dma_map_single(
            &mut ctx,
            &mut iommu,
            &mem.layout,
            dev,
            cq_kva,
            NVME_QUEUE_DEPTH * NVME_CQE_SIZE,
            DmaDirection::FromDevice,
            "nvme_cq_map",
        )?;
        let mut tb = NvmeTestbed {
            ctx,
            mem,
            iommu,
            ep: MaliciousEndpoint::new(dev),
            dev,
            order: cfg.driver.unmap_order,
            sq_kva,
            sq,
            cq_kva,
            cq,
            pending: VecDeque::with_capacity(NVME_POOL + 1),
            sq_tail: 0,
            cq_head: 0,
            delivered: 0,
            torn_down: false,
        };
        for i in 0..NVME_POOL {
            tb.submit_and_fire(&[0u8; 8], i as u8)?;
        }
        Ok(tb)
    }

    /// Driver submits a read command, then the device executes it:
    /// DMA-reads the SQE, follows the PRP pointer to write the payload,
    /// and posts a completion entry.
    fn submit_and_fire(&mut self, payload: &[u8], fill: u8) -> Result<()> {
        let kva = self
            .mem
            .page_frag_alloc(&mut self.ctx, NVME_DATA_SIZE, "nvme_alloc_prp")?;
        let mapping = match dma_map_single(
            &mut self.ctx,
            &mut self.iommu,
            &self.mem.layout,
            self.dev,
            kva,
            NVME_DATA_SIZE,
            DmaDirection::FromDevice,
            "nvme_prp_map",
        ) {
            Ok(m) => m,
            Err(e) => {
                self.mem.page_frag_free(&mut self.ctx, kva)?;
                return Err(e);
            }
        };
        let slot = self.sq_tail;
        self.sq_tail = (self.sq_tail + 1) % NVME_QUEUE_DEPTH;
        // Driver CPU-writes the command into the live ToDevice SQ.
        let sqe = Kva(self.sq_kva.raw() + (slot * NVME_SQE_SIZE) as u64);
        self.mem.cpu_write_u64(
            &mut self.ctx,
            sqe,
            0x02 | ((fill as u64) << 8),
            "nvme_submit_cmd",
        )?;
        self.mem.cpu_write_u64(
            &mut self.ctx,
            Kva(sqe.raw() + NVME_SQE_PRP_OFFSET as u64),
            mapping.iova.raw(),
            "nvme_submit_cmd",
        )?;
        // Device side: fetch the command, follow the PRP, post a CQE.
        let ep = self.ep;
        let sqe_iova = Iova(self.sq.iova.raw() + (slot * NVME_SQE_SIZE) as u64);
        let prp = Iova(ep.read_u64(
            &mut self.ctx,
            &mut self.iommu,
            &self.mem.phys,
            Iova(sqe_iova.raw() + NVME_SQE_PRP_OFFSET as u64),
        )?);
        let n = payload.len().clamp(1, NVME_DATA_SIZE);
        let mut data = vec![fill; n];
        data[..payload.len().min(n)].copy_from_slice(&payload[..payload.len().min(n)]);
        ep.write(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            prp,
            &data,
        )?;
        let mut cqe = [0u8; NVME_CQE_SIZE];
        cqe[..2].copy_from_slice(&(slot as u16).to_le_bytes());
        cqe[2] = 0x01; // phase bit
        ep.write(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            Iova(self.cq.iova.raw() + (slot * NVME_CQE_SIZE) as u64),
            &cqe,
        )?;
        self.pending.push_back(PendingCmd { kva, mapping, slot });
        Ok(())
    }

    /// Driver completes the oldest command. With `race_value` set, the
    /// device fires a write into the data buffer inside the completion
    /// window; returns the landed target, if any.
    fn complete_one(&mut self, race_value: Option<u64>) -> Result<Option<Iova>> {
        let cmd = self.pending.pop_front().ok_or(DmaError::RingEmpty)?;
        let cqe = Kva(self.cq_kva.raw() + (cmd.slot * NVME_CQE_SIZE) as u64);
        self.mem.cpu_read_u64(&mut self.ctx, cqe, "nvme_read_cqe")?;
        self.cq_head = (self.cq_head + 1) % NVME_QUEUE_DEPTH;
        let ep = self.ep;
        let mut landed = None;
        let mut race = |ctx: &mut SimCtx, iommu: &mut Iommu, mem: &mut MemorySystem| {
            if let Some(v) = race_value {
                if ep
                    .write_u64(ctx, iommu, &mut mem.phys, cmd.mapping.iova, v)
                    .is_ok()
                {
                    landed = Some(cmd.mapping.iova);
                }
            }
        };
        match self.order {
            UnmapOrder::BuildThenUnmap => {
                let mut first = [0u8; 16];
                self.mem
                    .cpu_read(&mut self.ctx, cmd.kva, &mut first, "nvme_complete_read")?;
                race(&mut self.ctx, &mut self.iommu, &mut self.mem);
                dma_unmap_single(&mut self.ctx, &mut self.iommu, &cmd.mapping)?;
            }
            UnmapOrder::UnmapThenBuild => {
                dma_unmap_single(&mut self.ctx, &mut self.iommu, &cmd.mapping)?;
                let mut first = [0u8; 16];
                self.mem
                    .cpu_read(&mut self.ctx, cmd.kva, &mut first, "nvme_complete_read")?;
                race(&mut self.ctx, &mut self.iommu, &mut self.mem);
            }
        }
        self.mem.page_frag_free(&mut self.ctx, cmd.kva)?;
        self.delivered += 1;
        Ok(landed)
    }

    fn io_round(&mut self, payload: &[u8], fill: u8) -> Result<()> {
        self.submit_and_fire(payload, fill)?;
        self.complete_one(None)?;
        Ok(())
    }
}

impl DeviceModel for NvmeTestbed {
    fn kind(&self) -> DeviceKind {
        DeviceKind::NvmeQueuePair
    }

    fn sim(&mut self) -> &mut SimCtx {
        &mut self.ctx
    }

    fn sim_ref(&self) -> &SimCtx {
        &self.ctx
    }

    fn deliver(&mut self, len: usize, fill: u8) -> Result<()> {
        let payload = vec![fill; len.min(NVME_DATA_SIZE)];
        self.io_round(&payload, fill)
    }

    fn inject_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.io_round(bytes, 0xee)
    }

    fn descriptors(&self) -> Vec<(Iova, usize)> {
        self.pending
            .iter()
            .map(|c| (c.mapping.iova, NVME_DATA_SIZE))
            .collect()
    }

    fn dev_deposit(&mut self, iova: Iova, offset: usize, bytes: &[u8]) -> Result<()> {
        let ep = self.ep;
        ep.deposit(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            iova,
            offset,
            bytes,
        )
    }

    fn window_race(&mut self, value: u64) -> Result<Option<WindowHit>> {
        let start = self.ctx.clock.now();
        self.submit_and_fire(&[0xa5; 32], 0xa5)?;
        let landed = self.complete_one(Some(value))?;
        Ok(landed.map(|target| WindowHit {
            site: "nvme_prp.data",
            field: "prp_data",
            target,
            path: match self.order {
                UnmapOrder::BuildThenUnmap => WindowPath::UnmapAfterBuild,
                UnmapOrder::UnmapThenBuild => WindowPath::DeferredIotlb,
            },
            start,
            end: self.ctx.clock.now(),
        }))
    }

    fn window_stale(&mut self, value: u64) -> Result<WindowHit> {
        let head = *self.pending.front().ok_or(DmaError::RingEmpty)?;
        let target = head.mapping.iova;
        let start = self.ctx.clock.now();
        self.io_round(&[0x5a; 24], 0x5a)?;
        let ep = self.ep;
        ep.write_u64(
            &mut self.ctx,
            &mut self.iommu,
            &mut self.mem.phys,
            target,
            value,
        )?;
        Ok(WindowHit {
            site: "nvme_prp.data",
            field: "prp_data",
            target,
            path: WindowPath::DeferredIotlb,
            start,
            end: self.ctx.clock.now(),
        })
    }

    fn tick_ms(&mut self, ms: u64) {
        self.ctx.clock.advance_ms(ms);
        self.iommu.tick(&mut self.ctx);
    }

    fn churn_alloc(&mut self, size: usize, site: &'static str) -> Result<Kva> {
        self.mem.kmalloc(&mut self.ctx, size, site)
    }

    fn churn_free(&mut self, kva: Kva) -> Result<()> {
        self.mem.kfree(&mut self.ctx, kva)
    }

    fn scan_leaks(&mut self) -> usize {
        let ep = self.ep;
        let mut ranges: Vec<(Iova, usize)> = vec![(self.sq.iova, NVME_QUEUE_DEPTH * NVME_SQE_SIZE)];
        ranges.extend(self.descriptors());
        ep.scan_descriptors(&mut self.ctx, &mut self.iommu, &self.mem.phys, &ranges)
            .len()
    }

    fn complete_io(&mut self) -> Result<()> {
        while !self.pending.is_empty() {
            self.complete_one(None)?;
        }
        Ok(())
    }

    fn recover(&mut self) -> Result<()> {
        while self.pending.len() < NVME_POOL {
            let fill = self.pending.len() as u8;
            self.submit_and_fire(&[0u8; 8], fill)?;
        }
        Ok(())
    }

    fn teardown(&mut self) -> Result<usize> {
        if !self.torn_down {
            self.torn_down = true;
            while !self.pending.is_empty() {
                self.complete_one(None)?;
            }
            dma_unmap_single(&mut self.ctx, &mut self.iommu, &self.sq)?;
            self.mem.kfree(&mut self.ctx, self.sq_kva)?;
            dma_unmap_single(&mut self.ctx, &mut self.iommu, &self.cq)?;
            self.mem.kfree(&mut self.ctx, self.cq_kva)?;
        }
        Ok(self.iommu.mapped_pages(self.dev))
    }

    fn delivered_count(&self) -> u64 {
        self.delivered
    }

    fn colocates_random(&self) -> bool {
        // The mapped SQ/CQ are kmalloc'd control blocks: their slab
        // pages expose whatever objects land beside them.
        true
    }

    fn posture(&self, label: &str) -> PostureReport {
        let stale = self.ctx.metrics.histogram("sim_iommu.stale_window.cycles");
        self.iommu.posture(label, NVME_DATA_SIZE, stale)
    }

    fn clone_model(&self) -> Box<dyn DeviceModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_iommu::{InvalidationMode, IommuConfig};
    use sim_net::driver::DriverConfig;

    fn cfg(order: UnmapOrder, mode: InvalidationMode) -> TestbedConfig {
        TestbedConfig {
            device: DeviceKind::NvmeQueuePair,
            iommu: IommuConfig {
                mode,
                ..Default::default()
            },
            driver: DriverConfig {
                unmap_order: order,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn boot_deliver_and_clean_teardown() {
        let mut tb = NvmeTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        for i in 0..20u8 {
            tb.deliver(128, i).unwrap();
        }
        assert_eq!(tb.delivered_count(), 20);
        assert_eq!(tb.descriptors().len(), NVME_POOL);
        assert_eq!(tb.teardown().unwrap(), 0);
    }

    #[test]
    fn completion_window_opens_only_with_build_then_unmap() {
        let mut open = NvmeTestbed::boot(
            cfg(UnmapOrder::BuildThenUnmap, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        let hit = open.window_race(0xffff_8880_0000_2000).unwrap().unwrap();
        assert_eq!(hit.path, WindowPath::UnmapAfterBuild);
        assert_eq!(hit.site, "nvme_prp.data");

        let mut closed = NvmeTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        assert!(closed.window_race(0xdead).unwrap().is_none());
    }

    #[test]
    fn stale_write_needs_deferred_invalidation() {
        let mut tb = NvmeTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Deferred),
            BootSpec::Quiet,
        )
        .unwrap();
        assert_eq!(
            tb.window_stale(0xbeef).unwrap().path,
            WindowPath::DeferredIotlb
        );

        let mut strict = NvmeTestbed::boot(
            cfg(UnmapOrder::UnmapThenBuild, InvalidationMode::Strict),
            BootSpec::Quiet,
        )
        .unwrap();
        assert!(strict.window_stale(0xbeef).is_err());
    }
}
