//! Property-based tests for the core vocabulary: address arithmetic,
//! the deterministic RNG, and KASLR layout invariants.

use dma_core::layout::{SECTION_ALIGN, STRUCT_PAGE_SIZE, TEXT_ALIGN};
use dma_core::{DetRng, KernelLayout, Kva, Pfn, PhysAddr, VmRegion, PAGE_MASK, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #[test]
    fn page_align_down_is_idempotent_and_le(addr in any::<u64>()) {
        let a = Kva(addr);
        let d = a.page_align_down();
        prop_assert!(d.raw() <= a.raw());
        prop_assert_eq!(d.page_align_down(), d);
        prop_assert_eq!(d.raw() & PAGE_MASK, 0);
        prop_assert!(a.raw() - d.raw() < PAGE_SIZE as u64);
    }

    #[test]
    fn page_offset_plus_base_reconstructs(addr in any::<u64>()) {
        let a = PhysAddr(addr);
        prop_assert_eq!(a.page_align_down().raw() + a.page_offset() as u64, a.raw());
    }

    #[test]
    fn pfn_base_roundtrip(pfn in 0u64..(1 << 40)) {
        prop_assert_eq!(Pfn(pfn).base().pfn(), Pfn(pfn));
    }

    #[test]
    fn pages_spanned_bounds(offset in 0usize..PAGE_SIZE, len in 0usize..(1 << 20)) {
        let n = dma_core::addr::pages_spanned(offset, len);
        if len == 0 {
            prop_assert_eq!(n, 0);
        } else {
            // At least enough pages to hold the bytes, at most one extra
            // for the straddle.
            prop_assert!(n >= len.div_ceil(PAGE_SIZE));
            prop_assert!(n <= len.div_ceil(PAGE_SIZE) + 1);
            // The span truly covers [offset, offset + len).
            prop_assert!(n * PAGE_SIZE >= offset + len);
        }
    }

    #[test]
    fn rng_below_is_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = DetRng::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_rngs_diverge_from_parent(seed in any::<u64>()) {
        let mut parent = DetRng::new(seed);
        let mut fork = parent.fork();
        let same = (0..16).filter(|_| parent.next_u64() == fork.next_u64()).count();
        prop_assert!(same < 4, "fork should be a distinct stream");
    }

    #[test]
    fn kaslr_layout_invariants(seed in any::<u64>(), mem_mb in 64u64..1024) {
        let mut rng = DetRng::new(seed);
        let l = KernelLayout::randomize(&mut rng, mem_mb << 20);
        prop_assert_eq!(l.text_base.raw() % TEXT_ALIGN, 0);
        prop_assert_eq!(l.page_offset_base.raw() % SECTION_ALIGN, 0);
        prop_assert_eq!(l.vmemmap_base.raw() % SECTION_ALIGN, 0);
        prop_assert_eq!(VmRegion::classify(l.text_base.raw()), Some(VmRegion::KernelText));
        prop_assert_eq!(VmRegion::classify(l.page_offset_base.raw()), Some(VmRegion::DirectMap));
        prop_assert_eq!(VmRegion::classify(l.vmemmap_base.raw()), Some(VmRegion::Vmemmap));
    }

    #[test]
    fn translations_roundtrip_for_valid_pfns(seed in any::<u64>(), pfn_raw in 0u64..16384) {
        let mut rng = DetRng::new(seed);
        let l = KernelLayout::randomize(&mut rng, 256 << 20);
        let pfn = Pfn(pfn_raw);
        let kva = l.pfn_to_kva(pfn).unwrap();
        prop_assert_eq!(l.kva_to_pfn(kva).unwrap(), pfn);
        let page = l.pfn_to_page(pfn).unwrap();
        prop_assert_eq!(l.page_to_pfn(page).unwrap(), pfn);
        prop_assert_eq!(page.raw() - l.vmemmap_base.raw(), pfn_raw * STRUCT_PAGE_SIZE);
    }

    #[test]
    fn classify_is_total_and_consistent(value in any::<u64>()) {
        // classify never panics, and when it names a region the value is
        // inside that region's range.
        if let Some(r) = VmRegion::classify(value) {
            prop_assert!(value >= r.start());
            prop_assert!(value <= r.end());
        }
    }
}
