//! Property-style tests for the core vocabulary: address arithmetic,
//! the deterministic RNG, and KASLR layout invariants.
//!
//! These use seeded `DetRng` case loops instead of an external
//! property-testing framework so the suite builds with no network
//! access; on failure the panic message carries the failing input.

use dma_core::layout::{SECTION_ALIGN, STRUCT_PAGE_SIZE, TEXT_ALIGN};
use dma_core::{DetRng, KernelLayout, Kva, Pfn, PhysAddr, VmRegion, PAGE_MASK, PAGE_SIZE};

const CASES: usize = 64;

#[test]
fn page_align_down_is_idempotent_and_le() {
    let mut rng = DetRng::new(0x11);
    for _ in 0..CASES {
        let a = Kva(rng.next_u64());
        let d = a.page_align_down();
        assert!(d.raw() <= a.raw(), "align-down grew {a:?}");
        assert_eq!(d.page_align_down(), d);
        assert_eq!(d.raw() & PAGE_MASK, 0);
        assert!(a.raw() - d.raw() < PAGE_SIZE as u64);
    }
}

#[test]
fn page_offset_plus_base_reconstructs() {
    let mut rng = DetRng::new(0x12);
    for _ in 0..CASES {
        let a = PhysAddr(rng.next_u64());
        assert_eq!(a.page_align_down().raw() + a.page_offset() as u64, a.raw());
    }
}

#[test]
fn pfn_base_roundtrip() {
    let mut rng = DetRng::new(0x13);
    for _ in 0..CASES {
        let pfn = rng.below(1 << 40);
        assert_eq!(Pfn(pfn).base().pfn(), Pfn(pfn));
    }
}

#[test]
fn pages_spanned_bounds() {
    let mut rng = DetRng::new(0x14);
    for _ in 0..CASES {
        let offset = rng.below(PAGE_SIZE as u64) as usize;
        let len = rng.below(1 << 20) as usize;
        let n = dma_core::addr::pages_spanned(offset, len);
        if len == 0 {
            assert_eq!(n, 0);
        } else {
            // At least enough pages to hold the bytes, at most one extra
            // for the straddle.
            assert!(n >= len.div_ceil(PAGE_SIZE), "offset={offset} len={len}");
            assert!(
                n <= len.div_ceil(PAGE_SIZE) + 1,
                "offset={offset} len={len}"
            );
            // The span truly covers [offset, offset + len).
            assert!(n * PAGE_SIZE >= offset + len, "offset={offset} len={len}");
        }
    }
}

#[test]
fn rng_below_is_in_range() {
    let mut meta = DetRng::new(0x15);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let bound = 1 + meta.below(u64::MAX - 1);
        let mut rng = DetRng::new(seed);
        for _ in 0..16 {
            assert!(rng.below(bound) < bound, "seed={seed} bound={bound}");
        }
    }
}

#[test]
fn rng_streams_are_reproducible() {
    let mut meta = DetRng::new(0x16);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed={seed}");
        }
    }
}

#[test]
fn forked_rngs_diverge_from_parent() {
    let mut meta = DetRng::new(0x17);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let mut parent = DetRng::new(seed);
        let mut fork = parent.fork();
        let same = (0..16)
            .filter(|_| parent.next_u64() == fork.next_u64())
            .count();
        assert!(same < 4, "fork should be a distinct stream (seed={seed})");
    }
}

#[test]
fn kaslr_layout_invariants() {
    let mut meta = DetRng::new(0x18);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let mem_mb = meta.range(64, 1023);
        let mut rng = DetRng::new(seed);
        let l = KernelLayout::randomize(&mut rng, mem_mb << 20);
        assert_eq!(l.text_base.raw() % TEXT_ALIGN, 0, "seed={seed}");
        assert_eq!(l.page_offset_base.raw() % SECTION_ALIGN, 0, "seed={seed}");
        assert_eq!(l.vmemmap_base.raw() % SECTION_ALIGN, 0, "seed={seed}");
        assert_eq!(
            VmRegion::classify(l.text_base.raw()),
            Some(VmRegion::KernelText)
        );
        assert_eq!(
            VmRegion::classify(l.page_offset_base.raw()),
            Some(VmRegion::DirectMap)
        );
        assert_eq!(
            VmRegion::classify(l.vmemmap_base.raw()),
            Some(VmRegion::Vmemmap)
        );
    }
}

#[test]
fn translations_roundtrip_for_valid_pfns() {
    let mut meta = DetRng::new(0x19);
    for _ in 0..CASES {
        let seed = meta.next_u64();
        let pfn_raw = meta.below(16384);
        let mut rng = DetRng::new(seed);
        let l = KernelLayout::randomize(&mut rng, 256 << 20);
        let pfn = Pfn(pfn_raw);
        let kva = l.pfn_to_kva(pfn).unwrap();
        assert_eq!(l.kva_to_pfn(kva).unwrap(), pfn, "seed={seed} pfn={pfn_raw}");
        let page = l.pfn_to_page(pfn).unwrap();
        assert_eq!(
            l.page_to_pfn(page).unwrap(),
            pfn,
            "seed={seed} pfn={pfn_raw}"
        );
        assert_eq!(
            page.raw() - l.vmemmap_base.raw(),
            pfn_raw * STRUCT_PAGE_SIZE
        );
    }
}

#[test]
fn classify_is_total_and_consistent() {
    let mut rng = DetRng::new(0x1a);
    for _ in 0..CASES * 4 {
        // classify never panics, and when it names a region the value is
        // inside that region's range.
        let value = rng.next_u64();
        if let Some(r) = VmRegion::classify(value) {
            assert!(value >= r.start(), "value={value:#x}");
            assert!(value <= r.end(), "value={value:#x}");
        }
    }
}
