//! The paper's characterization: sub-page vulnerability types (§3.2,
//! Figure 1) and the three vulnerability attributes needed for a DMA
//! code-injection attack (§3.3).

use crate::addr::{Iova, Kva};
use crate::clock::Cycles;
use core::fmt;

/// DMA access rights recorded in the IOMMU page table for an IOVA (§2.2).
///
/// Note: `Write` does *not* imply read — a device needs `Bidirectional`
/// to both read and write a page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessRight {
    /// The device may read the page.
    Read,
    /// The device may write the page (does not grant read!).
    Write,
    /// The device may read and write the page.
    Bidirectional,
}

impl AccessRight {
    /// `true` if a device read is permitted.
    #[inline]
    pub const fn allows_read(self) -> bool {
        matches!(self, AccessRight::Read | AccessRight::Bidirectional)
    }

    /// `true` if a device write is permitted.
    #[inline]
    pub const fn allows_write(self) -> bool {
        matches!(self, AccessRight::Write | AccessRight::Bidirectional)
    }

    /// Merges two rights (used when a page is mapped multiple times).
    pub const fn union(self, other: AccessRight) -> AccessRight {
        match (
            self.allows_read() || other.allows_read(),
            self.allows_write() || other.allows_write(),
        ) {
            (true, true) => AccessRight::Bidirectional,
            (true, false) => AccessRight::Read,
            _ => AccessRight::Write,
        }
    }
}

impl fmt::Display for AccessRight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessRight::Read => write!(f, "READ"),
            AccessRight::Write => write!(f, "WRITE"),
            AccessRight::Bidirectional => write!(f, "READ, WRITE"),
        }
    }
}

/// Direction of a DMA transfer from the CPU's perspective (the Linux
/// `enum dma_data_direction`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// CPU → device (TX): the device gets READ access.
    ToDevice,
    /// Device → CPU (RX): the device gets WRITE access.
    FromDevice,
    /// Both ways (e.g. XDP buffers): the device gets READ and WRITE.
    Bidirectional,
}

impl DmaDirection {
    /// The access right the DMA API installs for this direction.
    pub const fn access_right(self) -> AccessRight {
        match self {
            DmaDirection::ToDevice => AccessRight::Read,
            DmaDirection::FromDevice => AccessRight::Write,
            DmaDirection::Bidirectional => AccessRight::Bidirectional,
        }
    }
}

/// The four sub-page vulnerability types of §3.2 / Figure 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubPageVulnerability {
    /// Type (a): the I/O buffer is embedded in a larger driver data
    /// structure whose metadata (e.g. callback pointers) shares the page.
    /// Usually poor DMA hygiene in a driver; fixable locally.
    DriverMetadata,
    /// Type (b): an OS subsystem (allocator, network stack) places its own
    /// metadata — freelists, `skb_shared_info` — on the mapped page.
    OsMetadata,
    /// Type (c): the same physical page is mapped by multiple IOVAs due to
    /// co-located driver buffers; unmapping one IOVA does not revoke
    /// access through the others.
    MultipleIova,
    /// Type (d): the I/O buffer coincidentally shares its page with an
    /// unrelated, dynamically allocated kernel buffer (a random subclass
    /// of type (b)).
    RandomColocation,
}

impl SubPageVulnerability {
    /// The single-letter label used by Figure 1.
    pub const fn letter(self) -> char {
        match self {
            SubPageVulnerability::DriverMetadata => 'a',
            SubPageVulnerability::OsMetadata => 'b',
            SubPageVulnerability::MultipleIova => 'c',
            SubPageVulnerability::RandomColocation => 'd',
        }
    }

    /// Short description, as in Figure 1's caption.
    pub const fn description(self) -> &'static str {
        match self {
            SubPageVulnerability::DriverMetadata => "I/O buffer metadata (driver)",
            SubPageVulnerability::OsMetadata => "OS metadata on mapped page",
            SubPageVulnerability::MultipleIova => "page mapped by multiple IOVA",
            SubPageVulnerability::RandomColocation => "randomly co-located sensitive buffers",
        }
    }
}

impl fmt::Display for SubPageVulnerability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type ({}): {}", self.letter(), self.description())
    }
}

/// A callback pointer a device can overwrite: where it lives and how the
/// attacker can reach it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallbackExposure {
    /// IOVA through which the device can write the pointer.
    pub iova: Iova,
    /// Offset of the callback pointer within the mapped page.
    pub page_offset: usize,
    /// The vulnerability type that exposed it.
    pub via: SubPageVulnerability,
    /// Name of the exposed structure field (for reporting).
    pub field: &'static str,
}

/// A window of simulated time during which a device write to the callback
/// pointer will be consumed by the CPU before being overwritten.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeWindow {
    /// Window start (inclusive), in simulated cycles.
    pub start: Cycles,
    /// Window end (exclusive), in simulated cycles.
    pub end: Cycles,
    /// How the window was obtained (Figure 7 path).
    pub path: WindowPath,
}

impl TimeWindow {
    /// Width of the window in cycles.
    pub const fn width(&self) -> Cycles {
        self.end.saturating_sub(self.start)
    }
}

/// The three paths of Figure 7 by which the time window is attainable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WindowPath {
    /// (i) The driver builds the sk_buff before unmapping, so the device
    /// can undo the CPU's initialization through the still-valid IOVA.
    UnmapAfterBuild,
    /// (ii) Deferred IOTLB invalidation leaves a stale translation usable
    /// after unmap (§5.2.1).
    DeferredIotlb,
    /// (iii) Strict mode, but a co-located buffer's IOVA (type (c)) still
    /// maps the same physical page.
    NeighborIova,
}

impl fmt::Display for WindowPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowPath::UnmapAfterBuild => write!(f, "(i) unmap after sk_buff build"),
            WindowPath::DeferredIotlb => write!(f, "(ii) deferred IOTLB invalidation"),
            WindowPath::NeighborIova => write!(f, "(iii) co-located buffer IOVA (type c)"),
        }
    }
}

/// The set of three vulnerability attributes of §3.3. A code-injection
/// attack is viable exactly when all three are present.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VulnerabilityAttributes {
    /// Attribute 1: the KVA of a buffer the attacker filled with malicious
    /// code (e.g. a poisoned ROP stack).
    pub malicious_kva: Option<Kva>,
    /// Attribute 2: write access to an exposed callback pointer at a known
    /// page offset.
    pub callback: Option<CallbackExposure>,
    /// Attribute 3: a usable time window.
    pub window: Option<TimeWindow>,
}

impl VulnerabilityAttributes {
    /// An empty attribute set (the starting point of a compound attack).
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when all three attributes have been obtained.
    pub fn is_complete(&self) -> bool {
        self.malicious_kva.is_some() && self.callback.is_some() && self.window.is_some()
    }

    /// Names of the attributes still missing, in §3.3 order.
    pub fn missing(&self) -> Vec<&'static str> {
        let mut m = Vec::new();
        if self.malicious_kva.is_none() {
            m.push("KVA of malicious buffer");
        }
        if self.callback.is_none() {
            m.push("writable callback pointer");
        }
        if self.window.is_none() {
            m.push("time window");
        }
        m
    }
}

/// Outcome of an attack attempt, for experiment reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The injected payload ran with kernel privileges.
    CodeExecution {
        /// Address of the hijacked callback at invocation time.
        hijacked_callback: Kva,
        /// Number of compound steps taken to assemble the attributes.
        steps: usize,
    },
    /// The attack was blocked; the reason records the failed attribute or
    /// defense.
    Blocked(&'static str),
}

impl AttackOutcome {
    /// Convenience predicate.
    pub fn succeeded(&self) -> bool {
        matches!(self, AttackOutcome::CodeExecution { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_does_not_grant_read() {
        // §2.2: "WRITE access does not grant a DMA device READ access".
        assert!(!AccessRight::Write.allows_read());
        assert!(AccessRight::Write.allows_write());
        assert!(!AccessRight::Read.allows_write());
        assert!(AccessRight::Bidirectional.allows_read());
        assert!(AccessRight::Bidirectional.allows_write());
    }

    #[test]
    fn rights_union_merges() {
        assert_eq!(
            AccessRight::Read.union(AccessRight::Write),
            AccessRight::Bidirectional
        );
        assert_eq!(
            AccessRight::Read.union(AccessRight::Read),
            AccessRight::Read
        );
        assert_eq!(
            AccessRight::Write.union(AccessRight::Write),
            AccessRight::Write
        );
    }

    #[test]
    fn direction_maps_to_rights() {
        assert_eq!(DmaDirection::ToDevice.access_right(), AccessRight::Read);
        assert_eq!(DmaDirection::FromDevice.access_right(), AccessRight::Write);
        assert_eq!(
            DmaDirection::Bidirectional.access_right(),
            AccessRight::Bidirectional
        );
    }

    #[test]
    fn attributes_completeness() {
        let mut a = VulnerabilityAttributes::none();
        assert!(!a.is_complete());
        assert_eq!(a.missing().len(), 3);

        a.malicious_kva = Some(Kva(0xffff_8880_0000_1000));
        assert_eq!(a.missing().len(), 2);

        a.callback = Some(CallbackExposure {
            iova: Iova(0xfff0_0000),
            page_offset: 0xf30,
            via: SubPageVulnerability::OsMetadata,
            field: "skb_shared_info.destructor_arg",
        });
        a.window = Some(TimeWindow {
            start: 0,
            end: 1000,
            path: WindowPath::DeferredIotlb,
        });
        assert!(a.is_complete());
        assert!(a.missing().is_empty());
    }

    #[test]
    fn taxonomy_letters() {
        assert_eq!(SubPageVulnerability::DriverMetadata.letter(), 'a');
        assert_eq!(SubPageVulnerability::OsMetadata.letter(), 'b');
        assert_eq!(SubPageVulnerability::MultipleIova.letter(), 'c');
        assert_eq!(SubPageVulnerability::RandomColocation.letter(), 'd');
    }

    #[test]
    fn access_right_display_matches_dkasan_format() {
        // Figure 3 renders rights as "[READ, WRITE]" / "[WRITE]".
        assert_eq!(AccessRight::Bidirectional.to_string(), "READ, WRITE");
        assert_eq!(AccessRight::Write.to_string(), "WRITE");
    }
}
