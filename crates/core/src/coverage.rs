//! Deterministic coverage bitmap for the DMA-input fuzzer.
//!
//! Coverage-guided fuzzing needs a cheap, replayable notion of "did
//! this input do something new?". Here that signal is a fixed-size
//! bitmap over *semantic* features rather than code edges: each feature
//! is a `(namespace, key)` string pair — a fault/trace site tag, a
//! D-KASAN finding class, a Figure-1 taxonomy letter, a §5.2 window
//! path — hashed (FNV-1a) to one of [`COVERAGE_BITS`] bits. Same input,
//! same features, same bits: the map is a pure function of the
//! simulation history, so two runs with the same seed produce identical
//! bitmaps, signatures, and corpus decisions.
//!
//! The [`CoverageMap::signature`] digest hashes the sorted indices of
//! the set bits; the fuzzer's corpus uses it for dedup and its
//! minimizer for "did shrinking change behavior?" checks.

use crate::vuln::{SubPageVulnerability, WindowPath};

/// Number of bits in a [`CoverageMap`]. Small enough to clone freely,
/// large enough that the few hundred distinct semantic features the
/// simulators can produce rarely collide.
pub const COVERAGE_BITS: usize = 4096;

const WORDS: usize = COVERAGE_BITS / 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A fixed-size deterministic feature bitmap.
#[derive(Clone, PartialEq, Eq)]
pub struct CoverageMap {
    words: [u64; WORDS],
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CoverageMap({} bits, sig {:016x})",
            self.count_ones(),
            self.signature()
        )
    }
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap { words: [0; WORDS] }
    }

    /// The bit index a `(namespace, key)` feature hashes to. Public so
    /// tests can pin the layout.
    pub fn probe(namespace: &str, key: &str) -> usize {
        // 0x1f separator keeps ("ab","c") and ("a","bc") distinct.
        let h = fnv1a(
            fnv1a(fnv1a(FNV_OFFSET, namespace.as_bytes()), &[0x1f]),
            key.as_bytes(),
        );
        (h % COVERAGE_BITS as u64) as usize
    }

    /// Sets the feature's bit; returns `true` when the bit was new.
    pub fn add(&mut self, namespace: &str, key: &str) -> bool {
        self.set(Self::probe(namespace, key))
    }

    /// Sets a raw bit index; returns `true` when it was previously clear.
    pub fn set(&mut self, bit: usize) -> bool {
        let bit = bit % COVERAGE_BITS;
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        fresh
    }

    /// `true` when the feature's bit is set.
    pub fn contains(&self, namespace: &str, key: &str) -> bool {
        let bit = Self::probe(namespace, key);
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Taxonomy channel: one bit per Figure-1 vulnerability letter.
    pub fn add_taxonomy(&mut self, v: SubPageVulnerability) -> bool {
        self.add("taxonomy", v.letter().encode_utf8(&mut [0u8; 4]))
    }

    /// Time-window channel: one bit per §5.2 window path.
    pub fn add_window(&mut self, w: WindowPath) -> bool {
        self.add("window", &w.to_string())
    }

    /// Site channel: fault/trace site tags threaded through `SimCtx`.
    pub fn add_site(&mut self, tag: &str) -> bool {
        self.add("site", tag)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// ORs `other` into `self`; returns how many bits were newly set.
    pub fn merge(&mut self, other: &CoverageMap) -> u32 {
        let mut new_bits = 0;
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            new_bits += (o & !*w).count_ones();
            *w |= o;
        }
        new_bits
    }

    /// Set bit indices in ascending order.
    pub fn bits(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones() as usize);
        for (wi, &w) in self.words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                w &= w - 1;
            }
        }
        out
    }

    /// Order-independent digest of the set-bit indices — the corpus
    /// dedup / minimizer-preservation fingerprint.
    pub fn signature(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for bit in self.bits() {
            h = fnv1a(h, &(bit as u16).to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_reports_new_bits_once() {
        let mut m = CoverageMap::new();
        assert!(m.add("site", "sim_mem.kmalloc"));
        assert!(!m.add("site", "sim_mem.kmalloc"));
        assert_eq!(m.count_ones(), 1);
        assert!(m.contains("site", "sim_mem.kmalloc"));
        assert!(!m.contains("site", "sim_mem.kfree"));
    }

    #[test]
    fn namespaces_separate_identical_keys() {
        let mut m = CoverageMap::new();
        assert!(m.add("site", "x"));
        assert!(m.add("op", "x"));
        assert_eq!(m.count_ones(), 2);
        assert_ne!(
            CoverageMap::probe("ab", "c"),
            CoverageMap::probe("a", "bc"),
            "separator keeps boundary distinct"
        );
    }

    #[test]
    fn merge_counts_only_fresh_bits() {
        let mut a = CoverageMap::new();
        a.add("t", "1");
        a.add("t", "2");
        let mut b = CoverageMap::new();
        b.add("t", "2");
        b.add("t", "3");
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.count_ones(), 3);
        assert_eq!(a.merge(&b), 0, "idempotent");
    }

    #[test]
    fn signature_is_order_independent_and_collision_sensitive() {
        let mut a = CoverageMap::new();
        a.add("t", "1");
        a.add("t", "2");
        let mut b = CoverageMap::new();
        b.add("t", "2");
        b.add("t", "1");
        assert_eq!(a.signature(), b.signature());
        b.add("t", "3");
        assert_ne!(a.signature(), b.signature());
        assert_eq!(CoverageMap::new().signature(), FNV_OFFSET);
    }

    #[test]
    fn typed_channels_set_distinct_bits() {
        let mut m = CoverageMap::new();
        assert!(m.add_taxonomy(SubPageVulnerability::OsMetadata));
        assert!(m.add_taxonomy(SubPageVulnerability::MultipleIova));
        assert!(m.add_window(WindowPath::UnmapAfterBuild));
        assert!(m.add_window(WindowPath::DeferredIotlb));
        assert!(m.add_site("device.dma_write"));
        assert_eq!(m.count_ones(), 5);
    }

    #[test]
    fn bits_are_sorted_ascending() {
        let mut m = CoverageMap::new();
        for k in ["a", "b", "c", "d", "e"] {
            m.add("t", k);
        }
        let bits = m.bits();
        assert_eq!(bits.len(), 5);
        assert!(bits.windows(2).all(|w| w[0] < w[1]));
    }
}
