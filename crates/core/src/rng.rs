//! A small deterministic RNG with stable output across platforms and
//! releases.
//!
//! Experiments such as the RingFlood reboot survey (§5.3) depend on
//! reproducing the *same* sequence of boot-time allocation jitter for a
//! given seed, so we implement `splitmix64` seeding + `xoshiro256**`
//! directly rather than relying on any external generator whose stream
//! might change between versions.

/// Deterministic xoshiro256** generator seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed of shard `shard_id` from a campaign's base seed.
///
/// Shard 0 keeps the base seed untouched, so a 1-shard sharded campaign
/// draws *exactly* the stream of the legacy single-threaded engine and
/// their reports compare byte-for-byte. Every other shard gets a
/// splitmix64-mixed seed: a full-avalanche function of `(base, shard_id)`,
/// so shard streams are statistically independent even for adjacent ids
/// and a shard's whole trajectory stays a pure function of the pair.
pub fn shard_seed(base: u64, shard_id: u32) -> u64 {
    if shard_id == 0 {
        return base;
    }
    let mut sm = base ^ (u64::from(shard_id)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut sm)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses rejection sampling to avoid modulo bias. `bound` of zero
    /// returns zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Returns a value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Returns `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Forks an independent generator (for per-subsystem streams).
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// The raw xoshiro256** state, for checkpointing. Restoring it via
    /// [`DetRng::from_state`] resumes the stream at exactly this
    /// position — the "DetRng position" a campaign snapshot captures.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`DetRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        DetRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(9);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = DetRng::new(3);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = rng.range(5, 8);
            assert!((5..=8).contains(&v));
            hit_lo |= v == 5;
            hit_hi |= v == 8;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = DetRng::new(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = DetRng::new(77);
        for _ in 0..13 {
            a.next_u64();
        }
        let saved = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = DetRng::from_state(saved);
        let resumed: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed, "restored state must continue bit-exactly");
    }

    #[test]
    fn shard_zero_is_the_base_seed() {
        for base in [0u64, 7, u64::MAX] {
            assert_eq!(shard_seed(base, 0), base);
        }
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..64u32 {
            assert!(seen.insert(shard_seed(7, id)), "shard {id} seed collided");
        }
        // And a function of the base, too.
        assert_ne!(shard_seed(7, 3), shard_seed(8, 3));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = DetRng::new(1234);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
