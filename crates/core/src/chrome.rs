//! Perfetto / Chrome `trace_event` JSON export.
//!
//! Renders the span timeline and the event stream into the Chrome
//! tracing JSON object format (`{"traceEvents":[...]}`) understood by
//! `ui.perfetto.dev` and `chrome://tracing`. Spans become complete
//! (`"ph":"X"`) slices; trace events become thread-scoped instants
//! (`"ph":"i"`) with their fields as `args`. Timestamps are *simulated
//! cycles*, not microseconds — the trace is a logical timeline, and
//! because everything is derived from the deterministic clock the
//! exported bytes are identical for identical seeds.

use crate::jsonw::JsonWriter;
use crate::metrics::SpanRecord;
use crate::trace::Event;

/// Process id used for every exported record (one simulated machine).
const PID: u64 = 1;
/// Thread id carrying the span slices.
const SPAN_TID: u64 = 1;
/// Thread id carrying the instant events.
const EVENT_TID: u64 = 2;

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

fn span_record(w: &mut JsonWriter, s: &SpanRecord) {
    w.obj(|w| {
        w.field_str("name", s.name);
        w.field_str("ph", "X");
        w.field_str("cat", "span");
        w.field_u64("ts", s.start);
        w.field_u64("dur", s.end.saturating_sub(s.start));
        w.field_u64("pid", PID);
        w.field_u64("tid", SPAN_TID);
        w.field("args", |w| {
            w.obj(|w| w.field_u64("depth", s.depth as u64));
        });
    });
}

fn event_record(w: &mut JsonWriter, ev: &Event) {
    let (name, cat) = match ev {
        Event::Alloc { .. } => ("Alloc", "mem"),
        Event::Free { .. } => ("Free", "mem"),
        Event::PageAlloc { .. } => ("PageAlloc", "mem"),
        Event::PageFree { .. } => ("PageFree", "mem"),
        Event::DmaMap { .. } => ("DmaMap", "dma"),
        Event::DmaUnmap { .. } => ("DmaUnmap", "dma"),
        Event::CpuAccess { .. } => ("CpuAccess", "cpu"),
        Event::DevAccess { .. } => ("DevAccess", "dev"),
        Event::IotlbInvalidate { .. } => ("IotlbInvalidate", "iommu"),
        Event::IotlbGlobalFlush { .. } => ("IotlbGlobalFlush", "iommu"),
        Event::FaultInjected { .. } => ("FaultInjected", "fault"),
    };
    w.obj(|w| {
        w.field_str("name", name);
        w.field_str("ph", "i");
        w.field_str("cat", cat);
        w.field_str("s", "t");
        w.field_u64("ts", ev.at());
        w.field_u64("pid", PID);
        w.field_u64("tid", EVENT_TID);
        w.field("args", |w| {
            w.obj(|w| match *ev {
                Event::Alloc {
                    kva,
                    size,
                    site,
                    cache,
                    ..
                } => {
                    w.field_str("kva", &hex(kva.raw()));
                    w.field_u64("size", size as u64);
                    w.field_str("site", site);
                    w.field_str("cache", cache);
                }
                Event::Free { kva, .. } => {
                    w.field_str("kva", &hex(kva.raw()));
                }
                Event::PageAlloc {
                    pfn, order, site, ..
                } => {
                    w.field_str("pfn", &hex(pfn.raw()));
                    w.field_u64("order", order as u64);
                    w.field_str("site", site);
                }
                Event::PageFree { pfn, order, .. } => {
                    w.field_str("pfn", &hex(pfn.raw()));
                    w.field_u64("order", order as u64);
                }
                Event::DmaMap {
                    device,
                    iova,
                    kva,
                    len,
                    dir,
                    site,
                    ..
                } => {
                    w.field_u64("device", device as u64);
                    w.field_str("iova", &hex(iova.raw()));
                    w.field_str("kva", &hex(kva.raw()));
                    w.field_u64("len", len as u64);
                    w.field_str("dir", &format!("{dir:?}"));
                    w.field_str("site", site);
                }
                Event::DmaUnmap {
                    device, iova, len, ..
                } => {
                    w.field_u64("device", device as u64);
                    w.field_str("iova", &hex(iova.raw()));
                    w.field_u64("len", len as u64);
                }
                Event::CpuAccess {
                    kva,
                    len,
                    write,
                    site,
                    ..
                } => {
                    w.field_str("kva", &hex(kva.raw()));
                    w.field_u64("len", len as u64);
                    w.field_bool("write", write);
                    w.field_str("site", site);
                }
                Event::DevAccess {
                    device,
                    iova,
                    len,
                    write,
                    allowed,
                    stale,
                    ..
                } => {
                    w.field_u64("device", device as u64);
                    w.field_str("iova", &hex(iova.raw()));
                    w.field_u64("len", len as u64);
                    w.field_bool("write", write);
                    w.field_bool("allowed", allowed);
                    w.field_bool("stale", stale);
                }
                Event::IotlbInvalidate {
                    device, iova_page, ..
                } => {
                    w.field_u64("device", device as u64);
                    w.field_str("iova_page", &hex(iova_page.raw()));
                }
                Event::IotlbGlobalFlush { dropped, .. } => {
                    w.field_u64("dropped", dropped as u64);
                }
                Event::FaultInjected { site, .. } => {
                    w.field_str("site", site);
                }
            });
        });
    });
}

/// Exports spans + events as a Chrome `trace_event` JSON object.
///
/// Spans land on tid 1, instant events on tid 2, both under pid 1.
/// Timestamps are simulated cycles. The output is byte-identical for
/// identical inputs (hand-rolled writer, no float formatting, no maps).
pub fn export(spans: &[SpanRecord], events: &[Event]) -> String {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_str("displayTimeUnit", "ns");
        w.field("traceEvents", |w| {
            w.arr(|w| {
                w.elem(|w| {
                    w.obj(|w| {
                        w.field_str("name", "process_name");
                        w.field_str("ph", "M");
                        w.field_u64("pid", PID);
                        w.field("args", |w| {
                            w.obj(|w| w.field_str("name", "dma-lab (simulated)"));
                        });
                    });
                });
                for s in spans {
                    w.elem(|w| span_record(w, s));
                }
                for ev in events {
                    w.elem(|w| event_record(w, ev));
                }
            });
        });
    });
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Iova, Kva};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Alloc {
                at: 5,
                kva: Kva(0xffff_8880_0010_0000),
                size: 512,
                site: "nic_alloc_rx_kmalloc",
                cache: "kmalloc-512",
            },
            Event::DmaMap {
                at: 9,
                device: 1,
                iova: Iova(0xf000),
                kva: Kva(0xffff_8880_0010_0000),
                len: 256,
                dir: crate::vuln::DmaDirection::FromDevice,
                site: "nic_rx_map",
            },
            Event::DevAccess {
                at: 14,
                device: 1,
                iova: Iova(0xf040),
                len: 8,
                write: true,
                allowed: true,
                stale: false,
            },
        ]
    }

    #[test]
    fn export_is_valid_shape_and_deterministic() {
        let spans = [SpanRecord {
            name: "rx.poll",
            start: 3,
            end: 20,
            depth: 0,
        }];
        let a = export(&spans, &sample_events());
        let b = export(&spans, &sample_events());
        assert_eq!(a, b, "byte-identical for identical inputs");
        assert!(a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(a.contains("\"name\":\"rx.poll\",\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"DmaMap\",\"ph\":\"i\""));
        assert!(a.contains("\"site\":\"nic_rx_map\""));
        assert!(a.contains("\"ts\":14"));
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn empty_export_is_still_a_valid_object() {
        let out = export(&[], &[]);
        assert!(out.contains("\"traceEvents\":[{\"name\":\"process_name\""));
    }
}
