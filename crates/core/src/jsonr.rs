//! A minimal, serde-free JSON reader — the inverse of [`crate::jsonw`].
//!
//! The checkpoint layer writes snapshots with [`crate::jsonw::JsonWriter`]
//! and must read them back without pulling in a serialization framework
//! (determinism and dependency policy both forbid one). This is a small
//! recursive-descent parser producing a [`JValue`] tree.
//!
//! Numbers are kept as their **raw source text** and parsed lazily
//! ([`JValue::as_u64`] etc.): the snapshots carry full-range `u64`
//! values (KVAs like `0xffff_8880_…` rendered in decimal) that an eager
//! `f64` representation would silently corrupt.
//!
//! ```
//! use dma_core::jsonr::parse;
//! let v = parse(r#"{"seed":7,"bits":[1,2,3],"ok":true}"#).unwrap();
//! assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(7));
//! assert_eq!(v.get("bits").and_then(|b| b.as_arr()).map(|a| a.len()), Some(3));
//! ```

use std::fmt;

/// Maximum nesting depth accepted (defense against pathological input).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Object fields keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum JValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as raw source text (lossless for any u64/i64).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JValue)>),
}

impl JValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JValue> {
        match self {
            JValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, if it parses.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if it parses.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JValue]> {
        match self {
            JValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JValue)]> {
        match self {
            JValue::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)?.as_u64()`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// Convenience: `self.get(key)?.as_str()`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable cause.
    pub what: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(s: &str) -> Result<JValue, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError {
            what,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, what: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JValue::Str(self.string()?)),
            Some(b't') => {
                self.literal("true", "expected 'true'")?;
                Ok(JValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected 'false'")?;
                Ok(JValue::Bool(false))
            }
            Some(b'n') => {
                self.literal("null", "expected 'null'")?;
                Ok(JValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JValue::Arr(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JValue::Arr(elems));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not produced by jsonw;
                            // map a lone surrogate to the replacement
                            // character rather than failing the load.
                            out.push(char::from_u32(cp as u32).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        Ok(JValue::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonw::JsonWriter;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), JValue::Null);
        assert_eq!(parse("true").unwrap(), JValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JValue::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("0.500").unwrap().as_f64(), Some(0.5));
        assert_eq!(parse("\"hi\\n\"").unwrap().as_str(), Some("hi\n"));
    }

    #[test]
    fn full_range_u64_survives() {
        // 0xffff_8880_0000_0000 and u64::MAX both exceed f64 precision;
        // raw-text numbers must round-trip them exactly.
        for v in [0xffff_8880_0000_0000u64, u64::MAX, u64::MAX - 1] {
            assert_eq!(parse(&v.to_string()).unwrap().as_u64(), Some(v));
        }
    }

    #[test]
    fn containers_nest_and_keep_order() {
        let v = parse(r#"{"b":[1,{"c":2}],"a":3}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].get("c").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn jsonw_output_round_trips() {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("big", u64::MAX);
            w.field_str("escaped", "a\"b\\c\nd\u{1}");
            w.field_bool("flag", true);
            w.field("list", |w| {
                w.arr(|w| {
                    w.elem(|w| w.u64(1));
                    w.elem(|w| w.str("two"));
                });
            });
            w.field_i64("neg", -5);
            w.field_f64("frac", 0.25);
        });
        let doc = w.finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.u64_field("big"), Some(u64::MAX));
        assert_eq!(v.str_field("escaped"), Some("a\"b\\c\nd\u{1}"));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-5));
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for (doc, _why) in [
            ("{", "unterminated object"),
            ("[1,]", "trailing comma"),
            (r#"{"a" 1}"#, "missing colon"),
            ("tru", "bad literal"),
            ("\"abc", "unterminated string"),
            ("1 2", "trailing garbage"),
            ("", "empty"),
        ] {
            assert!(parse(doc).is_err(), "{doc:?} should fail");
        }
        let e = parse("[1,").unwrap_err();
        assert!(e.to_string().contains("byte 3"), "{e}");
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
