//! IOMMU protection-posture audit report.
//!
//! The paper's attack surface is a function of *configuration*, not
//! just code: deferred invalidation opens the §5.2.1 stale-translation
//! window, shared domains collapse per-device isolation, and sub-page
//! RX buffers expose neighbouring kernel data even under a perfectly
//! strict IOMMU (§3.3). Production tooling audits exactly these knobs
//! (`iommu_status.py` walks `/sys/kernel/iommu_groups` and the
//! `intel_iommu=`/`iommu.strict=` cmdline); this module is the
//! simulated-stack equivalent: a plain-data [`PostureReport`] assembled
//! by `sim-iommu` from live state, graded by [`PostureReport::assess`],
//! and rendered deterministically for the `dma-lab serve` `posture`
//! request and test pinning.
//!
//! The report is pure data — `dma-core` knows nothing about the IOMMU
//! model; `sim-iommu` fills the fields and this module only derives
//! findings and renders JSON/text, so the grading policy lives in one
//! dependency-free place.

use crate::addr::PAGE_SIZE;
use crate::jsonw::JsonWriter;
use crate::metrics::Histogram;
use std::fmt::Write as _;

/// Severity of one posture finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Configuration note, no exposure.
    Info,
    /// Weakens isolation; exploitable only combined with other state.
    Warn,
    /// Directly enables a paper attack class.
    High,
}

impl Severity {
    /// Stable lower-case label used in JSON and text output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::High => "high",
        }
    }
}

/// One graded observation about the audited configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PostureFinding {
    /// Severity grade.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `stale-translation-window`).
    pub code: &'static str,
    /// Human-readable explanation with the relevant numbers inlined.
    pub detail: String,
}

/// Isolation posture of one IOMMU domain — the simulated analogue of
/// one `/sys/kernel/iommu_groups/N` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupPosture {
    /// Domain identifier.
    pub domain: u32,
    /// Devices attached to this domain, sorted.
    pub devices: Vec<u32>,
    /// Pages currently mapped into the domain.
    pub mapped_pages: usize,
    /// Live (allocated, not yet freed) IOVA ranges.
    pub live_iovas: usize,
    /// Unmapped ranges still walkable until the next global flush —
    /// the §5.2.1 exposure, counted live.
    pub deferred_pending: usize,
}

/// Observed §5.2.1 stale-window width statistics, summarized from the
/// `sim_iommu.stale_window.cycles` histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaleWindowStats {
    /// Number of windows observed (one per deferred unmap retired).
    pub count: u64,
    /// Mean window width in cycles.
    pub mean_cycles: u64,
    /// p99 bucket bound in cycles.
    pub p99_cycles: u64,
    /// Widest observed window in cycles.
    pub max_cycles: u64,
}

impl StaleWindowStats {
    /// Summarizes a `sim_iommu.stale_window.cycles` histogram; `None`
    /// when no window was ever observed (strict mode, or no unmaps).
    pub fn from_histogram(h: &Histogram) -> Option<StaleWindowStats> {
        if h.count == 0 {
            return None;
        }
        Some(StaleWindowStats {
            count: h.count,
            mean_cycles: h.mean(),
            p99_cycles: h.p99(),
            max_cycles: h.max,
        })
    }
}

/// An `iommu_status.py`-style audit of one simulated stack
/// configuration. Assembled by `sim-iommu` (which can see domains and
/// page tables) plus the caller (which knows the driver's buffer
/// policy); graded here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PostureReport {
    /// Configuration label (e.g. the fuzz machine-config name).
    pub label: String,
    /// `"strict"` or `"deferred"` invalidation.
    pub invalidation: &'static str,
    /// Cycles between global flushes (deferred mode; 0 when strict).
    pub flush_period: u64,
    /// IOTLB entry capacity.
    pub iotlb_capacity: usize,
    /// Per-domain isolation view, sorted by domain id.
    pub groups: Vec<GroupPosture>,
    /// RX buffer size the driver requests per packet.
    pub rx_buf_size: usize,
    /// Simulated page size.
    pub page_size: usize,
    /// Observed stale-window widths, when any window opened.
    pub stale_window: Option<StaleWindowStats>,
    /// Device reads answered by a stale IOTLB translation so far.
    pub stale_hits: u64,
    /// IOMMU faults taken so far.
    pub faults: u64,
    /// Graded findings, ordered most severe first.
    pub findings: Vec<PostureFinding>,
    /// `"exposed"` when any warn/high finding exists, else `"hardened"`.
    pub grade: &'static str,
}

impl PostureReport {
    /// `true` when the invalidation policy defers IOTLB flushes.
    pub fn is_deferred(&self) -> bool {
        self.invalidation == "deferred"
    }

    /// Total live IOVA ranges across all domains.
    pub fn live_iovas(&self) -> usize {
        self.groups.iter().map(|g| g.live_iovas).sum()
    }

    /// How many RX buffers share one page under the audited policy.
    pub fn buffers_per_page(&self) -> usize {
        if self.rx_buf_size == 0 || self.rx_buf_size >= self.page_size {
            1
        } else {
            self.page_size / self.rx_buf_size
        }
    }

    /// Derives [`PostureFinding`]s and the overall grade from the raw
    /// fields. Call once after filling every observation field; the
    /// policy is deliberately centralized here so every surface
    /// (serve, tests, CI greps) agrees on what "exposed" means.
    pub fn assess(&mut self) {
        let mut findings = Vec::new();
        if self.is_deferred() {
            let observed = match self.stale_window {
                Some(w) => format!(
                    "; observed {} window(s), mean {} / p99 {} / max {} cycles",
                    w.count, w.mean_cycles, w.p99_cycles, w.max_cycles
                ),
                None => String::new(),
            };
            findings.push(PostureFinding {
                severity: Severity::High,
                code: "stale-translation-window",
                detail: format!(
                    "deferred invalidation leaves unmapped IOVAs walkable for up to \
                     {} cycles until the next global flush (the Sec. 5.2.1 window){}",
                    self.flush_period, observed
                ),
            });
        } else {
            findings.push(PostureFinding {
                severity: Severity::Info,
                code: "strict-invalidation",
                detail: "unmap invalidates the IOTLB synchronously; no stale-translation window"
                    .to_string(),
            });
        }
        for g in &self.groups {
            if g.devices.len() > 1 {
                findings.push(PostureFinding {
                    severity: Severity::Warn,
                    code: "shared-domain",
                    detail: format!(
                        "domain {} is shared by {} devices ({:?}); any one device can \
                         read every mapping in the group",
                        g.domain,
                        g.devices.len(),
                        g.devices
                    ),
                });
            }
        }
        if self.buffers_per_page() > 1 {
            findings.push(PostureFinding {
                severity: Severity::Warn,
                code: "subpage-sharing",
                detail: format!(
                    "rx_buf_size {} packs {} buffers per {}-byte page; IOMMU page \
                     granularity exposes co-resident kernel bytes to the device (Sec. 3.3)",
                    self.rx_buf_size,
                    self.buffers_per_page(),
                    self.page_size
                ),
            });
        }
        if self.stale_hits > 0 {
            findings.push(PostureFinding {
                severity: Severity::High,
                code: "stale-hits-observed",
                detail: format!(
                    "{} device access(es) were answered through a stale IOTLB entry",
                    self.stale_hits
                ),
            });
        }
        findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(b.code)));
        self.grade = if findings.iter().any(|f| f.severity >= Severity::Warn) {
            "exposed"
        } else {
            "hardened"
        };
        self.findings = findings;
    }

    /// Deterministic single-line JSON rendering.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("label", &self.label);
            w.field_str("invalidation", self.invalidation);
            w.field_u64("flush_period_cycles", self.flush_period);
            w.field_u64("iotlb_capacity", self.iotlb_capacity as u64);
            w.field("groups", |w| {
                w.arr(|w| {
                    for g in &self.groups {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_u64("domain", g.domain as u64);
                                w.field("devices", |w| {
                                    w.arr(|w| {
                                        for d in &g.devices {
                                            w.elem(|w| w.u64(*d as u64));
                                        }
                                    });
                                });
                                w.field_u64("mapped_pages", g.mapped_pages as u64);
                                w.field_u64("live_iovas", g.live_iovas as u64);
                                w.field_u64("deferred_pending", g.deferred_pending as u64);
                            });
                        });
                    }
                });
            });
            w.field_u64("live_iovas", self.live_iovas() as u64);
            w.field_u64("rx_buf_size", self.rx_buf_size as u64);
            w.field_u64("page_size", self.page_size as u64);
            w.field_u64("buffers_per_page", self.buffers_per_page() as u64);
            w.field("stale_window", |w| match &self.stale_window {
                None => w.raw("null"),
                Some(s) => w.obj(|w| {
                    w.field_u64("count", s.count);
                    w.field_u64("mean_cycles", s.mean_cycles);
                    w.field_u64("p99_cycles", s.p99_cycles);
                    w.field_u64("max_cycles", s.max_cycles);
                }),
            });
            w.field_u64("stale_hits", self.stale_hits);
            w.field_u64("faults", self.faults);
            w.field("findings", |w| {
                w.arr(|w| {
                    for f in &self.findings {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_str("severity", f.severity.label());
                                w.field_str("code", f.code);
                                w.field_str("detail", &f.detail);
                            });
                        });
                    }
                });
            });
            w.field_str("grade", self.grade);
        });
        w.finish()
    }

    /// Human-readable audit table, `iommu_status.py` style.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "posture: {} [{}]", self.label, self.grade);
        let _ = writeln!(
            out,
            "  invalidation: {} (flush period {} cycles, iotlb {} entries)",
            self.invalidation, self.flush_period, self.iotlb_capacity
        );
        let _ = writeln!(
            out,
            "  buffers: rx_buf_size {} -> {} per {}-byte page",
            self.rx_buf_size,
            self.buffers_per_page(),
            self.page_size
        );
        for g in &self.groups {
            let _ = writeln!(
                out,
                "  group {}: devices {:?}, {} mapped pages, {} live IOVAs, {} deferred",
                g.domain, g.devices, g.mapped_pages, g.live_iovas, g.deferred_pending
            );
        }
        if let Some(s) = &self.stale_window {
            let _ = writeln!(
                out,
                "  stale window: {} observed, mean {} / p99 {} / max {} cycles",
                s.count, s.mean_cycles, s.p99_cycles, s.max_cycles
            );
        }
        let _ = writeln!(
            out,
            "  stale hits: {}, faults: {}",
            self.stale_hits, self.faults
        );
        for f in &self.findings {
            let _ = writeln!(out, "  [{}] {}: {}", f.severity.label(), f.code, f.detail);
        }
        out
    }

    /// Skeleton report with observation fields zeroed; the assembler
    /// fills them in and then calls [`PostureReport::assess`].
    pub fn new(label: &str, invalidation: &'static str) -> PostureReport {
        PostureReport {
            label: label.to_string(),
            invalidation,
            flush_period: 0,
            iotlb_capacity: 0,
            groups: Vec::new(),
            rx_buf_size: 0,
            page_size: PAGE_SIZE,
            stale_window: None,
            stale_hits: 0,
            faults: 0,
            findings: Vec::new(),
            grade: "hardened",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(invalidation: &'static str) -> PostureReport {
        let mut r = PostureReport::new("test-config", invalidation);
        r.flush_period = 10_000;
        r.iotlb_capacity = 64;
        r.rx_buf_size = PAGE_SIZE;
        r.groups.push(GroupPosture {
            domain: 1,
            devices: vec![1],
            mapped_pages: 4,
            live_iovas: 4,
            deferred_pending: 0,
        });
        r
    }

    #[test]
    fn strict_isolated_fullpage_is_hardened() {
        let mut r = base("strict");
        r.assess();
        assert_eq!(r.grade, "hardened");
        assert!(r.findings.iter().any(|f| f.code == "strict-invalidation"));
        assert!(r.findings.iter().all(|f| f.severity == Severity::Info));
    }

    #[test]
    fn deferred_mode_flags_the_521_window() {
        let mut r = base("deferred");
        let mut h = Histogram::default();
        h.observe(500);
        h.observe(9_000);
        r.stale_window = StaleWindowStats::from_histogram(&h);
        r.assess();
        assert_eq!(r.grade, "exposed");
        let f = r
            .findings
            .iter()
            .find(|f| f.code == "stale-translation-window")
            .expect("window finding");
        assert_eq!(f.severity, Severity::High);
        assert!(f.detail.contains("5.2.1"), "{}", f.detail);
        assert!(f.detail.contains("2 window(s)"), "{}", f.detail);
        // Highest severity sorts first.
        assert_eq!(r.findings[0].severity, Severity::High);
    }

    #[test]
    fn subpage_and_shared_domain_warn() {
        let mut r = base("strict");
        r.rx_buf_size = 2048;
        r.groups[0].devices = vec![1, 2];
        r.assess();
        assert_eq!(r.grade, "exposed");
        assert_eq!(r.buffers_per_page(), PAGE_SIZE / 2048);
        let codes: Vec<&str> = r.findings.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"subpage-sharing"));
        assert!(codes.contains(&"shared-domain"));
    }

    #[test]
    fn json_is_deterministic_and_valid() {
        let mut r = base("deferred");
        r.rx_buf_size = 2048;
        r.assess();
        let a = r.to_json();
        assert_eq!(a, r.to_json());
        let v = crate::jsonr::parse(&a).expect("posture json parses");
        assert_eq!(v.str_field("grade"), Some("exposed"));
        assert_eq!(v.str_field("invalidation"), Some("deferred"));
        assert_eq!(v.u64_field("buffers_per_page"), Some(2));
        assert!(matches!(
            v.get("stale_window"),
            Some(crate::jsonr::JValue::Null)
        ));
        let groups = v.get("groups").and_then(|g| g.as_arr()).unwrap();
        assert_eq!(groups[0].u64_field("domain"), Some(1));
    }
}
