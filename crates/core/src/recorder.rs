//! The flight recorder: a bounded ring buffer over [`Event`]s.
//!
//! The unbounded [`crate::Trace`] vector is the right tool for short
//! replay windows (D-KASAN drains it every round), but long-running
//! soaks and fuzz campaigns need a *black box*: keep the most recent
//! `capacity` events, count what fell off the front, and never grow.
//! Eviction is purely positional — oldest first — so the retained
//! window and the `dropped` counter are identical for identical event
//! streams, which is what the determinism tests pin.

use crate::trace::Event;

/// A bounded, deterministic ring buffer of trace events.
///
/// # Examples
///
/// ```
/// use dma_core::recorder::FlightRecorder;
/// use dma_core::{Event, Kva};
///
/// let mut r = FlightRecorder::new(2);
/// for at in 0..5 {
///     r.push(Event::Free { at, kva: Kva(0x1000) });
/// }
/// assert_eq!(r.len(), 2);
/// assert_eq!(r.dropped(), 3);
/// let evs = r.drain();
/// assert_eq!(evs[0].at(), 3, "oldest retained event");
/// assert_eq!(evs[1].at(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest retained event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// An empty recorder retaining at most `capacity` events. A
    /// capacity of 0 is honored literally: every push is dropped and
    /// counted, nothing is ever retained.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Rebuilds a recorder from checkpointed state: `events` must be in
    /// chronological order (as produced by [`FlightRecorder::snapshot`])
    /// and is truncated to the newest `capacity` events, adding the
    /// excess to `dropped` so the drop accounting stays consistent
    /// across a resume.
    pub fn restore(capacity: usize, mut events: Vec<Event>, dropped: u64) -> Self {
        let mut dropped = dropped;
        if events.len() > capacity {
            let excess = events.len() - capacity;
            events.drain(..excess);
            dropped += excess as u64;
        }
        FlightRecorder {
            buf: events,
            capacity,
            head: 0,
            dropped,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted from the front since creation (or the last drain).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, evicting the oldest when full. Returns `true`
    /// when an event was evicted (or, at capacity 0, dropped outright).
    pub fn push(&mut self, ev: Event) -> bool {
        if self.capacity == 0 {
            self.dropped += 1;
            return true;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            true
        }
    }

    /// Retained events in *storage* order — chronological only while the
    /// recorder has never wrapped. Use [`FlightRecorder::drain`] or
    /// [`FlightRecorder::snapshot`] for guaranteed chronological order.
    pub fn as_slice(&self) -> &[Event] {
        &self.buf
    }

    /// Retained events in chronological (oldest-first) order, leaving
    /// the recorder untouched.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut v = self.buf.clone();
        v.rotate_left(self.head);
        v
    }

    /// Removes and returns the retained events in chronological order,
    /// resetting the drop counter (a drain is a consumption point: what
    /// was dropped before it can never be recovered downstream).
    pub fn drain(&mut self) -> Vec<Event> {
        let mut v = core::mem::take(&mut self.buf);
        v.rotate_left(self.head);
        self.head = 0;
        self.dropped = 0;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kva;

    fn ev(at: u64) -> Event {
        Event::Free { at, kva: Kva(at) }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = FlightRecorder::new(3);
        for at in 0..3 {
            assert!(!r.push(ev(at)));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        assert!(r.push(ev(3)), "fourth push evicts");
        assert_eq!(r.dropped(), 1);
        let s = r.snapshot();
        assert_eq!(
            s.iter().map(|e| e.at()).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "event 0 fell off the front"
        );
    }

    #[test]
    fn drain_is_chronological_and_resets() {
        let mut r = FlightRecorder::new(4);
        for at in 0..11 {
            r.push(ev(at));
        }
        assert_eq!(r.dropped(), 7);
        let evs = r.drain();
        assert_eq!(
            evs.iter().map(|e| e.at()).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        // Refilling after a drain behaves like a fresh recorder.
        r.push(ev(99));
        assert_eq!(r.snapshot()[0].at(), 99);
    }

    #[test]
    fn identical_streams_retain_identical_windows() {
        let run = || {
            let mut r = FlightRecorder::new(5);
            for at in 0..37 {
                r.push(ev(at * 3));
            }
            (r.snapshot(), r.dropped())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_capacity_drops_everything_but_counts() {
        let mut r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 0);
        assert!(r.push(ev(1)), "capacity-0 push reports a drop");
        assert!(r.push(ev(2)));
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
        assert!(r.snapshot().is_empty());
        assert!(r.drain().is_empty());
        assert_eq!(r.dropped(), 0, "drain still resets the counter");
    }

    #[test]
    fn capacity_one_keeps_exactly_the_newest() {
        let mut r = FlightRecorder::new(1);
        assert!(!r.push(ev(1)), "first push fills without evicting");
        assert_eq!(r.dropped(), 0);
        assert!(r.push(ev(2)));
        assert!(r.push(ev(3)));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.snapshot()[0].at(), 3);
    }

    #[test]
    fn eviction_starts_exactly_at_the_full_boundary() {
        // Pushes 1..=capacity must not evict; push capacity+1 must.
        for cap in [1usize, 2, 3, 7] {
            let mut r = FlightRecorder::new(cap);
            for at in 0..cap as u64 {
                assert!(!r.push(ev(at)), "cap {cap}: push {at} evicted early");
                assert_eq!(r.dropped(), 0);
            }
            assert_eq!(r.len(), cap);
            assert!(r.push(ev(cap as u64)), "cap {cap}: boundary push kept");
            assert_eq!(r.dropped(), 1);
            assert_eq!(r.len(), cap);
            assert_eq!(r.snapshot()[0].at(), 1, "oldest event evicted first");
        }
    }

    #[test]
    fn restore_resumes_the_stream_identically() {
        // A recorder restored mid-stream must retain the same window and
        // drop count as one that saw the whole stream uninterrupted.
        let mut whole = FlightRecorder::new(4);
        for at in 0..11 {
            whole.push(ev(at));
        }

        let mut first = FlightRecorder::new(4);
        for at in 0..6 {
            first.push(ev(at));
        }
        let mut resumed = FlightRecorder::restore(4, first.snapshot(), first.dropped());
        for at in 6..11 {
            resumed.push(ev(at));
        }
        assert_eq!(resumed.snapshot(), whole.snapshot());
        assert_eq!(resumed.dropped(), whole.dropped());
    }

    #[test]
    fn restore_truncates_oversized_snapshots_into_dropped() {
        let events: Vec<Event> = (0..5).map(ev).collect();
        let r = FlightRecorder::restore(2, events, 3);
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.snapshot().iter().map(|e| e.at()).collect::<Vec<_>>(),
            vec![3, 4],
            "newest events survive the truncation"
        );
        assert_eq!(r.dropped(), 6, "3 prior + 3 truncated");
        let zero = FlightRecorder::restore(0, (0..2).map(ev).collect(), 1);
        assert_eq!(zero.len(), 0);
        assert_eq!(zero.dropped(), 3);
    }
}
