//! The flight recorder: a bounded ring buffer over [`Event`]s.
//!
//! The unbounded [`crate::Trace`] vector is the right tool for short
//! replay windows (D-KASAN drains it every round), but long-running
//! soaks and fuzz campaigns need a *black box*: keep the most recent
//! `capacity` events, count what fell off the front, and never grow.
//! Eviction is purely positional — oldest first — so the retained
//! window and the `dropped` counter are identical for identical event
//! streams, which is what the determinism tests pin.

use crate::trace::Event;

/// A bounded, deterministic ring buffer of trace events.
///
/// # Examples
///
/// ```
/// use dma_core::recorder::FlightRecorder;
/// use dma_core::{Event, Kva};
///
/// let mut r = FlightRecorder::new(2);
/// for at in 0..5 {
///     r.push(Event::Free { at, kva: Kva(0x1000) });
/// }
/// assert_eq!(r.len(), 2);
/// assert_eq!(r.dropped(), 3);
/// let evs = r.drain();
/// assert_eq!(evs[0].at(), 3, "oldest retained event");
/// assert_eq!(evs[1].at(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest retained event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// An empty recorder retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted from the front since creation (or the last drain).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, evicting the oldest when full. Returns `true`
    /// when an event was evicted.
    pub fn push(&mut self, ev: Event) -> bool {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            true
        }
    }

    /// Retained events in *storage* order — chronological only while the
    /// recorder has never wrapped. Use [`FlightRecorder::drain`] or
    /// [`FlightRecorder::snapshot`] for guaranteed chronological order.
    pub fn as_slice(&self) -> &[Event] {
        &self.buf
    }

    /// Retained events in chronological (oldest-first) order, leaving
    /// the recorder untouched.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut v = self.buf.clone();
        v.rotate_left(self.head);
        v
    }

    /// Removes and returns the retained events in chronological order,
    /// resetting the drop counter (a drain is a consumption point: what
    /// was dropped before it can never be recovered downstream).
    pub fn drain(&mut self) -> Vec<Event> {
        let mut v = core::mem::take(&mut self.buf);
        v.rotate_left(self.head);
        self.head = 0;
        self.dropped = 0;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kva;

    fn ev(at: u64) -> Event {
        Event::Free { at, kva: Kva(at) }
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = FlightRecorder::new(3);
        for at in 0..3 {
            assert!(!r.push(ev(at)));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        assert!(r.push(ev(3)), "fourth push evicts");
        assert_eq!(r.dropped(), 1);
        let s = r.snapshot();
        assert_eq!(
            s.iter().map(|e| e.at()).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "event 0 fell off the front"
        );
    }

    #[test]
    fn drain_is_chronological_and_resets() {
        let mut r = FlightRecorder::new(4);
        for at in 0..11 {
            r.push(ev(at));
        }
        assert_eq!(r.dropped(), 7);
        let evs = r.drain();
        assert_eq!(
            evs.iter().map(|e| e.at()).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        // Refilling after a drain behaves like a fresh recorder.
        r.push(ev(99));
        assert_eq!(r.snapshot()[0].at(), 99);
    }

    #[test]
    fn identical_streams_retain_identical_windows() {
        let run = || {
            let mut r = FlightRecorder::new(5);
            for at in 0..37 {
                r.push(ev(at * 3));
            }
            (r.snapshot(), r.dropped())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.snapshot()[0].at(), 2);
    }
}
