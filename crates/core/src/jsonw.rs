//! A minimal, serde-free JSON writer.
//!
//! The observability layer promises *byte-deterministic* machine-readable
//! output, which is easier to guarantee by constructing the document by
//! hand than by trusting a serializer's map ordering. Only the subset
//! the exporters need is implemented: objects, arrays, strings, u64/i64,
//! f64 (fixed 3-decimal rendering so formatting never varies), bools.
//!
//! ```
//! use dma_core::jsonw::JsonWriter;
//! let mut w = JsonWriter::new();
//! w.obj(|w| {
//!     w.field_str("name", "iotlb");
//!     w.field_u64("hits", 42);
//!     w.field("tags", |w| w.arr(|w| {
//!         w.elem(|w| w.str("a"));
//!         w.elem(|w| w.str("b"));
//!     }));
//! });
//! assert_eq!(w.finish(), r#"{"name":"iotlb","hits":42,"tags":["a","b"]}"#);
//! ```

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Streaming JSON builder; see the module docs for the example.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.buf
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.buf.push(',');
            }
            *need = true;
        }
    }

    /// Writes an object; populate fields inside `f`.
    pub fn obj(&mut self, f: impl FnOnce(&mut Self)) {
        self.buf.push('{');
        self.need_comma.push(false);
        f(self);
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Writes an array; populate elements inside `f`.
    pub fn arr(&mut self, f: impl FnOnce(&mut Self)) {
        self.buf.push('[');
        self.need_comma.push(false);
        f(self);
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Starts an object field whose value `f` writes.
    pub fn field(&mut self, key: &str, f: impl FnOnce(&mut Self)) {
        self.pre_value();
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
        // The value itself must not re-trigger comma logic at this level.
        self.need_comma.push(false);
        f(self);
        self.need_comma.pop();
    }

    /// Writes one array element via `f`.
    pub fn elem(&mut self, f: impl FnOnce(&mut Self)) {
        self.pre_value();
        self.need_comma.push(false);
        f(self);
        self.need_comma.pop();
    }

    /// Bare string value.
    pub fn str(&mut self, v: &str) {
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    /// Bare u64 value.
    pub fn u64(&mut self, v: u64) {
        let _ = write!(self.buf, "{v}");
    }

    /// Bare i64 value.
    pub fn i64(&mut self, v: i64) {
        let _ = write!(self.buf, "{v}");
    }

    /// Bare f64 value, always rendered with 3 decimals.
    pub fn f64(&mut self, v: f64) {
        let _ = write!(self.buf, "{v:.3}");
    }

    /// Bare bool value.
    pub fn bool(&mut self, v: bool) {
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Embeds an already-rendered JSON document verbatim — for nesting
    /// one exporter's output (e.g. a metrics snapshot) inside another's.
    /// The caller is responsible for `v` being valid JSON.
    pub fn raw(&mut self, v: &str) {
        self.buf.push_str(v);
    }

    /// `"key": "value"` string field.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.field(key, |w| w.str(v));
    }

    /// `"key": 123` u64 field.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.field(key, |w| w.u64(v));
    }

    /// `"key": -1` i64 field.
    pub fn field_i64(&mut self, key: &str, v: i64) {
        self.field(key, |w| w.i64(v));
    }

    /// `"key": 0.500` f64 field (3 decimals, stable formatting).
    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.field(key, |w| w.f64(v));
    }

    /// `"key": true` bool field.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.field(key, |w| w.bool(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn nested_structures_comma_correctly() {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("a", 1);
            w.field("b", |w| {
                w.arr(|w| {
                    w.elem(|w| w.u64(2));
                    w.elem(|w| w.obj(|w| w.field_bool("c", false)));
                });
            });
            w.field_str("d", "x");
            w.field_f64("e", 0.5);
            w.field_i64("f", -3);
        });
        assert_eq!(
            w.finish(),
            r#"{"a":1,"b":[2,{"c":false}],"d":"x","e":0.500,"f":-3}"#
        );
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field("a", |w| w.arr(|_| {}));
            w.field("b", |w| w.obj(|_| {}));
        });
        assert_eq!(w.finish(), r#"{"a":[],"b":{}}"#);
    }
}
