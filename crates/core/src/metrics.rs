//! Deterministic per-context metrics: counters, gauges, fixed-bucket
//! histograms, and span-scoped cycle attribution.
//!
//! Everything here is **cycle-stamped and wall-clock-free**: the only
//! notion of time is the simulated [`crate::Clock`], so the same seed
//! and workload always produce a bit-identical [`Snapshot`]. There are
//! no globals — a [`Metrics`] registry lives inside every
//! [`crate::SimCtx`], mirroring how the fault plan is threaded.
//!
//! # Name taxonomy
//!
//! Metric names are dotted `subsystem.metric` tags, mirroring the fault
//! site tags of [`crate::fault`]: `sim_mem.kmalloc.calls`,
//! `sim_iommu.iotlb.hit`, `sim_net.tx.ring_full`,
//! `dkasan.shadow.updates`. Names are `&'static str` so recording is
//! allocation-free; the registry keys on them in a `BTreeMap`, which
//! also fixes the (deterministic) export order.
//!
//! # Histogram bucket policy
//!
//! All histograms share one fixed bucket layout: powers of two from 1
//! to 2^30, plus an overflow bucket. A recorded value `v` lands in the
//! first bucket whose upper bound is `>= v` (value 0 lands in the `<=1`
//! bucket). The layout never adapts to data, so two runs that record
//! the same values always render the same buckets.

use crate::clock::Cycles;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of finite histogram buckets (upper bounds 2^0 .. 2^30).
pub const HIST_BUCKETS: usize = 31;

/// Upper bound of finite bucket `i` (`2^i`).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a value lands in; `HIST_BUCKETS` = overflow.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let idx = 64 - (v - 1).leading_zeros() as usize;
    idx.min(HIST_BUCKETS)
}

/// A gauge: the last set value plus its observed extremes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Most recently set value.
    pub value: u64,
    /// Smallest value ever set.
    pub min: u64,
    /// Largest value ever set (the high-water mark).
    pub max: u64,
    /// Number of times the gauge was set.
    pub sets: u64,
}

/// A fixed-bucket histogram (see the module docs for the bucket policy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Finite buckets plus one overflow bucket.
    pub buckets: [u64; HIST_BUCKETS + 1],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest bucket upper bound covering at least `q` per mille of
    /// the recorded values — a deterministic quantile approximation.
    pub fn quantile_bound(&self, q_permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let want = (self.count * q_permille).div_ceil(1000);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= want {
                return if i == HIST_BUCKETS {
                    u64::MAX
                } else {
                    bucket_bound(i)
                };
            }
        }
        u64::MAX
    }

    /// Median bucket bound — `quantile_bound(500)`.
    pub fn p50(&self) -> u64 {
        self.quantile_bound(500)
    }

    /// 90th-percentile bucket bound — `quantile_bound(900)`.
    pub fn p90(&self) -> u64 {
        self.quantile_bound(900)
    }

    /// 99th-percentile bucket bound — `quantile_bound(990)`.
    pub fn p99(&self) -> u64 {
        self.quantile_bound(990)
    }
}

/// One completed span occurrence on the timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`phase.subphase` style).
    pub name: &'static str,
    /// Cycle the span was entered.
    pub start: Cycles,
    /// Cycle the span was exited.
    pub end: Cycles,
    /// Nesting depth at entry (0 = top level).
    pub depth: u32,
}

/// Aggregated per-name span statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed occurrences.
    pub count: u64,
    /// Total inclusive cycles across occurrences.
    pub total_cycles: Cycles,
    /// Longest single occurrence.
    pub max_cycles: Cycles,
}

/// Opaque token returned by `span_begin`, consumed by `span_end`.
/// Spans must nest (LIFO); ending out of order records the top span.
#[derive(Debug)]
#[must_use = "pass this token to SimCtx::span_end"]
pub struct SpanToken(pub(crate) usize);

/// Cap on stored timeline records; aggregates keep counting past it.
pub const TIMELINE_CAP: usize = 4096;

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct SpanSet {
    /// `(name, entry cycle, visible)`. Visible spans feed the timeline
    /// and the per-name aggregates; profile-only frames (`visible =
    /// false`) feed *only* the call tree, so instrumenting a hot path
    /// never changes snapshots, coverage folding, or any committed
    /// trajectory.
    stack: Vec<(&'static str, Cycles, bool)>,
    timeline: Vec<SpanRecord>,
    agg: BTreeMap<&'static str, SpanAgg>,
    timeline_dropped: u64,
}

/// The per-context metric registry. Cheap when untouched: every table
/// starts empty and only grows on first use of a name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    hists: BTreeMap<&'static str, Histogram>,
    spans: SpanSet,
    profile: crate::profile::ProfTree,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds 1 to counter `name`.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets gauge `name`, updating its min/max watermarks.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, v: u64) {
        let g = self.gauges.entry(name).or_insert(Gauge {
            value: v,
            min: v,
            max: v,
            sets: 0,
        });
        g.value = v;
        g.min = g.min.min(v);
        g.max = g.max.max(v);
        g.sets += 1;
    }

    /// Records `v` into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().observe(v);
    }

    /// Merges an externally accumulated histogram into `name`
    /// (bucket-wise). Lets components without a `SimCtx` — e.g. the
    /// D-KASAN replay engine — publish their cost profile afterwards.
    pub fn merge_histogram(&mut self, name: &'static str, h: &Histogram) {
        let dst = self.hists.entry(name).or_default();
        for (d, s) in dst.buckets.iter_mut().zip(h.buckets.iter()) {
            *d += s;
        }
        dst.count += h.count;
        dst.sum += h.sum;
        dst.max = dst.max.max(h.max);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Aggregated stats for span `name`, if it ever completed.
    pub fn span_agg(&self, name: &str) -> Option<SpanAgg> {
        self.spans.agg.get(name).copied()
    }

    /// The stored span timeline (capped at [`TIMELINE_CAP`] records).
    pub fn span_timeline(&self) -> &[SpanRecord] {
        &self.spans.timeline
    }

    /// Number of distinct metric names across all tables.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len() + self.spans.agg.len()
    }

    /// `true` if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn span_begin_at(&mut self, name: &'static str, now: Cycles) -> SpanToken {
        self.spans.stack.push((name, now, true));
        self.profile.enter(name);
        SpanToken(self.spans.stack.len())
    }

    /// Opens a *profile-only* frame: it shares the span stack (so
    /// nesting under visible spans is exact) and feeds the call tree,
    /// but never touches the timeline or the span aggregates.
    pub(crate) fn prof_begin_at(&mut self, name: &'static str, now: Cycles) -> SpanToken {
        self.spans.stack.push((name, now, false));
        self.profile.enter(name);
        SpanToken(self.spans.stack.len())
    }

    pub(crate) fn span_end_at(&mut self, token: SpanToken, now: Cycles) {
        // Tolerate out-of-order ends: unwind to the token's depth so a
        // missed inner end cannot corrupt attribution forever.
        while self.spans.stack.len() >= token.0.max(1) {
            let Some((name, start, visible)) = self.spans.stack.pop() else {
                return;
            };
            self.profile.leave(now - start);
            if visible {
                let depth = self
                    .spans
                    .stack
                    .iter()
                    .filter(|(_, _, visible)| *visible)
                    .count() as u32;
                if self.spans.timeline.len() < TIMELINE_CAP {
                    self.spans.timeline.push(SpanRecord {
                        name,
                        start,
                        end: now,
                        depth,
                    });
                } else {
                    self.spans.timeline_dropped += 1;
                }
                let agg = self.spans.agg.entry(name).or_default();
                agg.count += 1;
                agg.total_cycles += now - start;
                agg.max_cycles = agg.max_cycles.max(now - start);
            }
            if self.spans.stack.len() < token.0 {
                break;
            }
        }
    }

    /// Drops the accumulated call tree, re-rooting any still-open
    /// frames — the per-exec reset point that keeps boot cost out of
    /// execution profiles. Counters, histograms, spans, and the
    /// timeline are untouched.
    pub fn profile_reset(&mut self) {
        let open: Vec<&'static str> = self.spans.stack.iter().map(|(name, _, _)| *name).collect();
        self.profile.reset(&open);
    }

    /// Freezes the call tree into an export-ready
    /// [`crate::profile::Profile`]. Open frames contribute their calls
    /// but no cycles until they close.
    pub fn profile(&self) -> crate::profile::Profile {
        self.profile.export()
    }

    /// Restores counter `name` to an absolute value (checkpoint resume).
    pub fn restore_counter(&mut self, name: &'static str, v: u64) {
        self.counters.insert(name, v);
    }

    /// Restores gauge `name` including its watermarks (checkpoint resume).
    pub fn restore_gauge(&mut self, name: &'static str, g: Gauge) {
        self.gauges.insert(name, g);
    }

    /// Restores histogram `name` wholesale (checkpoint resume).
    pub fn restore_histogram(&mut self, name: &'static str, h: Histogram) {
        self.hists.insert(name, h);
    }

    /// Restores the aggregate for span `name` (checkpoint resume). The
    /// per-record timeline is not restored — only the recorder window
    /// and aggregates survive a resume, which the snapshot format
    /// documents.
    pub fn restore_span_agg(&mut self, name: &'static str, s: SpanAgg) {
        self.spans.agg.insert(name, s);
    }

    /// Restores the count of timeline records dropped past
    /// [`TIMELINE_CAP`] (checkpoint resume).
    pub fn restore_timeline_dropped(&mut self, n: u64) {
        self.spans.timeline_dropped = n;
    }

    /// Takes a deterministic snapshot, stamped with the current cycle.
    pub fn snapshot(&self, now: Cycles) -> Snapshot {
        Snapshot {
            at: now,
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            spans: self
                .spans
                .agg
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            timeline_dropped: self.spans.timeline_dropped,
        }
    }
}

/// A frozen, export-ready view of a [`Metrics`] registry.
///
/// Field order inside every table is the `BTreeMap` (lexicographic)
/// order of the source registry, so both renderers below are
/// byte-deterministic for a given simulation history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Simulated cycle the snapshot was taken at.
    pub at: Cycles,
    /// Counter table.
    pub counters: Vec<(String, u64)>,
    /// Gauge table.
    pub gauges: Vec<(String, Gauge)>,
    /// Histogram table.
    pub hists: Vec<(String, Histogram)>,
    /// Span aggregates.
    pub spans: Vec<(String, SpanAgg)>,
    /// Timeline records dropped past [`TIMELINE_CAP`].
    pub timeline_dropped: u64,
}

impl Snapshot {
    /// Total number of distinct metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len() + self.spans.len()
    }

    /// `true` when the snapshot carries no metrics.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable table rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics @ {} cycles", self.at);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(
                out,
                "\ngauges:                                           cur          min          max"
            );
            for (k, g) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {:>12} {:>12} {:>12}", g.value, g.min, g.max);
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "\nhistograms:                                     count         mean          p99          max");
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>12} {:>12} {:>12} {:>12}",
                    h.count,
                    h.mean(),
                    h.p99(),
                    h.max
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "\nspans:                                          count       cycles   max_cycles"
            );
            for (k, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>12} {:>12} {:>12}",
                    s.count, s.total_cycles, s.max_cycles
                );
            }
        }
        out
    }

    /// Machine-readable rendering: serde-free, hand-rolled JSON with
    /// sorted keys and integer-only values — byte-identical for
    /// identical simulation histories.
    pub fn to_json(&self) -> String {
        let mut w = crate::jsonw::JsonWriter::new();
        w.obj(|w| {
            w.field_u64("at_cycles", self.at);
            w.field("counters", |w| {
                w.obj(|w| {
                    for (k, v) in &self.counters {
                        w.field_u64(k, *v);
                    }
                });
            });
            w.field("gauges", |w| {
                w.obj(|w| {
                    for (k, g) in &self.gauges {
                        w.field(k, |w| {
                            w.obj(|w| {
                                w.field_u64("value", g.value);
                                w.field_u64("min", g.min);
                                w.field_u64("max", g.max);
                                w.field_u64("sets", g.sets);
                            });
                        });
                    }
                });
            });
            w.field("histograms", |w| {
                w.obj(|w| {
                    for (k, h) in &self.hists {
                        w.field(k, |w| {
                            w.obj(|w| {
                                w.field_u64("count", h.count);
                                w.field_u64("sum", h.sum);
                                w.field_u64("max", h.max);
                                w.field_u64("mean", h.mean());
                                // Derived like `mean`: recomputed on
                                // render, ignored by `from_json`.
                                w.field_u64("p50", h.p50());
                                w.field_u64("p90", h.p90());
                                w.field_u64("p99", h.p99());
                                w.field("buckets", |w| {
                                    w.arr(|w| {
                                        // Only non-empty buckets, as
                                        // [bound, count] pairs; the
                                        // overflow bucket uses bound 0.
                                        for (i, c) in h.buckets.iter().enumerate() {
                                            if *c == 0 {
                                                continue;
                                            }
                                            let bound = if i == HIST_BUCKETS {
                                                0
                                            } else {
                                                bucket_bound(i)
                                            };
                                            w.elem(|w| {
                                                w.arr(|w| {
                                                    w.elem(|w| w.u64(bound));
                                                    w.elem(|w| w.u64(*c));
                                                });
                                            });
                                        }
                                    });
                                });
                            });
                        });
                    }
                });
            });
            w.field("spans", |w| {
                w.obj(|w| {
                    for (k, s) in &self.spans {
                        w.field(k, |w| {
                            w.obj(|w| {
                                w.field_u64("count", s.count);
                                w.field_u64("total_cycles", s.total_cycles);
                                w.field_u64("max_cycles", s.max_cycles);
                            });
                        });
                    }
                });
            });
            w.field_u64("timeline_dropped", self.timeline_dropped);
        });
        w.finish()
    }
}

impl Snapshot {
    /// Rebuilds a snapshot from its [`Snapshot::to_json`] rendering.
    ///
    /// This is the load half of the `stats --diff` and `serve` delta
    /// surfaces: dumps written by one process (or committed to disk)
    /// can be compared against live registries without serde. Returns
    /// `None` on structurally invalid input; the round trip
    /// `from_json(s.to_json())` is exact (the derived `mean` field is
    /// ignored on load and recomputed on render).
    pub fn from_json(doc: &str) -> Option<Snapshot> {
        let v = crate::jsonr::parse(doc).ok()?;
        Snapshot::from_jvalue(&v)
    }

    /// [`Snapshot::from_json`] over an already-parsed [`crate::JValue`].
    pub fn from_jvalue(v: &crate::JValue) -> Option<Snapshot> {
        let at = v.u64_field("at_cycles")?;
        let mut counters = Vec::new();
        for (k, c) in v.get("counters")?.as_obj()? {
            counters.push((k.clone(), c.as_u64()?));
        }
        let mut gauges = Vec::new();
        for (k, g) in v.get("gauges")?.as_obj()? {
            gauges.push((
                k.clone(),
                Gauge {
                    value: g.u64_field("value")?,
                    min: g.u64_field("min")?,
                    max: g.u64_field("max")?,
                    sets: g.u64_field("sets")?,
                },
            ));
        }
        let mut hists = Vec::new();
        for (k, h) in v.get("histograms")?.as_obj()? {
            let mut hist = Histogram {
                count: h.u64_field("count")?,
                sum: h.u64_field("sum")?,
                max: h.u64_field("max")?,
                ..Default::default()
            };
            for pair in h.get("buckets")?.as_arr()? {
                let pair = pair.as_arr()?;
                if pair.len() != 2 {
                    return None;
                }
                let (bound, n) = (pair[0].as_u64()?, pair[1].as_u64()?);
                // Bounds are powers of two (bound 0 = overflow bucket);
                // anything else is not a bucket this layout produced.
                let idx = if bound == 0 {
                    HIST_BUCKETS
                } else {
                    let idx = bound.trailing_zeros() as usize;
                    if idx >= HIST_BUCKETS || bucket_bound(idx) != bound {
                        return None;
                    }
                    idx
                };
                hist.buckets[idx] = n;
            }
            hists.push((k.clone(), hist));
        }
        let mut spans = Vec::new();
        for (k, s) in v.get("spans")?.as_obj()? {
            spans.push((
                k.clone(),
                SpanAgg {
                    count: s.u64_field("count")?,
                    total_cycles: s.u64_field("total_cycles")?,
                    max_cycles: s.u64_field("max_cycles")?,
                },
            ));
        }
        Some(Snapshot {
            at,
            counters,
            gauges,
            hists,
            spans,
            timeline_dropped: v.u64_field("timeline_dropped")?,
        })
    }

    /// Computes the per-metric change from `prev` to `self`.
    ///
    /// This is the delta layer behind `dma-lab serve`'s incremental
    /// stats frames and `dma-lab stats --diff`: instead of shipping a
    /// full dump every poll, a client receives only the metrics whose
    /// value moved since the previous snapshot, each with its signed
    /// delta. Metrics present in `prev` but absent from `self` are
    /// reported as having dropped to zero — for live registries that
    /// never happens (registries only grow), so in file-diff mode it
    /// flags a genuinely suspect trajectory.
    pub fn diff(&self, prev: &Snapshot) -> SnapshotDelta {
        fn union_keys<'a, T>(new: &'a [(String, T)], old: &'a [(String, T)]) -> Vec<&'a str> {
            let mut keys: Vec<&str> = new
                .iter()
                .map(|(k, _)| k.as_str())
                .chain(old.iter().map(|(k, _)| k.as_str()))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            keys
        }
        fn find<'a, T>(table: &'a [(String, T)], key: &str) -> Option<&'a T> {
            table.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        let mut counters = Vec::new();
        for k in union_keys(&self.counters, &prev.counters) {
            let new = find(&self.counters, k).copied().unwrap_or(0);
            let old = find(&prev.counters, k).copied().unwrap_or(0);
            if new != old {
                counters.push((k.to_string(), new, new as i64 - old as i64));
            }
        }
        let mut gauges = Vec::new();
        for k in union_keys(&self.gauges, &prev.gauges) {
            let new = find(&self.gauges, k).copied().unwrap_or_default();
            let old = find(&prev.gauges, k).copied().unwrap_or_default();
            if new != old {
                gauges.push((k.to_string(), new, new.value as i64 - old.value as i64));
            }
        }
        let mut hists = Vec::new();
        for k in union_keys(&self.hists, &prev.hists) {
            let new = find(&self.hists, k).cloned().unwrap_or_default();
            let old = find(&prev.hists, k).cloned().unwrap_or_default();
            if new != old {
                hists.push((
                    k.to_string(),
                    HistDelta {
                        count: new.count,
                        count_delta: new.count as i64 - old.count as i64,
                        sum_delta: new.sum as i64 - old.sum as i64,
                        max: new.max,
                    },
                ));
            }
        }
        let mut spans = Vec::new();
        for k in union_keys(&self.spans, &prev.spans) {
            let new = find(&self.spans, k).copied().unwrap_or_default();
            let old = find(&prev.spans, k).copied().unwrap_or_default();
            if new != old {
                spans.push((
                    k.to_string(),
                    SpanDelta {
                        count: new.count,
                        count_delta: new.count as i64 - old.count as i64,
                        cycles_delta: new.total_cycles as i64 - old.total_cycles as i64,
                    },
                ));
            }
        }
        fn absent<T>(new: &[(String, T)], old: &[(String, T)], missing: &mut Vec<String>) {
            for (k, _) in old {
                if !new.iter().any(|(nk, _)| nk == k) {
                    missing.push(k.clone());
                }
            }
        }
        let mut missing = Vec::new();
        absent(&self.counters, &prev.counters, &mut missing);
        absent(&self.gauges, &prev.gauges, &mut missing);
        absent(&self.hists, &prev.hists, &mut missing);
        absent(&self.spans, &prev.spans, &mut missing);
        missing.sort_unstable();
        missing.dedup();

        SnapshotDelta {
            from: prev.at,
            at: self.at,
            counters,
            gauges,
            hists,
            spans,
            missing,
            timeline_dropped_delta: self.timeline_dropped as i64 - prev.timeline_dropped as i64,
        }
    }

    /// Folds `other` into `self` — the deterministic shard-merge
    /// operation behind `ShardedCampaign`.
    ///
    /// Counters, histogram buckets/counts/sums, span counts/cycles, the
    /// cycle stamp, and `timeline_dropped` add; histogram/span maxima
    /// take the maximum. Gauges aggregate as if the shards were one
    /// machine observed together: values and set counts add, watermarks
    /// take the min-of-mins / max-of-maxes. Tables stay sorted by name,
    /// so merging the same snapshots in the same order is byte-stable —
    /// and because each input is itself deterministic, the fold is too.
    pub fn merge(&mut self, other: &Snapshot) {
        fn fold<T: Clone>(
            dst: &mut Vec<(String, T)>,
            src: &[(String, T)],
            combine: impl Fn(&mut T, &T),
        ) {
            let mut map: BTreeMap<String, T> = dst.drain(..).collect();
            for (k, v) in src {
                match map.get_mut(k) {
                    Some(d) => combine(d, v),
                    None => {
                        map.insert(k.clone(), v.clone());
                    }
                }
            }
            *dst = map.into_iter().collect();
        }
        self.at += other.at;
        fold(&mut self.counters, &other.counters, |d, s| *d += *s);
        fold(&mut self.gauges, &other.gauges, |d, s| {
            if d.sets == 0 {
                *d = *s;
            } else if s.sets > 0 {
                d.value += s.value;
                d.min = d.min.min(s.min);
                d.max = d.max.max(s.max);
                d.sets += s.sets;
            }
        });
        fold(&mut self.hists, &other.hists, |d, s| {
            for (db, sb) in d.buckets.iter_mut().zip(s.buckets.iter()) {
                *db += sb;
            }
            d.count += s.count;
            d.sum += s.sum;
            d.max = d.max.max(s.max);
        });
        fold(&mut self.spans, &other.spans, |d, s| {
            d.count += s.count;
            d.total_cycles += s.total_cycles;
            d.max_cycles = d.max_cycles.max(s.max_cycles);
        });
        self.timeline_dropped += other.timeline_dropped;
    }
}

/// Change of one histogram between two snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistDelta {
    /// New total count.
    pub count: u64,
    /// Count change since the previous snapshot.
    pub count_delta: i64,
    /// Sum change since the previous snapshot.
    pub sum_delta: i64,
    /// New maximum.
    pub max: u64,
}

/// Change of one span aggregate between two snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanDelta {
    /// New completed-occurrence count.
    pub count: u64,
    /// Occurrence change since the previous snapshot.
    pub count_delta: i64,
    /// Inclusive-cycle change since the previous snapshot.
    pub cycles_delta: i64,
}

/// The cycle-stamped difference between two [`Snapshot`]s: only the
/// metrics that changed, each with its signed delta. Produced by
/// [`Snapshot::diff`]; rendered deterministically by
/// [`SnapshotDelta::to_json`] (the `serve` delta-frame body) and
/// [`SnapshotDelta::render_text`] (the `stats --diff` table).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// Cycle stamp of the previous snapshot.
    pub from: Cycles,
    /// Cycle stamp of the new snapshot.
    pub at: Cycles,
    /// Changed counters: `(name, new_value, delta)`.
    pub counters: Vec<(String, u64, i64)>,
    /// Changed gauges: `(name, new_gauge, value_delta)`.
    pub gauges: Vec<(String, Gauge, i64)>,
    /// Changed histograms.
    pub hists: Vec<(String, HistDelta)>,
    /// Changed span aggregates.
    pub spans: Vec<(String, SpanDelta)>,
    /// Metrics present in the previous snapshot but absent from the new
    /// one — any table, sorted. A live registry never loses a metric
    /// (registries only grow), so across two dumps a vanished metric is
    /// as suspect as a counter going backwards; a zero-valued counter
    /// that disappears would otherwise be invisible (no value moved).
    pub missing: Vec<String>,
    /// Change in dropped timeline records.
    pub timeline_dropped_delta: i64,
}

impl SnapshotDelta {
    /// Number of changed metrics across all tables.
    pub fn changed(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len() + self.spans.len()
    }

    /// `true` when nothing moved between the two snapshots.
    pub fn is_empty(&self) -> bool {
        self.changed() == 0 && self.missing.is_empty() && self.timeline_dropped_delta == 0
    }

    /// Counters that went *backwards* — impossible for one live
    /// registry (counters are monotone), so across two dumps it marks a
    /// regression: a code path that stopped firing, or dumps compared
    /// in the wrong order. `stats --diff` exits non-zero when this is
    /// non-empty.
    pub fn regressed_counters(&self) -> Vec<&str> {
        self.counters
            .iter()
            .filter(|(_, _, d)| *d < 0)
            .map(|(k, _, _)| k.as_str())
            .collect()
    }

    /// `true` when the delta shows a regression: a counter went
    /// backwards *or* a metric vanished entirely. `stats --diff` gates
    /// on this, so a shard-merge bug that drops a metric can't hide
    /// behind "nothing changed".
    pub fn has_regressions(&self) -> bool {
        !self.missing.is_empty() || !self.regressed_counters().is_empty()
    }

    /// Deterministic JSON rendering (sorted keys, changed metrics only).
    pub fn to_json(&self) -> String {
        let mut w = crate::jsonw::JsonWriter::new();
        w.obj(|w| {
            w.field_u64("from_cycles", self.from);
            w.field_u64("at_cycles", self.at);
            w.field_u64("changed", self.changed() as u64);
            w.field("counters", |w| {
                w.obj(|w| {
                    for (k, v, d) in &self.counters {
                        w.field(k, |w| {
                            w.obj(|w| {
                                w.field_u64("value", *v);
                                w.field_i64("delta", *d);
                            });
                        });
                    }
                });
            });
            w.field("gauges", |w| {
                w.obj(|w| {
                    for (k, g, d) in &self.gauges {
                        w.field(k, |w| {
                            w.obj(|w| {
                                w.field_u64("value", g.value);
                                w.field_u64("min", g.min);
                                w.field_u64("max", g.max);
                                w.field_u64("sets", g.sets);
                                w.field_i64("delta", *d);
                            });
                        });
                    }
                });
            });
            w.field("histograms", |w| {
                w.obj(|w| {
                    for (k, h) in &self.hists {
                        w.field(k, |w| {
                            w.obj(|w| {
                                w.field_u64("count", h.count);
                                w.field_i64("count_delta", h.count_delta);
                                w.field_i64("sum_delta", h.sum_delta);
                                w.field_u64("max", h.max);
                            });
                        });
                    }
                });
            });
            w.field("spans", |w| {
                w.obj(|w| {
                    for (k, s) in &self.spans {
                        w.field(k, |w| {
                            w.obj(|w| {
                                w.field_u64("count", s.count);
                                w.field_i64("count_delta", s.count_delta);
                                w.field_i64("cycles_delta", s.cycles_delta);
                            });
                        });
                    }
                });
            });
            w.field("missing", |w| {
                w.arr(|w| {
                    for k in &self.missing {
                        w.elem(|w| w.str(k));
                    }
                });
            });
            w.field_i64("timeline_dropped_delta", self.timeline_dropped_delta);
        });
        w.finish()
    }

    /// Human-readable per-metric delta table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "delta over {} cycles ({} -> {}), {} metric(s) changed",
            self.at.saturating_sub(self.from),
            self.from,
            self.at,
            self.changed()
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (k, v, d) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v:>12} ({d:>+8})");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            for (k, g, d) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {:>12} ({d:>+8})", g.value);
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>12} ({:>+8})  max {}",
                    h.count, h.count_delta, h.max
                );
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nspans:");
            for (k, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {k:<40} {:>12} ({:>+8})  cycles {:>+10}",
                    s.count, s.count_delta, s.cycles_delta
                );
            }
        }
        let regressed = self.regressed_counters();
        if !regressed.is_empty() {
            let _ = writeln!(out, "\nREGRESSED counters: {}", regressed.join(", "));
        }
        if !self.missing.is_empty() {
            let _ = writeln!(out, "\nMISSING metrics: {}", self.missing.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_ceil_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 30), 30);
        assert_eq!(bucket_index((1 << 30) + 1), HIST_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = Metrics::new();
        m.incr("a.calls");
        m.add("a.calls", 4);
        m.gauge_set("a.depth", 3);
        m.gauge_set("a.depth", 9);
        m.gauge_set("a.depth", 1);
        assert_eq!(m.counter("a.calls"), 5);
        let g = m.gauge("a.depth").unwrap();
        assert_eq!((g.value, g.min, g.max, g.sets), (1, 1, 9, 3));
    }

    #[test]
    fn histogram_tracks_count_sum_and_quantiles() {
        let mut m = Metrics::new();
        for v in [1u64, 2, 2, 100, 5000] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 5105);
        assert_eq!(h.max, 5000);
        assert_eq!(h.mean(), 1021);
        assert_eq!(h.quantile_bound(500), 2, "median within the <=2 bucket");
        assert_eq!(h.quantile_bound(1000), 8192, "max within the <=8192 bucket");
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let mut m = Metrics::new();
        let outer = m.span_begin_at("outer", 100);
        let inner = m.span_begin_at("inner", 120);
        m.span_end_at(inner, 150);
        m.span_end_at(outer, 200);
        let tl = m.span_timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].name, "inner");
        assert_eq!(tl[0].depth, 1);
        assert_eq!(tl[1].name, "outer");
        assert_eq!(tl[1].depth, 0);
        assert_eq!(m.span_agg("outer").unwrap().total_cycles, 100);
        assert_eq!(m.span_agg("inner").unwrap().total_cycles, 30);
    }

    #[test]
    fn percentile_helpers_match_quantile_bounds() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 2, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.p50(), h.quantile_bound(500));
        assert_eq!(h.p90(), h.quantile_bound(900));
        assert_eq!(h.p99(), h.quantile_bound(990));
        assert_eq!(h.p50(), 2);
        assert_eq!(h.p99(), 8192);
    }

    #[test]
    fn snapshot_json_carries_derived_percentiles() {
        let mut m = Metrics::new();
        m.observe("lat", 7);
        let doc = m.snapshot(0).to_json();
        for key in ["\"p50\":8", "\"p90\":8", "\"p99\":8"] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
        // Still parses and round-trips (derived fields re-derived).
        let back = Snapshot::from_json(&doc).unwrap();
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn profile_only_frames_are_invisible_to_snapshots() {
        let mut m = Metrics::new();
        let t = m.prof_begin_at("hot.path", 0);
        m.span_end_at(t, 500);
        assert!(m.span_agg("hot.path").is_none());
        assert!(m.span_timeline().is_empty());
        assert!(m.snapshot(0).spans.is_empty());
        let p = m.profile();
        assert_eq!(p.roots[0].name, "hot.path");
        assert_eq!(p.roots[0].total_cycles, 500);
    }

    #[test]
    fn visible_and_profile_frames_share_one_call_tree() {
        let mut m = Metrics::new();
        let outer = m.span_begin_at("rx.poll", 0);
        let inner = m.prof_begin_at("iommu.map", 10);
        m.span_end_at(inner, 40);
        m.span_end_at(outer, 100);
        // Snapshot sees only the visible span, at depth 0.
        assert_eq!(m.snapshot(0).spans.len(), 1);
        assert_eq!(m.span_timeline()[0].depth, 0);
        // The tree nests the profile-only frame under it.
        let p = m.profile();
        assert_eq!(p.roots[0].name, "rx.poll");
        assert_eq!(p.roots[0].children[0].name, "iommu.map");
        assert_eq!(p.roots[0].children[0].total_cycles, 30);
        assert_eq!(p.roots[0].self_cycles(), 70);
    }

    #[test]
    fn profile_reset_clears_the_tree_but_not_the_spans() {
        let mut m = Metrics::new();
        let t = m.span_begin_at("boot", 0);
        m.span_end_at(t, 50);
        m.profile_reset();
        assert!(m.profile().is_empty());
        assert_eq!(m.span_agg("boot").unwrap().count, 1, "aggregates survive");
        let t = m.prof_begin_at("exec.deliver", 100);
        m.span_end_at(t, 160);
        assert_eq!(m.profile().roots[0].total_cycles, 60);
    }

    #[test]
    fn unwinding_a_torn_profile_frame_keeps_the_cursor_in_lockstep() {
        let mut m = Metrics::new();
        let outer = m.span_begin_at("outer", 0);
        let _torn = m.prof_begin_at("torn", 10);
        m.span_end_at(outer, 50);
        let p = m.profile();
        assert_eq!(p.roots[0].name, "outer");
        assert_eq!(p.roots[0].children[0].name, "torn");
        assert_eq!(p.roots[0].children[0].total_cycles, 40);
        assert_eq!(p.roots[0].total_cycles, 50);
        // Aggregates only saw the visible span.
        assert!(m.span_agg("torn").is_none());
        assert_eq!(m.span_agg("outer").unwrap().count, 1);
    }

    #[test]
    fn unbalanced_span_end_unwinds_to_token() {
        let mut m = Metrics::new();
        let outer = m.span_begin_at("outer", 0);
        let _leaked = m.span_begin_at("leaked", 10);
        // Ending the outer token also closes the leaked inner span.
        m.span_end_at(outer, 50);
        assert_eq!(m.span_agg("leaked").unwrap().count, 1);
        assert_eq!(m.span_agg("outer").unwrap().count, 1);
        assert!(m.span_timeline().len() == 2);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let build = || {
            let mut m = Metrics::new();
            m.incr("z.last");
            m.incr("a.first");
            m.observe("lat", 7);
            m.gauge_set("g", 2);
            let t = m.span_begin_at("phase", 5);
            m.span_end_at(t, 25);
            m.snapshot(1234).to_json()
        };
        let a = build();
        assert_eq!(a, build(), "same history must render byte-identically");
        assert!(a.find("a.first").unwrap() < a.find("z.last").unwrap());
        assert!(a.contains("\"at_cycles\":1234"));
    }

    #[test]
    fn timeline_caps_but_aggregates_keep_counting() {
        let mut m = Metrics::new();
        for i in 0..(TIMELINE_CAP as u64 + 10) {
            let t = m.span_begin_at("hot", i);
            m.span_end_at(t, i + 1);
        }
        assert_eq!(m.span_timeline().len(), TIMELINE_CAP);
        assert_eq!(m.span_agg("hot").unwrap().count, TIMELINE_CAP as u64 + 10);
        assert_eq!(m.snapshot(0).timeline_dropped, 10);
    }

    #[test]
    fn restore_methods_rebuild_an_identical_registry() {
        let mut m = Metrics::new();
        m.add("c", 41);
        m.gauge_set("g", 7);
        m.gauge_set("g", 3);
        m.observe("h", 9);
        m.observe("h", 1 << 40);
        let t = m.span_begin_at("s", 10);
        m.span_end_at(t, 30);
        m.restore_timeline_dropped(5);

        let mut r = Metrics::new();
        r.restore_counter("c", m.counter("c"));
        r.restore_gauge("g", m.gauge("g").unwrap());
        r.restore_histogram("h", m.histogram("h").unwrap().clone());
        r.restore_span_agg("s", m.span_agg("s").unwrap());
        r.restore_timeline_dropped(5);
        assert_eq!(
            m.snapshot(0).to_json(),
            r.snapshot(0).to_json(),
            "restored registry must render byte-identically"
        );
    }

    #[test]
    fn render_text_lists_every_table() {
        let mut m = Metrics::new();
        m.incr("c");
        m.gauge_set("g", 1);
        m.observe("h", 2);
        let t = m.span_begin_at("s", 0);
        m.span_end_at(t, 1);
        let txt = m.snapshot(9).render_text();
        for needle in ["counters:", "gauges:", "histograms:", "spans:", "9 cycles"] {
            assert!(txt.contains(needle), "missing {needle} in:\n{txt}");
        }
    }

    fn busy_registry() -> Metrics {
        let mut m = Metrics::new();
        m.add("pkts", 3);
        m.incr("drops");
        m.gauge_set("ring", 7);
        m.gauge_set("ring", 2);
        m.observe("lat", 1);
        m.observe("lat", 900);
        m.observe("lat", 1 << 40); // overflow bucket
        let t = m.span_begin_at("rx", 10);
        m.span_end_at(t, 40);
        m.restore_timeline_dropped(4);
        m
    }

    #[test]
    fn snapshot_json_round_trips_exactly() {
        let snap = busy_registry().snapshot(123);
        let back = Snapshot::from_json(&snap.to_json()).expect("parse own rendering");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), snap.to_json());
    }

    #[test]
    fn snapshot_from_json_rejects_garbage() {
        assert!(Snapshot::from_json("").is_none());
        assert!(Snapshot::from_json("{}").is_none());
        assert!(Snapshot::from_json("[1,2]").is_none());
        // A bucket bound that is not a power of two is not ours.
        let bad = r#"{"at_cycles":0,"counters":{},"gauges":{},
            "histograms":{"h":{"count":1,"sum":3,"max":3,"mean":3.000,
            "buckets":[[3,1]]}},"spans":{},"timeline_dropped":0}"#;
        assert!(Snapshot::from_json(bad).is_none());
    }

    #[test]
    fn diff_reports_only_changed_metrics() {
        let mut m = busy_registry();
        let before = m.snapshot(100);
        m.add("pkts", 5);
        m.incr("fresh");
        m.observe("lat", 16);
        let after = m.snapshot(160);
        let d = after.diff(&before);
        assert_eq!(d.from, 100);
        assert_eq!(d.at, 160);
        let names: Vec<&str> = d.counters.iter().map(|(k, _, _)| k.as_str()).collect();
        assert_eq!(names, ["fresh", "pkts"], "drops did not change");
        assert!(d.counters.contains(&("pkts".into(), 8, 5)));
        assert!(d.counters.contains(&("fresh".into(), 1, 1)));
        assert!(d.gauges.is_empty() && d.spans.is_empty());
        assert_eq!(d.hists.len(), 1);
        assert_eq!(d.hists[0].1.count_delta, 1);
        assert!(d.regressed_counters().is_empty());
        assert!(after.diff(&after).is_empty());
    }

    #[test]
    fn diff_flags_missing_counters_as_regressions() {
        let mut m = Metrics::new();
        m.add("stable", 2);
        m.add("gone", 9);
        let old = m.snapshot(0);
        let mut n = Metrics::new();
        n.add("stable", 2);
        let new = n.snapshot(10);
        let d = new.diff(&old);
        assert_eq!(d.regressed_counters(), ["gone"]);
        assert!(d.counters.contains(&("gone".into(), 0, -9)));
        let txt = d.render_text();
        assert!(txt.contains("REGRESSED counters: gone"), "{txt}");
    }

    #[test]
    fn diff_flags_vanished_metrics_even_at_value_zero() {
        // A zero-valued counter and a histogram/span/gauge that vanish
        // move no value, so the changed tables alone would miss them.
        let mut m = Metrics::new();
        m.add("zeroed", 0);
        m.observe("lat", 5);
        m.gauge_set("depth", 2);
        let t = m.span_begin_at("phase", 0);
        m.span_end_at(t, 9);
        let old = m.snapshot(0);
        let new = Metrics::new().snapshot(10);
        let d = new.diff(&old);
        assert!(d.has_regressions());
        assert_eq!(d.missing, ["depth", "lat", "phase", "zeroed"]);
        assert!(d.render_text().contains("MISSING metrics:"));
        assert!(d.to_json().contains("\"missing\":[\"depth\""));
        // And an unchanged pair reports none.
        assert!(old.diff(&old).missing.is_empty());
        assert!(!old.diff(&old).has_regressions());
    }

    #[test]
    fn snapshot_merge_adds_deterministically() {
        let shard = |seed: u64| {
            let mut m = Metrics::new();
            m.add("execs", seed);
            m.observe("lat", seed * 3);
            m.gauge_set("ring", seed);
            let t = m.span_begin_at("poll", 0);
            m.span_end_at(t, seed * 10);
            m.snapshot(seed * 100)
        };
        let mut merged = shard(1);
        merged.merge(&shard(2));
        merged.merge(&shard(4));
        assert_eq!(merged.at, 700);
        assert_eq!(merged.counters, [("execs".to_string(), 7)]);
        let h = &merged.hists[0].1;
        assert_eq!((h.count, h.sum, h.max), (3, 21, 12));
        let g = merged.gauges[0].1;
        assert_eq!((g.value, g.min, g.max, g.sets), (7, 1, 4, 3));
        let s = merged.spans[0].1;
        assert_eq!((s.count, s.total_cycles, s.max_cycles), (3, 70, 40));
        // Identity: merging one snapshot into an empty one is that
        // snapshot with the tables untouched.
        let mut one = Snapshot {
            at: 0,
            counters: vec![],
            gauges: vec![],
            hists: vec![],
            spans: vec![],
            timeline_dropped: 0,
        };
        one.merge(&shard(5));
        assert_eq!(one, shard(5));
        // Associative over this data: (a+b)+c == a+(b+c).
        let mut left = shard(1);
        left.merge(&shard(2));
        left.merge(&shard(4));
        let mut bc = shard(2);
        bc.merge(&shard(4));
        let mut right = shard(1);
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn delta_json_is_deterministic_and_parseable() {
        let mut m = busy_registry();
        let before = m.snapshot(1);
        m.incr("pkts");
        let after = m.snapshot(2);
        let a = after.diff(&before).to_json();
        let b = after.diff(&before).to_json();
        assert_eq!(a, b);
        let v = crate::jsonr::parse(&a).expect("delta json parses");
        assert_eq!(v.u64_field("changed"), Some(1));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("pkts"))
                .and_then(|p| p.get("delta"))
                .and_then(|d| d.as_i64()),
            Some(1)
        );
    }
}
