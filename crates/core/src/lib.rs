//! Shared vocabulary for the DMA-attack reproduction workspace.
//!
//! This crate defines the concepts every other crate speaks in:
//!
//! - [`addr`] — strongly-typed addresses: physical addresses, page frame
//!   numbers, kernel virtual addresses (KVA) and I/O virtual addresses
//!   (IOVA), with page arithmetic.
//! - [`layout`] — the x86-64 Linux kernel virtual-memory layout of Table 1
//!   of the paper, including KASLR randomization of the region bases and
//!   the KVA ↔ PFN ↔ `struct page` translations that the attacks abuse.
//! - [`vuln`] — the paper's taxonomy: the four sub-page vulnerability
//!   types (§3.2, Figure 1) and the three vulnerability attributes required
//!   for code injection (§3.3).
//! - [`clock`] — a simulated cycle-accurate clock plus the cost constants
//!   the paper quotes (IOTLB invalidation ≈ 2000 cycles, TLB ≈ 100).
//! - [`trace`] — the event stream emitted by the simulators and consumed
//!   by D-KASAN and the experiment harnesses.
//! - [`rng`] — a small deterministic RNG (`splitmix64` / `xoshiro256**`)
//!   used wherever determinism is load-bearing (e.g. the RingFlood
//!   reboot survey).
//! - [`fault`] — deterministic, seeded fault injection (the simulator's
//!   `failslab` / `fail_page_alloc` analog): a [`FaultPlan`] of
//!   site-tagged rules queried via `SimCtx::fault`, driving the
//!   graceful-degradation paths in every layer.
//! - [`metrics`] — the deterministic observability registry carried by
//!   every [`SimCtx`]: counters, gauges, fixed-bucket histograms, and
//!   span-scoped cycle attribution, exported as text or JSON.
//! - [`profile`] — hierarchical cycle attribution: the span stack
//!   folded into a deterministic call tree ([`Profile`]), with folded-
//!   stack (flamegraph) and speedscope exports plus the shard-merge
//!   fold behind `dma-lab profile`.
//! - [`jsonw`] — the serde-free JSON writer the exporters use so
//!   machine-readable output stays byte-deterministic.
//! - [`coverage`] — the deterministic feature bitmap the `fuzz` crate
//!   uses as its coverage signal: site tags, D-KASAN finding classes,
//!   and taxonomy hits hashed into a fixed-size, signature-carrying map.
//! - [`recorder`] — the bounded flight recorder: a deterministic ring
//!   buffer over events with eviction accounting, for long-running
//!   soaks and fuzz campaigns (`SimCtx::recorded`).
//! - [`provenance`] — the causal graph over events: alloc → map →
//!   access → unmap → flush lineage plus slab/page reuse edges, walked
//!   backward by the forensics engine in crate `dkasan`.
//! - [`chrome`] — Perfetto / Chrome `trace_event` JSON export of spans
//!   and events (byte-deterministic per seed).
//! - [`jsonr`] — the matching serde-free JSON reader, so checkpoint
//!   snapshots written via [`jsonw`] can be loaded back losslessly.
//! - [`checkpoint`] — crash-safe campaign snapshots: a versioned,
//!   checksummed envelope persisted under a two-generation A/B scheme
//!   with injectable, retried I/O faults, plus the codecs that carry
//!   events, recorders, coverage maps, and metric registries across a
//!   process kill.
//! - [`posture`] — the IOMMU protection-posture audit report
//!   (`iommu_status.py` analog): invalidation policy, per-domain
//!   isolation groups, sub-page sharing surface and observed §5.2.1
//!   stale-window statistics, graded into deterministic findings for
//!   the `dma-lab serve` `posture` request.

pub mod addr;
pub mod checkpoint;
pub mod chrome;
pub mod clock;
pub mod coverage;
pub mod error;
pub mod fault;
pub mod jsonr;
pub mod jsonw;
pub mod layout;
pub mod metrics;
pub mod posture;
pub mod profile;
pub mod provenance;
pub mod recorder;
pub mod rng;
pub mod trace;
pub mod vuln;

pub use addr::{Iova, Kva, Pfn, PhysAddr, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
pub use checkpoint::{CheckpointStore, LoadedCheckpoint, CHECKPOINT_VERSION};
pub use clock::{Clock, Cycles};
pub use coverage::{CoverageMap, COVERAGE_BITS};
pub use error::{DmaError, Result};
pub use fault::{FaultPlan, FaultRule, FaultTrigger};
pub use jsonr::{JValue, JsonError};
pub use layout::{KernelLayout, VmRegion};
pub use metrics::{Metrics, Snapshot, SnapshotDelta, SpanToken};
pub use posture::{GroupPosture, PostureFinding, PostureReport, Severity, StaleWindowStats};
pub use profile::{Profile, ProfileNode};
pub use provenance::{EdgeKind, ProvenanceGraph};
pub use recorder::FlightRecorder;
pub use rng::{shard_seed, DetRng};
pub use trace::{Event, SimCtx, Trace};
pub use vuln::{AccessRight, AttackOutcome, SubPageVulnerability, VulnerabilityAttributes};
