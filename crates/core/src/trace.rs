//! The simulation context: clock plus the event stream that D-KASAN and
//! the experiment harnesses consume.
//!
//! Every observable action in the simulators — object allocation, page
//! allocation, DMA map/unmap, CPU access, device access, IOTLB flushes —
//! is appended to the [`Trace`]. D-KASAN replays the stream to maintain
//! its shadow state, which mirrors how the real tool piggybacks on KASAN
//! instrumentation hooks.

use crate::addr::{Iova, Kva, Pfn};
use crate::clock::{Clock, Cycles};
use crate::fault::FaultPlan;
use crate::metrics::{Metrics, Snapshot, SpanToken};
use crate::recorder::FlightRecorder;
use crate::vuln::DmaDirection;

/// Identifier of a DMA-capable device (bus/device/function collapsed).
pub type DeviceId = u32;

/// One observable simulator event, timestamped by the [`SimCtx`] clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A heap object was allocated (kmalloc or page_frag).
    Alloc {
        /// Timestamp in cycles.
        at: Cycles,
        /// KVA of the new object.
        kva: Kva,
        /// Requested size in bytes.
        size: usize,
        /// Allocation site (function name), as in Figure 3.
        site: &'static str,
        /// Name of the slab cache or allocator that served it.
        cache: &'static str,
    },
    /// A heap object was freed.
    Free {
        /// Timestamp in cycles.
        at: Cycles,
        /// KVA of the freed object.
        kva: Kva,
    },
    /// Whole pages were allocated from the buddy allocator.
    PageAlloc {
        /// Timestamp in cycles.
        at: Cycles,
        /// First frame of the allocation.
        pfn: Pfn,
        /// Buddy order (2^order contiguous pages).
        order: u32,
        /// Allocation site.
        site: &'static str,
    },
    /// Pages were returned to the buddy allocator.
    PageFree {
        /// Timestamp in cycles.
        at: Cycles,
        /// First frame of the freed block.
        pfn: Pfn,
        /// Buddy order of the freed block.
        order: u32,
    },
    /// The DMA API mapped a buffer for a device.
    DmaMap {
        /// Timestamp in cycles.
        at: Cycles,
        /// The mapping device.
        device: DeviceId,
        /// IOVA returned to the driver.
        iova: Iova,
        /// KVA of the mapped buffer.
        kva: Kva,
        /// Buffer length in bytes (the *page span* is what gets exposed).
        len: usize,
        /// Transfer direction.
        dir: DmaDirection,
        /// Call site of the dma_map (for reports).
        site: &'static str,
    },
    /// The DMA API unmapped a buffer.
    DmaUnmap {
        /// Timestamp in cycles.
        at: Cycles,
        /// The unmapping device.
        device: DeviceId,
        /// IOVA being released.
        iova: Iova,
        /// Length of the original mapping.
        len: usize,
    },
    /// The CPU accessed memory through a KVA (sampled; enabled on demand).
    CpuAccess {
        /// Timestamp in cycles.
        at: Cycles,
        /// Accessed address.
        kva: Kva,
        /// Access length in bytes.
        len: usize,
        /// `true` for stores.
        write: bool,
        /// Accessing site.
        site: &'static str,
    },
    /// A device issued a DMA transaction through the IOMMU.
    DevAccess {
        /// Timestamp in cycles.
        at: Cycles,
        /// Issuing device.
        device: DeviceId,
        /// Target IOVA.
        iova: Iova,
        /// Access length in bytes.
        len: usize,
        /// `true` for DMA writes.
        write: bool,
        /// Whether the IOMMU allowed it.
        allowed: bool,
        /// Whether the translation was served by a *stale* IOTLB entry
        /// (deferred-invalidation window, §5.2.1).
        stale: bool,
    },
    /// A single IOTLB entry was invalidated (strict mode).
    IotlbInvalidate {
        /// Timestamp in cycles.
        at: Cycles,
        /// Owning device.
        device: DeviceId,
        /// Page-aligned IOVA whose translation was dropped.
        iova_page: Iova,
    },
    /// The periodic global IOTLB flush ran (deferred mode).
    IotlbGlobalFlush {
        /// Timestamp in cycles.
        at: Cycles,
        /// Number of stale entries dropped.
        dropped: usize,
    },
    /// The fault-injection engine forced a failure at a call site.
    FaultInjected {
        /// Timestamp in cycles.
        at: Cycles,
        /// Site tag of the failed call (e.g. `"sim_mem.kmalloc"`).
        site: &'static str,
    },
}

impl Event {
    /// Timestamp of the event.
    pub fn at(&self) -> Cycles {
        match self {
            Event::Alloc { at, .. }
            | Event::Free { at, .. }
            | Event::PageAlloc { at, .. }
            | Event::PageFree { at, .. }
            | Event::DmaMap { at, .. }
            | Event::DmaUnmap { at, .. }
            | Event::CpuAccess { at, .. }
            | Event::DevAccess { at, .. }
            | Event::IotlbInvalidate { at, .. }
            | Event::IotlbGlobalFlush { at, .. }
            | Event::FaultInjected { at, .. } => *at,
        }
    }
}

/// Backing storage for a [`Trace`]: the classic unbounded vector, or a
/// bounded [`FlightRecorder`] ring for long-running campaigns.
#[derive(Clone, Debug)]
enum Store {
    Unbounded(Vec<Event>),
    Bounded(FlightRecorder),
}

impl Default for Store {
    fn default() -> Self {
        Store::Unbounded(Vec::new())
    }
}

/// An event log with selective capture. By default it is append-only
/// and unbounded; [`Trace::recorded`] swaps the backing store for a
/// bounded [`FlightRecorder`] that evicts oldest-first and counts what
/// it dropped.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    store: Store,
    /// Master switch; when off, nothing is recorded (fast path).
    pub enabled: bool,
    /// CPU accesses are high-volume; they are only recorded when this is
    /// additionally set (D-KASAN turns it on).
    pub record_cpu_access: bool,
}

impl Trace {
    /// Creates a disabled trace (zero overhead until enabled).
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace backed by a bounded flight recorder retaining at
    /// most `capacity` events. Capture is still off until `enabled`.
    pub fn recorded(capacity: usize) -> Self {
        Trace {
            store: Store::Bounded(FlightRecorder::new(capacity)),
            ..Trace::default()
        }
    }

    /// `true` when backed by a bounded flight recorder.
    pub fn is_bounded(&self) -> bool {
        matches!(self.store, Store::Bounded(_))
    }

    /// Appends an event if capture is enabled. Returns `true` when the
    /// append evicted an older event (bounded store only); the caller
    /// ([`SimCtx::emit`]) accounts evictions under `trace.dropped`.
    #[inline]
    pub fn emit(&mut self, ev: Event) -> bool {
        if self.enabled {
            if let Event::CpuAccess { .. } = ev {
                if !self.record_cpu_access {
                    return false;
                }
            }
            match &mut self.store {
                Store::Unbounded(v) => {
                    v.push(ev);
                    false
                }
                Store::Bounded(r) => r.push(ev),
            }
        } else {
            false
        }
    }

    /// Number of captured (retained) events.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Unbounded(v) => v.len(),
            Store::Bounded(r) => r.len(),
        }
    }

    /// `true` if no events were captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the bounded store since the last drain
    /// (always 0 for the unbounded store).
    pub fn dropped(&self) -> u64 {
        match &self.store {
            Store::Unbounded(_) => 0,
            Store::Bounded(r) => r.dropped(),
        }
    }

    /// Read-only view of the retained events in *storage* order —
    /// chronological for the unbounded store and for a bounded store
    /// that has never wrapped. Use [`Trace::drain`] when a wrapped
    /// recorder must be read oldest-first.
    pub fn events(&self) -> &[Event] {
        match &self.store {
            Store::Unbounded(v) => v,
            Store::Bounded(r) => r.as_slice(),
        }
    }

    /// Removes and returns all retained events in chronological order
    /// (streaming consumption).
    pub fn drain(&mut self) -> Vec<Event> {
        match &mut self.store {
            Store::Unbounded(v) => core::mem::take(v),
            Store::Bounded(r) => r.drain(),
        }
    }
}

/// The context threaded through every simulator operation: simulated time
/// plus the event log.
#[derive(Clone, Debug, Default)]
pub struct SimCtx {
    /// Simulated clock; operations advance it by their modeled cost.
    pub clock: Clock,
    /// Event log.
    pub trace: Trace,
    /// Fault-injection schedule; empty (zero-overhead) by default.
    pub faults: FaultPlan,
    /// Deterministic metric registry (counters/gauges/histograms/spans).
    pub metrics: Metrics,
}

impl SimCtx {
    /// Creates a context at time zero with tracing disabled.
    pub fn new() -> Self {
        SimCtx::default()
    }

    /// Creates a context with event capture enabled.
    pub fn traced() -> Self {
        let mut ctx = SimCtx::new();
        ctx.trace.enabled = true;
        ctx
    }

    /// Creates a context whose event capture goes through a bounded
    /// [`FlightRecorder`] of `capacity` events. Evictions are counted
    /// under the `trace.dropped` metric, so long soaks keep a black-box
    /// window of recent history instead of growing without bound.
    pub fn recorded(capacity: usize) -> Self {
        let mut ctx = SimCtx::new();
        ctx.trace = Trace::recorded(capacity);
        ctx.trace.enabled = true;
        ctx
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Emits an event stamped with the current time. When the bounded
    /// recorder evicts an older event to make room, the loss is counted
    /// under the `trace.dropped` metric so reports can surface it.
    #[inline]
    pub fn emit(&mut self, ev: Event) {
        if self.trace.emit(ev) {
            self.metrics.incr("trace.dropped");
        }
    }

    /// Asks the fault plan whether the call at `site` should fail; on a
    /// hit, records a [`Event::FaultInjected`] in the trace. Call sites
    /// then return the natural error for the operation (allocators
    /// return `OutOfMemory`, the DMA map path `OutOfIova`, device DMA
    /// an `IommuFault`).
    #[inline]
    pub fn fault(&mut self, site: &'static str) -> bool {
        if self.faults.should_fail(site) {
            let at = self.clock.now();
            if self.trace.emit(Event::FaultInjected { at, site }) {
                self.metrics.incr("trace.dropped");
            }
            self.metrics.incr("fault.injected");
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Span-scoped tracing.
    // ------------------------------------------------------------------

    /// Opens a named span at the current cycle. Pair with
    /// [`SimCtx::span_end`]; spans nest LIFO and their inclusive cycle
    /// cost is attributed under the span name in the metric registry.
    #[inline]
    pub fn span_begin(&mut self, name: &'static str) -> SpanToken {
        let now = self.clock.now();
        self.metrics.span_begin_at(name, now)
    }

    /// Closes a span opened by [`SimCtx::span_begin`], recording its
    /// occurrence on the timeline and in the per-name aggregate. Ending
    /// an outer token first also closes any still-open inner spans.
    #[inline]
    pub fn span_end(&mut self, token: SpanToken) {
        let now = self.clock.now();
        self.metrics.span_end_at(token, now);
    }

    /// Opens a *profile-only* frame at the current cycle: it nests on
    /// the same stack as visible spans and feeds the cycle-attribution
    /// call tree ([`Metrics::profile`]), but is invisible to the span
    /// timeline, the aggregates, and every [`Snapshot`] — so hot-path
    /// instrumentation never perturbs committed trajectories.
    #[inline]
    pub fn prof_begin(&mut self, name: &'static str) -> SpanToken {
        let now = self.clock.now();
        self.metrics.prof_begin_at(name, now)
    }

    /// Closes a frame opened by [`SimCtx::prof_begin`] (the unwind
    /// rules of [`SimCtx::span_end`] apply).
    #[inline]
    pub fn prof_end(&mut self, token: SpanToken) {
        let now = self.clock.now();
        self.metrics.span_end_at(token, now);
    }

    /// Runs `f` inside a profile-only frame — the closure-scoped form
    /// of `prof_begin`/`prof_end`.
    pub fn prof<R>(&mut self, name: &'static str, f: impl FnOnce(&mut SimCtx) -> R) -> R {
        let token = self.prof_begin(name);
        let r = f(self);
        self.prof_end(token);
        r
    }

    /// Runs `f` inside a named span — the closure-scoped convenience
    /// form of `span_begin`/`span_end`.
    ///
    /// ```
    /// use dma_core::SimCtx;
    /// let mut ctx = SimCtx::new();
    /// ctx.span("rx.refill", |ctx| ctx.clock.advance(100));
    /// assert_eq!(ctx.metrics.span_agg("rx.refill").unwrap().total_cycles, 100);
    /// ```
    pub fn span<R>(&mut self, name: &'static str, f: impl FnOnce(&mut SimCtx) -> R) -> R {
        let token = self.span_begin(name);
        let r = f(self);
        self.span_end(token);
        r
    }

    /// Takes a deterministic metrics snapshot stamped with the current
    /// simulated time.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot(self.clock.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut ctx = SimCtx::new();
        ctx.emit(Event::Free {
            at: 0,
            kva: Kva(0x1000),
        });
        assert!(ctx.trace.is_empty());
    }

    #[test]
    fn cpu_access_needs_extra_switch() {
        let mut ctx = SimCtx::traced();
        ctx.emit(Event::CpuAccess {
            at: 0,
            kva: Kva(0),
            len: 8,
            write: true,
            site: "t",
        });
        assert!(ctx.trace.is_empty());
        ctx.trace.record_cpu_access = true;
        ctx.emit(Event::CpuAccess {
            at: 0,
            kva: Kva(0),
            len: 8,
            write: true,
            site: "t",
        });
        assert_eq!(ctx.trace.len(), 1);
    }

    #[test]
    fn fault_hits_are_traced() {
        let mut ctx = SimCtx::traced();
        ctx.faults = crate::fault::FaultPlan::seeded(1).fail_nth("t.op", 2);
        assert!(!ctx.fault("t.op"));
        assert!(ctx.fault("t.op"));
        assert_eq!(ctx.trace.len(), 1);
        assert!(matches!(
            ctx.trace.events()[0],
            Event::FaultInjected { site: "t.op", .. }
        ));
    }

    #[test]
    fn fault_hits_bump_the_injected_counter() {
        let mut ctx = SimCtx::new();
        ctx.faults = crate::fault::FaultPlan::seeded(1).fail_always("t.op");
        assert!(ctx.fault("t.op"));
        assert!(ctx.fault("t.op"));
        assert_eq!(ctx.metrics.counter("fault.injected"), 2);
    }

    #[test]
    fn spans_attribute_clock_advances() {
        let mut ctx = SimCtx::new();
        let outer = ctx.span_begin("outer");
        ctx.clock.advance(10);
        ctx.span("inner", |ctx| ctx.clock.advance(5));
        ctx.clock.advance(1);
        ctx.span_end(outer);
        assert_eq!(ctx.metrics.span_agg("outer").unwrap().total_cycles, 16);
        assert_eq!(ctx.metrics.span_agg("inner").unwrap().total_cycles, 5);
        let snap = ctx.metrics_snapshot();
        assert_eq!(snap.at, 16);
        assert_eq!(snap.spans.len(), 2);
    }

    #[test]
    fn recorded_ctx_bounds_the_log_and_counts_drops() {
        let mut ctx = SimCtx::recorded(3);
        assert!(ctx.trace.is_bounded());
        for at in 0..8u64 {
            ctx.emit(Event::Free { at, kva: Kva(at) });
        }
        assert_eq!(ctx.trace.len(), 3);
        assert_eq!(ctx.trace.dropped(), 5);
        assert_eq!(ctx.metrics.counter("trace.dropped"), 5);
        let evs = ctx.trace.drain();
        assert_eq!(
            evs.iter().map(|e| e.at()).collect::<Vec<_>>(),
            vec![5, 6, 7],
            "drain is chronological after wrapping"
        );
    }

    #[test]
    fn recorded_fault_evictions_count_as_dropped() {
        let mut ctx = SimCtx::recorded(1);
        ctx.faults = crate::fault::FaultPlan::seeded(1).fail_always("t.op");
        assert!(ctx.fault("t.op"));
        assert!(ctx.fault("t.op"));
        assert_eq!(ctx.trace.len(), 1);
        assert_eq!(ctx.metrics.counter("trace.dropped"), 1);
        assert_eq!(ctx.metrics.counter("fault.injected"), 2);
    }

    #[test]
    fn drain_empties_the_log() {
        let mut ctx = SimCtx::traced();
        ctx.emit(Event::Free {
            at: 1,
            kva: Kva(0x1000),
        });
        ctx.emit(Event::Free {
            at: 2,
            kva: Kva(0x2000),
        });
        let evs = ctx.trace.drain();
        assert_eq!(evs.len(), 2);
        assert!(ctx.trace.is_empty());
        assert_eq!(evs[0].at(), 1);
        assert_eq!(evs[1].at(), 2);
    }
}
