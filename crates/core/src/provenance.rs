//! The causal provenance graph over trace [`Event`]s.
//!
//! D-KASAN tells you *that* a sub-page exposure happened; the graph
//! records *why*: each ingested event is linked to the earlier events
//! that causally enabled it — the mapping that exposed an allocation's
//! page, the allocation a mapping covered, the unmap whose stale IOTLB
//! entry a device write slipped through (§5.2.1), the slab/page reuse
//! that put an object on a hot frame, the deferred flush that finally
//! retired an unmap. Forensic timelines (crate `dkasan`) are rendered
//! by walking this graph backward from a finding's trigger event.
//!
//! Determinism: indexes are hash maps, but they are only ever *probed*
//! by key (never iterated), and all per-key lists are insertion-ordered
//! vectors, so identical event streams produce identical graphs.

use std::collections::HashMap;

use crate::addr::{PAGE_MASK, PAGE_SIZE};
use crate::trace::{DeviceId, Event};

/// Why a parent event is causally upstream of a child.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// An allocation landed on a page a live DMA mapping already
    /// exposes (the alloc-after-map shape).
    ObjectOnMappedPage,
    /// A DMA mapping exposed a page holding this live allocation (the
    /// map-after-alloc / co-residency shape).
    MapCoversObject,
    /// A free (object or page) releases this earlier allocation.
    FreeOfAlloc,
    /// An unmap retires this earlier DMA mapping.
    UnmapOfMap,
    /// A CPU or device access went through this live DMA mapping.
    AccessViaMapping,
    /// A device access was served by a *stale* IOTLB translation left
    /// behind by this unmap (deferred-invalidation window, §5.2.1).
    StaleTranslation,
    /// An allocation reuses the address a recent free released
    /// (slab hot-object reuse).
    SlabReuse,
    /// A page allocation reuses a recently freed frame (buddy hot-page
    /// reuse — what makes RingFlood's PFN guess work).
    PageReuse,
    /// An IOTLB invalidation or global flush retired this pending
    /// unmap's translation, closing its stale window.
    FlushRetiresUnmap,
}

impl core::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            EdgeKind::ObjectOnMappedPage => "allocated on an already-mapped page",
            EdgeKind::MapCoversObject => "mapping exposes co-resident object",
            EdgeKind::FreeOfAlloc => "frees",
            EdgeKind::UnmapOfMap => "unmaps",
            EdgeKind::AccessViaMapping => "access via live mapping",
            EdgeKind::StaleTranslation => "served by stale IOTLB entry of",
            EdgeKind::SlabReuse => "reuses slab slot freed by",
            EdgeKind::PageReuse => "reuses page frame freed by",
            EdgeKind::FlushRetiresUnmap => "flush retires",
        })
    }
}

/// One causal edge: the parent event's index plus why it is upstream.
pub type Edge = (usize, EdgeKind);

fn kva_pages(kva: u64, len: usize) -> impl Iterator<Item = u64> {
    let start = kva & !PAGE_MASK;
    let n = crate::addr::pages_spanned((kva & PAGE_MASK) as usize, len.max(1));
    (0..n as u64).map(move |i| start + i * PAGE_SIZE as u64)
}

fn iova_pages(iova: u64, len: usize) -> impl Iterator<Item = u64> {
    kva_pages(iova, len)
}

/// The graph: every ingested event, its causal parent edges, and the
/// page-keyed indexes used to resolve them online.
#[derive(Debug, Default)]
pub struct ProvenanceGraph {
    events: Vec<Event>,
    parents: Vec<Vec<Edge>>,
    edges: usize,
    /// kva → index of the live allocation starting there.
    live_alloc_at: HashMap<u64, usize>,
    /// kva → index of the most recent free of that address.
    last_free_at: HashMap<u64, usize>,
    /// kva page → live allocation indexes on that page (insertion order).
    live_allocs_on_page: HashMap<u64, Vec<usize>>,
    /// (device, iova page) → index of the live mapping covering it.
    live_map_at: HashMap<(DeviceId, u64), usize>,
    /// (device, iova page) → index of the last unmap that covered it.
    last_unmap_at: HashMap<(DeviceId, u64), usize>,
    /// kva page → live mapping indexes exposing that page.
    live_maps_on_page: HashMap<u64, Vec<usize>>,
    /// Unmaps whose IOTLB translation has not been invalidated yet.
    pending_unmaps: Vec<usize>,
    /// pfn → index of the live page allocation providing that frame.
    live_page_at: HashMap<u64, usize>,
    /// pfn → index of the most recent page free of that frame.
    last_page_free_at: HashMap<u64, usize>,
    /// kva page → every event index that touched that page.
    touched: HashMap<u64, Vec<usize>>,
}

impl ProvenanceGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ProvenanceGraph::default()
    }

    /// Number of ingested events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of causal edges resolved so far.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The ingested event at `idx`.
    pub fn event(&self, idx: usize) -> &Event {
        &self.events[idx]
    }

    /// All ingested events, in ingestion (chronological) order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Direct causal parents of the event at `idx`.
    pub fn parents(&self, idx: usize) -> &[Edge] {
        &self.parents[idx]
    }

    /// Every event index that touched the (kva) page containing `kva`,
    /// in chronological order. Device accesses are resolved through
    /// their mapping so they appear on the page they actually hit.
    pub fn events_touching_page(&self, kva: u64) -> &[usize] {
        self.touched
            .get(&(kva & !PAGE_MASK))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Full causal ancestry of `idx`: breadth-first over parent edges,
    /// first-discovery order, each ancestor tagged with the edge kind
    /// through which it was first reached. `idx` itself is excluded.
    pub fn ancestry(&self, idx: usize) -> Vec<Edge> {
        let mut seen = vec![false; self.events.len()];
        seen[idx] = true;
        let mut queue = std::collections::VecDeque::from([idx]);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            for &(p, kind) in &self.parents[cur] {
                if !seen[p] {
                    seen[p] = true;
                    out.push((p, kind));
                    queue.push_back(p);
                }
            }
        }
        out
    }

    fn touch(&mut self, kva: u64, idx: usize) {
        self.touched.entry(kva & !PAGE_MASK).or_default().push(idx);
    }

    fn link(&mut self, child: usize, parent: usize, kind: EdgeKind) {
        self.parents[child].push((parent, kind));
        self.edges += 1;
    }

    /// Ingests every event of a drained trace, in order.
    pub fn ingest_all<I: IntoIterator<Item = Event>>(&mut self, evs: I) {
        for ev in evs {
            self.ingest(ev);
        }
    }

    /// Ingests one event, resolving its causal parents against the live
    /// indexes. Returns the event's index in the graph.
    pub fn ingest(&mut self, ev: Event) -> usize {
        let idx = self.events.len();
        self.parents.push(Vec::new());
        match ev {
            Event::Alloc { kva, size, .. } => {
                if let Some(&free) = self.last_free_at.get(&kva.raw()) {
                    self.link(idx, free, EdgeKind::SlabReuse);
                }
                for page in kva_pages(kva.raw(), size) {
                    let maps = self
                        .live_maps_on_page
                        .get(&page)
                        .cloned()
                        .unwrap_or_default();
                    for m in maps {
                        self.link(idx, m, EdgeKind::ObjectOnMappedPage);
                    }
                    self.live_allocs_on_page.entry(page).or_default().push(idx);
                    self.touch(page, idx);
                }
                self.live_alloc_at.insert(kva.raw(), idx);
            }
            Event::Free { kva, .. } => {
                if let Some(alloc) = self.live_alloc_at.remove(&kva.raw()) {
                    self.link(idx, alloc, EdgeKind::FreeOfAlloc);
                    let size = match self.events[alloc] {
                        Event::Alloc { size, .. } => size,
                        _ => 1,
                    };
                    for page in kva_pages(kva.raw(), size) {
                        if let Some(v) = self.live_allocs_on_page.get_mut(&page) {
                            v.retain(|&i| i != alloc);
                        }
                        self.touch(page, idx);
                    }
                } else {
                    self.touch(kva.raw(), idx);
                }
                self.last_free_at.insert(kva.raw(), idx);
            }
            Event::PageAlloc { pfn, order, .. } => {
                if let Some(&free) = self.last_page_free_at.get(&pfn.raw()) {
                    self.link(idx, free, EdgeKind::PageReuse);
                }
                for f in 0..(1u64 << order) {
                    self.live_page_at.insert(pfn.raw() + f, idx);
                }
            }
            Event::PageFree { pfn, order, .. } => {
                if let Some(&alloc) = self.live_page_at.get(&pfn.raw()) {
                    self.link(idx, alloc, EdgeKind::FreeOfAlloc);
                }
                for f in 0..(1u64 << order) {
                    self.live_page_at.remove(&(pfn.raw() + f));
                    self.last_page_free_at.insert(pfn.raw() + f, idx);
                }
            }
            Event::DmaMap {
                device,
                iova,
                kva,
                len,
                ..
            } => {
                for page in kva_pages(kva.raw(), len) {
                    let allocs = self
                        .live_allocs_on_page
                        .get(&page)
                        .cloned()
                        .unwrap_or_default();
                    for a in allocs {
                        self.link(idx, a, EdgeKind::MapCoversObject);
                    }
                    self.live_maps_on_page.entry(page).or_default().push(idx);
                    self.touch(page, idx);
                }
                for page in iova_pages(iova.raw(), len) {
                    self.live_map_at.insert((device, page), idx);
                }
            }
            Event::DmaUnmap {
                device, iova, len, ..
            } => {
                let mut map = None;
                for page in iova_pages(iova.raw(), len) {
                    if let Some(m) = self.live_map_at.remove(&(device, page)) {
                        map = Some(m);
                    }
                    self.last_unmap_at.insert((device, page), idx);
                }
                if let Some(m) = map {
                    self.link(idx, m, EdgeKind::UnmapOfMap);
                    if let Event::DmaMap { kva, len, .. } = self.events[m] {
                        for page in kva_pages(kva.raw(), len) {
                            if let Some(v) = self.live_maps_on_page.get_mut(&page) {
                                v.retain(|&i| i != m);
                            }
                            self.touch(page, idx);
                        }
                    }
                }
                self.pending_unmaps.push(idx);
            }
            Event::CpuAccess { kva, .. } => {
                let page = kva.raw() & !PAGE_MASK;
                if let Some(maps) = self.live_maps_on_page.get(&page) {
                    if let Some(&m) = maps.last() {
                        self.link(idx, m, EdgeKind::AccessViaMapping);
                    }
                }
                self.touch(page, idx);
            }
            Event::DevAccess {
                device,
                iova,
                stale,
                ..
            } => {
                let page = iova.raw() & !PAGE_MASK;
                let mut resolved = None;
                if let Some(&m) = self.live_map_at.get(&(device, page)) {
                    self.link(idx, m, EdgeKind::AccessViaMapping);
                    resolved = Some(m);
                }
                if stale || resolved.is_none() {
                    if let Some(&u) = self.last_unmap_at.get(&(device, page)) {
                        self.link(idx, u, EdgeKind::StaleTranslation);
                        if resolved.is_none() {
                            if let Some(&(m, _)) = self.parents[u]
                                .iter()
                                .find(|&&(_, k)| k == EdgeKind::UnmapOfMap)
                            {
                                resolved = Some(m);
                            }
                        }
                    }
                }
                // Land the access on the kva page the translation (live
                // or stale) pointed at, so per-page timelines see it.
                if let Some(m) = resolved {
                    if let Event::DmaMap { kva, .. } = self.events[m] {
                        let off = iova.raw() & PAGE_MASK;
                        self.touch((kva.raw() & !PAGE_MASK) | off, idx);
                    }
                }
            }
            Event::IotlbInvalidate {
                device, iova_page, ..
            } => {
                let key = (device, iova_page.raw() & !PAGE_MASK);
                let mut retired = Vec::new();
                self.pending_unmaps.retain(|&u| {
                    let hit = matches!(
                        self.events[u],
                        Event::DmaUnmap { device: d, iova, .. }
                            if d == key.0 && iova.raw() & !PAGE_MASK == key.1
                    );
                    if hit {
                        retired.push(u);
                    }
                    !hit
                });
                for u in retired {
                    self.link(idx, u, EdgeKind::FlushRetiresUnmap);
                }
            }
            Event::IotlbGlobalFlush { .. } => {
                for u in core::mem::take(&mut self.pending_unmaps) {
                    self.link(idx, u, EdgeKind::FlushRetiresUnmap);
                }
            }
            Event::FaultInjected { .. } => {}
        }
        self.events.push(ev);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vuln::DmaDirection;
    use crate::{Iova, Kva, Pfn};

    const PAGE: u64 = 0xffff_8880_0010_0000;

    fn alloc(at: u64, kva: u64, size: usize) -> Event {
        Event::Alloc {
            at,
            kva: Kva(kva),
            size,
            site: "t_alloc",
            cache: "kmalloc-512",
        }
    }

    fn map(at: u64, iova: u64, kva: u64, len: usize) -> Event {
        Event::DmaMap {
            at,
            device: 1,
            iova: Iova(iova),
            kva: Kva(kva),
            len,
            dir: DmaDirection::FromDevice,
            site: "t_map",
        }
    }

    #[test]
    fn alloc_map_access_chain_resolves() {
        let mut g = ProvenanceGraph::new();
        let a = g.ingest(alloc(10, PAGE, 512));
        let b = g.ingest(alloc(11, PAGE + 512, 512));
        let m = g.ingest(map(20, 0xf000, PAGE, 256));
        let d = g.ingest(Event::DevAccess {
            at: 30,
            device: 1,
            iova: Iova(0xf040),
            len: 8,
            write: true,
            allowed: true,
            stale: false,
        });
        // The map co-resides with BOTH allocations on the page.
        let map_parents: Vec<_> = g.parents(m).to_vec();
        assert!(map_parents.contains(&(a, EdgeKind::MapCoversObject)));
        assert!(map_parents.contains(&(b, EdgeKind::MapCoversObject)));
        assert_eq!(g.parents(d), &[(m, EdgeKind::AccessViaMapping)]);
        // Ancestry of the device access reaches both allocations.
        let anc = g.ancestry(d);
        assert!(anc.iter().any(|&(i, _)| i == a));
        assert!(anc.iter().any(|&(i, _)| i == b));
        // The device write lands on the page timeline.
        assert!(g.events_touching_page(PAGE).contains(&d));
    }

    #[test]
    fn alloc_after_map_gets_the_exposure_edge() {
        let mut g = ProvenanceGraph::new();
        let m = g.ingest(map(5, 0xf000, PAGE, 2048));
        let a = g.ingest(alloc(9, PAGE + 2048, 512));
        assert_eq!(g.parents(a), &[(m, EdgeKind::ObjectOnMappedPage)]);
    }

    #[test]
    fn slab_and_page_reuse_edges() {
        let mut g = ProvenanceGraph::new();
        let a = g.ingest(alloc(1, PAGE, 512));
        let f = g.ingest(Event::Free {
            at: 2,
            kva: Kva(PAGE),
        });
        let b = g.ingest(alloc(3, PAGE, 512));
        assert_eq!(g.parents(f), &[(a, EdgeKind::FreeOfAlloc)]);
        assert_eq!(g.parents(b), &[(f, EdgeKind::SlabReuse)]);

        let pa = g.ingest(Event::PageAlloc {
            at: 4,
            pfn: Pfn(0x100),
            order: 0,
            site: "t_page",
        });
        let pf = g.ingest(Event::PageFree {
            at: 5,
            pfn: Pfn(0x100),
            order: 0,
        });
        let pb = g.ingest(Event::PageAlloc {
            at: 6,
            pfn: Pfn(0x100),
            order: 0,
            site: "t_page",
        });
        assert_eq!(g.parents(pf), &[(pa, EdgeKind::FreeOfAlloc)]);
        assert_eq!(g.parents(pb), &[(pf, EdgeKind::PageReuse)]);
    }

    #[test]
    fn stale_access_points_at_the_unmap_and_flush_retires_it() {
        let mut g = ProvenanceGraph::new();
        let m = g.ingest(map(1, 0xf000, PAGE, 256));
        let u = g.ingest(Event::DmaUnmap {
            at: 2,
            device: 1,
            iova: Iova(0xf000),
            len: 256,
        });
        let s = g.ingest(Event::DevAccess {
            at: 3,
            device: 1,
            iova: Iova(0xf010),
            len: 8,
            write: true,
            allowed: true,
            stale: true,
        });
        let fl = g.ingest(Event::IotlbGlobalFlush { at: 9, dropped: 1 });
        assert_eq!(g.parents(u), &[(m, EdgeKind::UnmapOfMap)]);
        assert_eq!(g.parents(s), &[(u, EdgeKind::StaleTranslation)]);
        assert_eq!(g.parents(fl), &[(u, EdgeKind::FlushRetiresUnmap)]);
        // The stale write still lands on the (stale) kva page timeline.
        assert!(g.events_touching_page(PAGE).contains(&s));
    }

    #[test]
    fn strict_invalidate_retires_only_its_page() {
        let mut g = ProvenanceGraph::new();
        g.ingest(map(1, 0xf000, PAGE, 256));
        let u1 = g.ingest(Event::DmaUnmap {
            at: 2,
            device: 1,
            iova: Iova(0xf000),
            len: 256,
        });
        g.ingest(map(3, 0x1f000, PAGE + 0x1000, 256));
        let u2 = g.ingest(Event::DmaUnmap {
            at: 4,
            device: 1,
            iova: Iova(0x1f000),
            len: 256,
        });
        let inv = g.ingest(Event::IotlbInvalidate {
            at: 5,
            device: 1,
            iova_page: Iova(0xf000),
        });
        assert_eq!(g.parents(inv), &[(u1, EdgeKind::FlushRetiresUnmap)]);
        let fl = g.ingest(Event::IotlbGlobalFlush { at: 9, dropped: 1 });
        assert_eq!(g.parents(fl), &[(u2, EdgeKind::FlushRetiresUnmap)]);
    }

    #[test]
    fn identical_streams_build_identical_graphs() {
        let build = || {
            let mut g = ProvenanceGraph::new();
            for i in 0..32u64 {
                g.ingest(alloc(i, PAGE + (i % 7) * 512, 256));
                if i % 3 == 0 {
                    g.ingest(map(i, 0xf000 + i * 0x1000, PAGE + (i % 7) * 512, 128));
                }
            }
            let anc: Vec<_> = (0..g.len()).map(|i| g.ancestry(i)).collect();
            (g.edge_count(), anc)
        };
        assert_eq!(build(), build());
    }
}
