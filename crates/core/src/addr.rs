//! Strongly-typed addresses and page arithmetic.
//!
//! The whole point of the paper is that different address spaces (kernel
//! virtual, I/O virtual, physical) map onto the same pages with different
//! protection granularity, so we keep them as distinct newtypes and make
//! every conversion explicit.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Log2 of the page size. The IOMMU and MMU in this model use 4 KiB pages.
pub const PAGE_SHIFT: u32 = 12;
/// The page size in bytes (4 KiB), the granularity of IOMMU protection.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Mask selecting the in-page offset bits of an address.
pub const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the offset of this address within its page.
            #[inline]
            pub const fn page_offset(self) -> usize {
                (self.0 & PAGE_MASK) as usize
            }

            /// Rounds this address down to the start of its page.
            #[inline]
            pub const fn page_align_down(self) -> Self {
                Self(self.0 & !PAGE_MASK)
            }

            /// Rounds this address up to the next page boundary (identity
            /// if already aligned).
            #[inline]
            pub const fn page_align_up(self) -> Self {
                Self((self.0 + PAGE_MASK) & !PAGE_MASK)
            }

            /// Returns `true` if this address is page aligned.
            #[inline]
            pub const fn is_page_aligned(self) -> bool {
                self.0 & PAGE_MASK == 0
            }

            /// Checked addition of a byte offset.
            #[inline]
            pub fn checked_add(self, rhs: u64) -> Option<Self> {
                self.0.checked_add(rhs).map(Self)
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#018x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#018x}", self.0)
            }
        }
    };
}

addr_newtype! {
    /// A physical memory address.
    PhysAddr
}

addr_newtype! {
    /// A kernel virtual address (KVA).
    ///
    /// A device is never given a KVA directly; attribute 1 of §3.3 is the
    /// attacker *learning* a KVA through a leak.
    Kva
}

addr_newtype! {
    /// An I/O virtual address (IOVA) handed to a device by the DMA API.
    ///
    /// Note: the low [`PAGE_SHIFT`] bits of an IOVA equal the low bits of
    /// the KVA it maps (the paper exploits this in §5.2.2, footnote 5).
    Iova
}

/// A page frame number: a physical address shifted right by [`PAGE_SHIFT`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl Pfn {
    /// Returns the raw frame number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of this frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the frame containing the given physical address.
    #[inline]
    pub const fn containing(pa: PhysAddr) -> Self {
        Pfn(pa.0 >> PAGE_SHIFT)
    }

    /// Returns the frame `n` frames after this one.
    #[inline]
    pub const fn add(self, n: u64) -> Self {
        Pfn(self.0 + n)
    }
}

impl fmt::Debug for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pfn({:#x})", self.0)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl PhysAddr {
    /// Returns the page frame containing this address.
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn::containing(self)
    }
}

/// Returns the number of pages needed to cover `len` bytes starting at an
/// address with in-page offset `offset`.
///
/// This is the quantity the DMA API actually maps: mapping a 1-byte buffer
/// exposes one full page, and a buffer straddling a boundary exposes two.
#[inline]
pub fn pages_spanned(offset: usize, len: usize) -> usize {
    if len == 0 {
        return 0;
    }
    (offset + len).div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic_roundtrips() {
        let a = Kva(0xffff_8880_0001_2345);
        assert_eq!(a.page_offset(), 0x345);
        assert_eq!(a.page_align_down().raw(), 0xffff_8880_0001_2000);
        assert_eq!(a.page_align_up().raw(), 0xffff_8880_0001_3000);
        assert!(!a.is_page_aligned());
        assert!(a.page_align_down().is_page_aligned());
    }

    #[test]
    fn align_up_is_identity_on_aligned() {
        let a = PhysAddr(0x4000);
        assert_eq!(a.page_align_up(), a);
    }

    #[test]
    fn pfn_roundtrip() {
        let pa = PhysAddr(0x1234_5678);
        let pfn = pa.pfn();
        assert_eq!(pfn.raw(), 0x12345);
        assert_eq!(pfn.base().raw(), 0x1234_5000);
    }

    #[test]
    fn pages_spanned_counts_straddles() {
        assert_eq!(pages_spanned(0, 0), 0);
        assert_eq!(pages_spanned(0, 1), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE + 1), 2);
        assert_eq!(pages_spanned(PAGE_SIZE - 1, 2), 2);
        assert_eq!(pages_spanned(100, 1500), 1);
        assert_eq!(pages_spanned(3000, 1500), 2);
    }

    #[test]
    fn iova_low_bits_match_mapping_convention() {
        // Footnote 5 of the paper: in-page offset is shared by IOVA and KVA.
        let kva = Kva(0xffff_8880_0000_0abc);
        let iova = Iova(0xfff0_0abc);
        assert_eq!(kva.page_offset(), iova.page_offset());
    }

    #[test]
    fn subtraction_gives_byte_distance() {
        assert_eq!(Kva(0x2000) - Kva(0x1800), 0x800);
    }
}
