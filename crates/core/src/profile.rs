//! Hierarchical cycle-attribution profiles: the span stack folded into
//! a call tree.
//!
//! The flat span aggregates in [`crate::metrics`] answer *how much* a
//! named phase cost; they cannot answer *where inside it* the cycles
//! went — the question ROADMAP item 4 (batched DMA API, lock-free
//! IOTLB) needs attribution data for. This module adds that layer:
//!
//! * [`ProfTree`] — the incremental call tree a [`crate::Metrics`]
//!   registry grows as spans (visible *and* profile-only) open and
//!   close. Frames are keyed by `&'static str` name under their parent;
//!   sibling order is the `BTreeMap` order, so the tree shape is a pure
//!   function of the simulation history.
//! * [`Profile`] / [`ProfileNode`] — the frozen, export-ready tree.
//!   Everything downstream (folded stacks, speedscope JSON, shard
//!   merging, checkpoint persistence) works on this plain-data form.
//!
//! # Attribution model
//!
//! A node's `total_cycles` is inclusive (simulated cycles between frame
//! entry and exit, children included); its *self* cycles are
//! `total - Σ children.total`, computed on demand and saturating so a
//! torn frame can never underflow. Cycles spent outside any frame —
//! deliberately including fuzz-input idle ops like `AdvanceTime`, which
//! would otherwise drown the hot paths — stay unattributed; exporters
//! report attributed vs. total so the gap is visible rather than
//! hidden.
//!
//! # Merge semantics
//!
//! [`Profile::merge`] folds another profile in by recursively matching
//! frames by name: calls and totals add, unmatched subtrees are
//! inserted whole, and children stay name-sorted. The fold is
//! commutative and associative over per-exec profiles, which is what
//! makes sharded campaigns thread-count-agnostic: shards are merged in
//! sorted shard-id order, and partitioning one iteration range across N
//! shards reproduces the 1-shard profile byte for byte.

use crate::clock::Cycles;
use crate::jsonw::JsonWriter;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One frame of a frozen call tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Frame name (`subsystem.op` style, e.g. `iommu.iotlb.inv`).
    pub name: String,
    /// Number of times this frame was entered under this parent.
    pub calls: u64,
    /// Inclusive simulated cycles (children included).
    pub total_cycles: Cycles,
    /// Child frames, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Exclusive cycles: inclusive minus children, saturating.
    pub fn self_cycles(&self) -> Cycles {
        let kids: Cycles = self.children.iter().map(|c| c.total_cycles).sum();
        self.total_cycles.saturating_sub(kids)
    }

    fn merge(&mut self, other: &ProfileNode) {
        self.calls += other.calls;
        self.total_cycles += other.total_cycles;
        for oc in &other.children {
            match self.children.iter_mut().find(|c| c.name == oc.name) {
                Some(c) => c.merge(oc),
                None => {
                    self.children.push(oc.clone());
                }
            }
        }
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
    }

    fn to_writer(&self, w: &mut JsonWriter) {
        w.obj(|w| {
            w.field_str("name", &self.name);
            w.field_u64("calls", self.calls);
            w.field_u64("total_cycles", self.total_cycles);
            w.field_u64("self_cycles", self.self_cycles());
            w.field("children", |w| {
                w.arr(|w| {
                    for c in &self.children {
                        c.elem_to(w);
                    }
                });
            });
        });
    }

    fn elem_to(&self, w: &mut JsonWriter) {
        w.elem(|w| self.to_writer(w));
    }

    fn from_jvalue(v: &crate::JValue) -> Option<ProfileNode> {
        let mut children = Vec::new();
        for c in v.get("children")?.as_arr()? {
            children.push(ProfileNode::from_jvalue(c)?);
        }
        Some(ProfileNode {
            name: v.str_field("name")?.to_string(),
            calls: v.u64_field("calls")?,
            total_cycles: v.u64_field("total_cycles")?,
            children,
        })
    }
}

/// A frozen, mergeable cycle-attribution call tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Top-level frames, sorted by name.
    pub roots: Vec<ProfileNode>,
}

impl Profile {
    /// An empty profile (the merge identity).
    pub fn new() -> Profile {
        Profile::default()
    }

    /// `true` when no frame was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Simulated cycles attributed to some frame (sum of root totals).
    pub fn attributed_cycles(&self) -> Cycles {
        self.roots.iter().map(|r| r.total_cycles).sum()
    }

    /// Total frame entries across the whole tree.
    pub fn total_calls(&self) -> u64 {
        fn walk(n: &ProfileNode) -> u64 {
            n.calls + n.children.iter().map(walk).sum::<u64>()
        }
        self.roots.iter().map(walk).sum()
    }

    /// Folds `other` into `self`: frames match by name recursively,
    /// calls and cycles add, unmatched subtrees insert whole. The
    /// deterministic shard-merge operation — commutative, associative,
    /// with [`Profile::new`] as identity.
    pub fn merge(&mut self, other: &Profile) {
        for or in &other.roots {
            match self.roots.iter_mut().find(|r| r.name == or.name) {
                Some(r) => r.merge(or),
                None => {
                    self.roots.push(or.clone());
                }
            }
        }
        self.roots.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Exclusive cycles aggregated per frame name across every stack
    /// the frame appears in, sorted by cycles descending (name breaks
    /// ties), zero-cycle frames included.
    pub fn self_by_name(&self) -> Vec<(String, Cycles)> {
        fn walk(n: &ProfileNode, acc: &mut BTreeMap<String, Cycles>) {
            *acc.entry(n.name.clone()).or_insert(0) += n.self_cycles();
            for c in &n.children {
                walk(c, acc);
            }
        }
        let mut acc = BTreeMap::new();
        for r in &self.roots {
            walk(r, &mut acc);
        }
        let mut v: Vec<(String, Cycles)> = acc.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The hottest frame by aggregated exclusive cycles.
    pub fn top_self(&self) -> Option<(String, Cycles)> {
        self.self_by_name().into_iter().next()
    }

    /// Top-level phase summary: `(name, calls, total_cycles)` per root,
    /// in name order — the per-exec phase-breakdown table.
    pub fn phases(&self) -> Vec<(String, u64, Cycles)> {
        self.roots
            .iter()
            .map(|r| (r.name.clone(), r.calls, r.total_cycles))
            .collect()
    }

    /// Folded-stack rendering (`inferno` / flamegraph.pl input): one
    /// `frame;frame;frame self_cycles` line per node with non-zero
    /// exclusive cycles, in deterministic depth-first name order.
    pub fn folded(&self) -> String {
        fn walk(n: &ProfileNode, prefix: &str, out: &mut String) {
            let path = if prefix.is_empty() {
                n.name.clone()
            } else {
                format!("{prefix};{}", n.name)
            };
            let own = n.self_cycles();
            if own > 0 {
                let _ = writeln!(out, "{path} {own}");
            }
            for c in &n.children {
                walk(c, &path, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, "", &mut out);
        }
        out
    }

    /// Speedscope-compatible `sampled` profile JSON: one weighted
    /// sample per node with non-zero exclusive cycles, weights in
    /// simulated cycles.
    pub fn speedscope_json(&self, name: &str) -> String {
        // Frame table: first-visit (depth-first) order, deduped by name.
        let mut frames: Vec<&str> = Vec::new();
        let mut index: BTreeMap<&str, u64> = BTreeMap::new();
        let mut samples: Vec<(Vec<u64>, Cycles)> = Vec::new();
        fn walk<'a>(
            n: &'a ProfileNode,
            stack: &mut Vec<u64>,
            frames: &mut Vec<&'a str>,
            index: &mut BTreeMap<&'a str, u64>,
            samples: &mut Vec<(Vec<u64>, Cycles)>,
        ) {
            let fi = *index.entry(&n.name).or_insert_with(|| {
                frames.push(&n.name);
                frames.len() as u64 - 1
            });
            stack.push(fi);
            let own = n.self_cycles();
            if own > 0 {
                samples.push((stack.clone(), own));
            }
            for c in &n.children {
                walk(c, stack, frames, index, samples);
            }
            stack.pop();
        }
        let mut stack = Vec::new();
        for r in &self.roots {
            walk(r, &mut stack, &mut frames, &mut index, &mut samples);
        }
        let end: Cycles = samples.iter().map(|(_, w)| *w).sum();

        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str(
                "$schema",
                "https://www.speedscope.app/file-format-schema.json",
            );
            w.field("shared", |w| {
                w.obj(|w| {
                    w.field("frames", |w| {
                        w.arr(|w| {
                            for f in &frames {
                                w.elem(|w| {
                                    w.obj(|w| w.field_str("name", f));
                                });
                            }
                        });
                    });
                });
            });
            w.field("profiles", |w| {
                w.arr(|w| {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_str("type", "sampled");
                            w.field_str("name", name);
                            w.field_str("unit", "none");
                            w.field_u64("startValue", 0);
                            w.field_u64("endValue", end);
                            w.field("samples", |w| {
                                w.arr(|w| {
                                    for (s, _) in &samples {
                                        w.elem(|w| {
                                            w.arr(|w| {
                                                for fi in s {
                                                    w.elem(|w| w.u64(*fi));
                                                }
                                            });
                                        });
                                    }
                                });
                            });
                            w.field("weights", |w| {
                                w.arr(|w| {
                                    for (_, wt) in &samples {
                                        w.elem(|w| w.u64(*wt));
                                    }
                                });
                            });
                        });
                    });
                });
            });
            w.field_str("name", name);
            w.field_str("exporter", "dma-lab");
        });
        w.finish()
    }

    /// Deterministic JSON rendering — the persistence format used by
    /// checkpoints, `FuzzReport`, and the `serve` `profile` frame.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("schema", "dma-lab.profile.v1");
            w.field_u64("attributed_cycles", self.attributed_cycles());
            w.field("nodes", |w| {
                w.arr(|w| {
                    for r in &self.roots {
                        r.elem_to(w);
                    }
                });
            });
        });
        w.finish()
    }

    /// Rebuilds a profile from its [`Profile::to_json`] rendering;
    /// `None` on structurally invalid input.
    pub fn from_json(doc: &str) -> Option<Profile> {
        Profile::from_jvalue(&crate::jsonr::parse(doc).ok()?)
    }

    /// [`Profile::from_json`] over an already-parsed [`crate::JValue`].
    pub fn from_jvalue(v: &crate::JValue) -> Option<Profile> {
        if v.str_field("schema")? != "dma-lab.profile.v1" {
            return None;
        }
        let mut roots = Vec::new();
        for n in v.get("nodes")?.as_arr()? {
            roots.push(ProfileNode::from_jvalue(n)?);
        }
        Some(Profile { roots })
    }

    /// Human-readable tree table: one indented row per frame with
    /// calls, inclusive and exclusive cycles.
    pub fn render_text(&self) -> String {
        fn walk(n: &ProfileNode, depth: usize, out: &mut String) {
            let _ = writeln!(
                out,
                "  {:indent$}{:<width$} {:>10} {:>14} {:>14}",
                "",
                n.name,
                n.calls,
                n.total_cycles,
                n.self_cycles(),
                indent = depth * 2,
                width = 36usize.saturating_sub(depth * 2),
            );
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<36} {:>10} {:>14} {:>14}",
            "frame", "calls", "cycles", "self"
        );
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }
}

/// The incremental call tree grown inside a [`crate::Metrics`] registry
/// as frames open and close. Nodes live in an arena; a cursor stack of
/// node indices runs in lockstep with the span stack, so unwinding a
/// torn span unwinds the cursor identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct ProfTree {
    nodes: Vec<TreeNode>,
    roots: BTreeMap<&'static str, usize>,
    cursor: Vec<usize>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct TreeNode {
    name: &'static str,
    calls: u64,
    total: Cycles,
    children: BTreeMap<&'static str, usize>,
}

impl ProfTree {
    /// Descends into (creating if needed) the child `name` of the
    /// current cursor frame and counts the call.
    pub(crate) fn enter(&mut self, name: &'static str) {
        let parent = self.cursor.last().copied();
        let existing = match parent {
            Some(p) => self.nodes[p].children.get(name).copied(),
            None => self.roots.get(name).copied(),
        };
        let idx = match existing {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(TreeNode {
                    name,
                    calls: 0,
                    total: 0,
                    children: BTreeMap::new(),
                });
                match parent {
                    Some(p) => {
                        self.nodes[p].children.insert(name, i);
                    }
                    None => {
                        self.roots.insert(name, i);
                    }
                }
                i
            }
        };
        self.nodes[idx].calls += 1;
        self.cursor.push(idx);
    }

    /// Pops the cursor, attributing `elapsed` inclusive cycles to the
    /// frame being left. A no-op on an empty cursor (torn unwind).
    pub(crate) fn leave(&mut self, elapsed: Cycles) {
        if let Some(idx) = self.cursor.pop() {
            self.nodes[idx].total += elapsed;
        }
    }

    /// Drops all recorded frames, then re-enters the still-open stack
    /// `open` (outermost first) so in-flight spans keep attributing to
    /// a fresh tree. The per-exec reset point.
    pub(crate) fn reset(&mut self, open: &[&'static str]) {
        self.nodes.clear();
        self.roots.clear();
        self.cursor.clear();
        for name in open {
            self.enter(name);
        }
    }

    /// Freezes the tree into an export-ready [`Profile`].
    pub(crate) fn export(&self) -> Profile {
        fn build(t: &ProfTree, idx: usize) -> ProfileNode {
            let n = &t.nodes[idx];
            ProfileNode {
                name: n.name.to_string(),
                calls: n.calls,
                total_cycles: n.total,
                children: n.children.values().map(|&c| build(t, c)).collect(),
            }
        }
        Profile {
            roots: self.roots.values().map(|&i| build(self, i)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str, calls: u64, total: Cycles) -> ProfileNode {
        ProfileNode {
            name: name.to_string(),
            calls,
            total_cycles: total,
            children: Vec::new(),
        }
    }

    fn sample() -> Profile {
        let mut map = leaf("iommu.map", 4, 1600);
        map.children.push(leaf("iommu.iotlb.inv", 4, 1000));
        Profile {
            roots: vec![
                ProfileNode {
                    name: "exec.deliver".into(),
                    calls: 2,
                    total_cycles: 2000,
                    children: vec![map],
                },
                leaf("mem.kmalloc", 3, 300),
            ],
        }
    }

    #[test]
    fn self_cycles_subtract_children_saturating() {
        let p = sample();
        assert_eq!(p.roots[0].self_cycles(), 400);
        assert_eq!(p.roots[0].children[0].self_cycles(), 600);
        let torn = ProfileNode {
            name: "torn".into(),
            calls: 1,
            total_cycles: 5,
            children: vec![leaf("big", 1, 50)],
        };
        assert_eq!(torn.self_cycles(), 0, "never underflows");
    }

    #[test]
    fn merge_is_commutative_with_identity() {
        let mut a = sample();
        a.merge(&Profile::new());
        assert_eq!(a, sample(), "empty profile is the merge identity");

        let mut other = Profile {
            roots: vec![leaf("mem.kmalloc", 1, 100), leaf("zz.new", 1, 9)],
        };
        let mut ab = sample();
        ab.merge(&other);
        other.merge(&sample());
        assert_eq!(ab, other, "merge is commutative");
        assert_eq!(ab.attributed_cycles(), 2000 + 400 + 9);
        let km = ab.roots.iter().find(|r| r.name == "mem.kmalloc").unwrap();
        assert_eq!((km.calls, km.total_cycles), (4, 400));
    }

    #[test]
    fn folded_lists_nonzero_self_frames_depth_first() {
        let folded = sample().folded();
        assert_eq!(
            folded,
            "exec.deliver 400\n\
             exec.deliver;iommu.map 600\n\
             exec.deliver;iommu.map;iommu.iotlb.inv 1000\n\
             mem.kmalloc 300\n"
        );
    }

    #[test]
    fn top_self_aggregates_across_stacks() {
        let mut p = sample();
        // A second iommu.iotlb.inv stack elsewhere; aggregated self
        // (1000 + 200) beats every other frame.
        p.merge(&Profile {
            roots: vec![leaf("iommu.iotlb.inv", 1, 200)],
        });
        assert_eq!(p.top_self().unwrap(), ("iommu.iotlb.inv".into(), 1200));
    }

    #[test]
    fn json_round_trips_exactly() {
        let p = sample();
        let doc = p.to_json();
        let back = Profile::from_json(&doc).expect("parse own rendering");
        assert_eq!(back, p);
        assert_eq!(back.to_json(), doc);
        assert!(Profile::from_json("{}").is_none());
        assert!(Profile::from_json("{\"schema\":\"nope\",\"nodes\":[]}").is_none());
    }

    #[test]
    fn speedscope_export_is_well_formed() {
        let doc = sample().speedscope_json("test");
        let v = crate::jsonr::parse(&doc).expect("speedscope json parses");
        assert!(doc.contains("speedscope.app/file-format-schema.json"));
        let profiles = v.get("profiles").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(profiles[0].str_field("type"), Some("sampled"));
        assert_eq!(profiles[0].u64_field("endValue"), Some(2300));
        let samples = profiles[0].get("samples").and_then(|s| s.as_arr()).unwrap();
        let weights = profiles[0].get("weights").and_then(|s| s.as_arr()).unwrap();
        assert_eq!(samples.len(), weights.len());
        assert_eq!(samples.len(), 4);
    }

    #[test]
    fn tree_builds_nested_frames_and_resets() {
        let mut t = ProfTree::default();
        t.enter("outer");
        t.enter("inner");
        t.leave(30);
        t.leave(100);
        t.enter("outer");
        t.leave(50);
        let p = t.export();
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].calls, 2);
        assert_eq!(p.roots[0].total_cycles, 150);
        assert_eq!(p.roots[0].children[0].total_cycles, 30);
        t.reset(&[]);
        assert!(t.export().is_empty());
        // Reset under an open stack re-roots the in-flight frames.
        t.enter("open");
        t.reset(&["open"]);
        t.leave(7);
        assert_eq!(t.export().roots[0].total_cycles, 7);
    }

    #[test]
    fn phases_summarize_roots() {
        let p = sample();
        assert_eq!(
            p.phases(),
            vec![
                ("exec.deliver".to_string(), 2, 2000),
                ("mem.kmalloc".to_string(), 3, 300),
            ]
        );
        assert_eq!(p.total_calls(), 2 + 4 + 4 + 3);
    }
}
