//! Error types shared across the workspace.

use core::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = core::result::Result<T, DmaError>;

/// Errors raised by the simulated memory system, IOMMU, and attack code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmaError {
    /// A KVA was not inside the populated direct map.
    NotDirectMap(u64),
    /// A physical address was outside simulated memory.
    BadPhysAddr(u64),
    /// A PFN was outside simulated memory.
    BadPfn(u64),
    /// A value was not a valid `struct page` address.
    BadStructPage(u64),
    /// Out of simulated physical memory.
    OutOfMemory,
    /// Out of IOVA space for a domain.
    OutOfIova,
    /// An allocation request was invalid (zero size, too large, ...).
    InvalidAlloc(usize),
    /// Freeing an address that is not an allocated object.
    BadFree(u64),
    /// The IOMMU rejected a device access (no translation for the IOVA).
    IommuFault {
        /// The offending device.
        device: u32,
        /// The IOVA the device tried to access.
        iova: u64,
        /// `true` for a write access, `false` for a read.
        write: bool,
    },
    /// The IOMMU rejected an access due to insufficient permissions.
    IommuPermission {
        /// The offending device.
        device: u32,
        /// The IOVA the device tried to access.
        iova: u64,
        /// `true` for a write access, `false` for a read.
        write: bool,
    },
    /// An IOVA was already mapped in the domain.
    AlreadyMapped(u64),
    /// Unmapping an IOVA that has no mapping.
    NotMapped(u64),
    /// A driver ring was full.
    RingFull,
    /// A driver ring was empty.
    RingEmpty,
    /// The attack could not obtain a required vulnerability attribute.
    MissingAttribute(&'static str),
    /// An attack step failed for the given reason.
    AttackFailed(&'static str),
    /// The CPU model hit an invalid instruction / state.
    CpuFault(&'static str),
    /// A generic invariant violation in the simulator.
    Invariant(&'static str),
}

impl DmaError {
    /// `true` for resource-pressure errors a driver may retry or absorb
    /// (drop the packet, refill later) rather than treat as fatal —
    /// the distinction real NIC drivers make between `-ENOMEM`/`-EBUSY`
    /// and programming errors.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DmaError::OutOfMemory | DmaError::OutOfIova | DmaError::RingFull | DmaError::RingEmpty
        )
    }
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::NotDirectMap(v) => write!(f, "KVA {v:#x} is not in the direct map"),
            DmaError::BadPhysAddr(v) => write!(f, "physical address {v:#x} out of range"),
            DmaError::BadPfn(v) => write!(f, "PFN {v:#x} out of range"),
            DmaError::BadStructPage(v) => write!(f, "{v:#x} is not a struct page address"),
            DmaError::OutOfMemory => write!(f, "out of simulated physical memory"),
            DmaError::OutOfIova => write!(f, "IOVA space exhausted"),
            DmaError::InvalidAlloc(s) => write!(f, "invalid allocation size {s}"),
            DmaError::BadFree(v) => write!(f, "free of non-allocated address {v:#x}"),
            DmaError::IommuFault {
                device,
                iova,
                write,
            } => write!(
                f,
                "IOMMU fault: device {device} {} unmapped IOVA {iova:#x}",
                if *write { "wrote" } else { "read" }
            ),
            DmaError::IommuPermission {
                device,
                iova,
                write,
            } => write!(
                f,
                "IOMMU permission fault: device {device} {} IOVA {iova:#x}",
                if *write { "wrote" } else { "read" }
            ),
            DmaError::AlreadyMapped(v) => write!(f, "IOVA {v:#x} already mapped"),
            DmaError::NotMapped(v) => write!(f, "IOVA {v:#x} not mapped"),
            DmaError::RingFull => write!(f, "descriptor ring full"),
            DmaError::RingEmpty => write!(f, "descriptor ring empty"),
            DmaError::MissingAttribute(a) => {
                write!(f, "attack is missing vulnerability attribute: {a}")
            }
            DmaError::AttackFailed(why) => write!(f, "attack failed: {why}"),
            DmaError::CpuFault(why) => write!(f, "CPU fault: {why}"),
            DmaError::Invariant(why) => write!(f, "simulator invariant violated: {why}"),
        }
    }
}

impl std::error::Error for DmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = DmaError::IommuFault {
            device: 3,
            iova: 0x1000,
            write: true,
        };
        assert!(e.to_string().contains("device 3"));
        assert!(e.to_string().contains("0x1000"));
        let e = DmaError::MissingAttribute("KVA of malicious buffer");
        assert!(e.to_string().contains("KVA"));
    }
}
