//! Versioned, checksummed, crash-safe campaign snapshots.
//!
//! A long fuzz or chaos campaign must survive a process kill without
//! losing (or worse, silently changing) its state. This module provides
//! the storage layer: a deterministic snapshot document written through
//! [`crate::jsonw`], wrapped in a versioned + checksummed envelope, and
//! persisted with a **two-generation A/B scheme** — writes alternate
//! between two slot files so a torn write corrupts at most the newest
//! generation and load falls back to the previous one (surfaced via the
//! `checkpoint.recovered` metric).
//!
//! # Envelope format
//!
//! ```json
//! {"magic":"dma-lab-checkpoint","version":1,"sequence":7,
//!  "checksum":"0123456789abcdef","payload":{...}}
//! ```
//!
//! The checksum is FNV-1a-64 over the exact payload byte range, so any
//! flipped or truncated byte in the payload (or a truncated envelope)
//! invalidates the generation. The payload itself is opaque to this
//! layer — the `fuzz` crate's campaign engine defines its schema.
//!
//! # Fault injection
//!
//! Checkpoint I/O participates in the seeded fault-injection machinery
//! under two new site tags, `checkpoint.write` and `checkpoint.load`
//! (matched by the usual `checkpoint.*` glob). Injected failures are
//! retried up to [`MAX_IO_RETRIES`] times with a deterministic, seeded
//! simulated backoff, accounted under `checkpoint.io.retries` and the
//! `checkpoint.io.backoff_cycles` histogram in the store's private
//! I/O-metric registry. That registry is deliberately **not** part of
//! the snapshot payload: resumed and uninterrupted campaigns must stay
//! byte-identical even when their checkpoint I/O histories differ.
//!
//! This module also hosts the codecs that turn core state into snapshot
//! JSON and back: [`Event`] streams, [`FlightRecorder`] windows,
//! [`CoverageMap`] bitmaps, and whole [`Metrics`] registries (via
//! [`intern`], since metric names are `&'static str`).

use crate::addr::{Iova, Kva, Pfn};
use crate::coverage::CoverageMap;
use crate::error::{DmaError, Result};
use crate::fault::FaultPlan;
use crate::jsonr::{parse, JValue};
use crate::jsonw::JsonWriter;
use crate::metrics::{Gauge, Histogram, Metrics, SpanAgg, HIST_BUCKETS};
use crate::recorder::FlightRecorder;
use crate::rng::DetRng;
use crate::trace::Event;
use crate::vuln::DmaDirection;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic string every checkpoint envelope starts with.
pub const CHECKPOINT_MAGIC: &str = "dma-lab-checkpoint";

/// Current snapshot format version. Loaders reject other versions (a
/// mixed-version slot counts as corrupt and falls back).
pub const CHECKPOINT_VERSION: u64 = 1;

/// Attempts per checkpoint I/O operation before giving up.
pub const MAX_IO_RETRIES: u32 = 4;

/// The two generation slot files inside a checkpoint directory.
pub const SLOT_FILES: [&str; 2] = ["gen-a.ckpt", "gen-b.ckpt"];

const PAYLOAD_MARKER: &str = ",\"payload\":";

/// FNV-1a-64 over a byte string — the snapshot checksum primitive.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Interns a string, returning a `&'static str` with the same content.
///
/// Metric names and trace site tags are `&'static str` throughout the
/// workspace (recording is allocation-free); restoring them from a
/// snapshot needs a way back from owned strings. Interned strings are
/// deduplicated and live for the rest of the process — the set of
/// distinct names in a campaign is small and fixed, so this does not
/// grow unboundedly.
pub fn intern(s: &str) -> &'static str {
    let mut set = INTERNED.lock().unwrap();
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// One validated generation loaded from disk.
#[derive(Clone, Debug)]
pub struct LoadedCheckpoint {
    /// Monotonic write sequence of this generation.
    pub sequence: u64,
    /// The parsed snapshot payload.
    pub payload: JValue,
}

#[derive(Debug)]
enum SlotState {
    Missing,
    Corrupt,
    Valid(LoadedCheckpoint),
}

/// A two-generation A/B checkpoint store rooted at a directory.
///
/// Saves alternate between [`SLOT_FILES`]; loads validate both slots
/// and return the highest-sequence valid generation. All I/O faults are
/// injectable (sites `checkpoint.write` / `checkpoint.load`) and
/// retried with seeded backoff.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    faults: FaultPlan,
    backoff: DetRng,
    metrics: Metrics,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store at `dir` with no fault plan.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with_faults(dir, FaultPlan::seeded(0), 0)
    }

    /// Opens a store whose I/O goes through the given fault plan, with
    /// `backoff_seed` driving the simulated retry backoff.
    pub fn open_with_faults(
        dir: impl Into<PathBuf>,
        faults: FaultPlan,
        backoff_seed: u64,
    ) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|_| DmaError::Invariant("checkpoint dir not creatable"))?;
        Ok(CheckpointStore {
            dir,
            faults,
            backoff: DetRng::new(backoff_seed ^ 0x5afe_c0de),
            metrics: Metrics::new(),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's private I/O-metric registry (`checkpoint.writes`,
    /// `checkpoint.loads`, `checkpoint.recovered`, `checkpoint.io.*`).
    /// Never serialized into a snapshot — see the module docs.
    pub fn io_metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Count of loads that had to fall back past a corrupt generation.
    pub fn recovered(&self) -> u64 {
        self.metrics.counter("checkpoint.recovered")
    }

    fn slot_path(&self, slot: usize) -> PathBuf {
        self.dir.join(SLOT_FILES[slot])
    }

    /// Deterministic simulated backoff for retry `attempt` (no real
    /// sleeping — the cost is only recorded, in simulated cycles).
    fn backoff_cycles(&mut self, attempt: u32) -> u64 {
        (1u64 << attempt.min(16)) * 1_000 + self.backoff.below(1_000)
    }

    fn retry_io<T>(
        &mut self,
        site: &'static str,
        err: &'static str,
        mut op: impl FnMut(&Path) -> std::io::Result<T>,
        path: &Path,
    ) -> Result<T> {
        for attempt in 0..=MAX_IO_RETRIES {
            let injected = self.faults.should_fail(site);
            let outcome = if injected { None } else { op(path).ok() };
            match outcome {
                Some(v) => return Ok(v),
                None => {
                    if attempt == MAX_IO_RETRIES {
                        break;
                    }
                    self.metrics.incr("checkpoint.io.retries");
                    let cycles = self.backoff_cycles(attempt);
                    self.metrics.observe("checkpoint.io.backoff_cycles", cycles);
                }
            }
        }
        Err(DmaError::Invariant(err))
    }

    /// Quietly (no fault injection) classifies both slots.
    fn scan_slots(&self) -> [SlotState; 2] {
        [0, 1].map(|slot| match fs::read_to_string(self.slot_path(slot)) {
            Err(_) => SlotState::Missing,
            Ok(body) => match validate_envelope(&body) {
                Some(loaded) => SlotState::Valid(loaded),
                None => SlotState::Corrupt,
            },
        })
    }

    /// Writes `payload` (a complete JSON document) as the next
    /// generation, returning the sequence number it was stamped with.
    ///
    /// The write goes to the slot **not** holding the newest valid
    /// generation, so the previous generation survives a torn write.
    pub fn save(&mut self, payload: &str) -> Result<u64> {
        let slots = self.scan_slots();
        let newest = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                SlotState::Valid(l) => Some((i, l.sequence)),
                _ => None,
            })
            .max_by_key(|&(_, seq)| seq);
        let (slot, sequence) = match newest {
            Some((i, seq)) => (1 - i, seq + 1),
            None => (0, 1),
        };
        let checksum = fnv64(payload.as_bytes());
        let doc = format!(
            "{{\"magic\":\"{CHECKPOINT_MAGIC}\",\"version\":{CHECKPOINT_VERSION},\
             \"sequence\":{sequence},\"checksum\":\"{checksum:016x}\"\
             ,\"payload\":{payload}}}"
        );
        let path = self.slot_path(slot);
        self.retry_io(
            "checkpoint.write",
            "checkpoint write failed after retries",
            |p| fs::write(p, doc.as_bytes()),
            &path,
        )?;
        self.metrics.incr("checkpoint.writes");
        Ok(sequence)
    }

    /// Loads the newest valid generation, or `None` when no slot holds
    /// one. A present-but-corrupt slot alongside a valid one bumps
    /// `checkpoint.recovered` — the A/B fallback did its job.
    pub fn load(&mut self) -> Result<Option<LoadedCheckpoint>> {
        let mut best: Option<LoadedCheckpoint> = None;
        let mut corrupt = 0u64;
        for slot in 0..2 {
            let path = self.slot_path(slot);
            if !path.exists() {
                continue;
            }
            let body = self.retry_io(
                "checkpoint.load",
                "checkpoint read failed after retries",
                |p| fs::read_to_string(p),
                &path,
            )?;
            match validate_envelope(&body) {
                Some(loaded) => {
                    if best.as_ref().is_none_or(|b| loaded.sequence > b.sequence) {
                        best = Some(loaded);
                    }
                }
                None => corrupt += 1,
            }
        }
        self.metrics.incr("checkpoint.loads");
        if best.is_some() && corrupt > 0 {
            self.metrics.add("checkpoint.recovered", corrupt);
        }
        Ok(best)
    }
}

// ----------------------------------------------------------------------
// Sharded campaigns: one A/B store per shard under a common root.
// ----------------------------------------------------------------------

/// Name of the checkpoint subdirectory owned by shard `shard_id`.
pub fn shard_dir_name(shard_id: u32) -> String {
    format!("shard-{shard_id:04}")
}

/// Root of shard `shard_id`'s own A/B store under campaign root `base`.
/// Each shard checkpoints independently (its own generation pair, its
/// own sequence numbers); the campaign-level view is the generation
/// vector returned by [`shard_generations`].
pub fn shard_dir(base: &Path, shard_id: u32) -> PathBuf {
    base.join(shard_dir_name(shard_id))
}

/// Scans `base` for per-shard stores and returns the generation vector:
/// `(shard_id, newest_valid_sequence)` for every `shard-NNNN/`
/// subdirectory, sorted by shard id. A shard directory with no valid
/// generation reports sequence 0 — visible in `serve`'s health frame as
/// a shard that has not reached its first checkpoint yet.
pub fn shard_generations(base: &Path) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(base) else {
        return out;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("shard-"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        let newest = SLOT_FILES
            .iter()
            .filter_map(|f| fs::read_to_string(e.path().join(f)).ok())
            .filter_map(|body| validate_envelope(&body))
            .map(|l| l.sequence)
            .max()
            .unwrap_or(0);
        out.push((id, newest));
    }
    out.sort_unstable();
    out
}

/// Validates a checkpoint envelope: magic, version, checksum over the
/// exact payload byte range, and well-formed JSON. Returns `None` on
/// any mismatch (the caller treats the generation as corrupt).
pub fn validate_envelope(body: &str) -> Option<LoadedCheckpoint> {
    let marker = body.find(PAYLOAD_MARKER)?;
    let payload_start = marker + PAYLOAD_MARKER.len();
    if !body.ends_with('}') || payload_start >= body.len() {
        return None;
    }
    let payload_src = &body[payload_start..body.len() - 1];
    let header_src = format!("{}{}", &body[..marker], "}");
    let header = parse(&header_src).ok()?;
    if header.str_field("magic") != Some(CHECKPOINT_MAGIC) {
        return None;
    }
    if header.u64_field("version") != Some(CHECKPOINT_VERSION) {
        return None;
    }
    let sequence = header.u64_field("sequence")?;
    let want = u64::from_str_radix(header.str_field("checksum")?, 16).ok()?;
    if fnv64(payload_src.as_bytes()) != want {
        return None;
    }
    let payload = parse(payload_src).ok()?;
    Some(LoadedCheckpoint { sequence, payload })
}

// ----------------------------------------------------------------------
// Codecs: core state <-> snapshot JSON.
// ----------------------------------------------------------------------

/// Snapshot name of a DMA direction.
pub fn dir_name(d: DmaDirection) -> &'static str {
    match d {
        DmaDirection::ToDevice => "to_device",
        DmaDirection::FromDevice => "from_device",
        DmaDirection::Bidirectional => "bidirectional",
    }
}

/// Inverse of [`dir_name`].
pub fn dir_from_name(s: &str) -> Option<DmaDirection> {
    Some(match s {
        "to_device" => DmaDirection::ToDevice,
        "from_device" => DmaDirection::FromDevice,
        "bidirectional" => DmaDirection::Bidirectional,
        _ => return None,
    })
}

/// Serializes one trace event as a tagged JSON object.
pub fn event_to_json(w: &mut JsonWriter, ev: &Event) {
    w.obj(|w| match *ev {
        Event::Alloc {
            at,
            kva,
            size,
            site,
            cache,
        } => {
            w.field_str("t", "alloc");
            w.field_u64("at", at);
            w.field_u64("kva", kva.0);
            w.field_u64("size", size as u64);
            w.field_str("site", site);
            w.field_str("cache", cache);
        }
        Event::Free { at, kva } => {
            w.field_str("t", "free");
            w.field_u64("at", at);
            w.field_u64("kva", kva.0);
        }
        Event::PageAlloc {
            at,
            pfn,
            order,
            site,
        } => {
            w.field_str("t", "page_alloc");
            w.field_u64("at", at);
            w.field_u64("pfn", pfn.0);
            w.field_u64("order", order as u64);
            w.field_str("site", site);
        }
        Event::PageFree { at, pfn, order } => {
            w.field_str("t", "page_free");
            w.field_u64("at", at);
            w.field_u64("pfn", pfn.0);
            w.field_u64("order", order as u64);
        }
        Event::DmaMap {
            at,
            device,
            iova,
            kva,
            len,
            dir,
            site,
        } => {
            w.field_str("t", "dma_map");
            w.field_u64("at", at);
            w.field_u64("device", device as u64);
            w.field_u64("iova", iova.0);
            w.field_u64("kva", kva.0);
            w.field_u64("len", len as u64);
            w.field_str("dir", dir_name(dir));
            w.field_str("site", site);
        }
        Event::DmaUnmap {
            at,
            device,
            iova,
            len,
        } => {
            w.field_str("t", "dma_unmap");
            w.field_u64("at", at);
            w.field_u64("device", device as u64);
            w.field_u64("iova", iova.0);
            w.field_u64("len", len as u64);
        }
        Event::CpuAccess {
            at,
            kva,
            len,
            write,
            site,
        } => {
            w.field_str("t", "cpu_access");
            w.field_u64("at", at);
            w.field_u64("kva", kva.0);
            w.field_u64("len", len as u64);
            w.field_bool("write", write);
            w.field_str("site", site);
        }
        Event::DevAccess {
            at,
            device,
            iova,
            len,
            write,
            allowed,
            stale,
        } => {
            w.field_str("t", "dev_access");
            w.field_u64("at", at);
            w.field_u64("device", device as u64);
            w.field_u64("iova", iova.0);
            w.field_u64("len", len as u64);
            w.field_bool("write", write);
            w.field_bool("allowed", allowed);
            w.field_bool("stale", stale);
        }
        Event::IotlbInvalidate {
            at,
            device,
            iova_page,
        } => {
            w.field_str("t", "iotlb_invalidate");
            w.field_u64("at", at);
            w.field_u64("device", device as u64);
            w.field_u64("iova_page", iova_page.0);
        }
        Event::IotlbGlobalFlush { at, dropped } => {
            w.field_str("t", "iotlb_global_flush");
            w.field_u64("at", at);
            w.field_u64("dropped", dropped as u64);
        }
        Event::FaultInjected { at, site } => {
            w.field_str("t", "fault_injected");
            w.field_u64("at", at);
            w.field_str("site", site);
        }
    });
}

/// Inverse of [`event_to_json`]. Site and cache tags come back via
/// [`intern`].
pub fn event_from_json(v: &JValue) -> Option<Event> {
    let at = v.u64_field("at")?;
    Some(match v.str_field("t")? {
        "alloc" => Event::Alloc {
            at,
            kva: Kva(v.u64_field("kva")?),
            size: v.u64_field("size")? as usize,
            site: intern(v.str_field("site")?),
            cache: intern(v.str_field("cache")?),
        },
        "free" => Event::Free {
            at,
            kva: Kva(v.u64_field("kva")?),
        },
        "page_alloc" => Event::PageAlloc {
            at,
            pfn: Pfn(v.u64_field("pfn")?),
            order: v.u64_field("order")? as u32,
            site: intern(v.str_field("site")?),
        },
        "page_free" => Event::PageFree {
            at,
            pfn: Pfn(v.u64_field("pfn")?),
            order: v.u64_field("order")? as u32,
        },
        "dma_map" => Event::DmaMap {
            at,
            device: v.u64_field("device")? as u32,
            iova: Iova(v.u64_field("iova")?),
            kva: Kva(v.u64_field("kva")?),
            len: v.u64_field("len")? as usize,
            dir: dir_from_name(v.str_field("dir")?)?,
            site: intern(v.str_field("site")?),
        },
        "dma_unmap" => Event::DmaUnmap {
            at,
            device: v.u64_field("device")? as u32,
            iova: Iova(v.u64_field("iova")?),
            len: v.u64_field("len")? as usize,
        },
        "cpu_access" => Event::CpuAccess {
            at,
            kva: Kva(v.u64_field("kva")?),
            len: v.u64_field("len")? as usize,
            write: v.get("write")?.as_bool()?,
            site: intern(v.str_field("site")?),
        },
        "dev_access" => Event::DevAccess {
            at,
            device: v.u64_field("device")? as u32,
            iova: Iova(v.u64_field("iova")?),
            len: v.u64_field("len")? as usize,
            write: v.get("write")?.as_bool()?,
            allowed: v.get("allowed")?.as_bool()?,
            stale: v.get("stale")?.as_bool()?,
        },
        "iotlb_invalidate" => Event::IotlbInvalidate {
            at,
            device: v.u64_field("device")? as u32,
            iova_page: Iova(v.u64_field("iova_page")?),
        },
        "iotlb_global_flush" => Event::IotlbGlobalFlush {
            at,
            dropped: v.u64_field("dropped")? as usize,
        },
        "fault_injected" => Event::FaultInjected {
            at,
            site: intern(v.str_field("site")?),
        },
        _ => return None,
    })
}

/// Serializes a flight recorder: capacity, drop count, and the retained
/// window in chronological order.
pub fn recorder_to_json(w: &mut JsonWriter, r: &FlightRecorder) {
    w.obj(|w| {
        w.field_u64("capacity", r.capacity() as u64);
        w.field_u64("dropped", r.dropped());
        w.field("events", |w| {
            w.arr(|w| {
                for ev in r.snapshot() {
                    w.elem(|w| event_to_json(w, &ev));
                }
            });
        });
    });
}

/// Inverse of [`recorder_to_json`], via [`FlightRecorder::restore`].
pub fn recorder_from_json(v: &JValue) -> Option<FlightRecorder> {
    let capacity = v.u64_field("capacity")? as usize;
    let dropped = v.u64_field("dropped")?;
    let events = v
        .get("events")?
        .as_arr()?
        .iter()
        .map(event_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some(FlightRecorder::restore(capacity, events, dropped))
}

/// Serializes a coverage map as its sorted set-bit index list.
pub fn coverage_to_json(w: &mut JsonWriter, m: &CoverageMap) {
    w.arr(|w| {
        for bit in m.bits() {
            w.elem(|wr| wr.u64(bit as u64));
        }
    });
}

/// Inverse of [`coverage_to_json`].
pub fn coverage_from_json(v: &JValue) -> Option<CoverageMap> {
    let mut m = CoverageMap::new();
    for bit in v.as_arr()? {
        m.set(bit.as_u64()? as usize);
    }
    Some(m)
}

/// Serializes a metric registry (reuses the snapshot JSON shape, cycle
/// stamp pinned to 0 — the campaign's own cycle total is tracked
/// separately).
pub fn metrics_to_json(m: &Metrics) -> String {
    m.snapshot(0).to_json()
}

/// Inverse of [`metrics_to_json`]: rebuilds a registry whose own
/// snapshot renders byte-identically to the serialized one. The span
/// timeline is not part of the snapshot shape, so only aggregates and
/// the `timeline_dropped` count survive (documented resume semantics).
pub fn metrics_from_json(v: &JValue) -> Option<Metrics> {
    let mut m = Metrics::new();
    for (k, c) in v.get("counters")?.as_obj()? {
        m.restore_counter(intern(k), c.as_u64()?);
    }
    for (k, g) in v.get("gauges")?.as_obj()? {
        m.restore_gauge(
            intern(k),
            Gauge {
                value: g.u64_field("value")?,
                min: g.u64_field("min")?,
                max: g.u64_field("max")?,
                sets: g.u64_field("sets")?,
            },
        );
    }
    for (k, h) in v.get("histograms")?.as_obj()? {
        let mut hist = Histogram {
            buckets: [0; HIST_BUCKETS + 1],
            count: h.u64_field("count")?,
            sum: h.u64_field("sum")?,
            max: h.u64_field("max")?,
        };
        for pair in h.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            let bound = pair.first()?.as_u64()?;
            let count = pair.get(1)?.as_u64()?;
            // Bounds are powers of two (2^i -> bucket i); the overflow
            // bucket is rendered with bound 0.
            let idx = if bound == 0 {
                HIST_BUCKETS
            } else {
                bound.trailing_zeros() as usize
            };
            hist.buckets[idx] = count;
        }
        m.restore_histogram(intern(k), hist);
    }
    for (k, s) in v.get("spans")?.as_obj()? {
        m.restore_span_agg(
            intern(k),
            SpanAgg {
                count: s.u64_field("count")?,
                total_cycles: s.u64_field("total_cycles")?,
                max_cycles: s.u64_field("max_cycles")?,
            },
        );
    }
    m.restore_timeline_dropped(v.u64_field("timeline_dropped")?);
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dma-lab-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fnv64_matches_the_workspace_offset_basis() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }

    #[test]
    fn intern_deduplicates() {
        let a = intern("checkpoint.test.site");
        // A heap copy of the same text must intern to the same pointer.
        let heap = String::from("checkpoint.test.site");
        let b = intern(&heap);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn save_load_roundtrip_alternates_generations() {
        let dir = tmp_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load().unwrap().is_none(), "fresh dir has no state");
        assert_eq!(store.save("{\"n\":1}").unwrap(), 1);
        assert_eq!(store.save("{\"n\":2}").unwrap(), 2);
        assert_eq!(store.save("{\"n\":3}").unwrap(), 3);
        assert!(dir.join(SLOT_FILES[0]).exists());
        assert!(dir.join(SLOT_FILES[1]).exists());
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.sequence, 3);
        assert_eq!(loaded.payload.u64_field("n"), Some(3));
        assert_eq!(store.recovered(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_generation_vector_scans_per_shard_stores() {
        let dir = tmp_dir("shards");
        // Shards 0 and 2 have checkpoints (different depths), shard 1
        // has a directory but no valid generation yet.
        let mut s0 = CheckpointStore::open(shard_dir(&dir, 0)).unwrap();
        s0.save("{\"n\":1}").unwrap();
        fs::create_dir_all(shard_dir(&dir, 1)).unwrap();
        let mut s2 = CheckpointStore::open(shard_dir(&dir, 2)).unwrap();
        s2.save("{\"n\":1}").unwrap();
        s2.save("{\"n\":2}").unwrap();
        // Unrelated files are ignored.
        fs::write(dir.join("notes.txt"), "x").unwrap();
        assert_eq!(shard_generations(&dir), [(0, 1), (1, 0), (2, 2)]);
        // Corrupting shard 2's newest generation drops it to the
        // surviving one — the vector reads through the A/B fallback.
        let newest = shard_dir(&dir, 2).join(SLOT_FILES[1]);
        let body = fs::read_to_string(&newest).unwrap();
        fs::write(&newest, &body[..body.len() / 2]).unwrap();
        assert_eq!(shard_generations(&dir), [(0, 1), (1, 0), (2, 1)]);
        assert!(shard_generations(&dir.join("missing")).is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    fn newest_slot(dir: &Path) -> PathBuf {
        // Sequence 2 always lives in slot B after two saves.
        dir.join(SLOT_FILES[1])
    }

    fn store_with_two_generations(tag: &str) -> (PathBuf, CheckpointStore) {
        let dir = tmp_dir(tag);
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.save("{\"n\":1}").unwrap();
        store.save("{\"n\":2}").unwrap();
        (dir, store)
    }

    #[test]
    fn truncated_newest_falls_back_to_previous_generation() {
        let (dir, mut store) = store_with_two_generations("trunc");
        let path = newest_slot(&dir);
        let body = fs::read_to_string(&path).unwrap();
        fs::write(&path, &body[..body.len() / 2]).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.sequence, 1, "fell back to the A generation");
        assert_eq!(loaded.payload.u64_field("n"), Some(1));
        assert_eq!(store.recovered(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_checksum_byte_falls_back() {
        let (dir, mut store) = store_with_two_generations("flip");
        let path = newest_slot(&dir);
        let mut body = fs::read_to_string(&path).unwrap().into_bytes();
        let at = body
            .windows(11)
            .position(|w| w == b"\"checksum\":")
            .unwrap()
            + 12;
        body[at] = if body[at] == b'0' { b'1' } else { b'0' };
        fs::write(&path, &body).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.sequence, 1);
        assert_eq!(store.recovered(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_falls_back() {
        let (dir, mut store) = store_with_two_generations("payload");
        let path = newest_slot(&dir);
        let body = fs::read_to_string(&path).unwrap();
        fs::write(&path, body.replace("\"n\":2", "\"n\":9")).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.sequence, 1, "checksum catches the tampered payload");
        assert_eq!(store.recovered(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_version_slot_falls_back() {
        let (dir, mut store) = store_with_two_generations("version");
        let path = newest_slot(&dir);
        // A future-version envelope with an internally consistent
        // checksum must still be rejected by this loader.
        let payload = "{\"n\":99}";
        let checksum = fnv64(payload.as_bytes());
        fs::write(
            &path,
            format!(
                "{{\"magic\":\"{CHECKPOINT_MAGIC}\",\"version\":99,\
                 \"sequence\":9,\"checksum\":\"{checksum:016x}\"\
                 ,\"payload\":{payload}}}"
            ),
        )
        .unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.sequence, 1);
        assert_eq!(store.recovered(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn both_slots_corrupt_loads_nothing() {
        let (dir, mut store) = store_with_two_generations("allbad");
        for slot in SLOT_FILES {
            fs::write(dir.join(slot), "garbage").unwrap();
        }
        assert!(store.load().unwrap().is_none());
        assert_eq!(store.recovered(), 0, "nothing to recover to");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_preserves_the_previous_generation() {
        // Simulates a kill mid-write: the new generation is half a
        // file, the old one untouched. Save after recovery reuses the
        // torn slot.
        let (dir, mut store) = store_with_two_generations("torn");
        let path = newest_slot(&dir);
        let body = fs::read_to_string(&path).unwrap();
        fs::write(&path, &body[..10]).unwrap();
        assert_eq!(store.load().unwrap().unwrap().sequence, 1);
        assert_eq!(store.save("{\"n\":3}").unwrap(), 2, "sequence continues");
        assert_eq!(
            store.load().unwrap().unwrap().payload.u64_field("n"),
            Some(3)
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_faults_retry_with_seeded_backoff() {
        let dir = tmp_dir("faults");
        let plan = FaultPlan::seeded(3).fail_nth("checkpoint.write", 1);
        let mut store = CheckpointStore::open_with_faults(&dir, plan, 11).unwrap();
        assert_eq!(store.save("{\"n\":1}").unwrap(), 1, "retry succeeds");
        assert_eq!(store.io_metrics().counter("checkpoint.io.retries"), 1);
        let h = store
            .io_metrics()
            .histogram("checkpoint.io.backoff_cycles")
            .unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 1_000, "backoff cost recorded");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_write_faults_exhaust_retries() {
        let dir = tmp_dir("exhaust");
        let plan = FaultPlan::seeded(3).fail_always("checkpoint.write");
        let mut store = CheckpointStore::open_with_faults(&dir, plan, 11).unwrap();
        assert_eq!(
            store.save("{\"n\":1}"),
            Err(DmaError::Invariant("checkpoint write failed after retries"))
        );
        assert_eq!(
            store.io_metrics().counter("checkpoint.io.retries"),
            MAX_IO_RETRIES as u64
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_load_faults_retry() {
        let dir = tmp_dir("loadfault");
        let mut w = CheckpointStore::open(&dir).unwrap();
        w.save("{\"n\":1}").unwrap();
        let plan = FaultPlan::seeded(9).fail_nth("checkpoint.load", 1);
        let mut store = CheckpointStore::open_with_faults(&dir, plan, 4).unwrap();
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.payload.u64_field("n"), Some(1));
        assert_eq!(store.io_metrics().counter("checkpoint.io.retries"), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_codec_roundtrips_every_variant() {
        let events = vec![
            Event::Alloc {
                at: 1,
                kva: Kva(0xffff_8880_0001_0000),
                size: 256,
                site: "nic.rx_refill",
                cache: "kmalloc-256",
            },
            Event::Free {
                at: 2,
                kva: Kva(0xffff_8880_0001_0000),
            },
            Event::PageAlloc {
                at: 3,
                pfn: Pfn(0x1234),
                order: 2,
                site: "page_frag",
            },
            Event::PageFree {
                at: 4,
                pfn: Pfn(0x1234),
                order: 2,
            },
            Event::DmaMap {
                at: 5,
                device: 7,
                iova: Iova(0xf000_0000),
                kva: Kva(0xffff_8880_0002_0000),
                len: 1500,
                dir: DmaDirection::FromDevice,
                site: "nic.rx_map",
            },
            Event::DmaUnmap {
                at: 6,
                device: 7,
                iova: Iova(0xf000_0000),
                len: 1500,
            },
            Event::CpuAccess {
                at: 7,
                kva: Kva(0xffff_8880_0002_0040),
                len: 8,
                write: true,
                site: "skb_build",
            },
            Event::DevAccess {
                at: 8,
                device: 7,
                iova: Iova(0xf000_0040),
                len: 64,
                write: true,
                allowed: true,
                stale: true,
            },
            Event::IotlbInvalidate {
                at: 9,
                device: 7,
                iova_page: Iova(0xf000_0000),
            },
            Event::IotlbGlobalFlush { at: 10, dropped: 3 },
            Event::FaultInjected {
                at: 11,
                site: "sim_mem.kmalloc",
            },
        ];
        for ev in &events {
            let mut w = JsonWriter::new();
            event_to_json(&mut w, ev);
            let back = event_from_json(&parse(&w.finish()).unwrap()).unwrap();
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn recorder_codec_roundtrips_window_and_drops() {
        let mut r = FlightRecorder::new(3);
        for at in 0..7 {
            r.push(Event::Free { at, kva: Kva(at) });
        }
        let mut w = JsonWriter::new();
        recorder_to_json(&mut w, &r);
        let back = recorder_from_json(&parse(&w.finish()).unwrap()).unwrap();
        assert_eq!(back.capacity(), 3);
        assert_eq!(back.dropped(), 4);
        assert_eq!(back.snapshot(), r.snapshot());
    }

    #[test]
    fn coverage_codec_roundtrips_the_signature() {
        let mut m = CoverageMap::new();
        for k in ["a", "b", "c", "deliver.ok"] {
            m.add("op", k);
        }
        m.add_site("sim_iommu.dma_map");
        let mut w = JsonWriter::new();
        coverage_to_json(&mut w, &m);
        let back = coverage_from_json(&parse(&w.finish()).unwrap()).unwrap();
        assert_eq!(back.signature(), m.signature());
        assert_eq!(back.count_ones(), m.count_ones());
    }

    #[test]
    fn metrics_codec_roundtrips_byte_identically() {
        let mut m = Metrics::new();
        m.add("fuzz.execs", 96);
        m.gauge_set("fuzz.corpus.size", 4);
        m.gauge_set("fuzz.corpus.size", 9);
        m.observe("fuzz.exec.cycles", 1);
        m.observe("fuzz.exec.cycles", 123_456);
        m.observe("fuzz.exec.cycles", u64::MAX / 2);
        let t = m.span_begin_at("exec", 0);
        m.span_end_at(t, 77);
        let doc = metrics_to_json(&m);
        let back = metrics_from_json(&parse(&doc).unwrap()).unwrap();
        assert_eq!(metrics_to_json(&back), doc);
    }
}
