//! Simulated cycle clock and the timing constants quoted by the paper.
//!
//! Every simulator operation advances the clock by a modeled cost; the
//! IOMMU's deferred-invalidation window (§5.2.1) and the attacks' race
//! windows are expressed in these cycles, making Figure 6 and Figure 7
//! reproducible deterministically.

use core::fmt;

/// A duration or timestamp counted in simulated CPU cycles.
pub type Cycles = u64;

/// Simulated CPU frequency used to convert between cycles and wall time.
pub const CYCLES_PER_US: Cycles = 2_000; // 2 GHz core.
/// Cycles per millisecond at the simulated frequency.
pub const CYCLES_PER_MS: Cycles = 1_000 * CYCLES_PER_US;

/// Cost of a single IOTLB invalidation ("as high as 2000 cycles", §5.2.1).
pub const IOTLB_INV_CYCLES: Cycles = 2_000;
/// Cost of a CPU TLB invalidation ("roughly 100 cycles", §5.2.1).
pub const TLB_INV_CYCLES: Cycles = 100;
/// Period of the periodic global IOTLB flush in deferred mode. The paper
/// reports the deferred window "may be as high as 10 milliseconds".
pub const DEFERRED_FLUSH_PERIOD: Cycles = 10 * CYCLES_PER_MS;
/// Modeled cost of one DMA read/write transaction issued by a device.
pub const DMA_ACCESS_CYCLES: Cycles = 300;
/// Modeled cost of a page-table walk on IOTLB miss.
pub const PT_WALK_CYCLES: Cycles = 250;
/// Modeled cost of an IOTLB hit.
pub const IOTLB_HIT_CYCLES: Cycles = 10;
/// Modeled cost of mapping one page in the IOMMU page table.
pub const MAP_PAGE_CYCLES: Cycles = 400;

/// A monotonically advancing simulated clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    now: Cycles,
}

impl Clock {
    /// Creates a clock at time zero.
    pub const fn new() -> Self {
        Clock { now: 0 }
    }

    /// Current simulated time.
    #[inline]
    pub const fn now(&self) -> Cycles {
        self.now
    }

    /// Advances time by `cycles`.
    #[inline]
    pub fn advance(&mut self, cycles: Cycles) {
        self.now += cycles;
    }

    /// Advances time by whole microseconds.
    pub fn advance_us(&mut self, us: u64) {
        self.advance(us * CYCLES_PER_US);
    }

    /// Advances time by whole milliseconds.
    pub fn advance_ms(&mut self, ms: u64) {
        self.advance(ms * CYCLES_PER_MS);
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({:.3} ms)",
            self.now,
            self.now as f64 / CYCLES_PER_MS as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        c.advance(100);
        c.advance_us(1);
        c.advance_ms(1);
        assert_eq!(c.now(), 100 + CYCLES_PER_US + CYCLES_PER_MS);
    }

    #[test]
    fn paper_cost_ratios_hold() {
        // §5.2.1: an IOTLB invalidation is "considerably higher" than a TLB
        // invalidation (2000 vs ~100 cycles). Computed through locals so
        // the relationships are checked as data, not as constant folding.
        let (iotlb, tlb) = (IOTLB_INV_CYCLES, TLB_INV_CYCLES);
        assert_eq!(iotlb / tlb, 20);
        // The deferred window dwarfs a typical I/O mapping lifetime (µs).
        let window = DEFERRED_FLUSH_PERIOD;
        assert!(window > 1_000 * CYCLES_PER_US);
    }
}
