//! The x86-64 Linux kernel virtual-memory layout (Table 1 of the paper)
//! and its KASLR randomization.
//!
//! The layout defines fixed *ranges* for each region; KASLR randomizes only
//! the *base* of three of them, with coarse alignment:
//!
//! - the kernel text base is 2 MiB aligned, so the low 21 bits of every
//!   text address survive randomization;
//! - `page_offset_base` (direct map) and `vmemmap_base` are 1 GiB aligned,
//!   so their low 30 bits survive.
//!
//! §2.4 of the paper shows that these invariants let an attacker recover
//! every randomized base from a single leaked pointer per region.

use crate::addr::{Kva, Pfn, PhysAddr, PAGE_SHIFT};
use crate::error::{DmaError, Result};
use crate::rng::DetRng;

const TB: u64 = 1 << 40;
const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;

/// Size of one `struct page` entry in the virtual memory map (vmemmap).
pub const STRUCT_PAGE_SIZE: u64 = 64;

/// Alignment of the randomized kernel text base (2 MiB, from page-table
/// restrictions; "unlikely to change" per §2.4).
pub const TEXT_ALIGN: u64 = 2 * MB;
/// Alignment of the randomized direct-map and vmemmap bases (1 GiB; the
/// page upper directory has a 30-bit shift).
pub const SECTION_ALIGN: u64 = GB;

/// A named region of the kernel virtual address space (one row of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VmRegion {
    /// Direct map of all physical memory (`page_offset_base`).
    DirectMap,
    /// vmalloc/ioremap space (`vmalloc_base`).
    Vmalloc,
    /// Virtual memory map of `struct page` entries (`vmemmap_base`).
    Vmemmap,
    /// KASAN shadow memory.
    KasanShadow,
    /// Kernel text mapping (maps physical address 0 of the kernel image).
    KernelText,
    /// Module mapping space.
    Modules,
}

impl VmRegion {
    /// All regions in ascending address order, as in Table 1.
    pub const ALL: [VmRegion; 6] = [
        VmRegion::DirectMap,
        VmRegion::Vmalloc,
        VmRegion::Vmemmap,
        VmRegion::KasanShadow,
        VmRegion::KernelText,
        VmRegion::Modules,
    ];

    /// The fixed start of this region's range (pre-KASLR).
    pub const fn start(self) -> u64 {
        match self {
            VmRegion::DirectMap => 0xffff_8880_0000_0000,
            VmRegion::Vmalloc => 0xffff_c900_0000_0000,
            VmRegion::Vmemmap => 0xffff_ea00_0000_0000,
            VmRegion::KasanShadow => 0xffff_ec00_0000_0000,
            VmRegion::KernelText => 0xffff_ffff_8000_0000,
            VmRegion::Modules => 0xffff_ffff_a000_0000,
        }
    }

    /// The size of the region's range in bytes.
    pub const fn size(self) -> u64 {
        match self {
            VmRegion::DirectMap => 64 * TB,
            VmRegion::Vmalloc => 32 * TB,
            VmRegion::Vmemmap => TB,
            VmRegion::KasanShadow => 16 * TB,
            VmRegion::KernelText => 512 * MB,
            VmRegion::Modules => 1520 * MB,
        }
    }

    /// The inclusive end address of the region's range.
    pub const fn end(self) -> u64 {
        self.start() + self.size() - 1
    }

    /// Human-readable description matching Table 1.
    pub const fn description(self) -> &'static str {
        match self {
            VmRegion::DirectMap => "direct map of phys memory (page_offset_base)",
            VmRegion::Vmalloc => "vmalloc/ioremap space (vmalloc_base)",
            VmRegion::Vmemmap => "virtual memory map (vmemmap_base)",
            VmRegion::KasanShadow => "KASAN shadow memory",
            VmRegion::KernelText => "kernel text mapping (physical address 0)",
            VmRegion::Modules => "module mapping space",
        }
    }

    /// Classifies a raw 64-bit value as belonging to a region's range.
    ///
    /// Since KASLR randomizes only the offset *within* each fixed range,
    /// a leaked pointer still reveals which region it came from. This is
    /// the first step of every KASLR-subversion attack in §2.4.
    ///
    /// The module range overlaps the tail of the text range (as on real
    /// x86-64); text takes precedence for values below the module start.
    pub fn classify(value: u64) -> Option<VmRegion> {
        if (VmRegion::KernelText.start()..VmRegion::Modules.start()).contains(&value) {
            return Some(VmRegion::KernelText);
        }
        for r in VmRegion::ALL {
            if (r.start()..=r.end()).contains(&value) {
                return Some(r);
            }
        }
        None
    }
}

/// A concrete (possibly KASLR-randomized) instantiation of the layout.
///
/// The randomized bases are the secrets an attacker must recover; the
/// per-region ranges and alignments are architectural and public.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelLayout {
    /// Base KVA of the direct physical-memory map (`page_offset_base`).
    pub page_offset_base: Kva,
    /// Base KVA of the vmalloc area (`vmalloc_base`).
    pub vmalloc_base: Kva,
    /// Base KVA of the `struct page` array (`vmemmap_base`).
    pub vmemmap_base: Kva,
    /// Base KVA at which the kernel image text is mapped.
    pub text_base: Kva,
    /// Size of the kernel text section in bytes.
    pub text_size: u64,
    /// Amount of simulated physical memory in bytes.
    pub phys_mem_bytes: u64,
}

impl KernelLayout {
    /// Default simulated kernel text size (16 MiB, a typical vmlinux).
    pub const DEFAULT_TEXT_SIZE: u64 = 16 * MB;

    /// Creates a layout with KASLR disabled: every base sits at the start
    /// of its Table-1 range.
    pub fn identity(phys_mem_bytes: u64) -> Self {
        KernelLayout {
            page_offset_base: Kva(VmRegion::DirectMap.start()),
            vmalloc_base: Kva(VmRegion::Vmalloc.start()),
            vmemmap_base: Kva(VmRegion::Vmemmap.start()),
            text_base: Kva(VmRegion::KernelText.start()),
            text_size: Self::DEFAULT_TEXT_SIZE,
            phys_mem_bytes,
        }
    }

    /// Creates a KASLR-randomized layout.
    ///
    /// Randomization mirrors Linux: the text base is 2 MiB aligned inside
    /// the 512 MiB text range; the direct-map and vmemmap bases are 1 GiB
    /// aligned inside a 16 GiB window at the start of their ranges (real
    /// kernels shrink the entropy window similarly so the regions still
    /// fit their contents).
    pub fn randomize(rng: &mut DetRng, phys_mem_bytes: u64) -> Self {
        let text_slots = (VmRegion::KernelText.size() - Self::DEFAULT_TEXT_SIZE) / TEXT_ALIGN;
        let text_base = VmRegion::KernelText.start() + rng.below(text_slots) * TEXT_ALIGN;

        let window_slots = 16; // 16 GiB entropy window, 1 GiB steps.
        let dm_base = VmRegion::DirectMap.start() + rng.below(window_slots) * SECTION_ALIGN;
        let vm_base = VmRegion::Vmemmap.start() + rng.below(window_slots) * SECTION_ALIGN;

        KernelLayout {
            page_offset_base: Kva(dm_base),
            vmalloc_base: Kva(VmRegion::Vmalloc.start()),
            vmemmap_base: Kva(vm_base),
            text_base: Kva(text_base),
            text_size: Self::DEFAULT_TEXT_SIZE,
            phys_mem_bytes,
        }
    }

    /// Highest valid PFN (exclusive).
    pub fn max_pfn(&self) -> Pfn {
        Pfn(self.phys_mem_bytes >> PAGE_SHIFT)
    }

    /// Translates a direct-map KVA to its physical address.
    pub fn kva_to_phys(&self, kva: Kva) -> Result<PhysAddr> {
        if kva.raw() < self.page_offset_base.raw() {
            return Err(DmaError::NotDirectMap(kva.raw()));
        }
        let off = kva.raw() - self.page_offset_base.raw();
        if off >= self.phys_mem_bytes {
            return Err(DmaError::NotDirectMap(kva.raw()));
        }
        Ok(PhysAddr(off))
    }

    /// Translates a physical address to its direct-map KVA.
    pub fn phys_to_kva(&self, pa: PhysAddr) -> Result<Kva> {
        if pa.raw() >= self.phys_mem_bytes {
            return Err(DmaError::BadPhysAddr(pa.raw()));
        }
        Ok(Kva(self.page_offset_base.raw() + pa.raw()))
    }

    /// Translates a PFN to the direct-map KVA of its first byte
    /// (`page_address()` in Linux).
    pub fn pfn_to_kva(&self, pfn: Pfn) -> Result<Kva> {
        self.phys_to_kva(pfn.base())
    }

    /// Translates a direct-map KVA to its PFN (`virt_to_pfn()`).
    pub fn kva_to_pfn(&self, kva: Kva) -> Result<Pfn> {
        Ok(self.kva_to_phys(kva)?.pfn())
    }

    /// Returns the KVA of the `struct page` describing `pfn`
    /// (`pfn_to_page()`), inside the vmemmap region.
    pub fn pfn_to_page(&self, pfn: Pfn) -> Result<Kva> {
        if pfn >= self.max_pfn() {
            return Err(DmaError::BadPfn(pfn.raw()));
        }
        Ok(Kva(self.vmemmap_base.raw() + pfn.raw() * STRUCT_PAGE_SIZE))
    }

    /// Returns the PFN described by a `struct page` KVA (`page_to_pfn()`).
    pub fn page_to_pfn(&self, page: Kva) -> Result<Pfn> {
        if page.raw() < self.vmemmap_base.raw() {
            return Err(DmaError::BadStructPage(page.raw()));
        }
        let off = page.raw() - self.vmemmap_base.raw();
        if !off.is_multiple_of(STRUCT_PAGE_SIZE) {
            return Err(DmaError::BadStructPage(page.raw()));
        }
        let pfn = Pfn(off / STRUCT_PAGE_SIZE);
        if pfn >= self.max_pfn() {
            return Err(DmaError::BadStructPage(page.raw()));
        }
        Ok(pfn)
    }

    /// Returns `true` if `kva` lies inside the mapped kernel text.
    pub fn in_text(&self, kva: Kva) -> bool {
        (self.text_base.raw()..self.text_base.raw() + self.text_size).contains(&kva.raw())
    }

    /// Returns `true` if `kva` lies inside the populated direct map.
    pub fn in_direct_map(&self, kva: Kva) -> bool {
        self.kva_to_phys(kva).is_ok()
    }

    /// Formats the Table-1 layout rows (fixed ranges, not randomized
    /// bases), one row per region.
    pub fn table1() -> Vec<(String, String, String, &'static str)> {
        VmRegion::ALL
            .iter()
            .map(|r| {
                (
                    format!("{:016x}", r.start()),
                    format!("{:016x}", r.end()),
                    human_size(r.size()),
                    r.description(),
                )
            })
            .collect()
    }
}

/// Renders a byte count the way Table 1 does ("64 TB", "512 MB", "1520 MB").
pub fn human_size(bytes: u64) -> String {
    if bytes >= TB && bytes.is_multiple_of(TB) {
        format!("{} TB", bytes / TB)
    } else if bytes >= GB && bytes.is_multiple_of(GB) {
        format!("{} GB", bytes / GB)
    } else {
        format!("{} MB", bytes / MB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEM: u64 = 256 * MB;

    #[test]
    fn table1_matches_paper_rows() {
        // Row-by-row check against Table 1 of the paper.
        assert_eq!(VmRegion::DirectMap.start(), 0xffff_8880_0000_0000);
        assert_eq!(VmRegion::DirectMap.end(), 0xffff_c87f_ffff_ffff);
        assert_eq!(human_size(VmRegion::DirectMap.size()), "64 TB");

        assert_eq!(VmRegion::Vmalloc.start(), 0xffff_c900_0000_0000);
        assert_eq!(VmRegion::Vmalloc.end(), 0xffff_e8ff_ffff_ffff);
        assert_eq!(human_size(VmRegion::Vmalloc.size()), "32 TB");

        assert_eq!(VmRegion::Vmemmap.start(), 0xffff_ea00_0000_0000);
        assert_eq!(VmRegion::Vmemmap.end(), 0xffff_eaff_ffff_ffff);
        assert_eq!(human_size(VmRegion::Vmemmap.size()), "1 TB");

        assert_eq!(VmRegion::KasanShadow.start(), 0xffff_ec00_0000_0000);
        assert_eq!(VmRegion::KasanShadow.end(), 0xffff_fbff_ffff_ffff);
        assert_eq!(human_size(VmRegion::KasanShadow.size()), "16 TB");

        assert_eq!(VmRegion::KernelText.start(), 0xffff_ffff_8000_0000);
        assert_eq!(human_size(VmRegion::KernelText.size()), "512 MB");

        assert_eq!(VmRegion::Modules.start(), 0xffff_ffff_a000_0000);
        assert_eq!(human_size(VmRegion::Modules.size()), "1520 MB");
    }

    #[test]
    fn classify_identifies_regions() {
        assert_eq!(
            VmRegion::classify(0xffff_8880_1234_5678),
            Some(VmRegion::DirectMap)
        );
        assert_eq!(
            VmRegion::classify(0xffff_ffff_8123_4567),
            Some(VmRegion::KernelText)
        );
        assert_eq!(
            VmRegion::classify(0xffff_ea00_0000_1000),
            Some(VmRegion::Vmemmap)
        );
        assert_eq!(VmRegion::classify(0x0000_7fff_0000_0000), None);
    }

    #[test]
    fn kaslr_respects_alignment_invariants() {
        // §2.4: text keeps its low 21 bits; direct map / vmemmap their low 30.
        for seed in 0..64 {
            let mut rng = DetRng::new(seed);
            let l = KernelLayout::randomize(&mut rng, MEM);
            assert_eq!(l.text_base.raw() % TEXT_ALIGN, 0);
            assert_eq!(l.page_offset_base.raw() % SECTION_ALIGN, 0);
            assert_eq!(l.vmemmap_base.raw() % SECTION_ALIGN, 0);
            assert!(l.text_base.raw() >= VmRegion::KernelText.start());
            assert!(l.text_base.raw() + l.text_size <= VmRegion::KernelText.end() + 1);
            assert_eq!(
                VmRegion::classify(l.text_base.raw()),
                Some(VmRegion::KernelText)
            );
        }
    }

    #[test]
    fn kaslr_actually_randomizes() {
        let mut bases = std::collections::HashSet::new();
        for seed in 0..32 {
            let mut rng = DetRng::new(seed);
            bases.insert(KernelLayout::randomize(&mut rng, MEM).text_base.raw());
        }
        assert!(
            bases.len() > 8,
            "text base entropy too low: {}",
            bases.len()
        );
    }

    #[test]
    fn translations_roundtrip() {
        let mut rng = DetRng::new(7);
        let l = KernelLayout::randomize(&mut rng, MEM);
        let pfn = Pfn(0x1234);
        let kva = l.pfn_to_kva(pfn).unwrap();
        assert_eq!(l.kva_to_pfn(kva).unwrap(), pfn);
        let page = l.pfn_to_page(pfn).unwrap();
        assert_eq!(l.page_to_pfn(page).unwrap(), pfn);
        assert_eq!(VmRegion::classify(page.raw()), Some(VmRegion::Vmemmap));
    }

    #[test]
    fn out_of_range_translations_fail() {
        let l = KernelLayout::identity(MEM);
        assert!(l.kva_to_phys(Kva(0xffff_ffff_8000_0000)).is_err());
        assert!(l.pfn_to_kva(l.max_pfn()).is_err());
        assert!(l.pfn_to_page(Pfn(u64::MAX >> 13)).is_err());
        assert!(l.page_to_pfn(Kva(l.vmemmap_base.raw() + 3)).is_err());
        assert!(l.page_to_pfn(Kva(0)).is_err());
    }

    #[test]
    fn struct_page_entries_are_64_bytes_apart() {
        let l = KernelLayout::identity(MEM);
        let a = l.pfn_to_page(Pfn(10)).unwrap();
        let b = l.pfn_to_page(Pfn(11)).unwrap();
        assert_eq!(b - a, STRUCT_PAGE_SIZE);
    }
}
