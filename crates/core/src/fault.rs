//! Deterministic, seeded fault injection — the simulator's analog of
//! Linux's `failslab` / `fail_page_alloc` / `fail_function` machinery.
//!
//! The paper's attacks live entirely in *failure windows* (allocation
//! reuse, IOTLB staleness, unmap-ordering races, §5.2), so the
//! simulators must behave sanely when allocations fail or devices
//! misbehave. A [`FaultPlan`] holds site-tagged rules; call sites that
//! can fail query `SimCtx::fault("layer.operation")` and, on a hit,
//! return the natural error for that site (`OutOfMemory` for
//! allocators, `OutOfIova` for mapping, `IommuFault` for device DMA).
//!
//! Determinism is load-bearing: probabilistic rules draw from a
//! [`DetRng`] seeded when the plan is built, so the same seed always
//! produces the same fault sequence — the chaos soak asserts exact
//! replayability of fault-hit and drop counters.
//!
//! # Site tags and the pattern grammar
//!
//! Sites are `&'static str` tags named `"<crate>.<operation>"`, e.g.
//! `"sim_mem.kmalloc"`, `"sim_iommu.dma_map"`, `"sim_net.rx_refill"`,
//! `"device.dma_read"`. Checkpoint I/O exposes `"checkpoint.write"`
//! and `"checkpoint.load"` (see [`crate::checkpoint`]), whose failures
//! are retried with seeded backoff rather than surfaced immediately.
//! Rule patterns are matched against sites by
//! [`pattern_matches`] under a small glob grammar:
//!
//! - A pattern with no `*` matches exactly one site tag, verbatim.
//! - Otherwise the pattern and site are split on `.` and compared
//!   segment by segment. Inside a segment, `*` matches any run of
//!   characters (including none), so `"sim_*.dma_*"` matches
//!   `"sim_iommu.dma_map"` and `"*.rx_refill"` matches
//!   `"sim_net.rx_refill"` but not `"sim_net.rx_poll"`.
//! - As a special case, a **final** segment that is exactly `*`
//!   matches one *or more* trailing site segments: `"sim_mem.*"`
//!   matches every allocator site and a bare `"*"` matches every site.
//!   (This keeps the historical trailing-`*` prefix behavior.)
//! - Segment counts must otherwise agree: `"*.refill"` never matches a
//!   three-segment tag.
//!
//! # Writing a plan in a test
//!
//! ```
//! use dma_core::{FaultPlan, SimCtx};
//!
//! let mut ctx = SimCtx::new();
//! ctx.faults = FaultPlan::seeded(42)
//!     .fail_nth("sim_mem.kmalloc", 3)      // 3rd kmalloc fails
//!     .fail_every("sim_iommu.dma_map", 8)  // every 8th map fails
//!     .fail_prob("sim_net.rx_refill", 1, 100) // 1% of refill allocs
//!     .fail_once("device.dma_read");       // first device read faults
//! assert!(!ctx.fault("sim_mem.kmalloc")); // call 1
//! assert!(!ctx.fault("sim_mem.kmalloc")); // call 2
//! assert!(ctx.fault("sim_mem.kmalloc"));  // call 3 → injected
//! ```

use crate::rng::DetRng;
use std::collections::BTreeMap;

/// When a matching call should fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fail exactly the `n`-th matching call (1-based), once.
    Nth(u64),
    /// Fail every `k`-th matching call (the k-th, 2k-th, ...).
    EveryK(u64),
    /// Fail each matching call with probability `num / den`, drawn from
    /// the plan's seeded RNG.
    Prob {
        /// Numerator of the failure probability.
        num: u64,
        /// Denominator of the failure probability.
        den: u64,
    },
    /// Fail the first matching call, then disarm.
    Once,
    /// Fail every matching call.
    Always,
}

/// One site-tagged injection rule with its bookkeeping counters.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Site pattern under the module-level glob grammar (exact tag,
    /// per-segment `*` wildcards, or a trailing bare-`*` segment).
    pub pattern: String,
    /// Firing condition.
    pub trigger: FaultTrigger,
    /// Matching calls observed so far.
    pub calls: u64,
    /// Faults this rule has injected.
    pub hits: u64,
    /// One-shot rules disarm after firing.
    armed: bool,
}

impl FaultRule {
    fn matches(&self, site: &str) -> bool {
        pattern_matches(&self.pattern, site)
    }
}

/// Matches a site tag against a rule pattern under the glob grammar
/// documented in the module header: no `*` ⇒ exact match; otherwise
/// per-`.`-segment comparison with in-segment `*` wildcards, where a
/// final bare-`*` segment swallows one or more trailing site segments.
pub fn pattern_matches(pattern: &str, site: &str) -> bool {
    if !pattern.contains('*') {
        return pattern == site;
    }
    let psegs: Vec<&str> = pattern.split('.').collect();
    let ssegs: Vec<&str> = site.split('.').collect();
    if psegs.last() == Some(&"*") {
        let lead = &psegs[..psegs.len() - 1];
        return ssegs.len() >= psegs.len()
            && lead.iter().zip(&ssegs).all(|(p, s)| segment_matches(p, s));
    }
    psegs.len() == ssegs.len() && psegs.iter().zip(&ssegs).all(|(p, s)| segment_matches(p, s))
}

/// In-segment glob: `*` matches any (possibly empty) run of characters.
/// Iterative with backtracking to the last star, so `"dma_*"` and
/// `"*refill*"` both work without recursion.
fn segment_matches(pat: &str, seg: &str) -> bool {
    let p = pat.as_bytes();
    let s = seg.as_bytes();
    let (mut pi, mut si) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut mark = 0usize;
    while si < s.len() {
        if pi < p.len() && (p[pi] == s[si]) {
            pi += 1;
            si += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some(pi);
            mark = si;
            pi += 1;
        } else if let Some(sp) = star {
            pi = sp + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// A deterministic schedule of injected faults, threaded through
/// `SimCtx`. An empty plan is free: `should_fail` returns immediately.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    rng: DetRng,
    /// Master switch; a disabled plan never fires (rules are kept).
    pub enabled: bool,
    /// Calls observed per site tag (populated only while rules exist,
    /// so the empty-plan fast path stays allocation-free).
    site_calls: BTreeMap<String, u64>,
    /// Faults injected per site tag.
    site_hits: BTreeMap<String, u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan (no rules, RNG seeded with 0). Never fires.
    pub fn new() -> Self {
        FaultPlan::seeded(0)
    }

    /// An empty plan whose probabilistic rules will draw from a RNG
    /// seeded with `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            rules: Vec::new(),
            rng: DetRng::new(seed),
            enabled: true,
            site_calls: BTreeMap::new(),
            site_hits: BTreeMap::new(),
        }
    }

    /// Adds a rule with an explicit trigger.
    pub fn with_rule(mut self, pattern: impl Into<String>, trigger: FaultTrigger) -> Self {
        self.rules.push(FaultRule {
            pattern: pattern.into(),
            trigger,
            calls: 0,
            hits: 0,
            armed: true,
        });
        self
    }

    /// Fail exactly the `n`-th call matching `pattern` (1-based).
    pub fn fail_nth(self, pattern: impl Into<String>, n: u64) -> Self {
        self.with_rule(pattern, FaultTrigger::Nth(n.max(1)))
    }

    /// Fail every `k`-th call matching `pattern`.
    pub fn fail_every(self, pattern: impl Into<String>, k: u64) -> Self {
        self.with_rule(pattern, FaultTrigger::EveryK(k.max(1)))
    }

    /// Fail calls matching `pattern` with probability `num / den`.
    pub fn fail_prob(self, pattern: impl Into<String>, num: u64, den: u64) -> Self {
        self.with_rule(
            pattern,
            FaultTrigger::Prob {
                num,
                den: den.max(1),
            },
        )
    }

    /// Fail the first call matching `pattern`, then disarm.
    pub fn fail_once(self, pattern: impl Into<String>) -> Self {
        self.with_rule(pattern, FaultTrigger::Once)
    }

    /// Fail every call matching `pattern`.
    pub fn fail_always(self, pattern: impl Into<String>) -> Self {
        self.with_rule(pattern, FaultTrigger::Always)
    }

    /// `true` if the plan has no rules (the zero-overhead state).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Queries whether the call at `site` should fail, updating rule
    /// and per-site counters. The first matching armed rule decides.
    ///
    /// Call sites normally go through `SimCtx::fault`, which also emits
    /// a `FaultInjected` trace event on a hit.
    #[inline]
    pub fn should_fail(&mut self, site: &str) -> bool {
        if self.rules.is_empty() || !self.enabled {
            return false;
        }
        self.should_fail_slow(site)
    }

    fn should_fail_slow(&mut self, site: &str) -> bool {
        let mut fired = false;
        let mut matched = false;
        for rule in &mut self.rules {
            if !rule.matches(site) {
                continue;
            }
            matched = true;
            rule.calls += 1;
            if fired || !rule.armed {
                continue;
            }
            let hit = match rule.trigger {
                FaultTrigger::Nth(n) => {
                    if rule.calls == n {
                        rule.armed = false;
                        true
                    } else {
                        false
                    }
                }
                FaultTrigger::EveryK(k) => rule.calls % k == 0,
                FaultTrigger::Prob { num, den } => self.rng.chance(num, den),
                FaultTrigger::Once => {
                    rule.armed = false;
                    true
                }
                FaultTrigger::Always => true,
            };
            if hit {
                rule.hits += 1;
                fired = true;
            }
        }
        if matched {
            *self.site_calls.entry(site.to_owned()).or_insert(0) += 1;
        }
        if fired {
            *self.site_hits.entry(site.to_owned()).or_insert(0) += 1;
        }
        fired
    }

    /// Total faults injected across all rules.
    pub fn injected_total(&self) -> u64 {
        self.rules.iter().map(|r| r.hits).sum()
    }

    /// Per-site fault counts, in deterministic (sorted) order — the
    /// replayability fingerprint the chaos soak compares across runs.
    pub fn hits_by_site(&self) -> &BTreeMap<String, u64> {
        &self.site_hits
    }

    /// Per-site call counts for sites covered by at least one rule.
    pub fn calls_by_site(&self) -> &BTreeMap<String, u64> {
        &self.site_calls
    }

    /// Read-only view of the rules with their counters.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut p = FaultPlan::new();
        for _ in 0..100 {
            assert!(!p.should_fail("sim_mem.kmalloc"));
        }
        assert_eq!(p.injected_total(), 0);
        assert!(p.hits_by_site().is_empty());
    }

    #[test]
    fn nth_fires_exactly_once_at_n() {
        let mut p = FaultPlan::seeded(1).fail_nth("a.b", 3);
        let hits: Vec<bool> = (0..6).map(|_| p.should_fail("a.b")).collect();
        assert_eq!(hits, [false, false, true, false, false, false]);
        assert_eq!(p.injected_total(), 1);
    }

    #[test]
    fn every_k_fires_periodically() {
        let mut p = FaultPlan::seeded(1).fail_every("a.b", 3);
        let hits = (0..9).filter(|_| p.should_fail("a.b")).count();
        assert_eq!(hits, 3);
    }

    #[test]
    fn once_disarms_after_first_hit() {
        let mut p = FaultPlan::seeded(1).fail_once("a.b");
        assert!(p.should_fail("a.b"));
        assert!(!p.should_fail("a.b"));
        assert_eq!(p.rules()[0].calls, 2);
        assert_eq!(p.rules()[0].hits, 1);
    }

    #[test]
    fn always_fires_every_call() {
        let mut p = FaultPlan::seeded(1).fail_always("a.b");
        assert!((0..10).all(|_| p.should_fail("a.b")));
    }

    #[test]
    fn prob_is_seeded_and_replayable() {
        let run = |seed| {
            let mut p = FaultPlan::seeded(seed).fail_prob("a.b", 1, 4);
            (0..256).map(|_| p.should_fail("a.b")).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seeds diverge");
        let hits = run(7).iter().filter(|&&h| h).count();
        assert!((32..96).contains(&hits), "1/4 of 256 ≈ 64, got {hits}");
    }

    #[test]
    fn prefix_pattern_matches_whole_layer() {
        let mut p = FaultPlan::seeded(1).fail_always("sim_mem.*");
        assert!(p.should_fail("sim_mem.kmalloc"));
        assert!(p.should_fail("sim_mem.alloc_pages"));
        assert!(!p.should_fail("sim_iommu.dma_map"));
        assert_eq!(p.hits_by_site().len(), 2);
    }

    #[test]
    fn first_matching_rule_wins_but_all_count_calls() {
        let mut p = FaultPlan::seeded(1).fail_nth("a.b", 1).fail_always("a.*");
        assert!(p.should_fail("a.b"));
        // Second call: Nth(1) is done, the prefix rule takes over.
        assert!(p.should_fail("a.b"));
        assert_eq!(p.rules()[0].calls, 2);
        assert_eq!(p.rules()[1].calls, 2);
        // Only one injected fault is reported per call.
        assert_eq!(*p.hits_by_site().get("a.b").unwrap(), 2);
    }

    #[test]
    fn glob_matches_operation_segment_across_layers() {
        let mut p = FaultPlan::seeded(1).fail_always("*.rx_refill");
        assert!(p.should_fail("sim_net.rx_refill"));
        assert!(!p.should_fail("sim_net.rx_poll"));
        assert!(!p.should_fail("sim_mem.kmalloc"));
    }

    #[test]
    fn glob_wildcards_work_inside_segments() {
        assert!(pattern_matches("sim_*.dma_*", "sim_iommu.dma_map"));
        assert!(!pattern_matches("sim_*.dma_*", "device.dma_read"));
        assert!(pattern_matches("*.dma_*", "device.dma_read"));
        assert!(pattern_matches(
            "sim_mem.*alloc*",
            "sim_mem.page_frag_alloc"
        ));
        assert!(pattern_matches("sim_mem.*alloc*", "sim_mem.alloc_pages"));
        assert!(!pattern_matches("sim_mem.*alloc*", "sim_mem.kfree"));
    }

    #[test]
    fn glob_requires_matching_segment_counts() {
        assert!(!pattern_matches("*.refill", "a.b.refill"));
        assert!(!pattern_matches("a.*.c", "a.b"));
        assert!(pattern_matches("a.*.c", "a.anything.c"));
    }

    #[test]
    fn trailing_bare_star_matches_remaining_segments() {
        assert!(pattern_matches("sim_mem.*", "sim_mem.kmalloc"));
        assert!(pattern_matches("a.*", "a.b.c"), "one-or-more trailing");
        assert!(!pattern_matches("a.*", "a"), "star needs a segment");
        assert!(
            pattern_matches("*", "device.dma_write"),
            "bare * is match-all"
        );
    }

    #[test]
    fn exact_patterns_do_not_glob() {
        assert!(pattern_matches("sim_mem.kmalloc", "sim_mem.kmalloc"));
        assert!(!pattern_matches("sim_mem.kmalloc", "sim_mem.kmalloc2"));
    }

    #[test]
    fn disabled_plan_keeps_rules_but_never_fires() {
        let mut p = FaultPlan::seeded(1).fail_always("a.b");
        p.enabled = false;
        assert!(!p.should_fail("a.b"));
        assert_eq!(p.rules()[0].calls, 0, "disabled plan does not count");
    }
}
