//! The simulated physical memory backing store.
//!
//! Frames are materialized lazily (zero-filled) on first touch so large
//! simulated machines stay cheap; all reads and writes are bounds checked
//! against the configured physical size.

use dma_core::{DmaError, Pfn, PhysAddr, Result, PAGE_SIZE};

/// A lazily populated array of 4 KiB physical frames.
#[derive(Clone, Debug)]
pub struct PhysMemory {
    frames: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
    bytes: u64,
}

impl PhysMemory {
    /// Creates `bytes` of simulated physical memory (rounded down to a
    /// whole number of pages).
    pub fn new(bytes: u64) -> Self {
        let nframes = (bytes as usize) / PAGE_SIZE;
        PhysMemory {
            frames: (0..nframes).map(|_| None).collect(),
            bytes: (nframes * PAGE_SIZE) as u64,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames actually materialized (touched at least once).
    pub fn resident_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }

    fn frame_mut(&mut self, pfn: Pfn) -> Result<&mut [u8; PAGE_SIZE]> {
        let idx = pfn.raw() as usize;
        let slot = self
            .frames
            .get_mut(idx)
            .ok_or(DmaError::BadPfn(pfn.raw()))?;
        Ok(slot.get_or_insert_with(|| Box::new([0u8; PAGE_SIZE])))
    }

    fn frame(&self, pfn: Pfn) -> Result<Option<&[u8; PAGE_SIZE]>> {
        let idx = pfn.raw() as usize;
        let slot = self.frames.get(idx).ok_or(DmaError::BadPfn(pfn.raw()))?;
        Ok(slot.as_deref())
    }

    /// Reads `buf.len()` bytes starting at `pa`; may cross frame
    /// boundaries. Untouched frames read as zeros.
    pub fn read(&self, pa: PhysAddr, buf: &mut [u8]) -> Result<()> {
        if pa
            .raw()
            .checked_add(buf.len() as u64)
            .is_none_or(|end| end > self.bytes)
        {
            return Err(DmaError::BadPhysAddr(pa.raw()));
        }
        let mut addr = pa.raw();
        let mut done = 0;
        while done < buf.len() {
            let pfn = PhysAddr(addr).pfn();
            let off = (addr as usize) % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            match self.frame(pfn)? {
                Some(frame) => buf[done..done + n].copy_from_slice(&frame[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr += n as u64;
        }
        Ok(())
    }

    /// Writes `buf` starting at `pa`; may cross frame boundaries.
    pub fn write(&mut self, pa: PhysAddr, buf: &[u8]) -> Result<()> {
        if pa
            .raw()
            .checked_add(buf.len() as u64)
            .is_none_or(|end| end > self.bytes)
        {
            return Err(DmaError::BadPhysAddr(pa.raw()));
        }
        let mut addr = pa.raw();
        let mut done = 0;
        while done < buf.len() {
            let pfn = PhysAddr(addr).pfn();
            let off = (addr as usize) % PAGE_SIZE;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let frame = self.frame_mut(pfn)?;
            frame[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr += n as u64;
        }
        Ok(())
    }

    /// Reads a little-endian u64 at `pa`.
    pub fn read_u64(&self, pa: PhysAddr) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(pa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian u64 at `pa`.
    pub fn write_u64(&mut self, pa: PhysAddr, v: u64) -> Result<()> {
        self.write(pa, &v.to_le_bytes())
    }

    /// Zero-fills `len` bytes at `pa`.
    pub fn zero(&mut self, pa: PhysAddr, len: usize) -> Result<()> {
        // Avoid a temp buffer for the common whole-page case.
        if pa.is_page_aligned() && len == PAGE_SIZE {
            self.frame_mut(pa.pfn())?.fill(0);
            return Ok(());
        }
        self.write(pa, &vec![0u8; len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysMemory::new(1 << 20);
        m.write(PhysAddr(0x1234), b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read(PhysAddr(0x1234), &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = PhysMemory::new(1 << 20);
        let pa = PhysAddr(PAGE_SIZE as u64 - 3);
        m.write(pa, b"abcdefgh").unwrap();
        let mut buf = [0u8; 8];
        m.read(pa, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdefgh");
    }

    #[test]
    fn untouched_frames_read_zero() {
        let m = PhysMemory::new(1 << 20);
        let mut buf = [0xaa; 16];
        m.read(PhysAddr(0x8000), &mut buf).unwrap();
        assert_eq!(buf, [0; 16]);
        assert_eq!(m.resident_frames(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = PhysMemory::new(1 << 20);
        let end = m.size();
        assert!(m.write(PhysAddr(end - 2), b"abcd").is_err());
        let mut buf = [0u8; 4];
        assert!(m.read(PhysAddr(end), &mut buf).is_err());
        // Overflowing address must not wrap.
        assert!(m.read(PhysAddr(u64::MAX - 1), &mut buf).is_err());
    }

    #[test]
    fn u64_helpers() {
        let mut m = PhysMemory::new(1 << 20);
        m.write_u64(PhysAddr(0x100), 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(PhysAddr(0x100)).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn zero_clears_page() {
        let mut m = PhysMemory::new(1 << 20);
        m.write(PhysAddr(0x2000), &[0xff; 64]).unwrap();
        m.zero(PhysAddr(0x2000), PAGE_SIZE).unwrap();
        assert_eq!(m.read_u64(PhysAddr(0x2000)).unwrap(), 0);
    }
}
