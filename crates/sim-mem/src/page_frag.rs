//! The `page_frag` bump-down allocator of Figure 5.
//!
//! A per-CPU contiguous region (32 KiB by default) is carved from its end
//! toward its start: an allocation of `B` bytes subtracts `B` from the
//! offset and returns the new offset. Network drivers allocate their RX
//! data buffers this way (`netdev_alloc_skb`, `napi_alloc_skb` — used 344
//! times in Linux 5.0 per §5.2.2), which means **consecutive RX buffers
//! routinely share a physical page**. Each buffer gets its own DMA
//! mapping, so one page ends up reachable through multiple IOVAs — the
//! type (c) vulnerability of Figure 1, and the path (iii) time window of
//! Figure 7.

use crate::buddy::BuddyAllocator;
use dma_core::{DmaError, Event, KernelLayout, Kva, Pfn, Result, SimCtx};
use std::collections::HashMap;

/// Buddy order of each page_frag region: 2^3 pages = 32 KiB, matching
/// Linux's `PAGE_FRAG_CACHE_MAX_ORDER`.
pub const FRAG_REGION_ORDER: u32 = 3;
/// Size of each region in bytes.
pub const FRAG_REGION_SIZE: usize = dma_core::PAGE_SIZE << FRAG_REGION_ORDER;

#[derive(Debug, Clone, Copy)]
struct FragCache {
    /// Base frame of the active region (`None` before first use).
    base: Option<Pfn>,
    /// Current carve offset from the region base (allocations descend).
    offset: usize,
}

#[derive(Clone, Debug)]
struct Region {
    /// Live fragments carved from the region.
    refs: u32,
    /// `true` once the allocator has moved on to a new region; a retired
    /// region is freed when its last fragment is released.
    retired: bool,
}

/// Per-CPU page_frag caches plus region refcounts.
#[derive(Clone, Debug)]
pub struct PageFragAllocator {
    per_cpu: Vec<FragCache>,
    regions: HashMap<u64, Region>,
}

impl PageFragAllocator {
    /// Creates caches for `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        PageFragAllocator {
            per_cpu: vec![
                FragCache {
                    base: None,
                    offset: 0
                };
                num_cpus.max(1)
            ],
            regions: HashMap::new(),
        }
    }

    /// Allocates `size` bytes from CPU `cpu`'s region (Figure 5).
    ///
    /// Returns the KVA of the fragment. `size` must fit a region.
    pub fn alloc(
        &mut self,
        ctx: &mut SimCtx,
        buddy: &mut BuddyAllocator,
        layout: &KernelLayout,
        cpu: usize,
        size: usize,
        site: &'static str,
    ) -> Result<Kva> {
        if size == 0 || size > FRAG_REGION_SIZE {
            return Err(DmaError::InvalidAlloc(size));
        }
        let ncpu = self.per_cpu.len();
        let cache = &mut self.per_cpu[cpu % ncpu];

        let needs_new = match cache.base {
            None => true,
            Some(_) => cache.offset < size,
        };
        if needs_new {
            // Retire the old region (freed once its fragments die).
            if let Some(old) = cache.base {
                let region = self
                    .regions
                    .get_mut(&old.raw())
                    .expect("active region tracked");
                region.retired = true;
                if region.refs == 0 {
                    self.regions.remove(&old.raw());
                    buddy.free_pages(ctx, cpu, old, FRAG_REGION_ORDER)?;
                }
            }
            let base = buddy.alloc_pages(ctx, cpu, FRAG_REGION_ORDER, site)?;
            ctx.metrics.incr("sim_mem.page_frag.refills");
            self.regions.insert(
                base.raw(),
                Region {
                    refs: 0,
                    retired: false,
                },
            );
            cache.base = Some(base);
            cache.offset = FRAG_REGION_SIZE;
        }

        let base = cache.base.expect("region present");
        // Carve from the end: offset -= size (Figure 5). Linux aligns
        // fragments to a cacheline-ish boundary; we keep 64-byte alignment.
        let mut off = cache.offset - size;
        off &= !63;
        cache.offset = off;
        self.regions
            .get_mut(&base.raw())
            .expect("region tracked")
            .refs += 1;

        let kva = Kva(layout.pfn_to_kva(base)?.raw() + off as u64);
        ctx.emit(Event::Alloc {
            at: ctx.clock.now(),
            kva,
            size,
            site,
            cache: "page_frag",
        });
        Ok(kva)
    }

    /// Releases a fragment; the backing region is freed when retired and
    /// drained.
    pub fn free(
        &mut self,
        ctx: &mut SimCtx,
        buddy: &mut BuddyAllocator,
        layout: &KernelLayout,
        cpu: usize,
        kva: Kva,
    ) -> Result<()> {
        let pfn = layout.kva_to_pfn(kva)?;
        // Regions are naturally aligned order-3 blocks.
        let base = Pfn(pfn.raw() & !((1u64 << FRAG_REGION_ORDER) - 1));
        let region = self
            .regions
            .get_mut(&base.raw())
            .ok_or(DmaError::BadFree(kva.raw()))?;
        if region.refs == 0 {
            return Err(DmaError::BadFree(kva.raw()));
        }
        region.refs -= 1;
        ctx.emit(Event::Free {
            at: ctx.clock.now(),
            kva,
        });
        if region.refs == 0 && region.retired {
            self.regions.remove(&base.raw());
            buddy.free_pages(ctx, cpu, base, FRAG_REGION_ORDER)?;
        }
        Ok(())
    }

    /// Base frame of the active region for `cpu`, if any.
    pub fn active_region(&self, cpu: usize) -> Option<Pfn> {
        self.per_cpu[cpu % self.per_cpu.len()].base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::PAGE_SIZE;

    fn mk() -> (SimCtx, BuddyAllocator, KernelLayout, PageFragAllocator) {
        let layout = KernelLayout::identity(64 << 20);
        (
            SimCtx::new(),
            BuddyAllocator::new(Pfn(16), Pfn((64 << 20) / PAGE_SIZE as u64), 2),
            layout,
            PageFragAllocator::new(2),
        )
    }

    #[test]
    fn fragments_descend_within_region() {
        // Figure 5: each allocation subtracts from the offset.
        let (mut ctx, mut buddy, layout, mut pf) = mk();
        let a = pf
            .alloc(&mut ctx, &mut buddy, &layout, 0, 2048, "rx")
            .unwrap();
        let b = pf
            .alloc(&mut ctx, &mut buddy, &layout, 0, 2048, "rx")
            .unwrap();
        assert!(b < a, "second fragment must sit below the first");
        assert_eq!(a - b, 2048);
    }

    #[test]
    fn consecutive_buffers_share_pages() {
        // The type (c) substrate: with 2 KiB buffers, pairs of consecutive
        // fragments land on the same 4 KiB page (§5.2.2).
        let (mut ctx, mut buddy, layout, mut pf) = mk();
        let frags: Vec<Kva> = (0..16)
            .map(|_| {
                pf.alloc(&mut ctx, &mut buddy, &layout, 0, 2048, "rx")
                    .unwrap()
            })
            .collect();
        let sharing = frags
            .windows(2)
            .filter(|w| w[0].page_align_down() == w[1].page_align_down())
            .count();
        assert!(
            sharing >= 7,
            "expected ~every pair to share a page, got {sharing}"
        );
    }

    #[test]
    fn per_cpu_regions_are_disjoint() {
        let (mut ctx, mut buddy, layout, mut pf) = mk();
        let a = pf
            .alloc(&mut ctx, &mut buddy, &layout, 0, 1024, "rx")
            .unwrap();
        let b = pf
            .alloc(&mut ctx, &mut buddy, &layout, 1, 1024, "rx")
            .unwrap();
        assert_ne!(pf.active_region(0), pf.active_region(1));
        assert_ne!(a.page_align_down(), b.page_align_down());
    }

    #[test]
    fn exhausted_region_is_replaced_and_freed_when_drained() {
        let (mut ctx, mut buddy, layout, mut pf) = mk();
        let free_before = buddy.free_page_count();
        let mut frags = Vec::new();
        // 17 × 2 KiB > 32 KiB forces a second region.
        for _ in 0..17 {
            frags.push(
                pf.alloc(&mut ctx, &mut buddy, &layout, 0, 2048, "rx")
                    .unwrap(),
            );
        }
        let first_region_pages: std::collections::HashSet<u64> = frags[..16]
            .iter()
            .map(|k| k.page_align_down().raw())
            .collect();
        assert!(!first_region_pages.contains(&frags[16].page_align_down().raw()));
        for f in frags {
            pf.free(&mut ctx, &mut buddy, &layout, 0, f).unwrap();
        }
        // Retired region returned to the buddy; active one still held.
        assert_eq!(
            buddy.free_page_count(),
            free_before - (1 << FRAG_REGION_ORDER)
        );
    }

    #[test]
    fn oversized_and_zero_requests_rejected() {
        let (mut ctx, mut buddy, layout, mut pf) = mk();
        assert!(pf.alloc(&mut ctx, &mut buddy, &layout, 0, 0, "rx").is_err());
        assert!(pf
            .alloc(&mut ctx, &mut buddy, &layout, 0, FRAG_REGION_SIZE + 1, "rx")
            .is_err());
    }

    #[test]
    fn bad_free_rejected() {
        let (mut ctx, mut buddy, layout, mut pf) = mk();
        assert!(pf
            .free(
                &mut ctx,
                &mut buddy,
                &layout,
                0,
                Kva(layout.page_offset_base.raw() + 0x40000)
            )
            .is_err());
        let a = pf
            .alloc(&mut ctx, &mut buddy, &layout, 0, 512, "rx")
            .unwrap();
        pf.free(&mut ctx, &mut buddy, &layout, 0, a).unwrap();
        assert!(pf.free(&mut ctx, &mut buddy, &layout, 0, a).is_err());
    }

    #[test]
    fn fragments_are_cacheline_aligned() {
        let (mut ctx, mut buddy, layout, mut pf) = mk();
        for size in [100, 700, 1500, 2048, 3000] {
            let k = pf
                .alloc(&mut ctx, &mut buddy, &layout, 0, size, "rx")
                .unwrap();
            assert_eq!(k.raw() % 64, 0);
        }
    }
}
