//! SLUB-style `kmalloc` size-class caches.
//!
//! Two properties matter to the paper and are modeled faithfully:
//!
//! 1. **Freelist-in-object**: a free object's first 8 bytes hold the KVA
//!    of the next free object *on the page itself*. When a driver
//!    DMA-maps a kmalloc'd buffer, this allocator metadata shares the
//!    mapped page — the type (b) exposure of Figure 1 (and the classic
//!    freelist-corruption attack surface [Phrack 66-8]).
//! 2. **Size-class co-location**: unrelated objects of similar size share
//!    pages, so a DMA-mapped object randomly exposes its page neighbours —
//!    the type (d) exposure that D-KASAN exists to catch.

use crate::buddy::BuddyAllocator;
use crate::phys::PhysMemory;
use dma_core::{DmaError, Event, KernelLayout, Kva, Pfn, Result, SimCtx, PAGE_SIZE};
use std::collections::HashMap;

/// The kmalloc size classes, as in Linux (plus the 96/192 odd sizes).
pub const SIZE_CLASSES: [usize; 13] = [
    8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096, 8192,
];

/// Largest size served from a slab; bigger requests go straight to the
/// buddy allocator (`kmalloc_large`).
pub const KMALLOC_MAX_CACHE: usize = 8192;

#[derive(Clone, Debug)]
struct Slab {
    /// KVA of the first free object, 0 if the slab is full.
    free_head: u64,
    /// Objects currently allocated from this slab.
    inuse: u32,
}

#[derive(Clone, Debug)]
struct Cache {
    object_size: usize,
    order: u32,
    objects_per_slab: u32,
    /// Slabs with at least one free object (LIFO for cache locality).
    partial: Vec<Pfn>,
    /// All live slabs, keyed by base PFN.
    slabs: HashMap<u64, Slab>,
}

impl Cache {
    fn new(object_size: usize) -> Self {
        let order = if object_size <= PAGE_SIZE { 0 } else { 1 };
        let slab_bytes = PAGE_SIZE << order;
        Cache {
            object_size,
            order,
            objects_per_slab: (slab_bytes / object_size) as u32,
            partial: Vec::new(),
            slabs: HashMap::new(),
        }
    }

    fn cache_name(&self) -> &'static str {
        match self.object_size {
            8 => "kmalloc-8",
            16 => "kmalloc-16",
            32 => "kmalloc-32",
            64 => "kmalloc-64",
            96 => "kmalloc-96",
            128 => "kmalloc-128",
            192 => "kmalloc-192",
            256 => "kmalloc-256",
            512 => "kmalloc-512",
            1024 => "kmalloc-1k",
            2048 => "kmalloc-2k",
            4096 => "kmalloc-4k",
            8192 => "kmalloc-8k",
            _ => "kmalloc-?",
        }
    }
}

/// Record of a live allocation (for double-free detection and event
/// reporting; SLUB itself keeps no such table, but the simulator checks
/// invariants the kernel merely hopes for).
#[derive(Debug, Clone, Copy)]
struct LiveObject {
    cache_idx: usize,
    requested: usize,
}

/// The set of kmalloc caches plus the page→cache ownership index.
#[derive(Clone, Debug)]
pub struct KmallocCaches {
    caches: Vec<Cache>,
    /// Every page of every slab → (cache index, slab base PFN).
    page_owner: HashMap<u64, (usize, u64)>,
    /// Live objects by KVA.
    live: HashMap<u64, LiveObject>,
    /// kmalloc_large allocations: KVA → buddy order.
    large: HashMap<u64, u32>,
}

impl Default for KmallocCaches {
    fn default() -> Self {
        Self::new()
    }
}

impl KmallocCaches {
    /// Creates empty caches.
    pub fn new() -> Self {
        KmallocCaches {
            caches: SIZE_CLASSES.iter().map(|&s| Cache::new(s)).collect(),
            page_owner: HashMap::new(),
            live: HashMap::new(),
            large: HashMap::new(),
        }
    }

    /// Returns the size class a request of `size` bytes is served from.
    pub fn size_class(size: usize) -> Option<usize> {
        SIZE_CLASSES.iter().copied().find(|&c| c >= size)
    }

    /// Returns the cache name serving `kva`, if it is a live slab object.
    pub fn cache_of(&self, kva: Kva) -> Option<&'static str> {
        let obj = self.live.get(&kva.raw())?;
        Some(self.caches[obj.cache_idx].cache_name())
    }

    /// Returns the object size class backing a live allocation.
    pub fn allocated_size(&self, kva: Kva) -> Option<usize> {
        self.live
            .get(&kva.raw())
            .map(|o| self.caches[o.cache_idx].object_size)
    }

    /// Returns the size originally *requested* for a live allocation
    /// (reported by D-KASAN, which shows request sizes, not class sizes).
    pub fn requested_size(&self, kva: Kva) -> Option<usize> {
        self.live.get(&kva.raw()).map(|o| o.requested)
    }

    /// `true` if `pfn` currently backs a slab.
    pub fn is_slab_page(&self, pfn: Pfn) -> bool {
        self.page_owner.contains_key(&pfn.raw())
    }

    /// Allocates `size` bytes, returning the object's KVA.
    ///
    /// Objects ≤ [`KMALLOC_MAX_CACHE`] come from size-class slabs; larger
    /// requests are whole-page allocations.
    #[allow(clippy::too_many_arguments)]
    pub fn kmalloc(
        &mut self,
        ctx: &mut SimCtx,
        phys: &mut PhysMemory,
        buddy: &mut BuddyAllocator,
        layout: &KernelLayout,
        cpu: usize,
        size: usize,
        site: &'static str,
    ) -> Result<Kva> {
        if size == 0 {
            return Err(DmaError::InvalidAlloc(0));
        }
        if size > KMALLOC_MAX_CACHE {
            return self.kmalloc_large(ctx, buddy, layout, cpu, size, site);
        }
        let cache_idx = SIZE_CLASSES
            .iter()
            .position(|&c| c >= size)
            .expect("size fits the largest class");

        // Grab a slab with space, creating one if needed.
        let mut fresh_slab = false;
        let base = loop {
            match self.caches[cache_idx].partial.last().copied() {
                Some(p) => break p,
                None => {
                    self.new_slab(ctx, phys, buddy, layout, cpu, cache_idx, site)?;
                    fresh_slab = true;
                }
            }
        };
        ctx.metrics.incr(if fresh_slab {
            "sim_mem.kmalloc.fresh"
        } else {
            "sim_mem.kmalloc.reuse"
        });

        let cache = &mut self.caches[cache_idx];
        let slab = cache
            .slabs
            .get_mut(&base.raw())
            .expect("partial slab exists");
        let kva = Kva(slab.free_head);
        debug_assert_ne!(kva.raw(), 0, "partial slab with empty freelist");
        // Pop the freelist: the next pointer lives in the object itself.
        let pa = layout.kva_to_phys(kva)?;
        slab.free_head = phys.read_u64(pa)?;
        slab.inuse += 1;
        if slab.free_head == 0 {
            // Slab is now full; drop it from the partial list.
            let pos = cache
                .partial
                .iter()
                .position(|p| *p == base)
                .expect("was partial");
            cache.partial.swap_remove(pos);
        }
        // Scrub the freelist pointer so the caller sees zeroed-ish memory.
        phys.write_u64(pa, 0)?;

        self.live.insert(
            kva.raw(),
            LiveObject {
                cache_idx,
                requested: size,
            },
        );
        ctx.emit(Event::Alloc {
            at: ctx.clock.now(),
            kva,
            size,
            site,
            cache: self.caches[cache_idx].cache_name(),
        });
        Ok(kva)
    }

    /// Creates a fresh slab for `cache_idx` and threads its freelist
    /// through the objects on the page(s).
    #[allow(clippy::too_many_arguments)]
    fn new_slab(
        &mut self,
        ctx: &mut SimCtx,
        phys: &mut PhysMemory,
        buddy: &mut BuddyAllocator,
        layout: &KernelLayout,
        cpu: usize,
        cache_idx: usize,
        site: &'static str,
    ) -> Result<()> {
        let (order, objs, osize) = {
            let c = &self.caches[cache_idx];
            (c.order, c.objects_per_slab, c.object_size)
        };
        let base = buddy.alloc_pages(ctx, cpu, order, site)?;
        let base_kva = layout.pfn_to_kva(base)?;
        // Thread the freelist: object i points at object i+1; last → 0.
        for i in 0..objs {
            let obj = Kva(base_kva.raw() + (i as u64) * osize as u64);
            let next = if i + 1 < objs {
                base_kva.raw() + ((i + 1) as u64) * osize as u64
            } else {
                0
            };
            phys.write_u64(layout.kva_to_phys(obj)?, next)?;
        }
        let cache = &mut self.caches[cache_idx];
        cache.slabs.insert(
            base.raw(),
            Slab {
                free_head: base_kva.raw(),
                inuse: 0,
            },
        );
        cache.partial.push(base);
        for i in 0..(1u64 << order) {
            self.page_owner
                .insert(base.raw() + i, (cache_idx, base.raw()));
        }
        Ok(())
    }

    fn kmalloc_large(
        &mut self,
        ctx: &mut SimCtx,
        buddy: &mut BuddyAllocator,
        layout: &KernelLayout,
        cpu: usize,
        size: usize,
        site: &'static str,
    ) -> Result<Kva> {
        let pages = size.div_ceil(PAGE_SIZE);
        let order = pages.next_power_of_two().trailing_zeros();
        let pfn = buddy.alloc_pages(ctx, cpu, order, site)?;
        let kva = layout.pfn_to_kva(pfn)?;
        self.large.insert(kva.raw(), order);
        ctx.metrics.incr("sim_mem.kmalloc.fresh");
        ctx.emit(Event::Alloc {
            at: ctx.clock.now(),
            kva,
            size,
            site,
            cache: "kmalloc-large",
        });
        Ok(kva)
    }

    /// Frees an object previously returned by [`Self::kmalloc`].
    pub fn kfree(
        &mut self,
        ctx: &mut SimCtx,
        phys: &mut PhysMemory,
        buddy: &mut BuddyAllocator,
        layout: &KernelLayout,
        cpu: usize,
        kva: Kva,
    ) -> Result<()> {
        if let Some(order) = self.large.remove(&kva.raw()) {
            let pfn = layout.kva_to_pfn(kva)?;
            buddy.free_pages(ctx, cpu, pfn, order)?;
            ctx.emit(Event::Free {
                at: ctx.clock.now(),
                kva,
            });
            return Ok(());
        }
        let obj = self
            .live
            .remove(&kva.raw())
            .ok_or(DmaError::BadFree(kva.raw()))?;
        let cache_idx = obj.cache_idx;
        let pfn = layout.kva_to_pfn(kva)?;
        let (owner_idx, base) = *self
            .page_owner
            .get(&pfn.raw())
            .ok_or(DmaError::BadFree(kva.raw()))?;
        debug_assert_eq!(owner_idx, cache_idx);

        let cache = &mut self.caches[cache_idx];
        let slab = cache
            .slabs
            .get_mut(&base)
            .ok_or(DmaError::BadFree(kva.raw()))?;
        // Push onto the freelist (pointer written into the object).
        let was_full = slab.free_head == 0;
        phys.write_u64(layout.kva_to_phys(kva)?, slab.free_head)?;
        slab.free_head = kva.raw();
        slab.inuse -= 1;
        ctx.emit(Event::Free {
            at: ctx.clock.now(),
            kva,
        });

        if was_full {
            cache.partial.push(Pfn(base));
        }
        if slab.inuse == 0 && cache.partial.len() > 1 {
            // Return fully-free slabs to the buddy when we have spares.
            let order = cache.order;
            cache.slabs.remove(&base);
            if let Some(pos) = cache.partial.iter().position(|p| p.raw() == base) {
                cache.partial.swap_remove(pos);
            }
            for i in 0..(1u64 << order) {
                self.page_owner.remove(&(base + i));
            }
            buddy.free_pages(ctx, cpu, Pfn(base), order)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dma_core::KernelLayout;

    fn mk() -> (
        SimCtx,
        PhysMemory,
        BuddyAllocator,
        KernelLayout,
        KmallocCaches,
    ) {
        let layout = KernelLayout::identity(64 << 20);
        (
            SimCtx::new(),
            PhysMemory::new(64 << 20),
            BuddyAllocator::new(Pfn(16), Pfn((64 << 20) / PAGE_SIZE as u64), 1),
            layout,
            KmallocCaches::new(),
        )
    }

    #[test]
    fn size_class_rounding() {
        assert_eq!(KmallocCaches::size_class(1), Some(8));
        assert_eq!(KmallocCaches::size_class(8), Some(8));
        assert_eq!(KmallocCaches::size_class(9), Some(16));
        assert_eq!(KmallocCaches::size_class(100), Some(128));
        assert_eq!(KmallocCaches::size_class(512), Some(512));
        assert_eq!(KmallocCaches::size_class(8192), Some(8192));
        assert_eq!(KmallocCaches::size_class(8193), None);
    }

    #[test]
    fn same_class_objects_share_a_page() {
        // Type (d) substrate: similar-size objects co-reside on a page.
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let a = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 512, "a")
            .unwrap();
        let b = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 500, "b")
            .unwrap();
        assert_eq!(a.page_align_down(), b.page_align_down());
        assert_eq!(b - a, 512);
    }

    #[test]
    fn freelist_pointer_lives_in_free_object() {
        // The type (b) exposure: a freed neighbour's next-pointer is plain
        // data on the shared page, readable/corruptible over DMA.
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let a = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 512, "a")
            .unwrap();
        let b = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 512, "b")
            .unwrap();
        km.kfree(&mut ctx, &mut phys, &mut buddy, &layout, 0, a)
            .unwrap();
        // `a` now heads the freelist; its first 8 bytes hold the old head,
        // which was the next unallocated object right after `b`.
        let next = phys.read_u64(layout.kva_to_phys(a).unwrap()).unwrap();
        assert_eq!(next, b.raw() + 512);
    }

    #[test]
    fn freed_object_is_reused_lifo() {
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let a = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 256, "a")
            .unwrap();
        km.kfree(&mut ctx, &mut phys, &mut buddy, &layout, 0, a)
            .unwrap();
        let b = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 256, "b")
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn double_free_rejected() {
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let a = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 64, "a")
            .unwrap();
        km.kfree(&mut ctx, &mut phys, &mut buddy, &layout, 0, a)
            .unwrap();
        assert_eq!(
            km.kfree(&mut ctx, &mut phys, &mut buddy, &layout, 0, a),
            Err(DmaError::BadFree(a.raw()))
        );
    }

    #[test]
    fn zero_size_rejected() {
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        assert!(km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 0, "z")
            .is_err());
    }

    #[test]
    fn large_allocation_roundtrip() {
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let k = km
            .kmalloc(
                &mut ctx,
                &mut phys,
                &mut buddy,
                &layout,
                0,
                64 * 1024,
                "lro",
            )
            .unwrap();
        assert!(k.is_page_aligned());
        km.kfree(&mut ctx, &mut phys, &mut buddy, &layout, 0, k)
            .unwrap();
    }

    #[test]
    fn a_full_slab_opens_a_new_page() {
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let per_page = PAGE_SIZE / 1024;
        let first = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 1024, "x")
            .unwrap();
        for _ in 1..per_page {
            km.kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 1024, "x")
                .unwrap();
        }
        let next = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 1024, "x")
            .unwrap();
        assert_ne!(first.page_align_down(), next.page_align_down());
    }

    #[test]
    fn allocated_size_and_cache_lookup() {
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let a = km
            .kmalloc(&mut ctx, &mut phys, &mut buddy, &layout, 0, 300, "a")
            .unwrap();
        assert_eq!(km.allocated_size(a), Some(512));
        assert_eq!(km.cache_of(a), Some("kmalloc-512"));
        assert!(km.is_slab_page(layout.kva_to_pfn(a).unwrap()));
    }

    #[test]
    fn exhausting_and_refilling_many_objects() {
        let (mut ctx, mut phys, mut buddy, layout, mut km) = mk();
        let mut objs = Vec::new();
        for i in 0..1000 {
            objs.push(
                km.kmalloc(
                    &mut ctx,
                    &mut phys,
                    &mut buddy,
                    &layout,
                    0,
                    96 + (i % 3),
                    "m",
                )
                .unwrap(),
            );
        }
        let distinct: std::collections::HashSet<_> = objs.iter().map(|k| k.raw()).collect();
        assert_eq!(distinct.len(), objs.len());
        for o in objs {
            km.kfree(&mut ctx, &mut phys, &mut buddy, &layout, 0, o)
                .unwrap();
        }
    }
}
