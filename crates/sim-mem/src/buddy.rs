//! A buddy page allocator with per-CPU hot-page caches.
//!
//! Placement behaviour is what the paper's attacks depend on:
//!
//! - freed order-0 pages go to a per-CPU LIFO cache and are handed back
//!   immediately on the next allocation ("Linux reuses hot pages",
//!   §5.2.1 point 2), which is what lets a page freed while still in a
//!   stale IOTLB entry be re-purposed under the attacker's reach;
//! - allocation order is deterministic for a given call sequence, which
//!   is what makes the boot process deterministic enough for the
//!   RingFlood PFN survey (§5.3).

use dma_core::{DmaError, Event, Pfn, Result, SimCtx};
use std::collections::HashMap;

/// Maximum buddy order (2^10 pages = 4 MiB blocks), as in Linux.
pub const MAX_ORDER: u32 = 10;
/// Capacity of each per-CPU hot-page cache.
const PCP_CACHE_MAX: usize = 64;

/// The buddy allocator over a contiguous PFN range.
#[derive(Clone, Debug)]
pub struct BuddyAllocator {
    /// Free blocks per order, used as LIFO stacks (hot reuse).
    free_lists: Vec<Vec<Pfn>>,
    /// Every free block's order, for O(1) buddy lookup during coalescing.
    free_blocks: HashMap<u64, u32>,
    /// Per-CPU caches of hot order-0 pages.
    pcp: Vec<Vec<Pfn>>,
    first_pfn: Pfn,
    end_pfn: Pfn,
    free_pages: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing frames `[first, end)`. Frames below
    /// `first` model the kernel image / reserved low memory.
    pub fn new(first: Pfn, end: Pfn, num_cpus: usize) -> Self {
        assert!(first.raw() < end.raw(), "empty buddy range");
        let mut b = BuddyAllocator {
            free_lists: (0..=MAX_ORDER).map(|_| Vec::new()).collect(),
            free_blocks: HashMap::new(),
            pcp: (0..num_cpus.max(1)).map(|_| Vec::new()).collect(),
            first_pfn: first,
            end_pfn: end,
            free_pages: 0,
        };
        // Seed the free lists with maximal aligned blocks covering the
        // range, highest addresses pushed last so the *lowest* addresses
        // come off the stacks first — matching Linux's tendency to hand
        // out low memory early in boot.
        let mut pfn = first.raw();
        let mut blocks = Vec::new();
        while pfn < end.raw() {
            let align_order = pfn.trailing_zeros().min(MAX_ORDER);
            let mut order = align_order;
            while pfn + (1 << order) > end.raw() {
                order -= 1;
            }
            blocks.push((Pfn(pfn), order));
            pfn += 1 << order;
        }
        for (pfn, order) in blocks.into_iter().rev() {
            b.insert_free(pfn, order);
        }
        b
    }

    fn insert_free(&mut self, pfn: Pfn, order: u32) {
        self.free_lists[order as usize].push(pfn);
        self.free_blocks.insert(pfn.raw(), order);
        self.free_pages += 1 << order;
    }

    fn remove_specific(&mut self, pfn: Pfn, order: u32) {
        let list = &mut self.free_lists[order as usize];
        let pos = list
            .iter()
            .position(|p| *p == pfn)
            .expect("free block missing from its list");
        list.swap_remove(pos);
        self.free_blocks.remove(&pfn.raw());
        self.free_pages -= 1 << order;
    }

    /// Number of currently free pages (including per-CPU cached ones).
    pub fn free_page_count(&self) -> u64 {
        self.free_pages + self.pcp.iter().map(|l| l.len() as u64).sum::<u64>()
    }

    /// Allocates `2^order` contiguous, naturally aligned frames.
    ///
    /// Order-0 requests are served from the per-CPU hot cache first.
    pub fn alloc_pages(
        &mut self,
        ctx: &mut SimCtx,
        cpu: usize,
        order: u32,
        site: &'static str,
    ) -> Result<Pfn> {
        if order > MAX_ORDER {
            return Err(DmaError::InvalidAlloc(1usize << order));
        }
        if order == 0 {
            let idx = cpu % self.pcp.len();
            if let Some(pfn) = self.pcp[idx].pop() {
                ctx.emit(Event::PageAlloc {
                    at: ctx.clock.now(),
                    pfn,
                    order,
                    site,
                });
                return Ok(pfn);
            }
        }
        let pfn = self.alloc_from_lists(order)?;
        ctx.emit(Event::PageAlloc {
            at: ctx.clock.now(),
            pfn,
            order,
            site,
        });
        Ok(pfn)
    }

    fn alloc_from_lists(&mut self, order: u32) -> Result<Pfn> {
        // Find the smallest available order >= requested.
        let mut o = order;
        while (o as usize) < self.free_lists.len() && self.free_lists[o as usize].is_empty() {
            o += 1;
        }
        if o > MAX_ORDER {
            return Err(DmaError::OutOfMemory);
        }
        let pfn = self.free_lists[o as usize]
            .pop()
            .expect("checked non-empty");
        self.free_blocks.remove(&pfn.raw());
        self.free_pages -= 1 << o;
        // Split down to the requested order, freeing the upper halves.
        while o > order {
            o -= 1;
            let buddy = Pfn(pfn.raw() + (1 << o));
            self.insert_free(buddy, o);
        }
        Ok(pfn)
    }

    /// Frees `2^order` frames starting at `pfn`.
    ///
    /// Order-0 frees land in the per-CPU hot cache; overflow spills back
    /// into the buddy lists with coalescing.
    pub fn free_pages(&mut self, ctx: &mut SimCtx, cpu: usize, pfn: Pfn, order: u32) -> Result<()> {
        if order > MAX_ORDER
            || pfn.raw() < self.first_pfn.raw()
            || pfn.raw() + (1 << order) > self.end_pfn.raw()
            || pfn.raw() & ((1 << order) - 1) != 0
        {
            return Err(DmaError::BadFree(pfn.base().raw()));
        }
        if self.free_blocks.contains_key(&pfn.raw()) {
            return Err(DmaError::BadFree(pfn.base().raw()));
        }
        ctx.emit(Event::PageFree {
            at: ctx.clock.now(),
            pfn,
            order,
        });
        if order == 0 {
            let idx = cpu % self.pcp.len();
            let cache = &mut self.pcp[idx];
            cache.push(pfn);
            if cache.len() <= PCP_CACHE_MAX {
                return Ok(());
            }
            // Spill the oldest half back to the buddy lists.
            let spill: Vec<Pfn> = cache.drain(..PCP_CACHE_MAX / 2).collect();
            for p in spill {
                self.free_with_coalesce(p, 0);
            }
            return Ok(());
        }
        self.free_with_coalesce(pfn, order);
        Ok(())
    }

    fn free_with_coalesce(&mut self, mut pfn: Pfn, mut order: u32) {
        while order < MAX_ORDER {
            let buddy = Pfn(pfn.raw() ^ (1 << order));
            if buddy.raw() < self.first_pfn.raw() || buddy.raw() + (1 << order) > self.end_pfn.raw()
            {
                break;
            }
            match self.free_blocks.get(&buddy.raw()) {
                Some(&bo) if bo == order => {
                    self.remove_specific(buddy, order);
                    pfn = Pfn(pfn.raw() & !(1u64 << order));
                    order += 1;
                }
                _ => break,
            }
        }
        self.insert_free(pfn, order);
    }

    /// First managed frame.
    pub fn first_pfn(&self) -> Pfn {
        self.first_pfn
    }

    /// One past the last managed frame.
    pub fn end_pfn(&self) -> Pfn {
        self.end_pfn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> (SimCtx, BuddyAllocator) {
        (
            SimCtx::new(),
            BuddyAllocator::new(Pfn(16), Pfn(16 + 4096), 2),
        )
    }

    #[test]
    fn alloc_is_aligned_and_in_range() {
        let (mut ctx, mut b) = mk();
        for order in 0..=MAX_ORDER {
            let pfn = b.alloc_pages(&mut ctx, 0, order, "t").unwrap();
            assert_eq!(
                pfn.raw() & ((1 << order) - 1),
                0,
                "order {order} misaligned"
            );
            assert!(pfn.raw() >= 16);
            assert!(pfn.raw() + (1 << order) <= 16 + 4096);
            b.free_pages(&mut ctx, 0, pfn, order).unwrap();
        }
    }

    #[test]
    fn hot_page_is_reused_immediately() {
        // §5.2.1: "Linux reuses hot pages ... as they are likely to reside
        // in the CPU caches". A freed order-0 page must come back on the
        // very next same-CPU allocation.
        let (mut ctx, mut b) = mk();
        let a = b.alloc_pages(&mut ctx, 0, 0, "t").unwrap();
        let _other = b.alloc_pages(&mut ctx, 0, 0, "t").unwrap();
        b.free_pages(&mut ctx, 0, a, 0).unwrap();
        let again = b.alloc_pages(&mut ctx, 0, 0, "t").unwrap();
        assert_eq!(a, again);
    }

    #[test]
    fn coalescing_restores_high_orders() {
        let (mut ctx, mut b) = mk();
        let before = b.free_page_count();
        let big = b.alloc_pages(&mut ctx, 0, MAX_ORDER, "t").unwrap();
        // Split into order-0 frees and ensure they merge back.
        for i in 0..(1u64 << MAX_ORDER) {
            b.free_with_coalesce(Pfn(big.raw() + i), 0);
        }
        assert_eq!(b.free_page_count(), before);
        // The merged block must be allocatable again at MAX_ORDER.
        let re = b.alloc_pages(&mut ctx, 0, MAX_ORDER, "t").unwrap();
        assert_eq!(re, big);
    }

    #[test]
    fn double_free_detected() {
        let (mut ctx, mut b) = mk();
        let p = b.alloc_pages(&mut ctx, 0, 3, "t").unwrap();
        b.free_pages(&mut ctx, 0, p, 3).unwrap();
        assert_eq!(
            b.free_pages(&mut ctx, 0, p, 3),
            Err(DmaError::BadFree(p.base().raw()))
        );
    }

    #[test]
    fn misaligned_or_out_of_range_free_rejected() {
        let (mut ctx, mut b) = mk();
        assert!(b.free_pages(&mut ctx, 0, Pfn(17), 1).is_err()); // misaligned
        assert!(b.free_pages(&mut ctx, 0, Pfn(2), 0).is_err()); // below range
        assert!(b.free_pages(&mut ctx, 0, Pfn(1 << 32), 0).is_err()); // above range
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut ctx = SimCtx::new();
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(8), 1);
        let mut got = Vec::new();
        loop {
            match b.alloc_pages(&mut ctx, 0, 0, "t") {
                Ok(p) => got.push(p),
                Err(DmaError::OutOfMemory) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(got.len(), 8);
        // All distinct.
        let set: std::collections::HashSet<_> = got.iter().map(|p| p.raw()).collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn deterministic_sequence_across_instances() {
        let seq = |n: usize| -> Vec<u64> {
            let (mut ctx, mut b) = mk();
            (0..n)
                .map(|i| {
                    b.alloc_pages(&mut ctx, i % 2, (i % 3) as u32, "t")
                        .unwrap()
                        .raw()
                })
                .collect()
        };
        assert_eq!(seq(64), seq(64));
    }

    #[test]
    fn events_emitted_when_traced() {
        let mut ctx = SimCtx::traced();
        let mut b = BuddyAllocator::new(Pfn(0), Pfn(64), 1);
        let p = b.alloc_pages(&mut ctx, 0, 1, "site_x").unwrap();
        b.free_pages(&mut ctx, 0, p, 1).unwrap();
        let evs = ctx.trace.drain();
        assert!(matches!(evs[0], Event::PageAlloc { site: "site_x", .. }));
        assert!(matches!(evs[1], Event::PageFree { .. }));
    }
}
