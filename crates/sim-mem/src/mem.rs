//! The [`MemorySystem`] facade: KASLR layout + physical memory + the
//! three allocators, with all CPU access routed through KVAs.
//!
//! Devices never touch this type directly; their accesses are brokered by
//! the IOMMU in `sim-iommu`, which translates IOVAs to physical addresses
//! and only then reads/writes [`PhysMemory`].

use crate::buddy::BuddyAllocator;
use crate::page_frag::PageFragAllocator;
use crate::phys::PhysMemory;
use crate::slab::KmallocCaches;
use dma_core::{
    DetRng, DmaError, Event, KernelLayout, Kva, Pfn, Result, SimCtx, PAGE_SHIFT, PAGE_SIZE,
};
use std::sync::Arc;

/// Configuration of a simulated machine's memory.
#[derive(Clone, Debug)]
pub struct MemConfig {
    /// Physical memory size in bytes.
    pub phys_bytes: u64,
    /// Number of CPUs (per-CPU allocator instances).
    pub num_cpus: usize,
    /// KASLR seed; `None` disables randomization.
    pub kaslr_seed: Option<u64>,
    /// Low frames reserved for the kernel image / firmware.
    pub reserved_pages: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            phys_bytes: 256 << 20,
            num_cpus: 4,
            kaslr_seed: None,
            reserved_pages: 256,
        }
    }
}

/// A machine's memory: layout, backing store, and allocators.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    /// The (possibly randomized) kernel virtual-memory layout.
    pub layout: KernelLayout,
    /// Backing physical frames.
    pub phys: PhysMemory,
    /// Page allocator.
    pub buddy: BuddyAllocator,
    /// kmalloc caches.
    pub kmalloc: KmallocCaches,
    /// page_frag caches.
    pub frag: PageFragAllocator,
    /// Synthetic kernel text bytes, mapped read/execute-only at
    /// `layout.text_base`. Shared copy-on-write: the section is 16 MiB
    /// of mostly-identical bytes and W^X keeps CPU stores out, so
    /// cloned machines (boot templates, sharded campaigns) alias one
    /// buffer until someone calls [`MemorySystem::install_text`].
    text: Arc<Vec<u8>>,
    cur_cpu: usize,
}

impl MemorySystem {
    /// Builds a memory system from `config`.
    pub fn new(config: &MemConfig) -> Self {
        let layout = match config.kaslr_seed {
            Some(seed) => {
                let mut rng = DetRng::new(seed);
                KernelLayout::randomize(&mut rng, config.phys_bytes)
            }
            None => KernelLayout::identity(config.phys_bytes),
        };
        let end = Pfn(config.phys_bytes >> PAGE_SHIFT);
        MemorySystem {
            phys: PhysMemory::new(config.phys_bytes),
            buddy: BuddyAllocator::new(Pfn(config.reserved_pages), end, config.num_cpus),
            kmalloc: KmallocCaches::new(),
            frag: PageFragAllocator::new(config.num_cpus),
            text: Arc::new(vec![0; layout.text_size as usize]),
            layout,
            cur_cpu: 0,
        }
    }

    /// Installs synthetic kernel text bytes (the gadget corpus).
    pub fn install_text(&mut self, bytes: &[u8]) {
        let text = Arc::make_mut(&mut self.text);
        let n = bytes.len().min(text.len());
        text[..n].copy_from_slice(&bytes[..n]);
    }

    /// Read-only view of the kernel text section.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Selects the CPU subsequent allocations are attributed to.
    pub fn set_cpu(&mut self, cpu: usize) {
        self.cur_cpu = cpu;
    }

    /// Currently selected CPU.
    pub fn cpu(&self) -> usize {
        self.cur_cpu
    }

    // ------------------------------------------------------------------
    // Allocation API (Linux-shaped).
    // ------------------------------------------------------------------

    /// `alloc_pages()`: 2^order frames from the buddy allocator.
    ///
    /// Fault-injection site `sim_mem.alloc_pages` (the
    /// `fail_page_alloc` analog): an injected hit fails the request
    /// with `OutOfMemory` before any allocator state changes.
    pub fn alloc_pages(&mut self, ctx: &mut SimCtx, order: u32, site: &'static str) -> Result<Pfn> {
        ctx.metrics.incr("sim_mem.alloc_pages.calls");
        if ctx.fault("sim_mem.alloc_pages") {
            return Err(DmaError::OutOfMemory);
        }
        let pfn = ctx.prof("mem.alloc_pages", |ctx| {
            self.buddy.alloc_pages(ctx, self.cur_cpu, order, site)
        })?;
        ctx.metrics
            .gauge_set("sim_mem.buddy.free_pages", self.buddy.free_page_count());
        Ok(pfn)
    }

    /// `__free_pages()`.
    pub fn free_pages(&mut self, ctx: &mut SimCtx, pfn: Pfn, order: u32) -> Result<()> {
        ctx.metrics.incr("sim_mem.free_pages.calls");
        ctx.prof("mem.free_pages", |ctx| {
            self.buddy.free_pages(ctx, self.cur_cpu, pfn, order)
        })?;
        ctx.metrics
            .gauge_set("sim_mem.buddy.free_pages", self.buddy.free_page_count());
        Ok(())
    }

    /// `kmalloc()`.
    ///
    /// Fault-injection site `sim_mem.kmalloc` (the `failslab` analog):
    /// an injected hit fails the request with `OutOfMemory` before any
    /// cache state changes.
    pub fn kmalloc(&mut self, ctx: &mut SimCtx, size: usize, site: &'static str) -> Result<Kva> {
        ctx.metrics.incr("sim_mem.kmalloc.calls");
        ctx.metrics.observe("sim_mem.kmalloc.size", size as u64);
        if ctx.fault("sim_mem.kmalloc") {
            return Err(DmaError::OutOfMemory);
        }
        ctx.prof("mem.kmalloc", |ctx| {
            self.kmalloc.kmalloc(
                ctx,
                &mut self.phys,
                &mut self.buddy,
                &self.layout,
                self.cur_cpu,
                size,
                site,
            )
        })
    }

    /// `kzalloc()`: kmalloc + zero.
    pub fn kzalloc(&mut self, ctx: &mut SimCtx, size: usize, site: &'static str) -> Result<Kva> {
        let kva = self.kmalloc(ctx, size, site)?;
        self.phys.zero(self.layout.kva_to_phys(kva)?, size)?;
        Ok(kva)
    }

    /// `kfree()`.
    pub fn kfree(&mut self, ctx: &mut SimCtx, kva: Kva) -> Result<()> {
        ctx.metrics.incr("sim_mem.kfree.calls");
        ctx.prof("mem.kfree", |ctx| {
            self.kmalloc.kfree(
                ctx,
                &mut self.phys,
                &mut self.buddy,
                &self.layout,
                self.cur_cpu,
                kva,
            )
        })
    }

    /// `page_frag_alloc()` (used by `netdev_alloc_skb`/`napi_alloc_skb`).
    ///
    /// Fault-injection site `sim_mem.page_frag_alloc`: an injected hit
    /// fails with `OutOfMemory` before touching the per-CPU frag cache.
    pub fn page_frag_alloc(
        &mut self,
        ctx: &mut SimCtx,
        size: usize,
        site: &'static str,
    ) -> Result<Kva> {
        ctx.metrics.incr("sim_mem.page_frag.allocs");
        if ctx.fault("sim_mem.page_frag_alloc") {
            return Err(DmaError::OutOfMemory);
        }
        ctx.prof("mem.page_frag.alloc", |ctx| {
            self.frag
                .alloc(ctx, &mut self.buddy, &self.layout, self.cur_cpu, size, site)
        })
    }

    /// `page_frag_free()` (a.k.a. `skb_free_frag`).
    pub fn page_frag_free(&mut self, ctx: &mut SimCtx, kva: Kva) -> Result<()> {
        ctx.metrics.incr("sim_mem.page_frag.frees");
        ctx.prof("mem.page_frag.free", |ctx| {
            self.frag
                .free(ctx, &mut self.buddy, &self.layout, self.cur_cpu, kva)
        })
    }

    // ------------------------------------------------------------------
    // CPU access path (by KVA).
    // ------------------------------------------------------------------

    /// CPU load of `buf.len()` bytes at `kva`.
    ///
    /// Direct-map reads hit physical memory; text reads hit the synthetic
    /// text section. Emits a `CpuAccess` event when tracing is on.
    pub fn cpu_read(
        &self,
        ctx: &mut SimCtx,
        kva: Kva,
        buf: &mut [u8],
        site: &'static str,
    ) -> Result<()> {
        if self.layout.in_text(kva) {
            let off = (kva.raw() - self.layout.text_base.raw()) as usize;
            let end = off
                .checked_add(buf.len())
                .ok_or(DmaError::NotDirectMap(kva.raw()))?;
            if end > self.text.len() {
                return Err(DmaError::NotDirectMap(kva.raw()));
            }
            buf.copy_from_slice(&self.text[off..end]);
        } else {
            let pa = self.layout.kva_to_phys(kva)?;
            self.phys.read(pa, buf)?;
        }
        ctx.emit(Event::CpuAccess {
            at: ctx.clock.now(),
            kva,
            len: buf.len(),
            write: false,
            site,
        });
        Ok(())
    }

    /// CPU store of `buf` at `kva`. Kernel text is write-protected (W^X).
    pub fn cpu_write(
        &mut self,
        ctx: &mut SimCtx,
        kva: Kva,
        buf: &[u8],
        site: &'static str,
    ) -> Result<()> {
        if self.layout.in_text(kva) {
            return Err(DmaError::CpuFault("write to read-only kernel text"));
        }
        let pa = self.layout.kva_to_phys(kva)?;
        self.phys.write(pa, buf)?;
        ctx.emit(Event::CpuAccess {
            at: ctx.clock.now(),
            kva,
            len: buf.len(),
            write: true,
            site,
        });
        Ok(())
    }

    /// CPU load of a little-endian u64.
    pub fn cpu_read_u64(&self, ctx: &mut SimCtx, kva: Kva, site: &'static str) -> Result<u64> {
        let mut b = [0u8; 8];
        self.cpu_read(ctx, kva, &mut b, site)?;
        Ok(u64::from_le_bytes(b))
    }

    /// CPU store of a little-endian u64.
    pub fn cpu_write_u64(
        &mut self,
        ctx: &mut SimCtx,
        kva: Kva,
        v: u64,
        site: &'static str,
    ) -> Result<()> {
        self.cpu_write(ctx, kva, &v.to_le_bytes(), site)
    }

    /// Number of whole pages of physical memory.
    pub fn num_pages(&self) -> u64 {
        self.phys.size() / PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> (SimCtx, MemorySystem) {
        (SimCtx::new(), MemorySystem::new(&MemConfig::default()))
    }

    #[test]
    fn kmalloc_roundtrip_through_cpu_access() {
        let (mut ctx, mut m) = mk();
        let k = m.kmalloc(&mut ctx, 100, "t").unwrap();
        m.cpu_write(&mut ctx, k, b"payload", "t").unwrap();
        let mut buf = [0u8; 7];
        m.cpu_read(&mut ctx, k, &mut buf, "t").unwrap();
        assert_eq!(&buf, b"payload");
        m.kfree(&mut ctx, k).unwrap();
    }

    #[test]
    fn kzalloc_zeroes() {
        let (mut ctx, mut m) = mk();
        let k = m.kmalloc(&mut ctx, 64, "t").unwrap();
        m.cpu_write(&mut ctx, k, &[0xff; 64], "t").unwrap();
        m.kfree(&mut ctx, k).unwrap();
        let k2 = m.kzalloc(&mut ctx, 64, "t").unwrap();
        assert_eq!(k, k2, "LIFO reuse expected");
        let mut buf = [0u8; 64];
        m.cpu_read(&mut ctx, k2, &mut buf, "t").unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn text_is_readable_but_not_writable() {
        let (mut ctx, mut m) = mk();
        m.install_text(&[0x90, 0x90, 0xc3]);
        let t = m.layout.text_base;
        let mut b = [0u8; 3];
        m.cpu_read(&mut ctx, t, &mut b, "t").unwrap();
        assert_eq!(b, [0x90, 0x90, 0xc3]);
        assert_eq!(
            m.cpu_write(&mut ctx, t, &[0; 1], "t"),
            Err(DmaError::CpuFault("write to read-only kernel text"))
        );
    }

    #[test]
    fn text_read_past_end_rejected() {
        let (mut ctx, m) = mk();
        let near_end = Kva(m.layout.text_base.raw() + m.layout.text_size - 4);
        let mut b = [0u8; 8];
        assert!(m.cpu_read(&mut ctx, near_end, &mut b, "t").is_err());
    }

    #[test]
    fn kaslr_seed_changes_layout() {
        let a = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(1),
            ..Default::default()
        });
        let b = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(2),
            ..Default::default()
        });
        let c = MemorySystem::new(&MemConfig {
            kaslr_seed: Some(1),
            ..Default::default()
        });
        assert_eq!(a.layout, c.layout);
        assert_ne!(a.layout, b.layout);
    }

    #[test]
    fn vmalloc_kva_rejected_by_cpu_path() {
        let (mut ctx, m) = mk();
        let mut b = [0u8; 4];
        assert!(m
            .cpu_read(
                &mut ctx,
                Kva(dma_core::layout::VmRegion::Vmalloc.start()),
                &mut b,
                "t"
            )
            .is_err());
    }

    #[test]
    fn reserved_pages_never_allocated() {
        let (mut ctx, mut m) = mk();
        for _ in 0..100 {
            let p = m.alloc_pages(&mut ctx, 0, "t").unwrap();
            assert!(p.raw() >= MemConfig::default().reserved_pages);
        }
    }

    #[test]
    fn allocator_event_stream_yields_reuse_provenance_edges() {
        // The real allocator's trace, not a synthetic stream: slab LIFO
        // reuse and buddy hot-frame reuse must surface as SlabReuse /
        // PageReuse edges when the drained events hit the graph.
        use dma_core::{EdgeKind, ProvenanceGraph};
        let mut ctx = SimCtx::traced();
        let mut m = MemorySystem::new(&MemConfig::default());

        let a = m.kmalloc(&mut ctx, 128, "t_first").unwrap();
        m.kfree(&mut ctx, a).unwrap();
        let b = m.kmalloc(&mut ctx, 128, "t_second").unwrap();
        assert_eq!(a, b, "slab LIFO reuse expected");

        let p = m.alloc_pages(&mut ctx, 0, "t_page").unwrap();
        m.free_pages(&mut ctx, p, 0).unwrap();
        let q = m.alloc_pages(&mut ctx, 0, "t_page").unwrap();
        assert_eq!(p, q, "buddy hot-frame reuse expected");

        let mut g = ProvenanceGraph::new();
        g.ingest_all(ctx.trace.drain());
        let kinds: Vec<EdgeKind> = (0..g.len())
            .flat_map(|i| g.parents(i).iter().map(|&(_, k)| k))
            .collect();
        assert!(kinds.contains(&EdgeKind::FreeOfAlloc), "{kinds:?}");
        assert!(kinds.contains(&EdgeKind::SlabReuse), "{kinds:?}");
        assert!(kinds.contains(&EdgeKind::PageReuse), "{kinds:?}");
    }
}
