//! Simulated physical memory and Linux-style kernel allocators.
//!
//! Sub-page vulnerabilities are *allocator placement* phenomena: what
//! matters to the paper is which objects share a 4 KiB page, where the
//! allocator keeps its own metadata, and how quickly freed pages are
//! reused. This crate reproduces those placement policies:
//!
//! - [`phys`] — the backing store: a lazily populated array of 4 KiB
//!   frames addressed by physical address.
//! - [`buddy`] — a buddy page allocator with per-CPU hot-page caches
//!   (Linux reuses recently freed pages first; §5.2.1 point 2).
//! - [`slab`] — SLUB-style `kmalloc` size-class caches whose freelist
//!   pointers live *inside the free objects on the page* (the type (b)
//!   OS-metadata exposure of Figure 1).
//! - [`page_frag`] — the `page_frag` bump-down allocator of Figure 5 that
//!   network drivers use for RX buffers, which inherently creates
//!   type (c) multiple-IOVA vulnerabilities.
//! - [`mem`] — the [`MemorySystem`] facade tying the above to the KASLR
//!   layout, with CPU access routed through KVAs so every access can be
//!   traced and checked.

pub mod buddy;
pub mod mem;
pub mod page_frag;
pub mod phys;
pub mod slab;

pub use buddy::BuddyAllocator;
pub use mem::{MemConfig, MemorySystem};
pub use page_frag::PageFragAllocator;
pub use phys::PhysMemory;
pub use slab::{KmallocCaches, SIZE_CLASSES};
