//! Property-style tests for the allocators: no-overlap, conservation,
//! and crash-freedom under arbitrary alloc/free interleavings.
//!
//! Randomized inputs come from the in-tree seeded `DetRng` rather than
//! an external property-testing framework, so the suite builds offline;
//! each failure message includes the case seed for replay.

use dma_core::{DetRng, Pfn, SimCtx, PAGE_SIZE};
use sim_mem::{MemConfig, MemorySystem};
use std::collections::HashSet;

const CASES: usize = 64;

fn mem() -> (SimCtx, MemorySystem) {
    (
        SimCtx::new(),
        MemorySystem::new(&MemConfig {
            phys_bytes: 64 << 20,
            ..Default::default()
        }),
    )
}

#[test]
fn buddy_blocks_never_overlap() {
    let mut meta = DetRng::new(0x21);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let mut live: Vec<(Pfn, u32)> = Vec::new();
        let nops = rng.range(1, 119) as usize;
        for _ in 0..nops {
            let order = rng.below(4) as u32;
            let do_free = rng.chance(1, 2);
            if do_free && !live.is_empty() {
                let (pfn, o) = live.swap_remove(0);
                m.free_pages(&mut ctx, pfn, o).unwrap();
            } else if let Ok(pfn) = m.alloc_pages(&mut ctx, order, "prop") {
                live.push((pfn, order));
            }
        }
        // No two live blocks may share a frame.
        let mut frames = HashSet::new();
        for (pfn, order) in &live {
            for i in 0..(1u64 << order) {
                assert!(
                    frames.insert(pfn.raw() + i),
                    "case {case}: frame {:#x} double-allocated",
                    pfn.raw() + i
                );
            }
        }
    }
}

#[test]
fn buddy_conserves_free_pages() {
    let mut meta = DetRng::new(0x22);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let before = m.buddy.free_page_count();
        let n = rng.range(1, 59) as usize;
        let allocs: Vec<(Pfn, u32)> = (0..n)
            .filter_map(|_| {
                let o = rng.below(5) as u32;
                m.alloc_pages(&mut ctx, o, "prop").ok().map(|p| (p, o))
            })
            .collect();
        let held: u64 = allocs.iter().map(|(_, o)| 1u64 << o).sum();
        assert_eq!(m.buddy.free_page_count(), before - held, "case {case}");
        for (p, o) in allocs {
            m.free_pages(&mut ctx, p, o).unwrap();
        }
        assert_eq!(m.buddy.free_page_count(), before, "case {case}");
    }
}

#[test]
fn kmalloc_objects_never_overlap() {
    let mut meta = DetRng::new(0x23);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let n = rng.range(1, 149) as usize;
        for _ in 0..n {
            let size = rng.range(1, 4095) as usize;
            let k = m.kmalloc(&mut ctx, size, "prop").unwrap();
            let class = sim_mem::KmallocCaches::size_class(size).unwrap() as u64;
            for &(s, e) in &spans {
                assert!(
                    k.raw() + class <= s || k.raw() >= e,
                    "case {case}: overlap at {k}"
                );
            }
            spans.push((k.raw(), k.raw() + class));
        }
    }
}

#[test]
fn kmalloc_free_interleaving_is_sound() {
    let mut meta = DetRng::new(0x24);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let mut live = Vec::new();
        let nops = rng.range(1, 199) as usize;
        for _ in 0..nops {
            let size = rng.range(1, 2047) as usize;
            if rng.chance(1, 2) && !live.is_empty() {
                let k = live.swap_remove(0);
                m.kfree(&mut ctx, k).unwrap();
            } else {
                live.push(m.kmalloc(&mut ctx, size, "prop").unwrap());
            }
        }
        // Everything still live is distinct.
        let set: HashSet<u64> = live.iter().map(|k| k.raw()).collect();
        assert_eq!(set.len(), live.len(), "case {case}");
        for k in live {
            m.kfree(&mut ctx, k).unwrap();
        }
    }
}

#[test]
fn kmalloc_data_is_isolated() {
    // Writing each object's full class does not disturb the others.
    let mut meta = DetRng::new(0x25);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let n = rng.range(2, 39) as usize;
        let objs: Vec<_> = (0..n)
            .map(|i| {
                let s = rng.range(8, 511) as usize;
                let k = m.kmalloc(&mut ctx, s, "prop").unwrap();
                let fill = vec![i as u8 ^ 0x5a; s];
                m.cpu_write(&mut ctx, k, &fill, "prop").unwrap();
                (k, s, i as u8 ^ 0x5a)
            })
            .collect();
        for (k, s, tag) in objs {
            let mut buf = vec![0u8; s];
            m.cpu_read(&mut ctx, k, &mut buf, "prop").unwrap();
            assert!(buf.iter().all(|&b| b == tag), "case {case}");
        }
    }
}

#[test]
fn page_frag_fragments_disjoint_and_aligned() {
    let mut meta = DetRng::new(0x26);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let n = rng.range(1, 79) as usize;
        for _ in 0..n {
            let size = rng.range(64, 4095) as usize;
            let k = m.page_frag_alloc(&mut ctx, size, "prop").unwrap();
            assert_eq!(k.raw() % 64, 0, "case {case}");
            for &(s, e) in &spans {
                assert!(k.raw() + size as u64 <= s || k.raw() >= e, "case {case}");
            }
            spans.push((k.raw(), k.raw() + size as u64));
        }
    }
}

#[test]
fn phys_memory_write_read_roundtrip() {
    let mut meta = DetRng::new(0x27);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (_, mut m) = mem();
        let addr = rng.below((64 << 20) - 4096);
        let len = rng.range(1, 255) as usize;
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        m.phys.write(dma_core::PhysAddr(addr), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.phys.read(dma_core::PhysAddr(addr), &mut back).unwrap();
        assert_eq!(back, data, "case {case} addr={addr:#x}");
    }
}

#[test]
fn size_class_is_monotone_and_covering() {
    for size in 1usize..8192 {
        let class = sim_mem::KmallocCaches::size_class(size).unwrap();
        assert!(class >= size);
        assert!(sim_mem::SIZE_CLASSES.contains(&class));
        // Minimality: no smaller class also fits.
        for &c in sim_mem::SIZE_CLASSES.iter() {
            if c < class {
                assert!(c < size, "size={size}");
            }
        }
    }
}

#[test]
fn cross_page_cpu_access() {
    let mut meta = DetRng::new(0x28);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let off = rng.below(PAGE_SIZE as u64) as usize;
        let len = rng.range(1, 511) as usize;
        let base = m.kmalloc(&mut ctx, 8192, "prop").unwrap();
        let kva = dma_core::Kva(base.raw() + off as u64);
        let data = vec![0xabu8; len];
        m.cpu_write(&mut ctx, kva, &data, "prop").unwrap();
        let mut back = vec![0u8; len];
        m.cpu_read(&mut ctx, kva, &mut back, "prop").unwrap();
        assert_eq!(back, data, "case {case} off={off} len={len}");
    }
}
