//! Property-based tests for the allocators: no-overlap, conservation,
//! and crash-freedom under arbitrary alloc/free interleavings.

use dma_core::{Pfn, SimCtx, PAGE_SIZE};
use proptest::prelude::*;
use sim_mem::{MemConfig, MemorySystem};
use std::collections::HashSet;

fn mem() -> (SimCtx, MemorySystem) {
    (
        SimCtx::new(),
        MemorySystem::new(&MemConfig {
            phys_bytes: 64 << 20,
            ..Default::default()
        }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buddy_blocks_never_overlap(ops in proptest::collection::vec((0u32..4, any::<bool>()), 1..120)) {
        let (mut ctx, mut m) = mem();
        let mut live: Vec<(Pfn, u32)> = Vec::new();
        for (order, do_free) in ops {
            if do_free && !live.is_empty() {
                let (pfn, o) = live.swap_remove(0);
                m.free_pages(&mut ctx, pfn, o).unwrap();
            } else if let Ok(pfn) = m.alloc_pages(&mut ctx, order, "prop") {
                live.push((pfn, order));
            }
        }
        // No two live blocks may share a frame.
        let mut frames = HashSet::new();
        for (pfn, order) in &live {
            for i in 0..(1u64 << order) {
                prop_assert!(frames.insert(pfn.raw() + i), "frame {:#x} double-allocated", pfn.raw() + i);
            }
        }
    }

    #[test]
    fn buddy_conserves_free_pages(orders in proptest::collection::vec(0u32..5, 1..60)) {
        let (mut ctx, mut m) = mem();
        let before = m.buddy.free_page_count();
        let allocs: Vec<(Pfn, u32)> = orders
            .iter()
            .filter_map(|&o| m.alloc_pages(&mut ctx, o, "prop").ok().map(|p| (p, o)))
            .collect();
        let held: u64 = allocs.iter().map(|(_, o)| 1u64 << o).sum();
        prop_assert_eq!(m.buddy.free_page_count(), before - held);
        for (p, o) in allocs {
            m.free_pages(&mut ctx, p, o).unwrap();
        }
        prop_assert_eq!(m.buddy.free_page_count(), before);
    }

    #[test]
    fn kmalloc_objects_never_overlap(sizes in proptest::collection::vec(1usize..4096, 1..150)) {
        let (mut ctx, mut m) = mem();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for size in sizes {
            let k = m.kmalloc(&mut ctx, size, "prop").unwrap();
            let class = sim_mem::KmallocCaches::size_class(size).unwrap() as u64;
            for &(s, e) in &spans {
                prop_assert!(k.raw() + class <= s || k.raw() >= e, "overlap at {k}");
            }
            spans.push((k.raw(), k.raw() + class));
        }
    }

    #[test]
    fn kmalloc_free_interleaving_is_sound(ops in proptest::collection::vec((1usize..2048, any::<bool>()), 1..200)) {
        let (mut ctx, mut m) = mem();
        let mut live = Vec::new();
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let k = live.swap_remove(0);
                m.kfree(&mut ctx, k).unwrap();
            } else {
                live.push(m.kmalloc(&mut ctx, size, "prop").unwrap());
            }
        }
        // Everything still live is distinct.
        let set: HashSet<u64> = live.iter().map(|k| k.raw()).collect();
        prop_assert_eq!(set.len(), live.len());
        for k in live {
            m.kfree(&mut ctx, k).unwrap();
        }
    }

    #[test]
    fn kmalloc_data_is_isolated(sizes in proptest::collection::vec(8usize..512, 2..40)) {
        // Writing each object's full class does not disturb the others.
        let (mut ctx, mut m) = mem();
        let objs: Vec<_> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let k = m.kmalloc(&mut ctx, s, "prop").unwrap();
                let fill = vec![i as u8 ^ 0x5a; s];
                m.cpu_write(&mut ctx, k, &fill, "prop").unwrap();
                (k, s, i as u8 ^ 0x5a)
            })
            .collect();
        for (k, s, tag) in objs {
            let mut buf = vec![0u8; s];
            m.cpu_read(&mut ctx, k, &mut buf, "prop").unwrap();
            prop_assert!(buf.iter().all(|&b| b == tag));
        }
    }

    #[test]
    fn page_frag_fragments_disjoint_and_aligned(sizes in proptest::collection::vec(64usize..4096, 1..80)) {
        let (mut ctx, mut m) = mem();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for size in sizes {
            let k = m.page_frag_alloc(&mut ctx, size, "prop").unwrap();
            prop_assert_eq!(k.raw() % 64, 0);
            for &(s, e) in &spans {
                prop_assert!(k.raw() + size as u64 <= s || k.raw() >= e);
            }
            spans.push((k.raw(), k.raw() + size as u64));
        }
    }

    #[test]
    fn phys_memory_write_read_roundtrip(
        addr in 0u64..((64 << 20) - 4096),
        data in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let (_, mut m) = mem();
        m.phys.write(dma_core::PhysAddr(addr), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.phys.read(dma_core::PhysAddr(addr), &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn size_class_is_monotone_and_covering(size in 1usize..8192) {
        let class = sim_mem::KmallocCaches::size_class(size).unwrap();
        prop_assert!(class >= size);
        prop_assert!(sim_mem::SIZE_CLASSES.contains(&class));
        // Minimality: no smaller class also fits.
        for &c in sim_mem::SIZE_CLASSES.iter() {
            if c < class {
                prop_assert!(c < size);
            }
        }
    }

    #[test]
    fn cross_page_cpu_access(off in 0usize..PAGE_SIZE, len in 1usize..512) {
        let (mut ctx, mut m) = mem();
        let base = m.kmalloc(&mut ctx, 8192, "prop").unwrap();
        let kva = dma_core::Kva(base.raw() + off as u64);
        let data = vec![0xabu8; len];
        m.cpu_write(&mut ctx, kva, &data, "prop").unwrap();
        let mut back = vec![0u8; len];
        m.cpu_read(&mut ctx, kva, &mut back, "prop").unwrap();
        prop_assert_eq!(back, data);
    }
}
