//! Property-style tests: injected allocation failures must leave the
//! allocators exactly as they found them — consistent freelists, intact
//! live objects, conserved page counts.
//!
//! This is the `failslab` / `fail_page_alloc` contract: a failed
//! allocation is a *refusal*, not a half-done mutation. Randomized
//! schedules come from the in-tree seeded `DetRng` (offline build);
//! every assertion carries the case index for replay.

use dma_core::{DetRng, DmaError, FaultPlan, Kva, Pfn, SimCtx};
use sim_mem::{MemConfig, MemorySystem};
use std::collections::HashSet;

const CASES: usize = 64;

fn mem() -> (SimCtx, MemorySystem) {
    (
        SimCtx::new(),
        MemorySystem::new(&MemConfig {
            phys_bytes: 64 << 20,
            ..Default::default()
        }),
    )
}

#[test]
fn failed_page_allocs_conserve_the_buddy_freelist() {
    let mut meta = DetRng::new(0x71);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        ctx.faults = FaultPlan::seeded(rng.next_u64()).fail_prob("sim_mem.alloc_pages", 1, 3);
        let baseline = m.buddy.free_page_count();
        let mut live: Vec<(Pfn, u32)> = Vec::new();
        let mut failures = 0u32;
        for _ in 0..rng.range(40, 120) {
            let order = rng.below(3) as u32;
            let before = m.buddy.free_page_count();
            match m.alloc_pages(&mut ctx, order, "fault_props") {
                Ok(pfn) => live.push((pfn, order)),
                Err(e) => {
                    assert_eq!(e, DmaError::OutOfMemory, "case {case}");
                    failures += 1;
                    // A refused request must not consume or release pages.
                    assert_eq!(
                        m.buddy.free_page_count(),
                        before,
                        "case {case}: failed alloc changed the freelist"
                    );
                }
            }
            if !live.is_empty() && rng.chance(1, 3) {
                let idx = rng.below(live.len() as u64) as usize;
                let (pfn, order) = live.swap_remove(idx);
                m.free_pages(&mut ctx, pfn, order).unwrap();
            }
        }
        assert!(failures > 0, "case {case}: schedule never fired");
        // No two live blocks overlap (the freelist is not corrupted).
        let mut frames = HashSet::new();
        for &(pfn, order) in &live {
            for i in 0..(1u64 << order) {
                assert!(
                    frames.insert(pfn.0 + i),
                    "case {case}: overlapping blocks after faults"
                );
            }
        }
        // Conservation: freeing the survivors restores the baseline.
        for (pfn, order) in live {
            m.free_pages(&mut ctx, pfn, order).unwrap();
        }
        assert_eq!(
            m.buddy.free_page_count(),
            baseline,
            "case {case}: pages leaked through failed allocations"
        );
    }
}

#[test]
fn failed_kmallocs_leave_live_objects_and_caches_intact() {
    let mut meta = DetRng::new(0x72);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        ctx.faults = FaultPlan::seeded(rng.next_u64()).fail_prob("sim_mem.kmalloc", 1, 3);
        let mut live: Vec<(Kva, usize, u8)> = Vec::new();
        let mut failures = 0u32;
        for step in 0..rng.range(40, 120) {
            let size = 16usize << rng.below(6);
            match m.kmalloc(&mut ctx, size, "fault_props") {
                Ok(kva) => {
                    let tag = (step % 251) as u8;
                    m.cpu_write(&mut ctx, kva, &vec![tag; size], "fault_props")
                        .unwrap();
                    live.push((kva, size, tag));
                }
                Err(e) => {
                    assert_eq!(e, DmaError::OutOfMemory, "case {case}");
                    failures += 1;
                }
            }
            if !live.is_empty() && rng.chance(1, 3) {
                let idx = rng.below(live.len() as u64) as usize;
                let (kva, _, _) = live.swap_remove(idx);
                m.kfree(&mut ctx, kva).unwrap();
            }
        }
        assert!(failures > 0, "case {case}: schedule never fired");
        // Every surviving object still carries its data and its cache
        // bookkeeping — a failed kmalloc corrupted nothing.
        for &(kva, size, tag) in &live {
            let mut buf = vec![0u8; size];
            m.cpu_read(&mut ctx, kva, &mut buf, "fault_props").unwrap();
            assert!(
                buf.iter().all(|&b| b == tag),
                "case {case}: object data corrupted after failed allocs"
            );
            assert!(
                m.kmalloc.allocated_size(kva).is_some(),
                "case {case}: live object lost its cache metadata"
            );
        }
        // And every survivor frees cleanly (the slab freelists work).
        for (kva, _, _) in live {
            m.kfree(&mut ctx, kva).unwrap();
        }
    }
}

#[test]
fn failed_page_frag_allocs_keep_the_hot_region_consistent() {
    let mut meta = DetRng::new(0x73);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        ctx.faults = FaultPlan::seeded(rng.next_u64()).fail_prob("sim_mem.page_frag_alloc", 1, 3);
        let mut live: Vec<(Kva, usize)> = Vec::new();
        let mut failures = 0u32;
        for _ in 0..rng.range(30, 90) {
            let size = 64usize << rng.below(6);
            match m.page_frag_alloc(&mut ctx, size, "fault_props") {
                Ok(kva) => {
                    assert_eq!(
                        kva.raw() % 64,
                        0,
                        "case {case}: frag lost its 64-byte alignment"
                    );
                    live.push((kva, size));
                }
                Err(e) => {
                    assert_eq!(e, DmaError::OutOfMemory, "case {case}");
                    failures += 1;
                }
            }
        }
        assert!(failures > 0, "case {case}: schedule never fired");
        // Live frags stay pairwise disjoint: a failed carve must not
        // rewind or skip the region cursor into an existing carving.
        for (i, &(a, alen)) in live.iter().enumerate() {
            for &(b, blen) in live.iter().skip(i + 1) {
                let disjoint = a.raw() + alen as u64 <= b.raw() || b.raw() + blen as u64 <= a.raw();
                assert!(disjoint, "case {case}: frags overlap after failed carvings");
            }
        }
        // Refcounts survived: every frag frees without error.
        for (kva, _) in live {
            m.page_frag_free(&mut ctx, kva).unwrap();
        }
    }
}

#[test]
fn nth_call_faults_are_exact_across_the_facade() {
    // Cross-check the plumbing end to end: a fail_nth(k) plan fails
    // exactly the k-th facade call and nothing else.
    let mut meta = DetRng::new(0x74);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let (mut ctx, mut m) = mem();
        let n = 1 + rng.below(20);
        ctx.faults = FaultPlan::seeded(rng.next_u64()).fail_nth("sim_mem.kmalloc", n);
        for call in 1..=(n + 5) {
            let r = m.kmalloc(&mut ctx, 64, "fault_props");
            if call == n {
                assert_eq!(
                    r.unwrap_err(),
                    DmaError::OutOfMemory,
                    "case {case}: call {call} should have failed"
                );
            } else {
                assert!(r.is_ok(), "case {case}: call {call} should have succeeded");
            }
        }
        assert_eq!(ctx.faults.injected_total(), 1, "case {case}");
    }
}
