//! The forensics campaign: fuzz the pinned input space, then explain
//! every D-KASAN finding class causally.
//!
//! [`run_forensics`] sweeps `(seed, 0..iters)` exactly like the fuzzing
//! loop, but where the fuzzer only *counts* findings, this pass
//! re-executes each iteration that produced a new D-KASAN finding class
//! under [`execute_with_forensics`] — event stream into a provenance
//! graph — and investigates the findings into [`Incident`] timelines.
//! Device-write observations (the `destructor_arg` callback exposures)
//! carry their §5.2 window attributes directly and are reported
//! alongside. Everything is a pure function of `(seed, iters)`: text
//! and JSON renderings are byte-identical across runs.

use std::collections::BTreeSet;

use dkasan::Incident;
use dma_core::jsonw::JsonWriter;
use dma_core::Result;

use crate::exec::{config_name, execute, execute_with_forensics, FuzzFinding};
use crate::input::FuzzInput;

/// One investigated D-KASAN finding class: which iteration produced it,
/// on which machine shape, and the causal story.
pub struct ForensicsCase {
    /// Iteration of the pinned campaign that first hit this class.
    pub iteration: u64,
    /// Machine configuration name ([`config_name`]).
    pub config: &'static str,
    /// The investigated incident.
    pub incident: Incident,
}

/// Everything one forensics campaign produced.
pub struct ForensicsReport {
    /// Campaign seed.
    pub seed: u64,
    /// Iterations swept.
    pub iters: u64,
    /// Forensic re-executions performed (one per iteration that
    /// surfaced a new finding class).
    pub forensic_execs: u64,
    /// One case per D-KASAN `(class, site)` pair, in discovery order.
    pub cases: Vec<ForensicsCase>,
    /// Device-write observations (no oracle report), deduped by class
    /// key, with their §5.2 window attributes.
    pub callbacks: Vec<FuzzFinding>,
    /// Flight-recorder evictions summed across the lean sweep (0 means
    /// the oracle saw every event).
    pub trace_dropped: u64,
}

/// Runs the campaign: a lean sweep to find which iterations matter,
/// then a forensic replay of each of those.
pub fn run_forensics(seed: u64, iters: u64) -> Result<ForensicsReport> {
    let mut seen_classes: BTreeSet<String> = BTreeSet::new();
    let mut seen_callbacks: BTreeSet<String> = BTreeSet::new();
    let mut cases: Vec<ForensicsCase> = Vec::new();
    let mut callbacks: Vec<FuzzFinding> = Vec::new();
    let mut trace_dropped = 0u64;
    let mut forensic_execs = 0u64;

    for it in 0..iters {
        let input = FuzzInput::generate(seed, it);
        let out = execute(&input)?;
        trace_dropped += out.trace_dropped;

        let mut fresh_class = false;
        for f in &out.findings {
            match f.dkasan {
                Some(kind) => {
                    if !seen_classes.contains(&format!("{kind}|{}", f.site)) {
                        fresh_class = true;
                    }
                }
                None => {
                    if seen_callbacks.insert(f.key()) {
                        callbacks.push(f.clone());
                    }
                }
            }
        }
        if !fresh_class {
            continue;
        }

        forensic_execs += 1;
        let run = execute_with_forensics(&input)?;
        for incident in run.incidents {
            let class = format!("{}|{}", incident.finding.kind, incident.finding.site);
            if seen_classes.insert(class) {
                cases.push(ForensicsCase {
                    iteration: it,
                    config: config_name(input.config_id),
                    incident,
                });
            }
        }
    }

    Ok(ForensicsReport {
        seed,
        iters,
        forensic_execs,
        cases,
        callbacks,
        trace_dropped,
    })
}

impl ForensicsReport {
    /// Human-readable report: header, incident blocks, callback table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "forensics seed {}: {} iterations, {} forensic replays, {} incident classes, {} callback exposures",
            self.seed,
            self.iters,
            self.forensic_execs,
            self.cases.len(),
            self.callbacks.len()
        );
        if self.trace_dropped > 0 {
            let _ = writeln!(
                out,
                "recorder: {} events evicted before the oracle saw them",
                self.trace_dropped
            );
        }
        for (i, case) in self.cases.iter().enumerate() {
            let _ = writeln!(out);
            out.push_str(&case.incident.render(i + 1));
            let _ = writeln!(
                out,
                "  replay: dma-lab fuzz --seed {} (iteration {}, config {})",
                self.seed, case.iteration, case.config
            );
        }
        if !self.callbacks.is_empty() {
            let _ = writeln!(out, "\ncallback exposures (device writes that landed):");
            for f in &self.callbacks {
                let window = f
                    .attrs
                    .window
                    .map(|w| format!("{} open cycles {}..{}", w.path, w.start, w.end))
                    .unwrap_or_else(|| "no timed window".to_string());
                let place = f
                    .attrs
                    .callback
                    .as_ref()
                    .map(|c| format!("iova {} page offset {:#x}", c.iova, c.page_offset))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  iter {:>4}  {}  {}  {}  malicious kva: {}",
                    f.iteration,
                    f.site,
                    window,
                    place,
                    if f.attrs.malicious_kva.is_some() {
                        "yes"
                    } else {
                        "no"
                    }
                );
            }
        }
        out
    }

    /// Deterministic JSON — the `dma-lab forensics --json` schema.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("seed", self.seed);
            w.field_u64("iters", self.iters);
            w.field_u64("forensic_execs", self.forensic_execs);
            w.field_u64("trace_dropped", self.trace_dropped);
            w.field("cases", |w| {
                w.arr(|w| {
                    for case in &self.cases {
                        w.elem(|w| {
                            w.obj(|w| {
                                let inc = &case.incident;
                                w.field_u64("iteration", case.iteration);
                                w.field_str("config", case.config);
                                w.field_str("id", &inc.finding.id());
                                w.field_str("kind", &inc.finding.kind.to_string());
                                w.field_str("site", inc.finding.site);
                                w.field_str(
                                    "taxonomy",
                                    inc.taxonomy.letter().encode_utf8(&mut [0u8; 4]),
                                );
                                w.field_str("window", &inc.window.to_string());
                                w.field_str("page", &format!("{:#x}", inc.finding.page));
                                w.field_u64("at", inc.finding.at);
                                w.field("mapping_sites", |w| {
                                    w.arr(|w| {
                                        for s in &inc.mapping_sites {
                                            w.elem(|w| w.str(s));
                                        }
                                    });
                                });
                                w.field("co_resident", |w| {
                                    w.arr(|w| {
                                        for (site, size) in &inc.co_resident {
                                            w.elem(|w| {
                                                w.obj(|w| {
                                                    w.field_str("site", site);
                                                    w.field_u64("size", *size as u64);
                                                });
                                            });
                                        }
                                    });
                                });
                                w.field("timeline", |w| {
                                    w.arr(|w| {
                                        for step in &inc.steps {
                                            w.elem(|w| {
                                                w.obj(|w| {
                                                    w.field_u64("at", step.at);
                                                    w.field_str("what", &step.what);
                                                    w.field_str("edge", &step.edge);
                                                });
                                            });
                                        }
                                    });
                                });
                            });
                        });
                    }
                });
            });
            w.field("callbacks", |w| {
                w.arr(|w| {
                    for f in &self.callbacks {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_u64("iteration", f.iteration);
                                w.field_str("site", &f.site);
                                w.field_str(
                                    "window",
                                    &f.attrs
                                        .window
                                        .map(|win| win.path.to_string())
                                        .unwrap_or_default(),
                                );
                                w.field_u64(
                                    "window_start",
                                    f.attrs.window.map(|win| win.start).unwrap_or(0),
                                );
                                w.field_u64(
                                    "window_end",
                                    f.attrs.window.map(|win| win.end).unwrap_or(0),
                                );
                                w.field_bool("malicious_kva", f.attrs.malicious_kva.is_some());
                            });
                        });
                    }
                });
            });
        });
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_finds_and_explains_every_oracle_class() {
        let report = run_forensics(7, 24).unwrap();
        assert!(!report.cases.is_empty(), "no incident classes");
        let text = report.render_text();
        // Every rendered incident names taxonomy, window, and sites.
        assert!(text.contains("taxonomy:"), "{text}");
        assert!(text.contains("window:"), "{text}");
        assert!(text.contains("mapping sites:"), "{text}");
        assert!(text.contains("timeline:"), "{text}");
        // The race/stale ops surface the destructor_arg exposure too.
        assert!(text.contains("skb_shared_info.destructor_arg"), "{text}");
    }

    #[test]
    fn forensics_is_byte_deterministic() {
        let a = run_forensics(7, 12).unwrap();
        let b = run_forensics(7, 12).unwrap();
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.to_json(), b.to_json());
    }
}
