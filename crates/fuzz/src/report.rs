//! The run report: everything `dma-lab fuzz` prints and the bench
//! serializes, rendered byte-deterministically with [`JsonWriter`].

use dma_core::jsonw::JsonWriter;
use dma_core::Profile;

use crate::campaign::CrashFinding;
use crate::corpus::CorpusEntry;
use crate::exec::FuzzFinding;

/// One coverage-over-time sample, taken whenever the global map grew
/// (plus the final iteration). Cycles are *simulated*, so the series is
/// identical across runs with one seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Iteration index.
    pub iteration: u64,
    /// Global coverage bits after this iteration.
    pub coverage_bits: u32,
    /// Corpus size after this iteration.
    pub corpus_size: usize,
    /// Accumulated simulated cycles across all executions so far.
    pub sim_cycles: u64,
}

/// Everything one fuzzing run produced.
pub struct FuzzReport {
    /// Run seed.
    pub seed: u64,
    /// Requested iteration budget.
    pub iters: u64,
    /// Driver executions performed (one per iteration).
    pub execs: u64,
    /// Extra executions spent minimizing admitted entries.
    pub minimize_execs: u64,
    /// Final global coverage bit count.
    pub coverage_bits: u32,
    /// Admitted (minimized) corpus entries, in discovery order.
    pub corpus: Vec<CorpusEntry>,
    /// Class-deduped findings, in first-discovery order.
    pub findings: Vec<FuzzFinding>,
    /// Quarantined crash/hang findings (panic-isolated executions and
    /// watchdog aborts), in occurrence order.
    pub crashes: Vec<CrashFinding>,
    /// Coverage-over-time series.
    pub series: Vec<SeriesPoint>,
    /// Packets delivered/echoed across all executions.
    pub delivered: u64,
    /// Tolerated drops across all executions.
    pub dropped: u64,
    /// Total simulated cycles across all executions.
    pub total_cycles: u64,
    /// Events the bounded per-execution flight recorders evicted,
    /// summed across all executions (0 = every event reached the
    /// oracle; counts are lower bounds otherwise).
    pub trace_dropped: u64,
    /// Merged cycle-attribution profile across all admitted
    /// executions: the per-phase (`exec.*`) call tree with the
    /// instrumented allocator/IOMMU frames nested underneath.
    pub profile: Profile,
    /// The runner's metrics snapshot (`fuzz.execs`, `fuzz.corpus.size`,
    /// `fuzz.coverage.bits`, ...), rendered as JSON.
    pub stats_json: String,
}

fn render_finding(w: &mut JsonWriter, f: &FuzzFinding) {
    w.obj(|w| {
        w.field_u64("iteration", f.iteration);
        w.field_str("taxonomy", f.taxonomy.letter().encode_utf8(&mut [0u8; 4]));
        w.field_str("description", &f.taxonomy.to_string());
        w.field_str(
            "dkasan",
            &f.dkasan.map(|k| k.to_string()).unwrap_or_default(),
        );
        w.field_str("dkasan_id", &f.dkasan_id);
        w.field_str("site", &f.site);
        w.field_str(
            "window",
            &f.attrs
                .window
                .map(|win| win.path.to_string())
                .unwrap_or_default(),
        );
        w.field_bool("callback_exposed", f.attrs.callback.is_some());
        w.field_bool("malicious_kva", f.attrs.malicious_kva.is_some());
        w.field_bool("complete", f.attrs.is_complete());
        w.field("missing", |w| {
            w.arr(|w| {
                for m in f.attrs.missing() {
                    w.elem(|w| w.str(m));
                }
            });
        });
    });
}

impl FuzzReport {
    /// Renders just the coverage-over-time series (the deterministic
    /// half of `BENCH_fuzz.json`).
    pub fn series_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("seed", self.seed);
            w.field_u64("final_bits", self.coverage_bits as u64);
            w.field_u64("total_sim_cycles", self.total_cycles);
            w.field("points", |w| {
                w.arr(|w| {
                    for p in &self.series {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_u64("iteration", p.iteration);
                                w.field_u64("coverage_bits", p.coverage_bits as u64);
                                w.field_u64("corpus_size", p.corpus_size as u64);
                                w.field_u64("sim_cycles", p.sim_cycles);
                            });
                        });
                    }
                });
            });
        });
        w.finish()
    }

    /// Full report JSON — the `dma-lab fuzz --json` schema.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("seed", self.seed);
            w.field_u64("iters", self.iters);
            w.field_u64("execs", self.execs);
            w.field_u64("minimize_execs", self.minimize_execs);
            w.field_u64("coverage_bits", self.coverage_bits as u64);
            w.field_u64("delivered", self.delivered);
            w.field_u64("dropped", self.dropped);
            w.field_u64("trace_dropped", self.trace_dropped);
            w.field("corpus", |w| {
                w.arr(|w| {
                    for e in &self.corpus {
                        w.elem(|w| w.raw(&e.to_json()));
                    }
                });
            });
            w.field("findings", |w| {
                w.arr(|w| {
                    for f in &self.findings {
                        w.elem(|w| render_finding(w, f));
                    }
                });
            });
            w.field("crashes", |w| {
                w.arr(|w| {
                    for c in &self.crashes {
                        w.elem(|w| {
                            w.obj(|w| {
                                w.field_str("id", &c.id);
                                w.field_str("kind", c.kind.as_str());
                                w.field_u64("seed", c.seed);
                                w.field_u64("iteration", c.iteration);
                                w.field_str("detail", &c.detail);
                            });
                        });
                    }
                });
            });
            w.field("series", |w| w.raw(&self.series_json()));
            w.field("profile", |w| w.raw(&self.profile.to_json()));
            w.field("stats", |w| w.raw(&self.stats_json));
        });
        w.finish()
    }

    /// Human-readable summary for the non-`--json` CLI path.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz seed {}: {} execs (+{} minimizer), {} coverage bits, {} corpus entries, {} finding classes",
            self.seed, self.execs, self.minimize_execs, self.coverage_bits,
            self.corpus.len(), self.findings.len()
        );
        let _ = writeln!(
            out,
            "traffic: {} delivered, {} dropped, {} simulated cycles",
            self.delivered, self.dropped, self.total_cycles
        );
        if self.trace_dropped > 0 {
            let _ = writeln!(
                out,
                "recorder: {} events evicted before the oracle saw them",
                self.trace_dropped
            );
        }
        let rendered: Vec<String> = self
            .profile
            .phases()
            .iter()
            .filter(|(name, _, _)| name.starts_with("exec."))
            .map(|(name, calls, cycles)| format!("{name} {cycles}cyc/{calls}"))
            .collect();
        if !rendered.is_empty() {
            let _ = writeln!(out, "phases: {}", rendered.join("  "));
        }
        if !self.corpus.is_empty() {
            let _ = writeln!(
                out,
                "\ncorpus (replay with --seed {} at the iteration):",
                self.seed
            );
            for e in &self.corpus {
                let _ = writeln!(
                    out,
                    "  iter {:>4}  sig {:016x}  +{:<3} bits  ops {} -> {}",
                    e.iteration,
                    e.signature,
                    e.new_bits,
                    e.ops,
                    e.input.ops.len()
                );
            }
        }
        if !self.crashes.is_empty() {
            let _ = writeln!(out, "\nquarantined (replay with --seed and the iteration):");
            for c in &self.crashes {
                let _ = writeln!(
                    out,
                    "  {}  {}  iter {:#x}  {}",
                    c.id,
                    c.kind.as_str(),
                    c.iteration,
                    c.detail
                );
            }
        }
        if !self.findings.is_empty() {
            let _ = writeln!(out, "\nfindings:");
            for f in &self.findings {
                let oracle = f
                    .dkasan
                    .map(|k| format!("dkasan {k}"))
                    .unwrap_or_else(|| "device write landed".to_string());
                let window = f
                    .attrs
                    .window
                    .map(|w| format!(", window {}", w.path))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  iter {:>4}  {}  at {} [{}{}]",
                    f.iteration, f.taxonomy, f.site, oracle, window
                );
            }
        }
        out
    }
}
