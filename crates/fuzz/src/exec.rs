//! Deterministic execution of one fuzz input against a fresh machine.
//!
//! Each input boots its own traced machine — the `config_id` row of the
//! device×mode [`MACHINES`] matrix selects the device family
//! ([`DeviceKind`]) along with its unmap ordering and invalidation mode
//! — applies its op program through the [`DeviceModel`] trait, replays
//! the event trace through D-KASAN *and* the `dma-infer` channel
//! engine after every op, and folds everything observable into a
//! [`CoverageMap`]: per-op outcomes, trace-event shapes, fault-site
//! hits, metric/span names, D-KASAN finding classes, Figure-1 taxonomy
//! letters, and §5.2 window paths. The map's signature is the input's
//! behavioral fingerprint — identical across replays of the same
//! `(seed, iteration)`.
//!
//! The mutation vocabulary carries **no device-specific offsets**: the
//! `channel_write` op aims at whatever the in-run [`ChannelInference`]
//! has learned so far, so the same op program tampers with
//! `skb_shared_info` on the NIC, virtio-net headers on the split-ring
//! machine, and PRP data pages on the NVMe pair.

use devsim::testbed::MemConfigLite;
use devsim::{boot_model, BootSpec, DeviceKind, DeviceModel, TestbedConfig, WindowHit};
use dkasan::{investigate, DKasan, FindingKind, Incident};
use dma_core::vuln::{CallbackExposure, SubPageVulnerability, TimeWindow, VulnerabilityAttributes};
use dma_core::{
    CoverageMap, DetRng, DmaError, Event, Kva, Profile, ProvenanceGraph, Result, VmRegion,
};
use dma_infer::ChannelInference;
use sim_iommu::{InvalidationMode, IommuConfig};
use sim_net::driver::{AllocPolicy, DriverConfig, UnmapOrder};
use sim_net::stack::StackConfig;

use crate::input::{FuzzInput, MutationOp, FAULT_GLOBS, NUM_CONFIGS};

/// One §3.3-classified vulnerability observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzFinding {
    /// Iteration that produced it (replay with the run seed).
    pub iteration: u64,
    /// Figure-1 sub-page vulnerability type.
    pub taxonomy: SubPageVulnerability,
    /// D-KASAN finding class, when the oracle confirmed it.
    pub dkasan: Option<FindingKind>,
    /// Site tag (D-KASAN findings) or tampered field name.
    pub site: String,
    /// Stable id of the backing [`dkasan::DKasanFinding`] (empty for
    /// device-write observations with no oracle report).
    pub dkasan_id: String,
    /// The §3.3 attribute set assembled for this observation.
    pub attrs: VulnerabilityAttributes,
}

impl FuzzFinding {
    /// Dedup key: class identity without the per-run details.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.taxonomy.letter(),
            self.dkasan.map(|k| k.to_string()).unwrap_or_default(),
            self.site,
            self.attrs
                .window
                .map(|w| w.path.to_string())
                .unwrap_or_default(),
        )
    }
}

/// How one execution ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecStatus {
    /// The op program ran to completion (the only status the corpus
    /// ever admits).
    Completed,
    /// The deterministic watchdog aborted the run: the simulated clock
    /// crossed the cycle budget. Because the budget is counted in
    /// simulated cycles — never wall-clock — the abort point replays
    /// bit-identically.
    HangAborted {
        /// Simulated cycle at which the budget was found exceeded.
        at_cycles: u64,
        /// Index of the op after which the check fired.
        after_op: usize,
    },
}

/// Default per-execution watchdog budget, in simulated cycles. Sized at
/// roughly 8x the most expensive legitimate input observed across the
/// configuration sweep, so only genuinely runaway executions trip it.
pub const DEFAULT_WATCHDOG_BUDGET: u64 = 5_000_000_000;

/// Simulated cycles one `BusySpin` round burns.
pub const SPIN_COST: u64 = 4096;

/// Everything one execution produced.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// How the execution ended.
    pub status: ExecStatus,
    /// The input's coverage map.
    pub coverage: CoverageMap,
    /// `coverage.signature()`, precomputed.
    pub signature: u64,
    /// Classified findings, in discovery order.
    pub findings: Vec<FuzzFinding>,
    /// Packets the stack delivered or echoed.
    pub delivered: u64,
    /// Ops absorbed as tolerated drops.
    pub dropped: u64,
    /// Final simulated cycle of the run.
    pub cycles: u64,
    /// Pages the device could still DMA to after shutdown.
    pub leaked_pages: usize,
    /// Events the bounded flight recorder evicted before a drain could
    /// consume them (the `trace.dropped` counter at run end).
    pub trace_dropped: u64,
    /// Hierarchical cycle-attribution profile of this execution: the
    /// per-phase call tree (`exec.deliver` / `exec.churn` /
    /// `exec.oracle` / `exec.infer` / `exec.teardown`) with every
    /// instrumented allocator and IOMMU frame nested underneath. Boot
    /// cost is excluded — the tree is reset after the machine (or warm
    /// template clone) is obtained.
    pub profile: Profile,
}

/// One forensically-instrumented execution: the outcome, the full
/// provenance graph of the run's event stream, and one investigated
/// [`Incident`] per D-KASAN finding.
pub struct ForensicRun {
    /// The ordinary execution outcome.
    pub outcome: ExecOutcome,
    /// Causal graph built from every event the run emitted.
    pub graph: ProvenanceGraph,
    /// Incidents in D-KASAN discovery order.
    pub incidents: Vec<Incident>,
}

/// One row of the machine matrix: which device family boots, under
/// which driver shape and invalidation mode.
struct MachineRow {
    name: &'static str,
    device: DeviceKind,
    alloc: AllocPolicy,
    unmap_order: UnmapOrder,
    map_ctrl_block: bool,
    mode: InvalidationMode,
}

/// The device×mode matrix `config_id` indexes. Rows 0–3 are the
/// original NIC sweep (byte-compatible shapes); row 4 inverts the NIC's
/// unmap/flush ordering; rows 5–8 are the non-NIC zoo members in their
/// window-open (deferred) and window-closed (strict) modes.
const MACHINES: [MachineRow; NUM_CONFIGS as usize] = [
    MachineRow {
        name: "pagefrag-deferred",
        device: DeviceKind::Nic,
        alloc: AllocPolicy::PageFrag,
        unmap_order: UnmapOrder::UnmapThenBuild,
        map_ctrl_block: false,
        mode: InvalidationMode::Deferred,
    },
    MachineRow {
        name: "i40e-build-then-unmap-strict",
        device: DeviceKind::Nic,
        alloc: AllocPolicy::PageFrag,
        unmap_order: UnmapOrder::BuildThenUnmap,
        map_ctrl_block: false,
        mode: InvalidationMode::Strict,
    },
    MachineRow {
        name: "kmalloc-ctrlblock-deferred",
        device: DeviceKind::Nic,
        alloc: AllocPolicy::Kmalloc,
        unmap_order: UnmapOrder::UnmapThenBuild,
        map_ctrl_block: true,
        mode: InvalidationMode::Deferred,
    },
    MachineRow {
        name: "pageperbuffer-strict",
        device: DeviceKind::Nic,
        alloc: AllocPolicy::PagePerBuffer,
        unmap_order: UnmapOrder::UnmapThenBuild,
        map_ctrl_block: false,
        mode: InvalidationMode::Strict,
    },
    MachineRow {
        name: "nic-inverted-deferred",
        device: DeviceKind::Nic,
        alloc: AllocPolicy::PageFrag,
        unmap_order: UnmapOrder::BuildThenUnmap,
        map_ctrl_block: false,
        mode: InvalidationMode::Deferred,
    },
    MachineRow {
        name: "virtio-split-deferred",
        device: DeviceKind::VirtioSplit,
        alloc: AllocPolicy::Kmalloc,
        unmap_order: UnmapOrder::UnmapThenBuild,
        map_ctrl_block: false,
        mode: InvalidationMode::Deferred,
    },
    MachineRow {
        name: "virtio-split-strict",
        device: DeviceKind::VirtioSplit,
        alloc: AllocPolicy::Kmalloc,
        unmap_order: UnmapOrder::BuildThenUnmap,
        map_ctrl_block: false,
        mode: InvalidationMode::Strict,
    },
    MachineRow {
        name: "nvme-qpair-deferred",
        device: DeviceKind::NvmeQueuePair,
        alloc: AllocPolicy::PageFrag,
        unmap_order: UnmapOrder::UnmapThenBuild,
        map_ctrl_block: false,
        mode: InvalidationMode::Deferred,
    },
    MachineRow {
        name: "nvme-qpair-strict",
        device: DeviceKind::NvmeQueuePair,
        alloc: AllocPolicy::PageFrag,
        unmap_order: UnmapOrder::BuildThenUnmap,
        map_ctrl_block: false,
        mode: InvalidationMode::Strict,
    },
];

fn machine_row(config_id: u8) -> &'static MachineRow {
    MACHINES
        .get(config_id as usize)
        .unwrap_or_else(|| panic!("config id {config_id} out of range (0..{NUM_CONFIGS})"))
}

/// Human-readable name of a machine configuration.
///
/// # Panics
/// On an out-of-range id — ids are validated at the CLI boundary
/// ([`parse_config`]) and never silently aliased.
pub fn config_name(config_id: u8) -> &'static str {
    machine_row(config_id).name
}

/// The device family a machine configuration boots.
///
/// # Panics
/// On an out-of-range id (see [`config_name`]).
pub fn config_device(config_id: u8) -> DeviceKind {
    machine_row(config_id).device
}

/// Parses a CLI config selector: a numeric id (`"5"`) or an exact
/// configuration name (`"virtio-split-deferred"`). Returns `None` for
/// out-of-range ids and unknown names — the caller rejects, it never
/// wraps.
pub fn parse_config(s: &str) -> Option<u8> {
    if s.chars().all(|c| c.is_ascii_digit()) && !s.is_empty() {
        let id = s.parse::<u64>().ok()?;
        return (id < NUM_CONFIGS as u64).then_some(id as u8);
    }
    (0..NUM_CONFIGS).find(|&id| config_name(id) == s)
}

/// The machine configuration sweep. Index 1 is the planted i40e-style
/// shape (build_skb before unmap, §5.2.2 path (i)); index 2 is the
/// kmalloc + mapped-control-block shape whose slab sharing D-KASAN
/// flags (types (b)/(d)); indexes 5–8 boot the virtio split-ring and
/// NVMe queue-pair zoo members.
///
/// # Panics
/// On an out-of-range id (see [`config_name`]).
pub fn machine_config(config_id: u8, seed: u64) -> TestbedConfig {
    let row = machine_row(config_id);
    TestbedConfig {
        device: row.device,
        mem: MemConfigLite {
            kaslr_seed: Some(seed),
            ..Default::default()
        },
        iommu: IommuConfig {
            mode: row.mode,
            ..Default::default()
        },
        driver: DriverConfig {
            alloc: row.alloc,
            unmap_order: row.unmap_order,
            map_ctrl_block: row.map_ctrl_block,
            ..Default::default()
        },
        stack: StackConfig {
            echo_service: true,
            ..Default::default()
        },
        boot_noise_seed: Some(seed),
    }
}

/// Errors that mean allocator metadata was torn by an earlier device
/// write (e.g. a stale-window DMA into a freed slab object clobbering
/// the in-object freelist pointer): the crash surfaces on a *later*
/// allocation popping the planted value as a KVA. The executor converts
/// these into type-(d) findings instead of aborting the campaign.
fn corruption(e: &DmaError) -> bool {
    matches!(
        e,
        DmaError::NotDirectMap(_)
            | DmaError::BadPhysAddr(_)
            | DmaError::BadPfn(_)
            | DmaError::BadFree(_)
    )
}

/// Errors an op may absorb as a drop (same set as the chaos soak).
fn tolerated(e: &DmaError) -> bool {
    e.is_transient()
        || corruption(e)
        || matches!(
            e,
            DmaError::IommuFault { .. } | DmaError::IommuPermission { .. }
        )
}

/// The kmalloc sites the churn op draws from.
const CHURN_SITES: &[(&str, usize)] = &[
    ("load_elf_phdrs", 512),
    ("sock_alloc_inode", 64),
    ("kstrdup", 32),
    ("getname_flags", 1024),
];

/// Figure-1 taxonomy class for a D-KASAN finding: machines whose DMA
/// buffers co-locate *random* kernel objects (kmalloc-backed buffers,
/// mapped control blocks — the [`DeviceModel::colocates_random`]
/// answer) produce type (d); page-frag shapes share driver-owned
/// metadata, type (a).
pub fn taxonomy_of(kind: FindingKind, colocates_random: bool) -> SubPageVulnerability {
    match kind {
        FindingKind::MultipleMap => SubPageVulnerability::MultipleIova,
        FindingKind::AccessAfterMap => SubPageVulnerability::OsMetadata,
        FindingKind::AllocAfterMap | FindingKind::MapAfterAlloc => {
            if colocates_random {
                SubPageVulnerability::RandomColocation
            } else {
                SubPageVulnerability::DriverMetadata
            }
        }
    }
}

/// Capacity of the bounded flight recorder each execution runs under.
/// Events are drained after every op, so the recorder only needs to
/// absorb one op's burst (plus boot); evictions — counted in
/// `trace.dropped` and surfaced on the outcome — mean an op out-emitted
/// the ring and the oracle saw a truncated stream.
pub const EXEC_RECORDER_CAPACITY: usize = 8192;

/// Per-shard reusable execution state: booted machine templates plus
/// per-exec scratch buffers.
///
/// Booting a machine is ~90% of a cold execution's cost, yet for a
/// given `(config_id, seed)` every boot is identical. A context boots
/// each of the [`NUM_CONFIGS`] matrix rows once and deep-clones the
/// template per exec — the clone carries the exact post-boot state a
/// fresh boot produces (allocator layout, recorder contents, metrics),
/// so warm and cold executions are outcome-identical; tests/scale.rs
/// pins this. The scratch side reuses the input-byte staging buffer and
/// the coverage bitmap across execs instead of re-allocating them per
/// exec.
///
/// One context per shard: it is deliberately `!Sync`-shaped state that a
/// single shard thread owns, which is what keeps the sharded campaign
/// free of cross-thread mutation.
pub struct ExecContext {
    /// One booted template per machine config, keyed by the campaign
    /// seed it was booted with (a context survives seed changes by
    /// re-booting the slot).
    templates: Vec<Option<(u64, Box<dyn DeviceModel>)>>,
    /// Reused input-byte staging buffer (`InjectRaw` / `PayloadDeposit`).
    bytes: Vec<u8>,
    /// Reused coverage bitmap, reset per exec.
    cov: CoverageMap,
}

impl ExecContext {
    /// Creates an empty context; templates boot lazily on first use.
    pub fn new() -> Self {
        ExecContext {
            templates: (0..NUM_CONFIGS as usize).map(|_| None).collect(),
            bytes: Vec::new(),
            cov: CoverageMap::new(),
        }
    }

    /// A ready-to-run machine for `input`'s configuration: a deep clone
    /// of the cached boot template (booting it first if this is the
    /// slot's first use or the seed changed).
    fn model(&mut self, config_id: u8, seed: u64) -> Result<Box<dyn DeviceModel>> {
        let cfg = machine_config(config_id, seed); // validates the id
        let idx = config_id as usize;
        if !matches!(&self.templates[idx], Some((s, _)) if *s == seed) {
            let m = boot_model(cfg, BootSpec::Recorded(EXEC_RECORDER_CAPACITY))?;
            self.templates[idx] = Some((seed, m));
        }
        Ok(self.templates[idx]
            .as_ref()
            .expect("just booted")
            .1
            .clone_model())
    }

    /// Warm-path [`execute`]: same outcome, no per-exec boot.
    pub fn execute(&mut self, input: &FuzzInput) -> Result<ExecOutcome> {
        execute_core(input, None, None, None, Some(self)).map(|(out, _)| out)
    }

    /// Warm-path [`execute_with_budget`].
    pub fn execute_with_budget(&mut self, input: &FuzzInput, budget: u64) -> Result<ExecOutcome> {
        execute_core(input, None, None, Some(budget), Some(self)).map(|(out, _)| out)
    }

    /// Warm-path [`execute_with_forensics`].
    pub fn execute_with_forensics(&mut self, input: &FuzzInput) -> Result<ForensicRun> {
        let mut graph = ProvenanceGraph::new();
        let (outcome, dkasan) = execute_core(input, None, Some(&mut graph), None, Some(self))?;
        let incidents = dkasan
            .findings()
            .iter()
            .map(|f| investigate(&graph, f))
            .collect();
        Ok(ForensicRun {
            outcome,
            graph,
            incidents,
        })
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::new()
    }
}

/// Executes one input on a clean machine. See [`execute_under_faults`]
/// for the variant the chaos soak uses.
pub fn execute(input: &FuzzInput) -> Result<ExecOutcome> {
    execute_under_faults(input, None)
}

/// Executes one input with an optional chaos fault plan armed on top of
/// whatever `ArmFault` ops the input itself carries.
pub fn execute_under_faults(input: &FuzzInput, fault_seed: Option<u64>) -> Result<ExecOutcome> {
    execute_core(input, fault_seed, None, None, None).map(|(out, _)| out)
}

/// Executes one input under a deterministic watchdog: once the
/// simulated clock crosses `budget` cycles the run is aborted with
/// [`ExecStatus::HangAborted`] instead of running to completion. The
/// campaign engine wraps every exec in this so a runaway input becomes
/// a finding, not a wedged process.
pub fn execute_with_budget(input: &FuzzInput, budget: u64) -> Result<ExecOutcome> {
    execute_core(input, None, None, Some(budget), None).map(|(out, _)| out)
}

/// Executes one input while feeding every event into a
/// [`ProvenanceGraph`], then investigates each D-KASAN finding against
/// it. This is the `dma-lab forensics` execution path; the ordinary
/// fuzzing loop skips the graph.
pub fn execute_with_forensics(input: &FuzzInput) -> Result<ForensicRun> {
    let mut graph = ProvenanceGraph::new();
    let (outcome, dkasan) = execute_core(input, None, Some(&mut graph), None, None)?;
    let incidents = dkasan
        .findings()
        .iter()
        .map(|f| investigate(&graph, f))
        .collect();
    Ok(ForensicRun {
        outcome,
        graph,
        incidents,
    })
}

fn execute_core(
    input: &FuzzInput,
    fault_seed: Option<u64>,
    mut graph: Option<&mut ProvenanceGraph>,
    budget: Option<u64>,
    warm: Option<&mut ExecContext>,
) -> Result<(ExecOutcome, DKasan)> {
    // The cold path's locals; unused (and unallocated) on the warm path.
    let mut cold_bytes = Vec::new();
    let mut cold_cov = CoverageMap::new();
    let (mut model, bytes, cov) = match warm {
        Some(cx) => {
            let m = cx.model(input.config_id, input.seed)?;
            cx.cov = CoverageMap::new();
            (m, &mut cx.bytes, &mut cx.cov)
        }
        None => {
            let m = boot_model(
                machine_config(input.config_id, input.seed),
                BootSpec::Recorded(EXEC_RECORDER_CAPACITY),
            )?;
            (m, &mut cold_bytes, &mut cold_cov)
        }
    };
    if let Some(fs) = fault_seed {
        model.sim().faults = devsim::build_fault_plan(fs);
    }
    // Profiling starts here: drop boot/template attribution so every
    // exec profiles identically whether it ran warm or cold, then leave
    // a zero-cycle `exec.clone` marker recording the template hand-off
    // (its call count is the phase signal; the cycles it stands for
    // were deliberately spent before the reset).
    model.sim().metrics.profile_reset();
    let marker = model.sim().prof_begin("exec.clone");
    model.sim().prof_end(marker);

    let mut dkasan = DKasan::new();
    // The in-run channel engine: every drained event batch feeds it, so
    // the `channel_write` vocabulary always aims at what the trace has
    // actually revealed — never at hand-wired offsets.
    let mut inference = ChannelInference::new();
    let mut findings: Vec<FuzzFinding> = Vec::new();
    let mut dropped = 0u64;
    cov.add("config", config_name(input.config_id));
    cov.add("device", model.kind().name());

    let mut status = ExecStatus::Completed;
    for (idx, op) in input.ops.iter().enumerate() {
        let mut op_rng = DetRng::new(
            input.seed ^ input.iteration.wrapping_mul(0x517c_c1b7_2722_0a95) ^ idx as u64,
        );
        // Phase attribution: allocator churn profiles apart from the
        // delivery/tamper vocabulary. Pure time ops (`AdvanceTime`,
        // `BusySpin`) and the meta ops (`ArmFault`, `DebugPanic`) get
        // no frame at all — their idle cycles stay unattributed so the
        // profile's self-cycle ranking surfaces real IOMMU/allocator
        // work instead of simulated sleep.
        let phase = match *op {
            MutationOp::KmallocChurn { .. } => Some("exec.churn"),
            MutationOp::AdvanceTime { .. }
            | MutationOp::BusySpin { .. }
            | MutationOp::ArmFault { .. }
            | MutationOp::DebugPanic => None,
            _ => Some("exec.deliver"),
        };
        let frame = phase.map(|p| model.sim().prof_begin(p));
        let applied = apply_op(
            model.as_mut(),
            op,
            input.iteration,
            &mut op_rng,
            bytes,
            cov,
            &mut findings,
            &inference,
            budget,
        );
        if let Some(f) = frame {
            model.sim().prof_end(f);
        }
        match applied {
            Ok(()) => {
                cov.add("op", &format!("{}.ok", op.name()));
            }
            Err(e) if tolerated(&e) => {
                dropped += 1;
                cov.add("op", &format!("{}.drop", op.name()));
                if corruption(&e) {
                    // Deferred crash from torn allocator metadata: a
                    // device write into a freed-but-translatable mapping
                    // corrupted state co-located with the buffer.
                    cov.add_taxonomy(SubPageVulnerability::RandomColocation);
                    findings.push(FuzzFinding {
                        iteration: input.iteration,
                        taxonomy: SubPageVulnerability::RandomColocation,
                        dkasan: None,
                        site: format!("allocator.{}", op.name()),
                        dkasan_id: String::new(),
                        attrs: VulnerabilityAttributes::default(),
                    });
                }
                // A starved ring blocks every later delivery; re-arm the
                // receive path exactly like the chaos soak does. Recovery
                // itself may transiently fail (armed allocation faults,
                // exhausted deferred IOVA space, corrupted freelists) —
                // the ring simply stays short until a later op succeeds.
                if let Err(e2) = model.recover() {
                    if !tolerated(&e2) {
                        return Err(e2);
                    }
                }
            }
            Err(e) => return Err(e),
        }
        let events = model.sim().trace.drain();
        absorb_events(&events, cov);
        let frame = model.sim().prof_begin("exec.oracle");
        dkasan.process(&events);
        model.sim().prof_end(frame);
        let frame = model.sim().prof_begin("exec.infer");
        inference.observe_all(&events);
        model.sim().prof_end(frame);
        if let Some(g) = graph.as_deref_mut() {
            g.ingest_all(events);
        }
        // Deterministic watchdog: the deadline is checked against the
        // *simulated* clock at op granularity, so the abort point is a
        // pure function of the input, never of host speed.
        if let Some(b) = budget {
            if model.sim_ref().clock.now() >= b {
                status = ExecStatus::HangAborted {
                    at_cycles: model.sim_ref().clock.now(),
                    after_op: idx,
                };
                break;
            }
        }
    }

    // A hang-aborted run skips the orderly shutdown — the campaign
    // quarantines it rather than admitting its outcome anywhere.
    let leaked_pages = if status == ExecStatus::Completed {
        let frame = model.sim().prof_begin("exec.teardown");
        let lp = model.teardown()?;
        model.sim().prof_end(frame);
        let events = model.sim().trace.drain();
        absorb_events(&events, cov);
        let frame = model.sim().prof_begin("exec.oracle");
        dkasan.process(&events);
        model.sim().prof_end(frame);
        let frame = model.sim().prof_begin("exec.infer");
        inference.observe_all(&events);
        model.sim().prof_end(frame);
        if let Some(g) = graph {
            g.ingest_all(events);
        }
        lp
    } else {
        0
    };

    // Oracle: every D-KASAN finding class becomes coverage plus a
    // taxonomy-classified fuzz finding.
    let colocates = model.colocates_random();
    for f in dkasan.findings() {
        cov.add("dkasan", &format!("{}.{}", f.kind, f.site));
        let taxonomy = taxonomy_of(f.kind, colocates);
        cov.add_taxonomy(taxonomy);
        findings.push(FuzzFinding {
            iteration: input.iteration,
            taxonomy,
            dkasan: Some(f.kind),
            site: f.site.to_string(),
            dkasan_id: f.id(),
            attrs: VulnerabilityAttributes::default(),
        });
    }

    // Fold in fault-site hits and which metrics/spans the run lit up.
    for site in model.sim_ref().faults.hits_by_site().keys() {
        cov.add("fault", site);
    }
    let snap = model.sim_ref().metrics_snapshot();
    for (name, _) in &snap.counters {
        cov.add("metric", name);
    }
    for (name, _) in &snap.spans {
        cov.add("span", name);
    }
    for f in &findings {
        if let Some(w) = f.attrs.window {
            cov.add_window(w.path);
        }
    }

    let outcome = ExecOutcome {
        status,
        signature: cov.signature(),
        coverage: cov.clone(),
        findings,
        delivered: model.delivered_count(),
        dropped,
        cycles: model.sim_ref().clock.now(),
        leaked_pages,
        trace_dropped: model.sim_ref().metrics.counter("trace.dropped"),
        profile: model.sim_ref().metrics.profile(),
    };
    Ok((outcome, dkasan))
}

fn absorb_events(events: &[Event], cov: &mut CoverageMap) {
    for e in events {
        match e {
            Event::Alloc { cache, .. } => {
                cov.add("event", &format!("alloc.{cache}"));
            }
            Event::Free { .. } => {
                cov.add("event", "free");
            }
            Event::PageAlloc { .. } => {
                cov.add("event", "page_alloc");
            }
            Event::PageFree { .. } => {
                cov.add("event", "page_free");
            }
            Event::DmaMap { dir, site, .. } => {
                cov.add("event", &format!("dma_map.{dir:?}"));
                cov.add_site(site);
            }
            Event::DmaUnmap { .. } => {
                cov.add("event", "dma_unmap");
            }
            Event::CpuAccess { .. } => {
                cov.add("event", "cpu_access");
            }
            Event::DevAccess {
                write,
                allowed,
                stale,
                ..
            } => {
                cov.add("event", &format!("dev_access.w{write}.a{allowed}.s{stale}"));
            }
            Event::IotlbInvalidate { .. } => {
                cov.add("event", "iotlb_invalidate");
            }
            Event::IotlbGlobalFlush { .. } => {
                cov.add("event", "iotlb_global_flush");
            }
            Event::FaultInjected { site, .. } => {
                cov.add("fault", site);
            }
        }
    }
}

fn classify_kva(value: u64) -> Option<Kva> {
    VmRegion::classify(value).map(|_| Kva(value))
}

/// Builds the §3.3-attributed finding for a device write that landed
/// inside a §5.2 window (race or stale path).
fn window_finding(iteration: u64, hit: &WindowHit, value: u64) -> FuzzFinding {
    FuzzFinding {
        iteration,
        taxonomy: SubPageVulnerability::OsMetadata,
        dkasan: None,
        site: hit.site.to_string(),
        dkasan_id: String::new(),
        attrs: VulnerabilityAttributes {
            malicious_kva: classify_kva(value),
            callback: Some(CallbackExposure {
                iova: hit.target,
                page_offset: (hit.target.raw() % dma_core::PAGE_SIZE as u64) as usize,
                via: SubPageVulnerability::OsMetadata,
                field: hit.field,
            }),
            window: Some(TimeWindow {
                start: hit.start,
                end: hit.end,
                path: hit.path,
            }),
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_op(
    model: &mut dyn DeviceModel,
    op: &MutationOp,
    iteration: u64,
    op_rng: &mut DetRng,
    bytes: &mut Vec<u8>,
    cov: &mut CoverageMap,
    findings: &mut Vec<FuzzFinding>,
    inference: &ChannelInference,
    budget: Option<u64>,
) -> Result<()> {
    match *op {
        MutationOp::Deliver { len, fill } => model.deliver(len, fill),
        MutationOp::InjectRaw { len, fill } => {
            bytes.clear();
            bytes.extend((0..len).map(|i| fill.wrapping_add(i as u8)));
            model.inject_raw(bytes)
        }
        MutationOp::ChannelWrite {
            channel,
            slot,
            value,
        } => {
            // Aim at what inference has learned so far (state as of the
            // previous op's drain). An empty plan is a tolerated drop —
            // exactly like a not-yet-populated ring.
            let plan = inference.write_plan();
            if plan.is_empty() {
                return Err(DmaError::RingEmpty);
            }
            let ch = &plan[channel % plan.len()];
            let t = ch.targets[slot % ch.targets.len()];
            // A deterministic 8-aligned offset inside the channel's
            // interesting window (metadata block when one was inferred).
            let room = t.hi.saturating_sub(t.lo).saturating_sub(8);
            let off = (t.lo
                + if room > 0 {
                    (op_rng.below(room as u64 + 1) as usize) & !7
                } else {
                    0
                })
            .min(t.len.saturating_sub(8));
            let le = value.to_le_bytes();
            model.dev_deposit(t.iova, off, &le)?;
            cov.add("channel", &format!("{}.{}", ch.site, ch.kind.name()));
            if t.meta {
                // A device write into inferred co-located OS metadata is
                // the type-(b) tamper, discovered with zero hand-wiring.
                findings.push(FuzzFinding {
                    iteration,
                    taxonomy: SubPageVulnerability::OsMetadata,
                    dkasan: None,
                    site: format!("{}.meta", t.site),
                    dkasan_id: String::new(),
                    attrs: VulnerabilityAttributes {
                        malicious_kva: classify_kva(value),
                        callback: Some(CallbackExposure {
                            iova: t.iova + off as u64,
                            page_offset: ((t.iova.raw() + off as u64) % dma_core::PAGE_SIZE as u64)
                                as usize,
                            via: SubPageVulnerability::OsMetadata,
                            field: "inferred_meta",
                        }),
                        window: None,
                    },
                });
            }
            Ok(())
        }
        MutationOp::PayloadDeposit { offset, fill, len } => {
            let descs = model.descriptors();
            let (iova, buf_size) = descs.first().copied().ok_or(DmaError::RingEmpty)?;
            let room = buf_size.saturating_sub(1).max(1);
            let offset = offset % room;
            let len = len.min(buf_size - offset).max(1);
            bytes.clear();
            bytes.resize(len, fill);
            model.dev_deposit(iova, offset, bytes)
        }
        MutationOp::RaceWrite { value } => {
            if let Some(hit) = model.window_race(value)? {
                cov.add_window(hit.path);
                findings.push(window_finding(iteration, &hit, value));
            }
            Ok(())
        }
        MutationOp::StaleWrite { value } => {
            // Strict invalidation revokes the entry before the write:
            // the resulting IOMMU fault propagates as a tolerated drop —
            // itself a (negative) observation already in the coverage
            // map via the event stream.
            let hit = model.window_stale(value)?;
            cov.add_window(hit.path);
            findings.push(window_finding(iteration, &hit, value));
            Ok(())
        }
        MutationOp::AdvanceTime { ms } => {
            model.tick_ms(ms);
            Ok(())
        }
        MutationOp::KmallocChurn { rounds } => {
            let mut live = Vec::new();
            for _ in 0..rounds {
                for _ in 0..(1 + op_rng.below(3)) {
                    let (site, size) = CHURN_SITES[op_rng.below(CHURN_SITES.len() as u64) as usize];
                    let kva = model.churn_alloc(size, site)?;
                    live.push(kva);
                }
                // Free roughly half so slab slots recycle under the
                // device's nose (the type-(d) reuse pattern).
                while live.len() > 2 {
                    let idx = op_rng.below(live.len() as u64) as usize;
                    let kva = live.swap_remove(idx);
                    model.churn_free(kva)?;
                }
            }
            for kva in live {
                model.churn_free(kva)?;
            }
            Ok(())
        }
        MutationOp::DescriptorScan => {
            if model.scan_leaks() > 0 {
                cov.add("op", "descriptor_scan.leaked_ptr");
            }
            Ok(())
        }
        MutationOp::CompleteTx => model.complete_io(),
        MutationOp::ArmFault { glob, every } => {
            let pattern = FAULT_GLOBS[glob % FAULT_GLOBS.len()];
            let plan = std::mem::take(&mut model.sim().faults);
            model.sim().faults = plan.fail_every(pattern, every);
            Ok(())
        }
        MutationOp::DebugPanic => {
            panic!("planted debug panic at iteration {iteration}");
        }
        MutationOp::BusySpin { spins } => {
            // Burn simulated cycles only: the spin terminates either at
            // its (finite) count or as soon as the watchdog deadline is
            // crossed, so a budgeted run aborts at a replayable cycle.
            for _ in 0..spins {
                model.sim().clock.advance(SPIN_COST);
                if budget.is_some_and(|b| model.sim_ref().clock.now() >= b) {
                    break;
                }
            }
            Ok(())
        }
    }
}
