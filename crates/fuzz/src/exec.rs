//! Deterministic execution of one fuzz input against a fresh machine.
//!
//! Each input boots its own traced [`Testbed`] (configuration chosen by
//! `config_id`), applies its op program, replays the event trace
//! through D-KASAN after every op, and folds everything observable into
//! a [`CoverageMap`]: per-op outcomes, trace-event shapes, fault-site
//! hits, metric/span names, D-KASAN finding classes, Figure-1 taxonomy
//! letters, and §5.2 window paths. The map's signature is the input's
//! behavioral fingerprint — identical across replays of the same
//! `(seed, iteration)`.

use devsim::testbed::MemConfigLite;
use devsim::{Testbed, TestbedConfig};
use dkasan::{investigate, DKasan, FindingKind, Incident};
use dma_core::vuln::{
    CallbackExposure, SubPageVulnerability, TimeWindow, VulnerabilityAttributes, WindowPath,
};
use dma_core::{
    CoverageMap, DetRng, DmaError, Event, Iova, Kva, ProvenanceGraph, Result, VmRegion,
};
use sim_iommu::{InvalidationMode, IommuConfig};
use sim_net::driver::{AllocPolicy, DriverConfig, UnmapOrder};
use sim_net::packet::Packet;
use sim_net::shinfo::{DEVICE_WRITABLE_FIELDS, SHINFO_DESTRUCTOR_ARG};
use sim_net::stack::StackConfig;

use crate::input::{FuzzInput, MutationOp, FAULT_GLOBS, NUM_CONFIGS};

/// One §3.3-classified vulnerability observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzFinding {
    /// Iteration that produced it (replay with the run seed).
    pub iteration: u64,
    /// Figure-1 sub-page vulnerability type.
    pub taxonomy: SubPageVulnerability,
    /// D-KASAN finding class, when the oracle confirmed it.
    pub dkasan: Option<FindingKind>,
    /// Site tag (D-KASAN findings) or tampered field name.
    pub site: String,
    /// Stable id of the backing [`dkasan::DKasanFinding`] (empty for
    /// device-write observations with no oracle report).
    pub dkasan_id: String,
    /// The §3.3 attribute set assembled for this observation.
    pub attrs: VulnerabilityAttributes,
}

impl FuzzFinding {
    /// Dedup key: class identity without the per-run details.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}",
            self.taxonomy.letter(),
            self.dkasan.map(|k| k.to_string()).unwrap_or_default(),
            self.site,
            self.attrs
                .window
                .map(|w| w.path.to_string())
                .unwrap_or_default(),
        )
    }
}

/// How one execution ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecStatus {
    /// The op program ran to completion (the only status the corpus
    /// ever admits).
    Completed,
    /// The deterministic watchdog aborted the run: the simulated clock
    /// crossed the cycle budget. Because the budget is counted in
    /// simulated cycles — never wall-clock — the abort point replays
    /// bit-identically.
    HangAborted {
        /// Simulated cycle at which the budget was found exceeded.
        at_cycles: u64,
        /// Index of the op after which the check fired.
        after_op: usize,
    },
}

/// Default per-execution watchdog budget, in simulated cycles. Sized at
/// roughly 8x the most expensive legitimate input observed across the
/// configuration sweep, so only genuinely runaway executions trip it.
pub const DEFAULT_WATCHDOG_BUDGET: u64 = 5_000_000_000;

/// Simulated cycles one `BusySpin` round burns.
pub const SPIN_COST: u64 = 4096;

/// Everything one execution produced.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// How the execution ended.
    pub status: ExecStatus,
    /// The input's coverage map.
    pub coverage: CoverageMap,
    /// `coverage.signature()`, precomputed.
    pub signature: u64,
    /// Classified findings, in discovery order.
    pub findings: Vec<FuzzFinding>,
    /// Packets the stack delivered or echoed.
    pub delivered: u64,
    /// Ops absorbed as tolerated drops.
    pub dropped: u64,
    /// Final simulated cycle of the run.
    pub cycles: u64,
    /// Pages the device could still DMA to after shutdown.
    pub leaked_pages: usize,
    /// Events the bounded flight recorder evicted before a drain could
    /// consume them (the `trace.dropped` counter at run end).
    pub trace_dropped: u64,
}

/// One forensically-instrumented execution: the outcome, the full
/// provenance graph of the run's event stream, and one investigated
/// [`Incident`] per D-KASAN finding.
pub struct ForensicRun {
    /// The ordinary execution outcome.
    pub outcome: ExecOutcome,
    /// Causal graph built from every event the run emitted.
    pub graph: ProvenanceGraph,
    /// Incidents in D-KASAN discovery order.
    pub incidents: Vec<Incident>,
}

/// Human-readable name of a machine configuration.
pub fn config_name(config_id: u8) -> &'static str {
    match config_id % NUM_CONFIGS {
        0 => "pagefrag-deferred",
        1 => "i40e-build-then-unmap-strict",
        2 => "kmalloc-ctrlblock-deferred",
        _ => "pageperbuffer-strict",
    }
}

/// The machine configuration sweep. Index 1 is the planted i40e-style
/// shape (build_skb before unmap, §5.2.2 path (i)); index 2 is the
/// kmalloc + mapped-control-block shape whose slab sharing D-KASAN
/// flags (types (b)/(d)).
pub fn machine_config(config_id: u8, seed: u64) -> TestbedConfig {
    let (driver, mode) = match config_id % NUM_CONFIGS {
        0 => (
            DriverConfig {
                alloc: AllocPolicy::PageFrag,
                unmap_order: UnmapOrder::UnmapThenBuild,
                ..Default::default()
            },
            InvalidationMode::Deferred,
        ),
        1 => (
            DriverConfig {
                alloc: AllocPolicy::PageFrag,
                unmap_order: UnmapOrder::BuildThenUnmap,
                ..Default::default()
            },
            InvalidationMode::Strict,
        ),
        2 => (
            DriverConfig {
                alloc: AllocPolicy::Kmalloc,
                map_ctrl_block: true,
                ..Default::default()
            },
            InvalidationMode::Deferred,
        ),
        _ => (
            DriverConfig {
                alloc: AllocPolicy::PagePerBuffer,
                unmap_order: UnmapOrder::UnmapThenBuild,
                ..Default::default()
            },
            InvalidationMode::Strict,
        ),
    };
    TestbedConfig {
        mem: MemConfigLite {
            kaslr_seed: Some(seed),
            ..Default::default()
        },
        iommu: IommuConfig {
            mode,
            ..Default::default()
        },
        driver,
        stack: StackConfig {
            echo_service: true,
            ..Default::default()
        },
        boot_noise_seed: Some(seed),
    }
}

/// Errors an op may absorb as a drop (same set as the chaos soak).
fn tolerated(e: &DmaError) -> bool {
    e.is_transient()
        || matches!(
            e,
            DmaError::IommuFault { .. } | DmaError::IommuPermission { .. }
        )
}

/// The kmalloc sites the churn op draws from.
const CHURN_SITES: &[(&str, usize)] = &[
    ("load_elf_phdrs", 512),
    ("sock_alloc_inode", 64),
    ("kstrdup", 32),
    ("getname_flags", 1024),
];

/// Figure-1 taxonomy class for a D-KASAN finding under a given driver
/// configuration (kmalloc or mapped-control-block shapes co-locate
/// random objects; page-frag shapes share driver-owned metadata).
pub fn taxonomy_of(kind: FindingKind, cfg: &DriverConfig) -> SubPageVulnerability {
    match kind {
        FindingKind::MultipleMap => SubPageVulnerability::MultipleIova,
        FindingKind::AccessAfterMap => SubPageVulnerability::OsMetadata,
        FindingKind::AllocAfterMap | FindingKind::MapAfterAlloc => {
            if matches!(cfg.alloc, AllocPolicy::Kmalloc) || cfg.map_ctrl_block {
                SubPageVulnerability::RandomColocation
            } else {
                SubPageVulnerability::DriverMetadata
            }
        }
    }
}

/// Capacity of the bounded flight recorder each execution runs under.
/// Events are drained after every op, so the recorder only needs to
/// absorb one op's burst (plus boot); evictions — counted in
/// `trace.dropped` and surfaced on the outcome — mean an op out-emitted
/// the ring and the oracle saw a truncated stream.
pub const EXEC_RECORDER_CAPACITY: usize = 8192;

/// Per-shard reusable execution state: booted machine templates plus
/// per-exec scratch buffers.
///
/// Booting a testbed is ~90% of a cold execution's cost, yet for a given
/// `(config_id, seed)` every boot is identical. A context boots each of
/// the [`NUM_CONFIGS`] machine shapes once and deep-clones the template
/// per exec — the clone carries the exact post-boot state a fresh boot
/// produces (allocator layout, recorder contents, metrics), so warm and
/// cold executions are outcome-identical; tests/scale.rs pins this. The
/// scratch side reuses the input-byte staging buffer and the coverage
/// bitmap across execs instead of re-allocating them per exec.
///
/// One context per shard: it is deliberately `!Sync`-shaped state that a
/// single shard thread owns, which is what keeps the sharded campaign
/// free of cross-thread mutation.
pub struct ExecContext {
    /// One booted template per machine config, keyed by the campaign
    /// seed it was booted with (a context survives seed changes by
    /// re-booting the slot).
    templates: Vec<Option<(u64, Testbed)>>,
    /// Reused input-byte staging buffer (`InjectRaw` / `PayloadDeposit`).
    bytes: Vec<u8>,
    /// Reused coverage bitmap, reset per exec.
    cov: CoverageMap,
}

impl ExecContext {
    /// Creates an empty context; templates boot lazily on first use.
    pub fn new() -> Self {
        ExecContext {
            templates: (0..NUM_CONFIGS as usize).map(|_| None).collect(),
            bytes: Vec::new(),
            cov: CoverageMap::new(),
        }
    }

    /// A ready-to-run machine for `input`'s configuration: a deep clone
    /// of the cached boot template (booting it first if this is the
    /// slot's first use or the seed changed).
    fn testbed(&mut self, config_id: u8, seed: u64) -> Result<Testbed> {
        let idx = (config_id % NUM_CONFIGS) as usize;
        if !matches!(&self.templates[idx], Some((s, _)) if *s == seed) {
            let mut tb =
                Testbed::new_recorded(machine_config(config_id, seed), EXEC_RECORDER_CAPACITY)?;
            tb.ctx.trace.record_cpu_access = true;
            self.templates[idx] = Some((seed, tb));
        }
        Ok(self.templates[idx].as_ref().expect("just booted").1.clone())
    }

    /// Warm-path [`execute`]: same outcome, no per-exec boot.
    pub fn execute(&mut self, input: &FuzzInput) -> Result<ExecOutcome> {
        execute_core(input, None, None, None, Some(self)).map(|(out, _)| out)
    }

    /// Warm-path [`execute_with_budget`].
    pub fn execute_with_budget(&mut self, input: &FuzzInput, budget: u64) -> Result<ExecOutcome> {
        execute_core(input, None, None, Some(budget), Some(self)).map(|(out, _)| out)
    }

    /// Warm-path [`execute_with_forensics`].
    pub fn execute_with_forensics(&mut self, input: &FuzzInput) -> Result<ForensicRun> {
        let mut graph = ProvenanceGraph::new();
        let (outcome, dkasan) = execute_core(input, None, Some(&mut graph), None, Some(self))?;
        let incidents = dkasan
            .findings()
            .iter()
            .map(|f| investigate(&graph, f))
            .collect();
        Ok(ForensicRun {
            outcome,
            graph,
            incidents,
        })
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::new()
    }
}

/// Executes one input on a clean machine. See [`execute_under_faults`]
/// for the variant the chaos soak uses.
pub fn execute(input: &FuzzInput) -> Result<ExecOutcome> {
    execute_under_faults(input, None)
}

/// Executes one input with an optional chaos fault plan armed on top of
/// whatever `ArmFault` ops the input itself carries.
pub fn execute_under_faults(input: &FuzzInput, fault_seed: Option<u64>) -> Result<ExecOutcome> {
    execute_core(input, fault_seed, None, None, None).map(|(out, _)| out)
}

/// Executes one input under a deterministic watchdog: once the
/// simulated clock crosses `budget` cycles the run is aborted with
/// [`ExecStatus::HangAborted`] instead of running to completion. The
/// campaign engine wraps every exec in this so a runaway input becomes
/// a finding, not a wedged process.
pub fn execute_with_budget(input: &FuzzInput, budget: u64) -> Result<ExecOutcome> {
    execute_core(input, None, None, Some(budget), None).map(|(out, _)| out)
}

/// Executes one input while feeding every event into a
/// [`ProvenanceGraph`], then investigates each D-KASAN finding against
/// it. This is the `dma-lab forensics` execution path; the ordinary
/// fuzzing loop skips the graph.
pub fn execute_with_forensics(input: &FuzzInput) -> Result<ForensicRun> {
    let mut graph = ProvenanceGraph::new();
    let (outcome, dkasan) = execute_core(input, None, Some(&mut graph), None, None)?;
    let incidents = dkasan
        .findings()
        .iter()
        .map(|f| investigate(&graph, f))
        .collect();
    Ok(ForensicRun {
        outcome,
        graph,
        incidents,
    })
}

fn execute_core(
    input: &FuzzInput,
    fault_seed: Option<u64>,
    mut graph: Option<&mut ProvenanceGraph>,
    budget: Option<u64>,
    warm: Option<&mut ExecContext>,
) -> Result<(ExecOutcome, DKasan)> {
    // The cold path's locals; unused (and unallocated) on the warm path.
    let mut cold_bytes = Vec::new();
    let mut cold_cov = CoverageMap::new();
    let (mut tb, bytes, cov) = match warm {
        Some(cx) => {
            let tb = cx.testbed(input.config_id, input.seed)?;
            cx.cov = CoverageMap::new();
            (tb, &mut cx.bytes, &mut cx.cov)
        }
        None => {
            let mut tb = Testbed::new_recorded(
                machine_config(input.config_id, input.seed),
                EXEC_RECORDER_CAPACITY,
            )?;
            tb.ctx.trace.record_cpu_access = true;
            (tb, &mut cold_bytes, &mut cold_cov)
        }
    };
    if let Some(fs) = fault_seed {
        tb.ctx.faults = devsim::build_fault_plan(fs);
    }

    let mut dkasan = DKasan::new();
    let mut findings: Vec<FuzzFinding> = Vec::new();
    let mut dropped = 0u64;
    cov.add("config", config_name(input.config_id));

    let mut status = ExecStatus::Completed;
    for (idx, op) in input.ops.iter().enumerate() {
        let mut op_rng = DetRng::new(
            input.seed ^ input.iteration.wrapping_mul(0x517c_c1b7_2722_0a95) ^ idx as u64,
        );
        match apply_op(
            &mut tb,
            op,
            input.iteration,
            &mut op_rng,
            bytes,
            cov,
            &mut findings,
            budget,
        ) {
            Ok(()) => {
                cov.add("op", &format!("{}.ok", op.name()));
            }
            Err(e) if tolerated(&e) => {
                dropped += 1;
                cov.add("op", &format!("{}.drop", op.name()));
                // A starved ring blocks every later delivery; kick the
                // refill path exactly like the chaos soak does.
                tb.driver
                    .rx_refill(&mut tb.ctx, &mut tb.mem, &mut tb.iommu)?;
            }
            Err(e) => return Err(e),
        }
        let events = tb.ctx.trace.drain();
        absorb_events(&events, cov);
        dkasan.process(&events);
        if let Some(g) = graph.as_deref_mut() {
            g.ingest_all(events);
        }
        // Deterministic watchdog: the deadline is checked against the
        // *simulated* clock at op granularity, so the abort point is a
        // pure function of the input, never of host speed.
        if let Some(b) = budget {
            if tb.ctx.clock.now() >= b {
                status = ExecStatus::HangAborted {
                    at_cycles: tb.ctx.clock.now(),
                    after_op: idx,
                };
                break;
            }
        }
    }

    // A hang-aborted run skips the orderly shutdown — the campaign
    // quarantines it rather than admitting its outcome anywhere.
    let leaked_pages = if status == ExecStatus::Completed {
        let lp = tb.shutdown()?;
        let events = tb.ctx.trace.drain();
        absorb_events(&events, cov);
        dkasan.process(&events);
        if let Some(g) = graph {
            g.ingest_all(events);
        }
        lp
    } else {
        0
    };

    // Oracle: every D-KASAN finding class becomes coverage plus a
    // taxonomy-classified fuzz finding.
    for f in dkasan.findings() {
        cov.add("dkasan", &format!("{}.{}", f.kind, f.site));
        let taxonomy = taxonomy_of(f.kind, &tb.driver.cfg);
        cov.add_taxonomy(taxonomy);
        findings.push(FuzzFinding {
            iteration: input.iteration,
            taxonomy,
            dkasan: Some(f.kind),
            site: f.site.to_string(),
            dkasan_id: f.id(),
            attrs: VulnerabilityAttributes::default(),
        });
    }

    // Fold in fault-site hits and which metrics/spans the run lit up.
    for site in tb.ctx.faults.hits_by_site().keys() {
        cov.add("fault", site);
    }
    let snap = tb.ctx.metrics_snapshot();
    for (name, _) in &snap.counters {
        cov.add("metric", name);
    }
    for (name, _) in &snap.spans {
        cov.add("span", name);
    }
    for f in &findings {
        if let Some(w) = f.attrs.window {
            cov.add_window(w.path);
        }
    }

    let outcome = ExecOutcome {
        status,
        signature: cov.signature(),
        coverage: cov.clone(),
        findings,
        delivered: tb.stack.stats.delivered + tb.stack.stats.echoed,
        dropped,
        cycles: tb.ctx.clock.now(),
        leaked_pages,
        trace_dropped: tb.ctx.metrics.counter("trace.dropped"),
    };
    Ok((outcome, dkasan))
}

fn absorb_events(events: &[Event], cov: &mut CoverageMap) {
    for e in events {
        match e {
            Event::Alloc { cache, .. } => {
                cov.add("event", &format!("alloc.{cache}"));
            }
            Event::Free { .. } => {
                cov.add("event", "free");
            }
            Event::PageAlloc { .. } => {
                cov.add("event", "page_alloc");
            }
            Event::PageFree { .. } => {
                cov.add("event", "page_free");
            }
            Event::DmaMap { dir, site, .. } => {
                cov.add("event", &format!("dma_map.{dir:?}"));
                cov.add_site(site);
            }
            Event::DmaUnmap { .. } => {
                cov.add("event", "dma_unmap");
            }
            Event::CpuAccess { .. } => {
                cov.add("event", "cpu_access");
            }
            Event::DevAccess {
                write,
                allowed,
                stale,
                ..
            } => {
                cov.add("event", &format!("dev_access.w{write}.a{allowed}.s{stale}"));
            }
            Event::IotlbInvalidate { .. } => {
                cov.add("event", "iotlb_invalidate");
            }
            Event::IotlbGlobalFlush { .. } => {
                cov.add("event", "iotlb_global_flush");
            }
            Event::FaultInjected { site, .. } => {
                cov.add("fault", site);
            }
        }
    }
}

/// The head RX descriptor, or `RingEmpty`.
fn head_desc(tb: &Testbed) -> Result<(Iova, usize)> {
    tb.driver
        .rx_descriptors()
        .first()
        .copied()
        .ok_or(DmaError::RingEmpty)
}

fn classify_kva(value: u64) -> Option<Kva> {
    VmRegion::classify(value).map(|_| Kva(value))
}

#[allow(clippy::too_many_arguments)]
fn apply_op(
    tb: &mut Testbed,
    op: &MutationOp,
    iteration: u64,
    op_rng: &mut DetRng,
    bytes: &mut Vec<u8>,
    cov: &mut CoverageMap,
    findings: &mut Vec<FuzzFinding>,
    budget: Option<u64>,
) -> Result<()> {
    match *op {
        MutationOp::Deliver { len, fill } => {
            let pkt = Packet::udp(60 + (fill as u32 % 8), 1, vec![fill; len]);
            tb.deliver_packet(&pkt)
        }
        MutationOp::InjectRaw { len, fill } => {
            bytes.clear();
            bytes.extend((0..len).map(|i| fill.wrapping_add(i as u8)));
            tb.deliver_raw(bytes)
        }
        MutationOp::ShinfoWrite { field, value } => {
            let (name, offset, width) =
                DEVICE_WRITABLE_FIELDS[field % DEVICE_WRITABLE_FIELDS.len()];
            let (iova, buf_size) = head_desc(tb)?;
            let shinfo = tb.nic.shinfo_iova(iova, buf_size);
            let bytes = value.to_le_bytes();
            tb.nic.deposit(
                &mut tb.ctx,
                &mut tb.iommu,
                &mut tb.mem.phys,
                shinfo,
                offset,
                &bytes[..width.min(8)],
            )?;
            cov.add("shinfo", name);
            // A pointer-bearing field reachable by device write is the
            // §5.1 callback exposure (type (b)): record it, with the
            // malicious-KVA attribute when the value parses as one.
            if width == 8 {
                findings.push(FuzzFinding {
                    iteration,
                    taxonomy: SubPageVulnerability::OsMetadata,
                    dkasan: None,
                    site: format!("skb_shared_info.{name}"),
                    dkasan_id: String::new(),
                    attrs: VulnerabilityAttributes {
                        malicious_kva: classify_kva(value),
                        callback: Some(CallbackExposure {
                            iova: Iova(shinfo.raw() + offset as u64),
                            page_offset: ((shinfo.raw() + offset as u64)
                                % dma_core::PAGE_SIZE as u64)
                                as usize,
                            via: SubPageVulnerability::OsMetadata,
                            field: name,
                        }),
                        window: None,
                    },
                });
            }
            Ok(())
        }
        MutationOp::PayloadDeposit { offset, fill, len } => {
            let (iova, buf_size) = head_desc(tb)?;
            let room = buf_size.saturating_sub(1).max(1);
            let offset = offset % room;
            let len = len.min(buf_size - offset).max(1);
            bytes.clear();
            bytes.resize(len, fill);
            tb.nic.deposit(
                &mut tb.ctx,
                &mut tb.iommu,
                &mut tb.mem.phys,
                iova,
                offset,
                bytes,
            )
        }
        MutationOp::RaceWrite { value } => race_write(tb, iteration, value, cov, findings),
        MutationOp::StaleWrite { value } => stale_write(tb, iteration, value, cov, findings),
        MutationOp::AdvanceTime { ms } => {
            tb.advance_ms(ms);
            Ok(())
        }
        MutationOp::KmallocChurn { rounds } => {
            let mut live = Vec::new();
            for _ in 0..rounds {
                for _ in 0..(1 + op_rng.below(3)) {
                    let (site, size) = CHURN_SITES[op_rng.below(CHURN_SITES.len() as u64) as usize];
                    let kva = tb.mem.kmalloc(&mut tb.ctx, size, site)?;
                    live.push(kva);
                }
                // Free roughly half so slab slots recycle under the
                // device's nose (the type-(d) reuse pattern).
                while live.len() > 2 {
                    let idx = op_rng.below(live.len() as u64) as usize;
                    let kva = live.swap_remove(idx);
                    tb.mem.kfree(&mut tb.ctx, kva)?;
                }
            }
            for kva in live {
                tb.mem.kfree(&mut tb.ctx, kva)?;
            }
            Ok(())
        }
        MutationOp::DescriptorScan => {
            let descs = tb.driver.rx_descriptors();
            let nic = tb.nic;
            let leaks = nic.scan_descriptors(&mut tb.ctx, &mut tb.iommu, &tb.mem.phys, &descs);
            if !leaks.is_empty() {
                cov.add("op", "descriptor_scan.leaked_ptr");
            }
            Ok(())
        }
        MutationOp::CompleteTx => tb.complete_all_tx().map(|_| ()),
        MutationOp::ArmFault { glob, every } => {
            let pattern = FAULT_GLOBS[glob % FAULT_GLOBS.len()];
            let plan = std::mem::take(&mut tb.ctx.faults);
            tb.ctx.faults = plan.fail_every(pattern, every);
            Ok(())
        }
        MutationOp::DebugPanic => {
            panic!("planted debug panic at iteration {iteration}");
        }
        MutationOp::BusySpin { spins } => {
            // Burn simulated cycles only: the spin terminates either at
            // its (finite) count or as soon as the watchdog deadline is
            // crossed, so a budgeted run aborts at a replayable cycle.
            for _ in 0..spins {
                tb.ctx.clock.advance(SPIN_COST);
                if budget.is_some_and(|b| tb.ctx.clock.now() >= b) {
                    break;
                }
            }
            Ok(())
        }
    }
}

/// Delivers a frame and fires the device write *inside* the rx_poll
/// race window — between build_skb and dma_unmap on BuildThenUnmap
/// drivers (path (i)), or after the unmap on UnmapThenBuild drivers,
/// where it only lands through a stale IOTLB entry (path (ii)).
fn race_write(
    tb: &mut Testbed,
    iteration: u64,
    value: u64,
    cov: &mut CoverageMap,
    findings: &mut Vec<FuzzFinding>,
) -> Result<()> {
    let (iova, _) = head_desc(tb)?;
    let pkt = Packet::udp(61, 1, vec![0xa5; 64]);
    let n = tb
        .nic
        .inject_rx(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, iova, &pkt)?;
    tb.driver.device_rx_complete(n)?;

    let nic = tb.nic;
    let start = tb.ctx.clock.now();
    let mut landed: Option<Iova> = None;
    loop {
        let polled = tb.driver.rx_poll(
            &mut tb.ctx,
            &mut tb.mem,
            &mut tb.iommu,
            |ctx, mem, iommu, slot| {
                let shinfo = nic.shinfo_iova(slot.mapping.iova, slot.buf_size);
                let target = Iova(shinfo.raw() + SHINFO_DESTRUCTOR_ARG as u64);
                if nic
                    .write_u64(ctx, iommu, &mut mem.phys, target, value)
                    .is_ok()
                {
                    landed = Some(target);
                }
            },
        )?;
        match polled {
            Some(skb) => {
                tb.stack
                    .rx(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver, skb)?
            }
            None => break,
        }
    }
    tb.stack
        .flush(&mut tb.ctx, &mut tb.mem, &mut tb.iommu, &mut tb.driver)?;

    if let Some(target) = landed {
        let path = match tb.driver.cfg.unmap_order {
            UnmapOrder::BuildThenUnmap => WindowPath::UnmapAfterBuild,
            UnmapOrder::UnmapThenBuild => WindowPath::DeferredIotlb,
        };
        cov.add_window(path);
        findings.push(FuzzFinding {
            iteration,
            taxonomy: SubPageVulnerability::OsMetadata,
            dkasan: None,
            site: "skb_shared_info.destructor_arg".to_string(),
            dkasan_id: String::new(),
            attrs: VulnerabilityAttributes {
                malicious_kva: classify_kva(value),
                callback: Some(CallbackExposure {
                    iova: target,
                    page_offset: (target.raw() % dma_core::PAGE_SIZE as u64) as usize,
                    via: SubPageVulnerability::OsMetadata,
                    field: "destructor_arg",
                }),
                window: Some(TimeWindow {
                    start,
                    end: tb.ctx.clock.now(),
                    path,
                }),
            },
        });
    }
    Ok(())
}

/// Captures the head descriptor, lets the driver consume and unmap it,
/// then writes through the captured IOVA: only a stale IOTLB entry
/// (deferred invalidation, §5.2.1) lets this land.
fn stale_write(
    tb: &mut Testbed,
    iteration: u64,
    value: u64,
    cov: &mut CoverageMap,
    findings: &mut Vec<FuzzFinding>,
) -> Result<()> {
    let (iova, buf_size) = head_desc(tb)?;
    let target = Iova(iova.raw() + buf_size as u64 + SHINFO_DESTRUCTOR_ARG as u64);
    let start = tb.ctx.clock.now();
    // Consuming the head frame fills the IOTLB through this IOVA and
    // then unmaps it; under deferred invalidation the entry lingers.
    tb.deliver_packet(&Packet::udp(62, 1, vec![0x5a; 48]))?;
    match tb
        .nic
        .write_u64(&mut tb.ctx, &mut tb.iommu, &mut tb.mem.phys, target, value)
    {
        Ok(()) => {
            cov.add_window(WindowPath::DeferredIotlb);
            findings.push(FuzzFinding {
                iteration,
                taxonomy: SubPageVulnerability::OsMetadata,
                dkasan: None,
                site: "skb_shared_info.destructor_arg".to_string(),
                dkasan_id: String::new(),
                attrs: VulnerabilityAttributes {
                    malicious_kva: classify_kva(value),
                    callback: Some(CallbackExposure {
                        iova: target,
                        page_offset: (target.raw() % dma_core::PAGE_SIZE as u64) as usize,
                        via: SubPageVulnerability::OsMetadata,
                        field: "destructor_arg",
                    }),
                    window: Some(TimeWindow {
                        start,
                        end: tb.ctx.clock.now(),
                        path: WindowPath::DeferredIotlb,
                    }),
                },
            });
            Ok(())
        }
        // Strict invalidation revoked the entry: the window is closed,
        // which is itself a (negative) observation — the IOMMU fault is
        // already in the coverage map via the event stream.
        Err(e) => Err(e),
    }
}
