//! The kill-and-resume harness: proves the crash-safety contract by
//! simulating a process death mid-campaign and comparing the resumed
//! run's report, byte for byte, against an uninterrupted run.
//!
//! "Kill" here means dropping the [`Campaign`] value on the floor at a
//! chosen iteration — everything since the last checkpoint is lost,
//! exactly as a SIGKILL would lose it — and then calling
//! [`Campaign::resume`] against the same checkpoint directory. Because
//! every layer under the campaign is deterministic, the resumed run
//! re-executes the lost tail identically.

use dma_core::Result;

use crate::campaign::{Campaign, CampaignConfig};

/// Outcome of one kill-and-resume experiment.
pub struct KillResumeOutcome {
    /// Iteration at which the first run was killed.
    pub kill_at: u64,
    /// Iteration the resumed campaign restarted from (the last
    /// checkpoint's `next_iter`; at most `kill_at`).
    pub resumed_from: u64,
    /// Checkpoint generations recovered from corruption during resume.
    pub recovered: u64,
    /// `--json` report of the killed-then-resumed campaign.
    pub resumed_json: String,
    /// `--json` report of the uninterrupted control campaign.
    pub uninterrupted_json: String,
}

impl KillResumeOutcome {
    /// The contract: resumed output is byte-identical to uninterrupted
    /// output.
    pub fn identical(&self) -> bool {
        self.resumed_json == self.uninterrupted_json
    }
}

/// Runs a campaign to `kill_at`, drops it, resumes from the checkpoint
/// directory, finishes, and also runs an uninterrupted control with the
/// same seed/budget (but no checkpointing) for comparison.
///
/// `cfg` must carry a checkpoint dir and a cadence that produces at
/// least one checkpoint before `kill_at`.
pub fn kill_and_resume(cfg: &CampaignConfig, kill_at: u64) -> Result<KillResumeOutcome> {
    let mut doomed = Campaign::new(cfg.clone())?;
    doomed.run_until(kill_at)?;
    // Simulated SIGKILL: all in-memory progress past the last
    // checkpoint dies with the value.
    drop(doomed);

    let mut resumed = Campaign::resume(cfg.clone())?;
    let resumed_from = resumed.next_iter();
    resumed.run_to_end()?;
    let recovered = resumed.store().map(|s| s.recovered()).unwrap_or(0);
    let resumed_json = resumed.finish()?.to_json();

    let mut control_cfg = cfg.clone();
    control_cfg.checkpoint_dir = None;
    control_cfg.checkpoint_every = 0;
    control_cfg.corpus_dir = None;
    let uninterrupted_json = Campaign::run(control_cfg)?.to_json();

    Ok(KillResumeOutcome {
        kill_at,
        resumed_from,
        recovered,
        resumed_json,
        uninterrupted_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dma-resilience-{}-{name}", std::process::id()))
    }

    #[test]
    fn resumed_run_is_byte_identical_to_uninterrupted() {
        let dir = tmp("basic");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CampaignConfig::new(11, 8);
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = 2;
        let out = kill_and_resume(&cfg, 5).unwrap();
        assert_eq!(out.resumed_from, 4, "last checkpoint before the kill");
        assert!(out.identical(), "resumed and uninterrupted reports differ");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_replays_even_a_quarantined_tail() {
        // The planted panic sits *after* the kill point: the resumed
        // run must rediscover and re-quarantine it identically.
        let dir = tmp("quarantine-tail");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CampaignConfig::new(11, 7);
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = 3;
        cfg.plant_panic_at = Some(5);
        let out = kill_and_resume(&cfg, 4).unwrap();
        assert_eq!(out.resumed_from, 3);
        assert!(out.identical());
        assert!(out.resumed_json.contains("\"kind\":\"panic\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_before_any_checkpoint_is_an_error() {
        let dir = tmp("no-checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CampaignConfig::new(11, 4);
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = 0;
        assert!(Campaign::resume(cfg).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
