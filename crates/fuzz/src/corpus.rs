//! Corpus store: signature-deduped interesting inputs plus a greedy
//! minimizer.
//!
//! An input is *interesting* when its coverage map sets bits the global
//! map has never seen. Admitted inputs are deduped by coverage
//! signature and shrunk by removing ops one at a time (back to front),
//! re-executing after each removal and keeping it only when the
//! signature — the behavioral fingerprint — is preserved. Everything is
//! deterministic, so two runs with one seed build byte-identical
//! corpora.

use dma_core::jsonw::JsonWriter;
use dma_core::{CoverageMap, Result};
use std::collections::BTreeSet;
use std::path::Path;

use crate::exec::{config_name, execute, execute_with_forensics, ExecContext, ExecOutcome};
use crate::input::FuzzInput;

/// How many causal chains a corpus entry retains at most.
const MAX_CHAINS: usize = 4;

/// One admitted corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Run seed (replay key, with `iteration`).
    pub seed: u64,
    /// Iteration that generated the input.
    pub iteration: u64,
    /// Machine configuration index.
    pub config_id: u8,
    /// Coverage signature of the (original and minimized) input.
    pub signature: u64,
    /// Bits this entry added to the global map on admission.
    pub new_bits: u32,
    /// Op count before minimization.
    pub ops: usize,
    /// The minimized input (its op count is the post-minimization size).
    pub input: FuzzInput,
    /// Causal provenance chains — one per D-KASAN finding the minimized
    /// input still triggers (oldest event → trigger), capped at
    /// [`MAX_CHAINS`]. Empty when the entry was admitted on coverage
    /// novelty alone.
    pub chains: Vec<String>,
}

impl CorpusEntry {
    /// Deterministic JSON rendering (the on-disk corpus format).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_u64("seed", self.seed);
            w.field_u64("iteration", self.iteration);
            w.field_str("config", config_name(self.config_id));
            w.field_str("signature", &format!("{:016x}", self.signature));
            w.field_u64("new_bits", self.new_bits as u64);
            w.field_u64("ops", self.ops as u64);
            w.field_u64("min_ops", self.input.ops.len() as u64);
            w.field("program", |w| {
                w.arr(|w| {
                    for op in &self.input.ops {
                        w.elem(|w| w.str(&op.describe()));
                    }
                });
            });
            w.field("causal_chains", |w| {
                w.arr(|w| {
                    for c in &self.chains {
                        w.elem(|w| w.str(c));
                    }
                });
            });
        });
        w.finish()
    }
}

/// The corpus: admitted entries in discovery order.
#[derive(Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    signatures: BTreeSet<u64>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Rebuilds a corpus from snapshot entries, restoring the signature
    /// dedup set so a resumed campaign admits exactly what the
    /// uninterrupted one would.
    pub fn restore(entries: Vec<CorpusEntry>) -> Self {
        let signatures = entries.iter().map(|e| e.signature).collect();
        Corpus {
            entries,
            signatures,
        }
    }

    /// Entries in discovery order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been admitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Signatures in discovery order (the determinism fingerprint).
    pub fn signatures(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.signature).collect()
    }

    /// Considers an executed input: merges its coverage into `global`
    /// and admits it (minimized) when it added new bits and its
    /// signature is unseen. Returns the number of extra executions
    /// spent (minimizer replays plus one forensic annotation replay; 0
    /// when not admitted).
    pub fn consider(
        &mut self,
        input: &FuzzInput,
        outcome: &ExecOutcome,
        global: &mut CoverageMap,
    ) -> Result<usize> {
        self.consider_with(None, input, outcome, global)
    }

    /// [`Corpus::consider`] with an optional warm [`ExecContext`]: the
    /// minimizer's replays and the forensic annotation replay go through
    /// the cached boot templates instead of booting per replay. Warm and
    /// cold admissions are outcome-identical.
    pub fn consider_with(
        &mut self,
        mut cx: Option<&mut ExecContext>,
        input: &FuzzInput,
        outcome: &ExecOutcome,
        global: &mut CoverageMap,
    ) -> Result<usize> {
        let new_bits = global.merge(&outcome.coverage);
        if new_bits == 0 || !self.signatures.insert(outcome.signature) {
            return Ok(0);
        }
        let (minimized, execs) = minimize(cx.as_deref_mut(), input, outcome.signature)?;
        // One forensic replay of the kept input annotates the entry
        // with the causal chains behind its D-KASAN findings.
        let run = match cx {
            Some(cx) => cx.execute_with_forensics(&minimized)?,
            None => execute_with_forensics(&minimized)?,
        };
        let mut chains: Vec<String> = Vec::new();
        for inc in &run.incidents {
            let c = inc.chain();
            if !c.is_empty() && !chains.contains(&c) {
                chains.push(c);
            }
            if chains.len() == MAX_CHAINS {
                break;
            }
        }
        self.entries.push(CorpusEntry {
            seed: input.seed,
            iteration: input.iteration,
            config_id: input.config_id,
            signature: outcome.signature,
            new_bits,
            ops: input.ops.len(),
            input: minimized,
            chains,
        });
        Ok(execs + 1)
    }

    /// Writes every entry as `entry-<idx>-<signature>.json` under
    /// `dir`, creating it if needed. Returns the file count.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        for (idx, e) in self.entries.iter().enumerate() {
            let name = format!("entry-{idx:04}-{:016x}.json", e.signature);
            std::fs::write(dir.join(name), e.to_json())?;
        }
        Ok(self.entries.len())
    }
}

/// Greedy shrink: drop ops back to front, keeping each removal only if
/// the re-executed signature still equals `target`. Returns the
/// minimized input and how many re-executions it took.
fn minimize(
    mut cx: Option<&mut ExecContext>,
    input: &FuzzInput,
    target: u64,
) -> Result<(FuzzInput, usize)> {
    let mut cur = input.clone();
    let mut execs = 0;
    let mut i = cur.ops.len();
    while i > 0 {
        i -= 1;
        if cur.ops.len() <= 1 {
            break;
        }
        let mut cand = cur.clone();
        cand.ops.remove(i);
        execs += 1;
        let sig = match cx.as_deref_mut() {
            Some(cx) => cx.execute(&cand)?.signature,
            None => execute(&cand)?.signature,
        };
        if sig == target {
            cur = cand;
        }
    }
    Ok((cur, execs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_requires_new_bits_and_fresh_signature() {
        let input = FuzzInput::generate(11, 0);
        let out = execute(&input).unwrap();
        let mut corpus = Corpus::new();
        let mut global = CoverageMap::new();
        corpus.consider(&input, &out, &mut global).unwrap();
        assert_eq!(corpus.len(), 1);
        // Same outcome again: no new bits, no duplicate entry.
        corpus.consider(&input, &out, &mut global).unwrap();
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.signatures(), vec![out.signature]);
    }

    #[test]
    fn minimizer_preserves_signature_and_never_grows() {
        let input = FuzzInput::generate(11, 2);
        let out = execute(&input).unwrap();
        let (min, _) = minimize(None, &input, out.signature).unwrap();
        assert!(min.ops.len() <= input.ops.len());
        assert!(!min.ops.is_empty());
        assert_eq!(execute(&min).unwrap().signature, out.signature);
    }

    #[test]
    fn corpus_entry_json_is_deterministic() {
        let input = FuzzInput::generate(11, 1);
        let out = execute(&input).unwrap();
        let mut corpus = Corpus::new();
        let mut global = CoverageMap::new();
        corpus.consider(&input, &out, &mut global).unwrap();
        let e = &corpus.entries()[0];
        assert_eq!(e.to_json(), e.to_json());
        assert!(e.to_json().contains("\"signature\""));
        assert!(e.to_json().contains("\"program\""));
    }
}
