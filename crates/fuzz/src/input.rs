//! Seeded generation of fuzz inputs.
//!
//! A [`FuzzInput`] is a short program of [`MutationOp`]s plus a machine
//! configuration index, derived *entirely* from `(seed, iteration)`
//! through a [`DetRng`]. There is no stored corpus format to replay —
//! regenerating the input from the pair reproduces it bit for bit,
//! which is what makes every finding replayable from two integers.

use dma_core::DetRng;

/// Upper bound on ops per input (the first op is always a frame
/// delivery so later ops have ring state to chew on).
pub const MAX_OPS: usize = 12;

/// Iteration flag selecting the planted *panicking* input: ORed into an
/// iteration number, [`FuzzInput::generate`] returns a fixed two-op
/// program ending in [`MutationOp::DebugPanic`]. The campaign engine
/// uses it to prove panic isolation end to end; because the flag bits
/// sit far above any realistic iteration count, the normal random input
/// stream is untouched.
pub const PLANT_PANIC_BIT: u64 = 1 << 63;

/// Iteration flag selecting the planted *runaway* input: a fixed
/// program ending in a [`MutationOp::BusySpin`] long enough to exceed
/// the default watchdog budget (but still finite, so an unbudgeted
/// replay terminates).
pub const PLANT_HANG_BIT: u64 = 1 << 62;

/// Spin count of the planted runaway input: at `SPIN_COST` simulated
/// cycles per spin this exceeds `exec::DEFAULT_WATCHDOG_BUDGET` while
/// remaining finite.
pub const PLANT_HANG_SPINS: u64 = 2_000_000;

/// Fault-rule glob patterns the fuzzer arms (exercising the
/// `dma_core::fault` pattern grammar end to end: operation-segment
/// globs, in-segment wildcards, layer prefixes).
pub const FAULT_GLOBS: &[&str] = &[
    "*.rx_refill",
    "sim_mem.*",
    "*.dma_*",
    "sim_iommu.alloc_iova",
    "sim_*.*alloc*",
];

/// One step of a fuzz input: something the device (or time) does to the
/// machine. All payload bytes and addresses are derived at generation
/// time so applying an op is deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationOp {
    /// Deliver a well-formed UDP frame of `len` payload bytes.
    Deliver {
        /// Payload length.
        len: usize,
        /// Payload fill byte.
        fill: u8,
    },
    /// Device writes `len` raw (unframed, adversarial) wire bytes.
    InjectRaw {
        /// Wire length.
        len: usize,
        /// Fill byte; successive bytes increment from it.
        fill: u8,
    },
    /// Device writes into an *inferred* DMA channel: the executor
    /// resolves `channel`/`slot` against the live `dma-infer` write
    /// plan, so the same op tampers with `skb_shared_info` on the NIC
    /// and with used-ring/CQE state on the other zoo members — with
    /// zero hand-wired offsets (§3.2 type (b) tampering).
    ChannelWrite {
        /// Index into the inferred channel plan (mod its length).
        channel: usize,
        /// Index into the channel's live targets (mod their count).
        slot: usize,
        /// Value written (8 bytes, little-endian).
        value: u64,
    },
    /// Device deposits bytes into the head RX payload window without
    /// signalling completion.
    PayloadDeposit {
        /// Offset within the payload area.
        offset: usize,
        /// Fill byte.
        fill: u8,
        /// Length.
        len: usize,
    },
    /// Deliver a frame and fire a device write at `destructor_arg`
    /// *inside* the rx_poll window (§5.2.2 paths (i)/(ii)).
    RaceWrite {
        /// Value the device writes into the callback slot.
        value: u64,
    },
    /// Capture the head descriptor, let the driver consume/unmap it,
    /// then write through the captured IOVA — lands only while a stale
    /// IOTLB entry survives (deferred invalidation, path (ii)).
    StaleWrite {
        /// Value the device writes.
        value: u64,
    },
    /// Advance simulated time (triggers deferred IOTLB flushes, closing
    /// windows).
    AdvanceTime {
        /// Milliseconds.
        ms: u64,
    },
    /// Kmalloc churn rounds: allocations that may land on mapped slab
    /// pages (type (d) random co-location).
    KmallocChurn {
        /// Alloc/free rounds.
        rounds: usize,
    },
    /// Device scans all RX descriptors for leaked kernel pointers.
    DescriptorScan,
    /// Honest TX completion of everything in flight.
    CompleteTx,
    /// Arm a fault-injection rule by glob pattern.
    ArmFault {
        /// Index into [`FAULT_GLOBS`].
        glob: usize,
        /// EveryK period.
        every: u64,
    },
    /// Deliberately panic the executor. Never randomly generated — only
    /// the planted [`PLANT_PANIC_BIT`] input carries it, so the campaign
    /// engine's panic isolation can be exercised deterministically.
    DebugPanic,
    /// Busy-spin for `spins` rounds of simulated work. Never randomly
    /// generated — the planted [`PLANT_HANG_BIT`] input uses it to
    /// exceed the watchdog's cycle budget deterministically.
    BusySpin {
        /// Spin rounds; each costs `exec::SPIN_COST` simulated cycles.
        spins: u64,
    },
}

impl MutationOp {
    /// Short op name for coverage keys and corpus files.
    pub fn name(&self) -> &'static str {
        match self {
            MutationOp::Deliver { .. } => "deliver",
            MutationOp::InjectRaw { .. } => "inject_raw",
            MutationOp::ChannelWrite { .. } => "channel_write",
            MutationOp::PayloadDeposit { .. } => "payload_deposit",
            MutationOp::RaceWrite { .. } => "race_write",
            MutationOp::StaleWrite { .. } => "stale_write",
            MutationOp::AdvanceTime { .. } => "advance_time",
            MutationOp::KmallocChurn { .. } => "kmalloc_churn",
            MutationOp::DescriptorScan => "descriptor_scan",
            MutationOp::CompleteTx => "complete_tx",
            MutationOp::ArmFault { .. } => "arm_fault",
            MutationOp::DebugPanic => "debug_panic",
            MutationOp::BusySpin { .. } => "busy_spin",
        }
    }

    /// One-line rendering for corpus files and reports.
    pub fn describe(&self) -> String {
        match self {
            MutationOp::Deliver { len, fill } => format!("deliver len={len} fill={fill:#04x}"),
            MutationOp::InjectRaw { len, fill } => format!("inject_raw len={len} fill={fill:#04x}"),
            MutationOp::ChannelWrite {
                channel,
                slot,
                value,
            } => {
                format!("channel_write channel={channel} slot={slot} value={value:#x}")
            }
            MutationOp::PayloadDeposit { offset, fill, len } => {
                format!("payload_deposit offset={offset} len={len} fill={fill:#04x}")
            }
            MutationOp::RaceWrite { value } => format!("race_write value={value:#x}"),
            MutationOp::StaleWrite { value } => format!("stale_write value={value:#x}"),
            MutationOp::AdvanceTime { ms } => format!("advance_time ms={ms}"),
            MutationOp::KmallocChurn { rounds } => format!("kmalloc_churn rounds={rounds}"),
            MutationOp::DescriptorScan => "descriptor_scan".to_string(),
            MutationOp::CompleteTx => "complete_tx".to_string(),
            MutationOp::ArmFault { glob, every } => {
                let pat = FAULT_GLOBS[glob % FAULT_GLOBS.len()];
                format!("arm_fault glob={pat} every={every}")
            }
            MutationOp::DebugPanic => "debug_panic".to_string(),
            MutationOp::BusySpin { spins } => format!("busy_spin spins={spins}"),
        }
    }
}

/// One fuzz input: a machine configuration plus an op program, fully
/// determined by `(seed, iteration)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzInput {
    /// Run seed.
    pub seed: u64,
    /// Iteration within the run.
    pub iteration: u64,
    /// Machine configuration index (see `exec::machine_config`).
    pub config_id: u8,
    /// The op program.
    pub ops: Vec<MutationOp>,
}

/// Number of machine configurations the fuzzer sweeps — the
/// device×mode matrix in `exec::machine_config`: five NIC shapes
/// (including the inverted unmap/flush ordering), the virtio split-ring
/// transport in deferred and strict modes, and the NVMe queue pair in
/// both modes.
pub const NUM_CONFIGS: u8 = 9;

fn pick_value(rng: &mut DetRng) -> u64 {
    match rng.below(4) {
        // A direct-map-looking KVA — the "malicious pointer" class the
        // §3.3 attributes care about.
        0 => 0xffff_8880_0000_0000 + (rng.below(1 << 28) & !0x7),
        // A kernel-text-looking pointer.
        1 => 0xffff_ffff_8100_0000 + (rng.below(1 << 20) & !0xf),
        // A small integer (interesting for counts like nr_frags/dataref).
        2 => rng.below(64),
        _ => rng.next_u64(),
    }
}

impl FuzzInput {
    /// Derives the input for `(seed, iteration)`. Early iterations sweep
    /// the machine configurations round-robin so every driver shape is
    /// explored even under tiny budgets.
    pub fn generate(seed: u64, iteration: u64) -> FuzzInput {
        // Planted inputs come first so the normal random stream below is
        // byte-for-byte unchanged by their existence: realistic iteration
        // numbers never carry the high flag bits.
        if iteration & PLANT_PANIC_BIT != 0 {
            return FuzzInput {
                seed,
                iteration,
                config_id: 0,
                ops: vec![
                    MutationOp::Deliver {
                        len: 64,
                        fill: 0xaa,
                    },
                    MutationOp::DebugPanic,
                ],
            };
        }
        if iteration & PLANT_HANG_BIT != 0 {
            return FuzzInput {
                seed,
                iteration,
                config_id: 0,
                ops: vec![
                    MutationOp::Deliver {
                        len: 64,
                        fill: 0xbb,
                    },
                    MutationOp::BusySpin {
                        spins: PLANT_HANG_SPINS,
                    },
                ],
            };
        }
        let mut rng =
            DetRng::new(seed ^ iteration.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x00f0_22ed_u64);
        let config_id = (iteration % NUM_CONFIGS as u64) as u8;
        let n = 3 + rng.below((MAX_OPS - 4) as u64) as usize;
        let mut ops = Vec::with_capacity(n + 1);
        ops.push(MutationOp::Deliver {
            len: 16 + rng.below(240) as usize,
            fill: rng.below(256) as u8,
        });
        for _ in 0..n {
            ops.push(match rng.below(12) {
                0 | 1 => MutationOp::Deliver {
                    len: 1 + rng.below(512) as usize,
                    fill: rng.below(256) as u8,
                },
                2 => MutationOp::InjectRaw {
                    len: 1 + rng.below(256) as usize,
                    fill: rng.below(256) as u8,
                },
                3 => MutationOp::ChannelWrite {
                    channel: rng.below(4) as usize,
                    slot: rng.below(64) as usize,
                    value: pick_value(&mut rng),
                },
                4 => MutationOp::PayloadDeposit {
                    offset: rng.below(1664) as usize,
                    fill: rng.below(256) as u8,
                    len: 1 + rng.below(64) as usize,
                },
                5 => MutationOp::RaceWrite {
                    value: pick_value(&mut rng),
                },
                6 => MutationOp::StaleWrite {
                    value: pick_value(&mut rng),
                },
                7 => MutationOp::AdvanceTime {
                    ms: 1 + rng.below(24),
                },
                8 => MutationOp::KmallocChurn {
                    rounds: 1 + rng.below(6) as usize,
                },
                9 => MutationOp::DescriptorScan,
                10 => MutationOp::CompleteTx,
                _ => MutationOp::ArmFault {
                    glob: rng.below(FAULT_GLOBS.len() as u64) as usize,
                    every: 2 + rng.below(6),
                },
            });
        }
        FuzzInput {
            seed,
            iteration,
            config_id,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FuzzInput::generate(7, 33);
        let b = FuzzInput::generate(7, 33);
        assert_eq!(a, b);
        assert_ne!(a, FuzzInput::generate(7, 34));
        assert_ne!(a, FuzzInput::generate(8, 33));
    }

    #[test]
    fn first_op_is_always_a_delivery() {
        for it in 0..64 {
            let input = FuzzInput::generate(1, it);
            assert!(matches!(input.ops[0], MutationOp::Deliver { .. }));
            assert!(input.ops.len() <= MAX_OPS);
            assert_eq!(input.config_id, (it % NUM_CONFIGS as u64) as u8);
        }
    }

    #[test]
    fn all_op_kinds_appear_within_a_small_budget() {
        let mut seen = std::collections::BTreeSet::new();
        for it in 0..96 {
            for op in &FuzzInput::generate(3, it).ops {
                seen.insert(op.name());
            }
        }
        for kind in [
            "deliver",
            "inject_raw",
            "channel_write",
            "payload_deposit",
            "race_write",
            "stale_write",
            "advance_time",
            "kmalloc_churn",
            "descriptor_scan",
            "complete_tx",
            "arm_fault",
        ] {
            assert!(seen.contains(kind), "{kind} never generated");
        }
    }

    #[test]
    fn planted_inputs_are_fixed_and_never_randomly_generated() {
        let panic_in = FuzzInput::generate(7, 5 | PLANT_PANIC_BIT);
        assert_eq!(panic_in.ops.len(), 2);
        assert!(matches!(panic_in.ops[1], MutationOp::DebugPanic));
        let hang_in = FuzzInput::generate(7, 5 | PLANT_HANG_BIT);
        assert_eq!(hang_in.ops.len(), 2);
        assert!(matches!(
            hang_in.ops[1],
            MutationOp::BusySpin {
                spins: PLANT_HANG_SPINS
            }
        ));
        // The random stream never emits either op.
        for it in 0..256 {
            for op in &FuzzInput::generate(9, it).ops {
                assert!(
                    !matches!(op, MutationOp::DebugPanic | MutationOp::BusySpin { .. }),
                    "planted op leaked into the random stream at iteration {it}"
                );
            }
        }
    }

    #[test]
    fn describe_names_every_op() {
        for it in 0..16 {
            for op in &FuzzInput::generate(5, it).ops {
                assert!(op.describe().starts_with(op.name()), "{:?}", op);
            }
        }
    }
}
