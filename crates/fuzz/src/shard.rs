//! Sharded campaigns: N independent seeded shards across T OS threads,
//! merged into one deterministic [`FuzzReport`].
//!
//! Every piece of mutable simulator state is already shard-local — a
//! [`Campaign`] owns its own machine (memory, IOMMU domain, rings,
//! driver), its own metrics registry, corpus, and RNG stream — so a
//! shard is simply a campaign running under the derived seed
//! `shard_seed(base, shard_id)` ([`dma_core::shard_seed`]). Shard 0
//! keeps the base seed unchanged, which makes a 1-shard sharded run
//! byte-identical to the legacy single-campaign engine.
//!
//! The merge is a pure function of the per-shard outcomes taken in
//! shard-id order, never in thread-completion order, so the merged
//! report is **byte-identical regardless of the thread count**:
//!
//! - counters (`execs`, `minimize_execs`, `delivered`, `dropped`,
//!   `total_cycles`, `trace_dropped`) are sums;
//! - coverage maps are bitwise OR-ed;
//! - corpora concatenate in shard order, deduped by coverage signature
//!   (first shard to discover a signature keeps it);
//! - findings concatenate in shard order, deduped by
//!   [`FuzzFinding::key`]; crash findings concatenate (their `dq-…` ids
//!   embed the shard seed, so they never collide);
//! - the series keeps shard 0's curve and appends one milestone point
//!   per additional shard (global iteration index, merged bits, merged
//!   corpus size, cumulative simulated cycles);
//! - metrics snapshots fold with [`Snapshot::merge`] (deterministic
//!   counter/histogram addition).
//!
//! Checkpointing nests one two-generation store per shard under
//! `checkpoint_dir/shard-NNNN/`
//! ([`dma_core::checkpoint::shard_dir`]); [`ShardedCampaign::resume`]
//! restores every shard that managed to persist a generation and
//! re-runs the rest from scratch, landing on the same merged bytes as
//! an uninterrupted run.

use std::collections::BTreeSet;
use std::path::PathBuf;

use dma_core::checkpoint::shard_dir;
use dma_core::{shard_seed, CoverageMap, DmaError, Result, Snapshot};

use crate::campaign::{Campaign, CampaignConfig};
use crate::exec::DEFAULT_WATCHDOG_BUDGET;
use crate::input::FuzzInput;
use crate::report::{FuzzReport, SeriesPoint};
use crate::Corpus;

/// Configuration of a sharded campaign.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Base seed; shard `i` runs under `shard_seed(seed, i)`.
    pub seed: u64,
    /// Iteration budget **per shard** (total execs = `shards * iters`).
    pub iters: u64,
    /// Number of independent shards.
    pub shards: u32,
    /// OS threads to spread the shards over (clamped to ≥ 1; the merge
    /// is thread-count-agnostic).
    pub threads: usize,
    /// Merged corpus/quarantine output directory.
    pub corpus_dir: Option<PathBuf>,
    /// Base checkpoint directory; shard `i` checkpoints under
    /// `shard-NNNN/` inside it.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence per shard; 0 disables periodic saves.
    pub checkpoint_every: u64,
    /// Per-exec watchdog budget in simulated cycles.
    pub watchdog_budget: u64,
    /// Restrict every shard to one machine configuration (the
    /// `dma-lab fuzz --config` path).
    pub only_config: Option<u8>,
}

impl ShardConfig {
    /// A plain sharded campaign: no checkpoints, no output dirs.
    pub fn new(seed: u64, iters: u64, shards: u32, threads: usize) -> ShardConfig {
        ShardConfig {
            seed,
            iters,
            shards,
            threads,
            corpus_dir: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            watchdog_budget: DEFAULT_WATCHDOG_BUDGET,
            only_config: None,
        }
    }
}

/// Everything one shard hands to the merge: its report plus the raw
/// coverage map and metrics snapshot the report's scalar fields were
/// rendered from (the merge needs the structures, not the renderings).
pub struct ShardOutcome {
    /// Shard index (merge key — outcomes are sorted by it).
    pub shard_id: u32,
    /// The shard's own finished report.
    pub report: FuzzReport,
    /// The shard's final global coverage map.
    pub coverage: CoverageMap,
    /// The shard's final metrics snapshot.
    pub snapshot: Snapshot,
}

/// The sharded campaign driver. See the module docs for the model.
pub struct ShardedCampaign {
    cfg: ShardConfig,
}

impl ShardedCampaign {
    /// A sharded campaign over `cfg` (validated at run time).
    pub fn new(cfg: ShardConfig) -> ShardedCampaign {
        ShardedCampaign { cfg }
    }

    /// The configuration this sharded campaign runs under.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The [`CampaignConfig`] shard `shard_id` runs under: derived
    /// seed, per-shard checkpoint subdirectory, no direct corpus dir
    /// (the merge writes corpus and quarantine files once, centrally).
    pub fn shard_campaign_config(&self, shard_id: u32) -> CampaignConfig {
        CampaignConfig {
            seed: shard_seed(self.cfg.seed, shard_id),
            iters: self.cfg.iters,
            corpus_dir: None,
            checkpoint_dir: self
                .cfg
                .checkpoint_dir
                .as_ref()
                .map(|base| shard_dir(base, shard_id)),
            checkpoint_every: self.cfg.checkpoint_every,
            watchdog_budget: self.cfg.watchdog_budget,
            plant_panic_at: None,
            plant_hang_at: None,
            only_config: self.cfg.only_config,
        }
    }

    /// Runs every shard from iteration 0 and merges.
    pub fn run(&self) -> Result<FuzzReport> {
        let outcomes = self.run_shards(false)?;
        self.merge(outcomes)
    }

    /// Resumes every shard from its newest valid checkpoint generation
    /// (shards without one restart from iteration 0) and merges.
    pub fn resume(&self) -> Result<FuzzReport> {
        let outcomes = self.run_shards(true)?;
        self.merge(outcomes)
    }

    /// Runs the shards across the configured thread count and returns
    /// their outcomes sorted by shard id. Exposed (next to
    /// [`ShardedCampaign::merge`]) so the scale bench can time the
    /// execution and merge phases separately.
    pub fn run_shards(&self, resume: bool) -> Result<Vec<ShardOutcome>> {
        if self.cfg.shards == 0 {
            return Err(DmaError::Invariant("sharded campaign needs >= 1 shard"));
        }
        let threads = self.cfg.threads.max(1).min(self.cfg.shards as usize);
        let mut outcomes: Vec<ShardOutcome> = if threads == 1 {
            (0..self.cfg.shards)
                .map(|id| self.run_one_shard(id, resume))
                .collect::<Result<_>>()?
        } else {
            // Round-robin shard ids over the workers; each worker runs
            // its shards in ascending order. The assignment only
            // affects scheduling — outcomes are re-sorted by shard id
            // before the merge, so T never reaches the bytes.
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        scope.spawn(move || {
                            (t as u32..self.cfg.shards)
                                .step_by(threads)
                                .map(|id| self.run_one_shard(id, resume))
                                .collect::<Result<Vec<_>>>()
                        })
                    })
                    .collect();
                let mut all = Vec::with_capacity(self.cfg.shards as usize);
                for h in handles {
                    let batch = h
                        .join()
                        .map_err(|_| DmaError::Invariant("shard worker thread panicked"))?;
                    all.extend(batch?);
                }
                Ok::<_, DmaError>(all)
            })?
        };
        outcomes.sort_by_key(|o| o.shard_id);
        Ok(outcomes)
    }

    fn run_one_shard(&self, shard_id: u32, resume: bool) -> Result<ShardOutcome> {
        let cfg = self.shard_campaign_config(shard_id);
        let mut c = if resume && cfg.checkpoint_dir.is_some() {
            match Campaign::resume(cfg.clone()) {
                Ok(c) => c,
                // A shard that never persisted a generation (killed
                // before its first cadence) restarts from scratch.
                Err(DmaError::Invariant("no valid checkpoint to resume from")) => {
                    Campaign::new(cfg)?
                }
                Err(e) => return Err(e),
            }
        } else {
            Campaign::new(cfg)?
        };
        c.run_to_end()?;
        let coverage = c.state().global.clone();
        let snapshot = c.state().metrics.snapshot(c.state().total_cycles);
        let report = c.finish()?;
        Ok(ShardOutcome {
            shard_id,
            report,
            coverage,
            snapshot,
        })
    }

    /// Folds shard outcomes (must be sorted by shard id) into the
    /// merged report, then writes the merged corpus and quarantine
    /// files when a corpus dir is configured. Pure in the outcomes:
    /// byte-identical output for any thread count.
    pub fn merge(&self, outcomes: Vec<ShardOutcome>) -> Result<FuzzReport> {
        let mut it = outcomes.into_iter();
        let first = it
            .next()
            .ok_or(DmaError::Invariant("nothing to merge: no shard outcomes"))?;
        let mut coverage = first.coverage;
        let mut snapshot = first.snapshot;
        let mut merged = first.report;
        merged.seed = self.cfg.seed;
        let mut signatures: BTreeSet<u64> = merged.corpus.iter().map(|e| e.signature).collect();
        let mut seen_keys: BTreeSet<String> = merged.findings.iter().map(|f| f.key()).collect();
        for o in it {
            coverage.merge(&o.coverage);
            snapshot.merge(&o.snapshot);
            merged.iters += o.report.iters;
            merged.execs += o.report.execs;
            merged.minimize_execs += o.report.minimize_execs;
            merged.delivered += o.report.delivered;
            merged.dropped += o.report.dropped;
            merged.total_cycles += o.report.total_cycles;
            merged.trace_dropped += o.report.trace_dropped;
            merged.profile.merge(&o.report.profile);
            for e in o.report.corpus {
                if signatures.insert(e.signature) {
                    merged.corpus.push(e);
                }
            }
            for f in o.report.findings {
                if seen_keys.insert(f.key()) {
                    merged.findings.push(f);
                }
            }
            merged.crashes.extend(o.report.crashes);
            // One milestone point per extra shard keeps the merged
            // series monotone in global iterations without interleaving
            // per-shard curves (which would depend on nothing the
            // reader can replay).
            if self.cfg.iters > 0 {
                merged.series.push(SeriesPoint {
                    iteration: u64::from(o.shard_id + 1) * self.cfg.iters - 1,
                    coverage_bits: coverage.count_ones(),
                    corpus_size: merged.corpus.len(),
                    sim_cycles: merged.total_cycles,
                });
            }
        }
        merged.coverage_bits = coverage.count_ones();
        merged.stats_json = snapshot.to_json();
        if let Some(dir) = &self.cfg.corpus_dir {
            Corpus::restore(merged.corpus.clone())
                .write_to_dir(dir)
                .map_err(|_| DmaError::Invariant("corpus dir not writable"))?;
            if !merged.crashes.is_empty() {
                let qdir = dir.join("quarantine");
                std::fs::create_dir_all(&qdir)
                    .map_err(|_| DmaError::Invariant("quarantine dir not writable"))?;
                for c in &merged.crashes {
                    // (seed, iteration) regenerates the exact offending
                    // program, flag bits included.
                    let input = FuzzInput::generate(c.seed, c.iteration);
                    std::fs::write(qdir.join(format!("{}.json", c.id)), c.to_json(&input))
                        .map_err(|_| DmaError::Invariant("quarantine dir not writable"))?;
                }
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_rejected() {
        let sc = ShardedCampaign::new(ShardConfig::new(7, 4, 0, 1));
        assert!(sc.run().is_err());
    }

    #[test]
    fn shard_zero_runs_under_the_base_seed() {
        let sc = ShardedCampaign::new(ShardConfig::new(7, 4, 3, 1));
        assert_eq!(sc.shard_campaign_config(0).seed, 7);
        assert_ne!(sc.shard_campaign_config(1).seed, 7);
        assert_ne!(
            sc.shard_campaign_config(1).seed,
            sc.shard_campaign_config(2).seed
        );
    }

    #[test]
    fn merged_counters_are_sums_and_coverage_is_a_union() {
        let one = ShardedCampaign::new(ShardConfig::new(7, 6, 1, 1))
            .run()
            .unwrap();
        let four = ShardedCampaign::new(ShardConfig::new(7, 6, 4, 1))
            .run()
            .unwrap();
        assert_eq!(four.iters, 24);
        assert_eq!(four.execs, 24);
        assert!(four.total_cycles > one.total_cycles);
        // Shard 0 of the 4-shard run IS the 1-shard run; the union can
        // only grow from there.
        assert!(four.coverage_bits >= one.coverage_bits);
        assert!(four.corpus.len() >= one.corpus.len());
    }

    #[test]
    fn merge_is_thread_count_agnostic() {
        let a = ShardedCampaign::new(ShardConfig::new(11, 4, 3, 1))
            .run()
            .unwrap();
        let b = ShardedCampaign::new(ShardConfig::new(11, 4, 3, 3))
            .run()
            .unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }
}
