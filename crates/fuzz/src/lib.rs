//! # `fuzz` — deterministic coverage-guided DMA-input fuzzing
//!
//! This crate closes the loop the paper opens: if sub-page DMA
//! vulnerabilities (§3) arise from mapping layouts and unmap/invalidate
//! orderings, then a fuzzer that *drives the device side* of the
//! simulated stack — depositing adversarial frames, tampering with
//! `skb_shared_info`, firing writes inside the §5.2 time windows — and
//! uses D-KASAN as its oracle should rediscover the Figure-1 classes
//! without being told where they are.
//!
//! Everything is deterministic:
//!
//! * an input is a pure function of `(seed, iteration)` ([`FuzzInput`]);
//! * execution runs on the simulated clock, so cycle counts and the
//!   coverage-over-time series are identical across runs;
//! * coverage is a fixed-size bitmap ([`CoverageMap`]) fed only from
//!   deterministic observations (trace-event shapes, fault sites,
//!   D-KASAN classes, taxonomy letters, window paths);
//! * the corpus admits by coverage novelty, dedups by signature, and
//!   minimizes by signature-preserving op removal.
//!
//! Any finding is therefore replayable from two integers:
//! [`replay`]`(seed, iteration)` re-executes bit for bit.

pub mod corpus;
pub mod exec;
pub mod forensics;
pub mod input;
pub mod report;

pub use corpus::{Corpus, CorpusEntry};
pub use exec::{
    config_name, execute, execute_under_faults, execute_with_forensics, machine_config,
    taxonomy_of, ExecOutcome, ForensicRun, FuzzFinding, EXEC_RECORDER_CAPACITY,
};
pub use forensics::{run_forensics, ForensicsCase, ForensicsReport};
pub use input::{FuzzInput, MutationOp, FAULT_GLOBS, MAX_OPS, NUM_CONFIGS};
pub use report::{FuzzReport, SeriesPoint};

use dma_core::{Metrics, Result};
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Configuration for one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Run seed; every input derives from this plus its iteration.
    pub seed: u64,
    /// Iteration budget.
    pub iters: u64,
    /// When set, admitted corpus entries are written here as JSON.
    pub corpus_dir: Option<PathBuf>,
}

/// Re-executes the input for `(seed, iteration)` — the replay half of
/// the "replayable from two integers" contract.
pub fn replay(seed: u64, iteration: u64) -> Result<ExecOutcome> {
    execute(&FuzzInput::generate(seed, iteration))
}

/// Replay with a chaos fault plan armed on top (what the soak test
/// feeds corpus entries through).
pub fn replay_under_faults(seed: u64, iteration: u64, fault_seed: u64) -> Result<ExecOutcome> {
    execute_under_faults(&FuzzInput::generate(seed, iteration), Some(fault_seed))
}

/// Runs the fuzzing loop: generate, execute, merge coverage, admit to
/// the corpus, record findings. Returns the full [`FuzzReport`].
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzReport> {
    let mut global = dma_core::CoverageMap::new();
    let mut corpus = Corpus::new();
    let mut metrics = Metrics::new();
    let mut findings: Vec<FuzzFinding> = Vec::new();
    let mut seen_keys: BTreeSet<String> = BTreeSet::new();
    let mut series: Vec<report::SeriesPoint> = Vec::new();
    let mut minimize_execs = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut total_cycles = 0u64;
    let mut trace_dropped = 0u64;

    for it in 0..cfg.iters {
        let input = FuzzInput::generate(cfg.seed, it);
        let out = execute(&input)?;
        metrics.incr("fuzz.execs");
        metrics.observe("fuzz.exec.cycles", out.cycles);
        delivered += out.delivered;
        dropped += out.dropped;
        total_cycles += out.cycles;
        trace_dropped += out.trace_dropped;

        let bits_before = global.count_ones();
        minimize_execs += corpus.consider(&input, &out, &mut global)? as u64;
        let bits_after = global.count_ones();
        metrics.gauge_set("fuzz.corpus.size", corpus.len() as u64);
        metrics.gauge_set("fuzz.coverage.bits", bits_after as u64);

        for f in &out.findings {
            if seen_keys.insert(f.key()) {
                findings.push(f.clone());
            }
        }
        metrics.gauge_set("fuzz.findings", findings.len() as u64);

        if bits_after != bits_before || it + 1 == cfg.iters {
            series.push(report::SeriesPoint {
                iteration: it,
                coverage_bits: bits_after,
                corpus_size: corpus.len(),
                sim_cycles: total_cycles,
            });
        }
    }

    if let Some(dir) = &cfg.corpus_dir {
        corpus
            .write_to_dir(dir)
            .map_err(|_| dma_core::DmaError::Invariant("corpus dir not writable"))?;
    }

    let stats_json = metrics.snapshot(total_cycles).to_json();
    Ok(FuzzReport {
        seed: cfg.seed,
        iters: cfg.iters,
        execs: cfg.iters,
        minimize_execs,
        coverage_bits: global.count_ones(),
        corpus: corpus.entries().to_vec(),
        findings,
        series,
        delivered,
        dropped,
        total_cycles,
        trace_dropped,
        stats_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_runs_same_seed_are_identical() {
        let cfg = FuzzConfig {
            seed: 11,
            iters: 8,
            corpus_dir: None,
        };
        let a = run_fuzz(&cfg).unwrap();
        let b = run_fuzz(&cfg).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.series_json(), b.series_json());
        assert_eq!(a.stats_json, b.stats_json);
    }

    #[test]
    fn replay_reproduces_the_recorded_signature() {
        let cfg = FuzzConfig {
            seed: 11,
            iters: 8,
            corpus_dir: None,
        };
        let report = run_fuzz(&cfg).unwrap();
        assert!(!report.corpus.is_empty());
        let e = &report.corpus[0];
        // Replay regenerates the *original* (un-minimized) input; its
        // signature matches what the corpus recorded on admission.
        let out = replay(e.seed, e.iteration).unwrap();
        assert_eq!(out.signature, e.signature);
    }

    #[test]
    fn coverage_grows_monotonically_in_the_series() {
        let cfg = FuzzConfig {
            seed: 3,
            iters: 12,
            corpus_dir: None,
        };
        let report = run_fuzz(&cfg).unwrap();
        let mut prev = 0;
        for p in &report.series {
            assert!(p.coverage_bits >= prev);
            prev = p.coverage_bits;
        }
        assert!(report.coverage_bits > 0);
        assert_eq!(report.execs, 12);
    }
}
