//! # `fuzz` — deterministic coverage-guided DMA-input fuzzing
//!
//! This crate closes the loop the paper opens: if sub-page DMA
//! vulnerabilities (§3) arise from mapping layouts and unmap/invalidate
//! orderings, then a fuzzer that *drives the device side* of the
//! simulated stack — depositing adversarial frames, tampering with
//! `skb_shared_info`, firing writes inside the §5.2 time windows — and
//! uses D-KASAN as its oracle should rediscover the Figure-1 classes
//! without being told where they are.
//!
//! Everything is deterministic:
//!
//! * an input is a pure function of `(seed, iteration)` ([`FuzzInput`]);
//! * execution runs on the simulated clock, so cycle counts and the
//!   coverage-over-time series are identical across runs;
//! * coverage is a fixed-size bitmap ([`CoverageMap`]) fed only from
//!   deterministic observations (trace-event shapes, fault sites,
//!   D-KASAN classes, taxonomy letters, window paths);
//! * the corpus admits by coverage novelty, dedups by signature, and
//!   minimizes by signature-preserving op removal.
//!
//! Any finding is therefore replayable from two integers:
//! [`replay`]`(seed, iteration)` re-executes bit for bit.
//!
//! The [`campaign`] module wraps the loop in the crash-safety model
//! (DESIGN.md §11): periodic checkpoints through a two-generation A/B
//! store ([`snapshot`] is the codec), `catch_unwind` panic isolation
//! with quarantine, and a deterministic simulated-cycle watchdog. The
//! [`resilience`] module is the kill-and-resume harness proving a
//! resumed campaign's report is byte-identical to an uninterrupted
//! one's.

pub mod campaign;
pub mod corpus;
pub mod exec;
pub mod forensics;
pub mod input;
pub mod report;
pub mod resilience;
pub mod shard;
pub mod snapshot;

pub use campaign::{
    crash_id, silence_quarantined_panics, Campaign, CampaignConfig, CampaignEvent, CampaignState,
    CrashFinding, CrashKind, JOURNAL_CAPACITY,
};
pub use corpus::{Corpus, CorpusEntry};
pub use exec::{
    config_device, config_name, execute, execute_under_faults, execute_with_budget,
    execute_with_forensics, machine_config, parse_config, taxonomy_of, ExecContext, ExecOutcome,
    ExecStatus, ForensicRun, FuzzFinding, DEFAULT_WATCHDOG_BUDGET, EXEC_RECORDER_CAPACITY,
    SPIN_COST,
};
pub use forensics::{run_forensics, ForensicsCase, ForensicsReport};
pub use input::{
    FuzzInput, MutationOp, FAULT_GLOBS, MAX_OPS, NUM_CONFIGS, PLANT_HANG_BIT, PLANT_HANG_SPINS,
    PLANT_PANIC_BIT,
};
pub use report::{FuzzReport, SeriesPoint};
pub use resilience::{kill_and_resume, KillResumeOutcome};
pub use shard::{ShardConfig, ShardOutcome, ShardedCampaign};

pub use dma_infer::{ChannelInference, ChannelKind, ChannelMap};

use devsim::{boot_model, BootSpec};
use dma_core::Result;
use std::path::PathBuf;

/// Configuration for one fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Run seed; every input derives from this plus its iteration.
    pub seed: u64,
    /// Iteration budget.
    pub iters: u64,
    /// When set, admitted corpus entries are written here as JSON.
    pub corpus_dir: Option<PathBuf>,
}

/// Runs the canonical inference workload against one machine
/// configuration and returns the inferred [`ChannelMap`].
///
/// The machine boots with the trace enabled *before* boot
/// ([`BootSpec::TracedBoot`]) so ring population and control-block
/// mappings are in the stream, then runs a fixed device-agnostic
/// exercise: a burst of deliveries (recycling ring slots and exposing
/// lifetimes), a time tick, honest IO completion, a tick past the
/// deferred-flush horizon, and a full teardown (bounding every
/// lifetime). Everything is a pure function of `(seed, config_id)`;
/// [`ChannelMap::to_json`] is byte-identical across runs and CI pins
/// it.
pub fn infer_channels(seed: u64, config_id: u8) -> Result<ChannelMap> {
    let mut model = boot_model(machine_config(config_id, seed), BootSpec::TracedBoot)?;
    for i in 0..24u64 {
        model.deliver(48 + (i as usize % 7) * 96, i as u8)?;
    }
    model.tick_ms(2);
    model.complete_io()?;
    model.tick_ms(11);
    model.teardown()?;
    let events = model.sim().trace.drain();
    let mut inference = ChannelInference::new();
    inference.observe_all(&events);
    Ok(inference.channel_map())
}

/// Re-executes the input for `(seed, iteration)` — the replay half of
/// the "replayable from two integers" contract.
pub fn replay(seed: u64, iteration: u64) -> Result<ExecOutcome> {
    execute(&FuzzInput::generate(seed, iteration))
}

/// Replay with a chaos fault plan armed on top (what the soak test
/// feeds corpus entries through).
pub fn replay_under_faults(seed: u64, iteration: u64, fault_seed: u64) -> Result<ExecOutcome> {
    execute_under_faults(&FuzzInput::generate(seed, iteration), Some(fault_seed))
}

/// Replay under a watchdog budget — how a quarantined hang finding is
/// re-examined without wedging the examiner.
pub fn replay_with_budget(seed: u64, iteration: u64, budget: u64) -> Result<ExecOutcome> {
    execute_with_budget(&FuzzInput::generate(seed, iteration), budget)
}

/// Runs the fuzzing loop: generate, execute, merge coverage, admit to
/// the corpus, record findings. Returns the full [`FuzzReport`].
///
/// This is the plain front-end over the crash-safe [`Campaign`] engine
/// — no checkpoints, no planted inputs, default watchdog. Output is
/// byte-identical to the historical standalone loop.
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzReport> {
    let mut ccfg = CampaignConfig::new(cfg.seed, cfg.iters);
    ccfg.corpus_dir = cfg.corpus_dir.clone();
    Campaign::run(ccfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_runs_same_seed_are_identical() {
        let cfg = FuzzConfig {
            seed: 11,
            iters: 8,
            corpus_dir: None,
        };
        let a = run_fuzz(&cfg).unwrap();
        let b = run_fuzz(&cfg).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.series_json(), b.series_json());
        assert_eq!(a.stats_json, b.stats_json);
    }

    #[test]
    fn replay_reproduces_the_recorded_signature() {
        let cfg = FuzzConfig {
            seed: 11,
            iters: 8,
            corpus_dir: None,
        };
        let report = run_fuzz(&cfg).unwrap();
        assert!(!report.corpus.is_empty());
        let e = &report.corpus[0];
        // Replay regenerates the *original* (un-minimized) input; its
        // signature matches what the corpus recorded on admission.
        let out = replay(e.seed, e.iteration).unwrap();
        assert_eq!(out.signature, e.signature);
    }

    #[test]
    fn coverage_grows_monotonically_in_the_series() {
        let cfg = FuzzConfig {
            seed: 3,
            iters: 12,
            corpus_dir: None,
        };
        let report = run_fuzz(&cfg).unwrap();
        let mut prev = 0;
        for p in &report.series {
            assert!(p.coverage_bits >= prev);
            prev = p.coverage_bits;
        }
        assert!(report.coverage_bits > 0);
        assert_eq!(report.execs, 12);
    }
}
