//! The crash-safe campaign engine.
//!
//! [`Campaign`] owns everything the plain fuzzing loop used to keep in
//! locals — the global coverage map, corpus, metrics registry, finding
//! sets, series, and a campaign-level [`DetRng`] — as one
//! checkpointable [`CampaignState`]. Around each execution it adds the
//! three robustness layers of the crash-safety model (DESIGN.md §11):
//!
//! 1. **Checkpoint/resume** — every `checkpoint_every` iterations the
//!    state is serialized ([`crate::snapshot`]) and persisted through a
//!    [`CheckpointStore`]'s two-generation A/B scheme. A campaign
//!    resumed from the last good generation replays the lost tail
//!    deterministically, so its final report is byte-identical to an
//!    uninterrupted run.
//! 2. **Panic isolation** — each exec runs under `catch_unwind`; a
//!    panicking input becomes a [`CrashFinding`] with a stable `dq-…`
//!    id, its program is quarantined under `corpus_dir/quarantine/`,
//!    and the campaign keeps going.
//! 3. **Deterministic watchdogs** — each exec carries a simulated-cycle
//!    budget ([`crate::exec::DEFAULT_WATCHDOG_BUDGET`]); a runaway
//!    input is aborted at a replayable cycle and quarantined as a hang.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use dkasan::stable_id;
use dma_core::checkpoint::intern;
use dma_core::jsonw::JsonWriter;
use dma_core::{
    CheckpointStore, CoverageMap, DetRng, DmaError, Event, FaultPlan, FlightRecorder, Metrics,
    Profile, Result,
};

use crate::exec::{ExecContext, ExecStatus, FuzzFinding, DEFAULT_WATCHDOG_BUDGET};
use crate::input::{FuzzInput, PLANT_HANG_BIT, PLANT_PANIC_BIT};
use crate::report::{FuzzReport, SeriesPoint};
use crate::snapshot;
use crate::Corpus;

/// Capacity of the campaign journal ring: big enough for the admission
/// and quarantine history of realistic budgets, small enough that a
/// soak exercises eviction (the evicted count rides along in every
/// checkpoint, so `trace.dropped`-style accounting survives a resume).
pub const JOURNAL_CAPACITY: usize = 256;

std::thread_local! {
    /// True while this thread is inside a guarded (quarantinable)
    /// execution — the window the quiet panic hook silences.
    static IN_GUARDED_EXEC: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs a process-wide panic hook that silences the default
/// "thread panicked at …" + backtrace spew for panics the campaign is
/// about to contain and quarantine. Panics outside a guarded execution
/// still reach the previous hook untouched.
///
/// Called once by the CLI front-end; library users who want raw hook
/// output (e.g. the test harness) simply never call it.
pub fn silence_quarantined_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !IN_GUARDED_EXEC.with(|f| f.get()) {
            default_hook(info);
        }
    }));
}

/// What kind of execution failure a quarantined input caused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// The executor panicked; `catch_unwind` contained it.
    Panic,
    /// The deterministic watchdog aborted the run at its cycle budget.
    Hang,
}

impl CrashKind {
    /// Stable tag used in ids, metrics, and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            CrashKind::Panic => "panic",
            CrashKind::Hang => "hang",
        }
    }
}

/// A quarantined execution, reported as a first-class finding. The
/// `(seed, iteration)` pair replays it — `iteration` keeps any planted
/// flag bits, so replay regenerates the exact offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashFinding {
    /// Stable id: `stable_id("dq", kind ++ seed ++ iteration)`.
    pub id: String,
    /// Panic or hang.
    pub kind: CrashKind,
    /// Run seed (replay key, with `iteration`).
    pub seed: u64,
    /// Full iteration value, including planted flag bits.
    pub iteration: u64,
    /// Human-readable cause (panic message / watchdog cycle count).
    pub detail: String,
}

impl CrashFinding {
    /// The quarantine-file rendering: id, replay key, cause, and the
    /// offending program.
    pub fn to_json(&self, input: &FuzzInput) -> String {
        let mut w = JsonWriter::new();
        w.obj(|w| {
            w.field_str("id", &self.id);
            w.field_str("kind", self.kind.as_str());
            w.field_u64("seed", self.seed);
            w.field_u64("iteration", self.iteration);
            w.field_str("detail", &self.detail);
            w.field("program", |w| {
                w.arr(|w| {
                    for op in &input.ops {
                        w.elem(|w| w.str(&op.describe()));
                    }
                });
            });
        });
        w.finish()
    }
}

/// One live campaign occurrence, published on the event bus the moment
/// it happens. `dma-lab serve` drains these between steps and streams
/// them to clients as finding/health frames — the push-side complement
/// of the pull-side metrics snapshots. Events are *transient*: they are
/// not part of [`CampaignState`] and never enter a checkpoint (the
/// durable record of the same occurrences is the journal, findings, and
/// crash lists), so adding or draining them cannot perturb resume
/// byte-identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignEvent {
    /// A new class-deduped finding entered the finding set.
    Finding {
        /// Iteration of first discovery.
        iteration: u64,
        /// Stable `dk-…` id (oracle-backed or observation-derived).
        id: String,
        /// Figure-1 taxonomy letter (`a`–`d`).
        taxonomy: char,
        /// D-KASAN class name, or `device-write` for oracle-less
        /// tampered-field observations.
        class: String,
        /// Site tag or tampered field name.
        site: String,
        /// §5.2 window path, when one applies.
        window: Option<String>,
    },
    /// An execution was contained and quarantined.
    Quarantine {
        /// Iteration (including planted flag bits — the replay key).
        iteration: u64,
        /// Stable `dq-…` id.
        id: String,
        /// Panic or hang.
        kind: CrashKind,
        /// Human-readable cause.
        detail: String,
    },
    /// Global coverage grew at this iteration.
    CoverageGrew {
        /// Iteration where the growth happened.
        iteration: u64,
        /// New global coverage bit count.
        bits: usize,
        /// Corpus size after admission.
        corpus: usize,
    },
    /// A checkpoint generation was persisted.
    Checkpoint {
        /// `next_iter` captured by the checkpoint.
        iteration: u64,
        /// Store sequence number of the generation.
        sequence: u64,
    },
}

/// Derives the stable `dq-…` id of a crash/hang finding.
pub fn crash_id(kind: CrashKind, seed: u64, iteration: u64) -> String {
    stable_id(
        "dq",
        &[
            kind.as_str().as_bytes(),
            &seed.to_le_bytes(),
            &iteration.to_le_bytes(),
        ],
    )
}

/// Configuration of one campaign (a superset of the plain
/// [`crate::FuzzConfig`]).
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Run seed.
    pub seed: u64,
    /// Iteration budget.
    pub iters: u64,
    /// Corpus (and quarantine) output directory.
    pub corpus_dir: Option<PathBuf>,
    /// Checkpoint directory (A/B generations live here).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in iterations; 0 disables periodic saves.
    pub checkpoint_every: u64,
    /// Per-exec watchdog budget in simulated cycles.
    pub watchdog_budget: u64,
    /// Plant the panicking input at this iteration (testing/CI).
    pub plant_panic_at: Option<u64>,
    /// Plant the runaway input at this iteration (testing/CI).
    pub plant_hang_at: Option<u64>,
    /// Restrict the campaign to one machine configuration: every
    /// generated input's `config_id` is overridden to this row of the
    /// device×mode matrix (the `dma-lab fuzz --config` path).
    pub only_config: Option<u8>,
}

impl CampaignConfig {
    /// A plain campaign: no checkpoints, no planted inputs, default
    /// watchdog.
    pub fn new(seed: u64, iters: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            iters,
            corpus_dir: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            watchdog_budget: DEFAULT_WATCHDOG_BUDGET,
            plant_panic_at: None,
            plant_hang_at: None,
            only_config: None,
        }
    }
}

/// Everything a campaign accumulates — exactly what a checkpoint
/// captures and a resume restores.
pub struct CampaignState {
    /// Next iteration to execute.
    pub next_iter: u64,
    /// Global coverage map.
    pub global: CoverageMap,
    /// Admitted corpus.
    pub corpus: Corpus,
    /// Campaign metrics registry.
    pub metrics: Metrics,
    /// Class-deduped findings in first-discovery order.
    pub findings: Vec<FuzzFinding>,
    /// Finding keys already seen (rebuilt from `findings` on restore).
    pub seen_keys: BTreeSet<String>,
    /// Quarantined crash/hang findings.
    pub crashes: Vec<CrashFinding>,
    /// Coverage-over-time series.
    pub series: Vec<SeriesPoint>,
    /// Extra executions spent minimizing.
    pub minimize_execs: u64,
    /// Packets delivered/echoed.
    pub delivered: u64,
    /// Tolerated drops.
    pub dropped: u64,
    /// Accumulated simulated cycles.
    pub total_cycles: u64,
    /// Per-exec recorder evictions, summed.
    pub trace_dropped: u64,
    /// Merged cycle-attribution profile of every admitted execution
    /// (minimization execs inside the corpus are not folded in). Rides
    /// in checkpoints, so a resumed campaign's profile stays
    /// byte-identical to an uninterrupted run's.
    pub profile: Profile,
    /// Campaign-level RNG; advanced exactly once per iteration, its
    /// position rides in every checkpoint so a resumed journal stays
    /// bit-identical.
    pub rng: DetRng,
    /// The campaign journal: admissions, quarantines, and sampled
    /// heartbeats in a bounded flight-recorder ring.
    pub journal: FlightRecorder,
}

impl CampaignState {
    /// Fresh state for a seed.
    pub fn new(seed: u64) -> CampaignState {
        CampaignState {
            next_iter: 0,
            global: CoverageMap::new(),
            corpus: Corpus::new(),
            metrics: Metrics::new(),
            findings: Vec::new(),
            seen_keys: BTreeSet::new(),
            crashes: Vec::new(),
            series: Vec::new(),
            minimize_execs: 0,
            delivered: 0,
            dropped: 0,
            total_cycles: 0,
            trace_dropped: 0,
            profile: Profile::new(),
            rng: DetRng::new(seed ^ 0xca_a1_90_01),
            journal: FlightRecorder::new(JOURNAL_CAPACITY),
        }
    }
}

/// The crash-safe campaign engine. See the module docs for the model.
pub struct Campaign {
    cfg: CampaignConfig,
    store: Option<CheckpointStore>,
    state: CampaignState,
    /// Transient event bus (see [`CampaignEvent`]); not checkpointed.
    bus: Vec<CampaignEvent>,
    /// Warm execution context: cached boot templates plus per-exec
    /// scratch buffers. Pure cache — never checkpointed, and warm
    /// executions are outcome-identical to cold ones, so resume
    /// byte-identity is unaffected.
    exec_cx: ExecContext,
    /// Newest persisted checkpoint as `(sequence, at_iteration)` —
    /// the health-frame "checkpoint age" source.
    last_checkpoint: Option<(u64, u64)>,
}

impl Campaign {
    /// A fresh campaign. Opens (and creates) the checkpoint store when
    /// a checkpoint directory is configured.
    pub fn new(cfg: CampaignConfig) -> Result<Campaign> {
        let store = match &cfg.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::open(dir)?),
            None => None,
        };
        let state = CampaignState::new(cfg.seed);
        Ok(Campaign {
            cfg,
            store,
            state,
            bus: Vec::new(),
            exec_cx: ExecContext::new(),
            last_checkpoint: None,
        })
    }

    /// Like [`Campaign::new`] but with a fault plan armed on the
    /// checkpoint store's I/O (site tags `checkpoint.write` /
    /// `checkpoint.load`).
    pub fn new_with_io_faults(cfg: CampaignConfig, faults: FaultPlan) -> Result<Campaign> {
        let dir = cfg
            .checkpoint_dir
            .clone()
            .ok_or(DmaError::Invariant("io faults need a checkpoint dir"))?;
        let store = CheckpointStore::open_with_faults(dir, faults, cfg.seed)?;
        let state = CampaignState::new(cfg.seed);
        Ok(Campaign {
            cfg,
            store: Some(store),
            state,
            bus: Vec::new(),
            exec_cx: ExecContext::new(),
            last_checkpoint: None,
        })
    }

    /// Resumes from the newest valid checkpoint generation under
    /// `cfg.checkpoint_dir`. The snapshot's seed is authoritative: a
    /// mismatched `cfg.seed` is overridden so the resumed stream stays
    /// coherent.
    pub fn resume(mut cfg: CampaignConfig) -> Result<Campaign> {
        let dir = cfg
            .checkpoint_dir
            .clone()
            .ok_or(DmaError::Invariant("resume needs a checkpoint dir"))?;
        let mut store = CheckpointStore::open(dir)?;
        let loaded = store
            .load()?
            .ok_or(DmaError::Invariant("no valid checkpoint to resume from"))?;
        let (seed, state) = snapshot::restore(&loaded.payload)
            .ok_or(DmaError::Invariant("checkpoint payload malformed"))?;
        cfg.seed = seed;
        let last_checkpoint = Some((loaded.sequence, state.next_iter));
        Ok(Campaign {
            cfg,
            store: Some(store),
            state,
            bus: Vec::new(),
            exec_cx: ExecContext::new(),
            last_checkpoint,
        })
    }

    /// The configuration this campaign runs under.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Next iteration to execute (what a checkpoint would resume at).
    pub fn next_iter(&self) -> u64 {
        self.state.next_iter
    }

    /// The live state (tests inspect journal/metrics through this).
    pub fn state(&self) -> &CampaignState {
        &self.state
    }

    /// The checkpoint store, when one is configured.
    pub fn store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// Swaps in a restored state (the snapshot tests' transplant hook;
    /// production resumes go through [`Campaign::resume`]).
    pub fn replace_state_for_tests(&mut self, state: CampaignState) {
        self.state = state;
    }

    /// Serializes the current state (the checkpoint payload bytes).
    pub fn snapshot_payload(&self) -> String {
        snapshot::capture(self.cfg.seed, &self.state)
    }

    /// Writes a checkpoint now; returns its sequence number.
    pub fn checkpoint_now(&mut self) -> Result<u64> {
        let payload = snapshot::capture(self.cfg.seed, &self.state);
        match self.store.as_mut() {
            Some(store) => {
                let sequence = store.save(&payload)?;
                self.last_checkpoint = Some((sequence, self.state.next_iter));
                self.bus.push(CampaignEvent::Checkpoint {
                    iteration: self.state.next_iter,
                    sequence,
                });
                Ok(sequence)
            }
            None => Err(DmaError::Invariant("no checkpoint dir configured")),
        }
    }

    /// Drains the transient event bus: everything published since the
    /// previous drain, in occurrence order.
    pub fn drain_events(&mut self) -> Vec<CampaignEvent> {
        std::mem::take(&mut self.bus)
    }

    /// Newest persisted checkpoint as `(sequence, at_iteration)`;
    /// `None` until the first save (or resume).
    pub fn last_checkpoint(&self) -> Option<(u64, u64)> {
        self.last_checkpoint
    }

    /// Executes one iteration; returns `false` once the budget is
    /// exhausted. Panics and watchdog aborts are converted into
    /// quarantined [`CrashFinding`]s; the campaign keeps running.
    pub fn step(&mut self) -> Result<bool> {
        let it = self.state.next_iter;
        if it >= self.cfg.iters {
            return Ok(false);
        }
        // One RNG draw per iteration — the "DetRng position" every
        // checkpoint captures — samples a journal heartbeat so long
        // campaigns exercise ring eviction deterministically.
        if self.state.rng.below(8) == 0 {
            self.state.journal.push(Event::FaultInjected {
                at: it,
                site: intern("campaign.tick"),
            });
        }
        let gen_it = if self.cfg.plant_panic_at == Some(it) {
            it | PLANT_PANIC_BIT
        } else if self.cfg.plant_hang_at == Some(it) {
            it | PLANT_HANG_BIT
        } else {
            it
        };
        let mut input = FuzzInput::generate(self.cfg.seed, gen_it);
        if let Some(c) = self.cfg.only_config {
            input.config_id = c;
        }
        let budget = self.cfg.watchdog_budget;
        // Warm execution: boot templates live outside the unwind scope
        // and are only ever cloned, so a contained panic cannot poison
        // them; the scratch buffers reset on next use.
        let cx = &mut self.exec_cx;
        IN_GUARDED_EXEC.with(|f| f.set(true));
        let guarded = catch_unwind(AssertUnwindSafe(|| cx.execute_with_budget(&input, budget)));
        IN_GUARDED_EXEC.with(|f| f.set(false));
        match guarded {
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                self.quarantine(CrashKind::Panic, gen_it, detail, &input)?;
            }
            Ok(Err(e)) => return Err(e),
            Ok(Ok(out)) => match out.status {
                ExecStatus::HangAborted {
                    at_cycles,
                    after_op,
                } => {
                    let detail = format!(
                        "watchdog abort at {at_cycles} simulated cycles \
                         (budget {budget}) after op {after_op}"
                    );
                    self.quarantine(CrashKind::Hang, gen_it, detail, &input)?;
                }
                ExecStatus::Completed => {
                    self.admit(it, &input, &out)?;
                }
            },
        }
        self.state.next_iter = it + 1;
        if self.cfg.checkpoint_every > 0
            && self.store.is_some()
            && (it + 1).is_multiple_of(self.cfg.checkpoint_every)
        {
            self.checkpoint_now()?;
        }
        Ok(true)
    }

    /// The normal (completed-exec) bookkeeping path. Field-for-field
    /// the same sequence as the historical `run_fuzz` loop, so reports
    /// without crashes are byte-identical to pre-campaign output.
    fn admit(&mut self, it: u64, input: &FuzzInput, out: &crate::ExecOutcome) -> Result<()> {
        let s = &mut self.state;
        s.metrics.incr("fuzz.execs");
        s.metrics.observe("fuzz.exec.cycles", out.cycles);
        s.delivered += out.delivered;
        s.dropped += out.dropped;
        s.total_cycles += out.cycles;
        s.trace_dropped += out.trace_dropped;
        s.profile.merge(&out.profile);

        let bits_before = s.global.count_ones();
        let extra = s
            .corpus
            .consider_with(Some(&mut self.exec_cx), input, out, &mut s.global)?
            as u64;
        s.minimize_execs += extra;
        let bits_after = s.global.count_ones();
        if bits_after != bits_before {
            s.journal.push(Event::FaultInjected {
                at: it,
                site: intern("campaign.admit"),
            });
            self.bus.push(CampaignEvent::CoverageGrew {
                iteration: it,
                bits: bits_after as usize,
                corpus: s.corpus.len(),
            });
        }
        s.metrics
            .gauge_set("fuzz.corpus.size", s.corpus.len() as u64);
        s.metrics.gauge_set("fuzz.coverage.bits", bits_after as u64);

        for f in &out.findings {
            if s.seen_keys.insert(f.key()) {
                let window = f.attrs.window.map(|w| w.path.to_string());
                self.bus.push(CampaignEvent::Finding {
                    iteration: it,
                    id: if f.dkasan_id.is_empty() {
                        dkasan::observation_id(
                            f.taxonomy.letter(),
                            &f.site,
                            window.as_deref().unwrap_or(""),
                        )
                    } else {
                        f.dkasan_id.clone()
                    },
                    taxonomy: f.taxonomy.letter(),
                    class: f
                        .dkasan
                        .map(|k| k.to_string())
                        .unwrap_or_else(|| "device-write".to_string()),
                    site: f.site.clone(),
                    window,
                });
                s.findings.push(f.clone());
            }
        }
        s.metrics
            .gauge_set("fuzz.findings", s.findings.len() as u64);

        if bits_after != bits_before {
            self.push_series_point(it);
        }
        Ok(())
    }

    fn push_series_point(&mut self, it: u64) {
        let s = &mut self.state;
        s.series.push(SeriesPoint {
            iteration: it,
            coverage_bits: s.global.count_ones(),
            corpus_size: s.corpus.len(),
            sim_cycles: s.total_cycles,
        });
    }

    /// Converts a contained failure into a quarantined finding: stable
    /// id, metrics, journal entry, and (when a corpus dir is set) a
    /// quarantine file carrying the offending program.
    fn quarantine(
        &mut self,
        kind: CrashKind,
        iteration: u64,
        detail: String,
        input: &FuzzInput,
    ) -> Result<()> {
        let s = &mut self.state;
        s.metrics.incr("fuzz.execs");
        s.metrics.incr(match kind {
            CrashKind::Panic => "fuzz.crashes",
            CrashKind::Hang => "fuzz.hangs",
        });
        s.journal.push(Event::FaultInjected {
            at: iteration,
            site: intern(match kind {
                CrashKind::Panic => "campaign.panic",
                CrashKind::Hang => "campaign.hang",
            }),
        });
        let finding = CrashFinding {
            id: crash_id(kind, self.cfg.seed, iteration),
            kind,
            seed: self.cfg.seed,
            iteration,
            detail,
        };
        self.bus.push(CampaignEvent::Quarantine {
            iteration,
            id: finding.id.clone(),
            kind,
            detail: finding.detail.clone(),
        });
        if let Some(dir) = &self.cfg.corpus_dir {
            let qdir = dir.join("quarantine");
            std::fs::create_dir_all(&qdir)
                .and_then(|_| {
                    std::fs::write(
                        qdir.join(format!("{}.json", finding.id)),
                        finding.to_json(input),
                    )
                })
                .map_err(|_| DmaError::Invariant("quarantine dir not writable"))?;
        }
        s.crashes.push(finding);
        Ok(())
    }

    /// Runs every remaining iteration.
    pub fn run_to_end(&mut self) -> Result<()> {
        while self.step()? {}
        Ok(())
    }

    /// Runs until `next_iter` reaches `stop_at` (the kill point of the
    /// kill-and-resume harness) or the budget ends.
    pub fn run_until(&mut self, stop_at: u64) -> Result<()> {
        while self.state.next_iter < stop_at && self.step()? {}
        Ok(())
    }

    /// Finalizes: writes the corpus directory and assembles the report.
    ///
    /// The final series sample (one point at the last iteration even
    /// when coverage did not grow there) is taken *here*, not in
    /// [`Campaign::step`]: it depends on the iteration budget, and a
    /// checkpoint must stay budget-agnostic so a truncated run's last
    /// generation resumes cleanly under a larger `--iters`.
    pub fn finish(self) -> Result<FuzzReport> {
        let cfg = self.cfg;
        let mut s = self.state;
        if cfg.iters > 0 && s.series.last().map(|p| p.iteration) != Some(cfg.iters - 1) {
            s.series.push(SeriesPoint {
                iteration: cfg.iters - 1,
                coverage_bits: s.global.count_ones(),
                corpus_size: s.corpus.len(),
                sim_cycles: s.total_cycles,
            });
        }
        if let Some(dir) = &cfg.corpus_dir {
            s.corpus
                .write_to_dir(dir)
                .map_err(|_| DmaError::Invariant("corpus dir not writable"))?;
        }
        let stats_json = s.metrics.snapshot(s.total_cycles).to_json();
        Ok(FuzzReport {
            seed: cfg.seed,
            iters: cfg.iters,
            execs: cfg.iters,
            minimize_execs: s.minimize_execs,
            coverage_bits: s.global.count_ones(),
            corpus: s.corpus.entries().to_vec(),
            findings: s.findings,
            crashes: s.crashes,
            series: s.series,
            delivered: s.delivered,
            dropped: s.dropped,
            total_cycles: s.total_cycles,
            trace_dropped: s.trace_dropped,
            profile: s.profile,
            stats_json,
        })
    }

    /// Convenience: new → run → finish.
    pub fn run(cfg: CampaignConfig) -> Result<FuzzReport> {
        let mut c = Campaign::new(cfg)?;
        c.run_to_end()?;
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_without_extras_matches_the_plain_loop_shape() {
        let report = Campaign::run(CampaignConfig::new(11, 6)).unwrap();
        assert_eq!(report.execs, 6);
        assert!(report.crashes.is_empty());
        assert!(report.coverage_bits > 0);
    }

    #[test]
    fn planted_panic_is_quarantined_without_aborting() {
        let mut cfg = CampaignConfig::new(11, 5);
        cfg.plant_panic_at = Some(2);
        let report = Campaign::run(cfg).unwrap();
        assert_eq!(report.crashes.len(), 1);
        let c = &report.crashes[0];
        assert_eq!(c.kind, CrashKind::Panic);
        assert!(c.id.starts_with("dq-") && c.id.len() == 19, "{}", c.id);
        assert_eq!(c.iteration, 2 | PLANT_PANIC_BIT);
        assert!(c.detail.contains("planted debug panic"), "{}", c.detail);
        // The campaign kept running: all five iterations were executed.
        assert_eq!(report.execs, 5);
        assert!(report.coverage_bits > 0);
    }

    #[test]
    fn planted_hang_trips_the_watchdog_deterministically() {
        let mut cfg = CampaignConfig::new(11, 4);
        cfg.plant_hang_at = Some(1);
        let a = Campaign::run(cfg.clone()).unwrap();
        let b = Campaign::run(cfg).unwrap();
        assert_eq!(a.crashes.len(), 1);
        assert_eq!(a.crashes[0].kind, CrashKind::Hang);
        assert_eq!(a.crashes[0].iteration, 1 | PLANT_HANG_BIT);
        // Cycle-based watchdog: the abort point replays bit-identically.
        assert_eq!(a.crashes[0].detail, b.crashes[0].detail);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn crash_ids_replay_from_two_integers() {
        let mut cfg = CampaignConfig::new(23, 3);
        cfg.plant_panic_at = Some(0);
        let report = Campaign::run(cfg).unwrap();
        let c = &report.crashes[0];
        // Regenerating the input from (seed, iteration) reproduces the
        // offending program, and the id is a pure function of the pair.
        let input = FuzzInput::generate(c.seed, c.iteration);
        assert!(matches!(
            input.ops.last(),
            Some(crate::MutationOp::DebugPanic)
        ));
        assert_eq!(c.id, crash_id(c.kind, c.seed, c.iteration));
    }

    #[test]
    fn event_bus_streams_findings_the_iteration_they_land() {
        let mut c = Campaign::new(CampaignConfig::new(7, 96)).unwrap();
        let mut finding_events = Vec::new();
        let mut coverage_events = 0usize;
        while c.step().unwrap() {
            for ev in c.drain_events() {
                match ev {
                    CampaignEvent::Finding { iteration, .. } => {
                        assert_eq!(
                            iteration + 1,
                            c.next_iter(),
                            "finding streamed the iteration it was discovered"
                        );
                        finding_events.push(ev);
                    }
                    CampaignEvent::CoverageGrew { .. } => coverage_events += 1,
                    _ => {}
                }
            }
        }
        assert!(c.drain_events().is_empty(), "drain empties the bus");
        assert!(coverage_events > 0);
        let report = c.finish().unwrap();
        assert_eq!(
            finding_events.len(),
            report.findings.len(),
            "one event per deduped finding"
        );
        for (ev, f) in finding_events.iter().zip(&report.findings) {
            let CampaignEvent::Finding {
                id,
                taxonomy,
                site,
                iteration,
                ..
            } = ev
            else {
                unreachable!()
            };
            assert_eq!(*taxonomy, f.taxonomy.letter());
            assert_eq!(site, &f.site);
            assert_eq!(*iteration, f.iteration);
            assert!(id.starts_with("dk-") && id.len() == 19, "{id}");
        }
    }

    #[test]
    fn event_bus_reports_quarantines_and_checkpoints() {
        let dir = std::env::temp_dir().join(format!("dma-evbus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CampaignConfig::new(11, 4);
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.checkpoint_every = 2;
        cfg.plant_panic_at = Some(1);
        let mut c = Campaign::new(cfg).unwrap();
        assert_eq!(c.last_checkpoint(), None);
        c.run_to_end().unwrap();
        let events = c.drain_events();
        let quarantines: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, CampaignEvent::Quarantine { .. }))
            .collect();
        assert_eq!(quarantines.len(), 1);
        let CampaignEvent::Quarantine { id, kind, .. } = quarantines[0] else {
            unreachable!()
        };
        assert_eq!(*kind, CrashKind::Panic);
        assert!(id.starts_with("dq-"));
        let checkpoints: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                CampaignEvent::Checkpoint {
                    iteration,
                    sequence,
                } => Some((*iteration, *sequence)),
                _ => None,
            })
            .collect();
        assert_eq!(checkpoints.len(), 2, "every 2 of 4 iterations");
        assert_eq!(
            c.last_checkpoint(),
            checkpoints.last().copied().map(|(i, s)| (s, i))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_files_land_under_the_corpus_dir() {
        let dir = std::env::temp_dir().join(format!("dma-quarantine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CampaignConfig::new(11, 3);
        cfg.corpus_dir = Some(dir.clone());
        cfg.plant_panic_at = Some(1);
        let report = Campaign::run(cfg).unwrap();
        let qfile = dir
            .join("quarantine")
            .join(format!("{}.json", report.crashes[0].id));
        let body = std::fs::read_to_string(&qfile).unwrap();
        assert!(body.contains("\"kind\":\"panic\""));
        assert!(body.contains("debug_panic"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
