//! The campaign snapshot codec: [`capture`] serializes a
//! [`CampaignState`] into the deterministic JSON payload a
//! [`dma_core::CheckpointStore`] envelopes, and [`restore`] rebuilds
//! the state losslessly. Round-tripping is exact — a resumed campaign's
//! payload and final report are byte-identical to an uninterrupted
//! run's — which the resilience tests pin.

use dma_core::checkpoint::{
    coverage_from_json, coverage_to_json, intern, metrics_from_json, metrics_to_json,
    recorder_from_json, recorder_to_json,
};
use dma_core::jsonw::JsonWriter;
use dma_core::vuln::{
    CallbackExposure, SubPageVulnerability, TimeWindow, VulnerabilityAttributes, WindowPath,
};
use dma_core::{DetRng, Iova, JValue, Kva, Profile};

use crate::campaign::{CampaignState, CrashFinding, CrashKind};
use crate::corpus::CorpusEntry;
use crate::exec::FuzzFinding;
use crate::input::{FuzzInput, MutationOp, FAULT_GLOBS};
use crate::report::SeriesPoint;
use crate::Corpus;
use dkasan::FindingKind;

/// Serializes the campaign state as the checkpoint payload.
pub fn capture(seed: u64, s: &CampaignState) -> String {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.field_u64("seed", seed);
        w.field_u64("next_iter", s.next_iter);
        w.field_u64("minimize_execs", s.minimize_execs);
        w.field_u64("delivered", s.delivered);
        w.field_u64("dropped", s.dropped);
        w.field_u64("total_cycles", s.total_cycles);
        w.field_u64("trace_dropped", s.trace_dropped);
        w.field("rng", |w| {
            w.arr(|w| {
                for word in s.rng.state() {
                    w.elem(|w| w.u64(word));
                }
            });
        });
        w.field("coverage", |w| coverage_to_json(w, &s.global));
        w.field("journal", |w| recorder_to_json(w, &s.journal));
        w.field("metrics", |w| w.raw(&metrics_to_json(&s.metrics)));
        w.field("profile", |w| w.raw(&s.profile.to_json()));
        w.field("corpus", |w| {
            w.arr(|w| {
                for e in s.corpus.entries() {
                    w.elem(|w| entry_to_json(w, e));
                }
            });
        });
        w.field("findings", |w| {
            w.arr(|w| {
                for f in &s.findings {
                    w.elem(|w| finding_to_json(w, f));
                }
            });
        });
        w.field("crashes", |w| {
            w.arr(|w| {
                for c in &s.crashes {
                    w.elem(|w| crash_to_json(w, c));
                }
            });
        });
        w.field("series", |w| {
            w.arr(|w| {
                for p in &s.series {
                    w.elem(|w| {
                        w.obj(|w| {
                            w.field_u64("iteration", p.iteration);
                            w.field_u64("coverage_bits", p.coverage_bits as u64);
                            w.field_u64("corpus_size", p.corpus_size as u64);
                            w.field_u64("sim_cycles", p.sim_cycles);
                        });
                    });
                }
            });
        });
    });
    w.finish()
}

/// Rebuilds `(seed, state)` from a checkpoint payload. `None` means the
/// payload is structurally invalid (the store's checksum already rules
/// out corruption, so this only fires on version-skew bugs).
pub fn restore(v: &JValue) -> Option<(u64, CampaignState)> {
    let seed = v.u64_field("seed")?;
    let rng_words = v.get("rng")?.as_arr()?;
    if rng_words.len() != 4 {
        return None;
    }
    let mut state_words = [0u64; 4];
    for (i, word) in rng_words.iter().enumerate() {
        state_words[i] = word.as_u64()?;
    }
    let entries = v
        .get("corpus")?
        .as_arr()?
        .iter()
        .map(entry_from_json)
        .collect::<Option<Vec<_>>>()?;
    let findings = v
        .get("findings")?
        .as_arr()?
        .iter()
        .map(finding_from_json)
        .collect::<Option<Vec<_>>>()?;
    let crashes = v
        .get("crashes")?
        .as_arr()?
        .iter()
        .map(crash_from_json)
        .collect::<Option<Vec<_>>>()?;
    let series = v
        .get("series")?
        .as_arr()?
        .iter()
        .map(|p| {
            Some(SeriesPoint {
                iteration: p.u64_field("iteration")?,
                coverage_bits: p.u64_field("coverage_bits")? as u32,
                corpus_size: p.u64_field("corpus_size")? as usize,
                sim_cycles: p.u64_field("sim_cycles")?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    // seen_keys is not serialized: findings are exactly the first
    // occurrence of each key, so the set rebuilds bijectively.
    let seen_keys = findings.iter().map(|f: &FuzzFinding| f.key()).collect();
    Some((
        seed,
        CampaignState {
            next_iter: v.u64_field("next_iter")?,
            global: coverage_from_json(v.get("coverage")?)?,
            corpus: Corpus::restore(entries),
            metrics: metrics_from_json(v.get("metrics")?)?,
            findings,
            seen_keys,
            crashes,
            series,
            minimize_execs: v.u64_field("minimize_execs")?,
            delivered: v.u64_field("delivered")?,
            dropped: v.u64_field("dropped")?,
            total_cycles: v.u64_field("total_cycles")?,
            trace_dropped: v.u64_field("trace_dropped")?,
            profile: Profile::from_jvalue(v.get("profile")?)?,
            rng: DetRng::from_state(state_words),
            journal: recorder_from_json(v.get("journal")?)?,
        },
    ))
}

fn op_to_json(w: &mut JsonWriter, op: &MutationOp) {
    w.obj(|w| {
        w.field_str("op", op.name());
        match *op {
            MutationOp::Deliver { len, fill } | MutationOp::InjectRaw { len, fill } => {
                w.field_u64("len", len as u64);
                w.field_u64("fill", fill as u64);
            }
            MutationOp::ChannelWrite {
                channel,
                slot,
                value,
            } => {
                w.field_u64("channel", channel as u64);
                w.field_u64("slot", slot as u64);
                w.field_u64("value", value);
            }
            MutationOp::PayloadDeposit { offset, fill, len } => {
                w.field_u64("offset", offset as u64);
                w.field_u64("fill", fill as u64);
                w.field_u64("len", len as u64);
            }
            MutationOp::RaceWrite { value } | MutationOp::StaleWrite { value } => {
                w.field_u64("value", value);
            }
            MutationOp::AdvanceTime { ms } => w.field_u64("ms", ms),
            MutationOp::KmallocChurn { rounds } => w.field_u64("rounds", rounds as u64),
            MutationOp::DescriptorScan | MutationOp::CompleteTx | MutationOp::DebugPanic => {}
            MutationOp::ArmFault { glob, every } => {
                w.field_u64("glob", glob as u64);
                w.field_u64("every", every);
            }
            MutationOp::BusySpin { spins } => w.field_u64("spins", spins),
        }
    });
}

fn op_from_json(v: &JValue) -> Option<MutationOp> {
    Some(match v.str_field("op")? {
        "deliver" => MutationOp::Deliver {
            len: v.u64_field("len")? as usize,
            fill: v.u64_field("fill")? as u8,
        },
        "inject_raw" => MutationOp::InjectRaw {
            len: v.u64_field("len")? as usize,
            fill: v.u64_field("fill")? as u8,
        },
        "channel_write" => MutationOp::ChannelWrite {
            channel: v.u64_field("channel")? as usize,
            slot: v.u64_field("slot")? as usize,
            value: v.u64_field("value")?,
        },
        "payload_deposit" => MutationOp::PayloadDeposit {
            offset: v.u64_field("offset")? as usize,
            fill: v.u64_field("fill")? as u8,
            len: v.u64_field("len")? as usize,
        },
        "race_write" => MutationOp::RaceWrite {
            value: v.u64_field("value")?,
        },
        "stale_write" => MutationOp::StaleWrite {
            value: v.u64_field("value")?,
        },
        "advance_time" => MutationOp::AdvanceTime {
            ms: v.u64_field("ms")?,
        },
        "kmalloc_churn" => MutationOp::KmallocChurn {
            rounds: v.u64_field("rounds")? as usize,
        },
        "descriptor_scan" => MutationOp::DescriptorScan,
        "complete_tx" => MutationOp::CompleteTx,
        "arm_fault" => MutationOp::ArmFault {
            glob: (v.u64_field("glob")? as usize) % FAULT_GLOBS.len(),
            every: v.u64_field("every")?,
        },
        "debug_panic" => MutationOp::DebugPanic,
        "busy_spin" => MutationOp::BusySpin {
            spins: v.u64_field("spins")?,
        },
        _ => return None,
    })
}

fn input_to_json(w: &mut JsonWriter, input: &FuzzInput) {
    w.obj(|w| {
        w.field_u64("seed", input.seed);
        w.field_u64("iteration", input.iteration);
        w.field_u64("config_id", input.config_id as u64);
        w.field("ops", |w| {
            w.arr(|w| {
                for op in &input.ops {
                    w.elem(|w| op_to_json(w, op));
                }
            });
        });
    });
}

fn input_from_json(v: &JValue) -> Option<FuzzInput> {
    Some(FuzzInput {
        seed: v.u64_field("seed")?,
        iteration: v.u64_field("iteration")?,
        config_id: v.u64_field("config_id")? as u8,
        ops: v
            .get("ops")?
            .as_arr()?
            .iter()
            .map(op_from_json)
            .collect::<Option<Vec<_>>>()?,
    })
}

fn entry_to_json(w: &mut JsonWriter, e: &CorpusEntry) {
    w.obj(|w| {
        w.field_u64("seed", e.seed);
        w.field_u64("iteration", e.iteration);
        w.field_u64("config_id", e.config_id as u64);
        w.field_u64("signature", e.signature);
        w.field_u64("new_bits", e.new_bits as u64);
        w.field_u64("ops", e.ops as u64);
        w.field("input", |w| input_to_json(w, &e.input));
        w.field("chains", |w| {
            w.arr(|w| {
                for c in &e.chains {
                    w.elem(|w| w.str(c));
                }
            });
        });
    });
}

fn entry_from_json(v: &JValue) -> Option<CorpusEntry> {
    Some(CorpusEntry {
        seed: v.u64_field("seed")?,
        iteration: v.u64_field("iteration")?,
        config_id: v.u64_field("config_id")? as u8,
        signature: v.u64_field("signature")?,
        new_bits: v.u64_field("new_bits")? as u32,
        ops: v.u64_field("ops")? as usize,
        input: input_from_json(v.get("input")?)?,
        chains: v
            .get("chains")?
            .as_arr()?
            .iter()
            .map(|c| c.as_str().map(String::from))
            .collect::<Option<Vec<_>>>()?,
    })
}

fn taxonomy_tag(t: SubPageVulnerability) -> String {
    t.letter().to_string()
}

fn taxonomy_from_tag(s: &str) -> Option<SubPageVulnerability> {
    Some(match s {
        "a" => SubPageVulnerability::DriverMetadata,
        "b" => SubPageVulnerability::OsMetadata,
        "c" => SubPageVulnerability::MultipleIova,
        "d" => SubPageVulnerability::RandomColocation,
        _ => return None,
    })
}

fn kind_from_tag(s: &str) -> Option<FindingKind> {
    Some(match s {
        "alloc-after-map" => FindingKind::AllocAfterMap,
        "map-after-alloc" => FindingKind::MapAfterAlloc,
        "access-after-map" => FindingKind::AccessAfterMap,
        "multiple-map" => FindingKind::MultipleMap,
        _ => return None,
    })
}

fn window_tag(p: WindowPath) -> &'static str {
    match p {
        WindowPath::UnmapAfterBuild => "unmap_after_build",
        WindowPath::DeferredIotlb => "deferred_iotlb",
        WindowPath::NeighborIova => "neighbor_iova",
    }
}

fn window_from_tag(s: &str) -> Option<WindowPath> {
    Some(match s {
        "unmap_after_build" => WindowPath::UnmapAfterBuild,
        "deferred_iotlb" => WindowPath::DeferredIotlb,
        "neighbor_iova" => WindowPath::NeighborIova,
        _ => return None,
    })
}

fn finding_to_json(w: &mut JsonWriter, f: &FuzzFinding) {
    w.obj(|w| {
        w.field_u64("iteration", f.iteration);
        w.field_str("taxonomy", &taxonomy_tag(f.taxonomy));
        w.field_str(
            "dkasan",
            &f.dkasan.map(|k| k.to_string()).unwrap_or_default(),
        );
        w.field_str("site", &f.site);
        w.field_str("dkasan_id", &f.dkasan_id);
        if let Some(kva) = f.attrs.malicious_kva {
            w.field_u64("malicious_kva", kva.raw());
        }
        if let Some(cb) = &f.attrs.callback {
            w.field("callback", |w| {
                w.obj(|w| {
                    w.field_u64("iova", cb.iova.raw());
                    w.field_u64("page_offset", cb.page_offset as u64);
                    w.field_str("via", &taxonomy_tag(cb.via));
                    w.field_str("field", cb.field);
                });
            });
        }
        if let Some(win) = f.attrs.window {
            w.field("window", |w| {
                w.obj(|w| {
                    w.field_u64("start", win.start);
                    w.field_u64("end", win.end);
                    w.field_str("path", window_tag(win.path));
                });
            });
        }
    });
}

fn finding_from_json(v: &JValue) -> Option<FuzzFinding> {
    let dkasan = match v.str_field("dkasan")? {
        "" => None,
        tag => Some(kind_from_tag(tag)?),
    };
    let callback = match v.get("callback") {
        Some(cb) => Some(CallbackExposure {
            iova: Iova(cb.u64_field("iova")?),
            page_offset: cb.u64_field("page_offset")? as usize,
            via: taxonomy_from_tag(cb.str_field("via")?)?,
            field: intern(cb.str_field("field")?),
        }),
        None => None,
    };
    let window = match v.get("window") {
        Some(win) => Some(TimeWindow {
            start: win.u64_field("start")?,
            end: win.u64_field("end")?,
            path: window_from_tag(win.str_field("path")?)?,
        }),
        None => None,
    };
    Some(FuzzFinding {
        iteration: v.u64_field("iteration")?,
        taxonomy: taxonomy_from_tag(v.str_field("taxonomy")?)?,
        dkasan,
        site: v.str_field("site")?.to_string(),
        dkasan_id: v.str_field("dkasan_id")?.to_string(),
        attrs: VulnerabilityAttributes {
            malicious_kva: v.u64_field("malicious_kva").map(Kva),
            callback,
            window,
        },
    })
}

fn crash_to_json(w: &mut JsonWriter, c: &CrashFinding) {
    w.obj(|w| {
        w.field_str("id", &c.id);
        w.field_str("kind", c.kind.as_str());
        w.field_u64("seed", c.seed);
        w.field_u64("iteration", c.iteration);
        w.field_str("detail", &c.detail);
    });
}

fn crash_from_json(v: &JValue) -> Option<CrashFinding> {
    Some(CrashFinding {
        id: v.str_field("id")?.to_string(),
        kind: match v.str_field("kind")? {
            "panic" => CrashKind::Panic,
            "hang" => CrashKind::Hang,
            _ => return None,
        },
        seed: v.u64_field("seed")?,
        iteration: v.u64_field("iteration")?,
        detail: v.str_field("detail")?.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use dma_core::jsonr;

    fn campaign_state_after(iters: u64) -> (u64, String) {
        let mut cfg = CampaignConfig::new(11, iters);
        cfg.plant_panic_at = Some(1);
        let mut c = Campaign::new(cfg).unwrap();
        c.run_to_end().unwrap();
        (11, c.snapshot_payload())
    }

    #[test]
    fn capture_restore_roundtrips_byte_identically() {
        let (seed, payload) = campaign_state_after(4);
        let v = jsonr::parse(&payload).unwrap();
        let (seed2, state) = restore(&v).unwrap();
        assert_eq!(seed, seed2);
        assert_eq!(capture(seed2, &state), payload);
    }

    #[test]
    fn restored_state_resumes_the_identical_stream() {
        // Run 2 of 5 iterations, snapshot, restore into a second
        // campaign, finish both: reports must match byte for byte.
        let cfg = CampaignConfig::new(7, 5);
        let mut full = Campaign::new(cfg.clone()).unwrap();
        full.run_to_end().unwrap();
        let full_json = full.finish().unwrap().to_json();

        let mut front = Campaign::new(cfg.clone()).unwrap();
        front.run_until(2).unwrap();
        let payload = front.snapshot_payload();
        drop(front);
        let v = jsonr::parse(&payload).unwrap();
        let (seed, state) = restore(&v).unwrap();
        assert_eq!(seed, 7);
        let mut back = Campaign::new(cfg).unwrap();
        // Transplant the restored state (what Campaign::resume does via
        // the store).
        back.replace_state_for_tests(state);
        back.run_to_end().unwrap();
        assert_eq!(back.finish().unwrap().to_json(), full_json);
    }

    #[test]
    fn every_op_kind_roundtrips() {
        let mut inputs: Vec<FuzzInput> = (0..24).map(|it| FuzzInput::generate(3, it)).collect();
        inputs.push(FuzzInput::generate(3, 1 | crate::input::PLANT_PANIC_BIT));
        inputs.push(FuzzInput::generate(3, 1 | crate::input::PLANT_HANG_BIT));
        for input in inputs {
            let mut w = JsonWriter::new();
            input_to_json(&mut w, &input);
            let v = jsonr::parse(&w.finish()).unwrap();
            assert_eq!(input_from_json(&v).unwrap(), input);
        }
    }

    #[test]
    fn malformed_payload_restores_to_none() {
        let v = jsonr::parse("{\"seed\":1}").unwrap();
        assert!(restore(&v).is_none());
    }
}
