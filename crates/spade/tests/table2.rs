//! Reproduces Table 2 and Figure 2 of the paper by running SPADE over
//! the bundled Linux-5.0-shaped corpus.
//!
//! Absolute counts scale with corpus size; the assertions pin the
//! *shape* the paper reports: which categories dominate, the rough
//! percentages, and the 72.8 % headline.

use spade::analysis::{analyze, MappedOrigin};
use spade::corpus::{full_corpus, CorpusMix};
use spade::report::{Table2, TraceReport};
use spade::xref::SourceTree;

fn run() -> (SourceTree, Vec<spade::Finding>) {
    let corpus = full_corpus(&CorpusMix::default(), 1);
    let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    let findings = analyze(&tree);
    (tree, findings)
}

#[test]
fn corpus_scale_matches_paper_order_of_magnitude() {
    let (_, findings) = run();
    // Paper: 1019 dma-map calls over 447 files.
    let t = Table2::from_findings(&findings);
    assert!(
        (900..1150).contains(&t.total.calls),
        "total calls {}",
        t.total.calls
    );
    assert!(
        (400..520).contains(&t.total.files),
        "total files {}",
        t.total.files
    );
}

#[test]
fn table2_shape_matches_paper() {
    let (_, findings) = run();
    let t = Table2::from_findings(&findings);
    let pct = |n: usize| 100.0 * n as f64 / t.total.calls as f64;
    let fpct = |n: usize| 100.0 * n as f64 / t.total.files as f64;

    // Row 2: ~45% of calls / ~52% of files map skb_shared_info.
    assert!(
        (38.0..55.0).contains(&pct(t.shinfo_mapped.calls)),
        "shinfo {:.1}%",
        pct(t.shinfo_mapped.calls)
    );
    assert!(
        (45.0..62.0).contains(&fpct(t.shinfo_mapped.files)),
        "shinfo files {:.1}%",
        fpct(t.shinfo_mapped.files)
    );

    // Row 1: ~15% of calls expose driver-struct callbacks.
    assert!(
        (12.0..22.0).contains(&pct(t.callbacks_exposed.calls)),
        "cb {:.1}%",
        pct(t.callbacks_exposed.calls)
    );

    // Row 3: direct exposures are a strict subset (paper: 54 of 156).
    assert!(t.callbacks_direct.calls < t.callbacks_exposed.calls);
    assert!(
        (40..70).contains(&t.callbacks_direct.calls),
        "direct {}",
        t.callbacks_direct.calls
    );

    // Row 4/5: small absolute counts (19 / 3 in the paper).
    assert!(
        (14..26).contains(&t.private_data.calls),
        "private {}",
        t.private_data.calls
    );
    assert_eq!(t.stack_mapped.calls, 3, "exactly the three stack mappers");
    assert_eq!(t.stack_mapped.files, 3);

    // Row 6: ~34% of calls are exposed to type (c).
    assert!(
        (28.0..40.0).contains(&pct(t.type_c.calls)),
        "type C {:.1}%",
        pct(t.type_c.calls)
    );

    // Row 7: build_skb usage (46 calls / 40 files in the paper).
    assert!(
        (40..55).contains(&t.build_skb.calls),
        "build_skb {}",
        t.build_skb.calls
    );
    assert!((35..45).contains(&t.build_skb.files));

    // Headline: ~72.8% of dma-map calls carry a potential vulnerability.
    let vuln = Table2::vulnerable_calls(&findings);
    let vuln_pct = pct(vuln);
    assert!(
        (65.0..80.0).contains(&vuln_pct),
        "vulnerable {vuln_pct:.1}%"
    );
}

#[test]
fn figure2_nvme_fc_finding_reproduced() {
    let (_, findings) = run();
    let nvme: Vec<_> = findings
        .iter()
        .filter(|f| f.file.contains("nvme/host/fc.c"))
        .collect();
    assert_eq!(nvme.len(), 2, "cmd_iu and rsp_iu mappings");
    let rsp = nvme
        .iter()
        .find(|f| f.trace.iter().any(|t| t.contains("rsp_iu")))
        .expect("rsp_iu finding");
    assert_eq!(
        rsp.origin,
        MappedOrigin::EmbeddedInStruct {
            struct_name: "nvme_fc_fcp_op".into(),
            field: "rsp_iu".into()
        }
    );
    // Figure 2 line [7]: exactly one callback pointer directly mapped
    // (fcp_req.done).
    assert_eq!(rsp.direct_callbacks, 1, "fcp_req.done");
    // Figure 2 line [8]: a large population of spoofable callbacks
    // through the op's struct pointers (931 in the paper's kernel).
    assert!(
        (850..=1050).contains(&rsp.spoofable_callbacks),
        "spoofable census {} far from the paper's 931",
        rsp.spoofable_callbacks
    );
    let text = TraceReport(rsp).to_string();
    assert!(text.contains("EXPOSED: 1 callback pointer"), "{text}");
    assert!(text.contains("SPOOFABLE"), "{text}");
    assert!(text.contains("dma_map_single"), "{text}");
}

#[test]
fn exemplar_classifications_are_correct() {
    let (_, findings) = run();
    let by_file = |frag: &str| -> Vec<&spade::Finding> {
        findings.iter().filter(|f| f.file.contains(frag)).collect()
    };

    // i40e: RX map is shinfo + type C; TX map is shinfo only.
    let i40e = by_file("i40e_txrx.c");
    assert_eq!(i40e.len(), 2);
    assert!(i40e.iter().all(|f| f.shinfo_mapped));
    assert_eq!(i40e.iter().filter(|f| f.type_c).count(), 1);

    // mlx5: build_skb user flagged.
    let mlx5 = by_file("mlx5/core/en_rx.c");
    assert!(mlx5.iter().any(|f| f.uses_build_skb && f.shinfo_mapped));
    assert!(mlx5.iter().any(|f| f.type_c));

    // FireWire OHCI: direct callbacks in the embedded context struct.
    let fw = by_file("firewire/ohci.c");
    assert_eq!(fw.len(), 1);
    assert_eq!(fw[0].direct_callbacks, 2);

    // Private-data mappers.
    assert!(by_file("ccp-aead.c")[0].direct_callbacks >= 1);
    assert!(matches!(
        by_file("snic_main.c")[0].origin,
        MappedOrigin::PrivateData { .. }
    ));

    // The three stack mappers.
    for f in ["probe_a.c", "reset_b.c", "sense_c.c"] {
        assert_eq!(by_file(f)[0].origin, MappedOrigin::StackBuffer, "{f}");
    }
}

#[test]
fn clean_drivers_are_not_flagged() {
    let (_, findings) = run();
    let clean: Vec<_> = findings
        .iter()
        .filter(|f| f.file.contains("/cln"))
        .collect();
    assert!(!clean.is_empty());
    for f in clean {
        assert_eq!(f.origin, MappedOrigin::Kmalloc);
        assert!(!f.callbacks_exposed());
        assert!(!f.shinfo_mapped);
        assert!(!f.type_c);
    }
}

#[test]
fn proportions_are_stable_across_corpus_scale() {
    // The generator's category mix, not its absolute size, determines
    // the Table-2 percentages: a half-size corpus lands in the same
    // bands. (This is what justifies comparing our corpus's percentages
    // against the paper's 1019-call population.)
    let half = CorpusMix {
        frag_skb_files: 89,
        frag_only_files: 23,
        skb_tx_files: 25,
        embedded_direct_files: 13,
        embedded_spoof_files: 14,
        private_files: 2,
        build_skb_files: 19,
        clean_files: 50,
    };
    let corpus = full_corpus(&half, 7);
    let tree = SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
    let findings = analyze(&tree);
    let t = Table2::from_findings(&findings);
    let pct = |n: usize| 100.0 * n as f64 / t.total.calls as f64;
    assert!(
        (300..600).contains(&t.total.calls),
        "half-scale corpus: {}",
        t.total.calls
    );
    assert!((35.0..58.0).contains(&pct(t.shinfo_mapped.calls)));
    assert!((25.0..42.0).contains(&pct(t.type_c.calls)));
    let vuln = 100.0 * Table2::vulnerable_calls(&findings) as f64 / t.total.calls as f64;
    assert!((60.0..82.0).contains(&vuln), "vulnerable share {vuln:.1}%");
}

#[test]
fn rendered_table_is_readable() {
    let (_, findings) = run();
    let t = Table2::from_findings(&findings);
    let s = t.render();
    assert!(s.lines().count() >= 9);
    assert!(s.contains("Total dma-map calls"));
}
