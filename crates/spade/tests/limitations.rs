//! §4.3 "Discussion and Limitations" — the paper documents where SPADE
//! is blind or over-reports; a faithful reproduction has the *same*
//! blind spots, demonstrated here.

use spade::analysis::{analyze, MappedOrigin};
use spade::xref::SourceTree;

const HDR: &str = r#"
    struct ubuf_info { void (*callback)(void); void *ctx; u64 desc; };
    struct sk_buff { unsigned char *data; unsigned int len; };
"#;

#[test]
fn false_negative_indirect_call_through_function_pointer() {
    // §4.3: "SPADE ... may fail to follow a mapped variable due to
    // complex code constructs such as function pointers, macros, and
    // others, potentially resulting in a false-negative result."
    let driver = r#"
        struct mapper_ops { void *(*do_map)(struct device *dev, void *buf, int len); };
        struct op { char iu[64]; void (*done)(void); };
        int indirect(struct mapper_ops *ops, struct device *dev, struct op *op) {
            ops->do_map(dev, &op->iu, 64);
            return 0;
        }
    "#;
    let tree = SourceTree::load([("h.h", HDR), ("drv.c", driver)]);
    let findings = analyze(&tree);
    // The dma_map call is hidden behind the ops table: zero findings,
    // even though the exposure is real. This is the documented miss.
    assert!(
        findings.is_empty(),
        "indirect dispatch must be (knowingly) missed"
    );
}

#[test]
fn false_negative_unresolvable_producer() {
    // A pointer whose producer SPADE cannot see (e.g. returned by an
    // unknown helper) degrades to Unknown — no exposure counted.
    let driver = r#"
        int cold_trail(struct device *dev) {
            void *buf;
            buf = mystery_allocator(dev);
            dma_map_single(dev, buf, 512, DMA_FROM_DEVICE);
            return 0;
        }
    "#;
    let tree = SourceTree::load([("h.h", HDR), ("drv.c", driver)]);
    let findings = analyze(&tree);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].origin, MappedOrigin::Unknown);
    assert!(!findings[0].callbacks_exposed());
}

#[test]
fn false_positive_struct_crossing_a_page_boundary() {
    // §4.3: "False positives may happen in the rare situation where the
    // mapped data structure crosses a page boundary. In this case, SPADE
    // may flag a callback function that may not be exposed, since it
    // resides on a different page."
    //
    // A >4 KiB struct: the mapped buffer is at the front, the callback
    // beyond offset 4096. SPADE's census is layout-blind to page
    // boundaries and flags it anyway.
    let driver = r#"
        struct jumbo_op {
            char big_buf[8000];
            void (*done)(void);
        };
        int jumbo(struct device *dev, struct jumbo_op *op) {
            dma_map_single(dev, &op->big_buf, 128, DMA_BIDIRECTIONAL);
            return 0;
        }
    "#;
    let tree = SourceTree::load([("h.h", HDR), ("drv.c", driver)]);
    let findings = analyze(&tree);
    assert_eq!(findings.len(), 1);
    // The callback is at offset 8000 — on the *third* page, while only
    // the first page is actually exposed by the 128-byte mapping. SPADE
    // still reports it: the documented false positive.
    assert_eq!(
        tree.types.field_offset("jumbo_op", "done"),
        Some(8000),
        "callback truly lives past the mapped page"
    );
    assert_eq!(
        findings[0].direct_callbacks, 1,
        "flagged despite being out of reach"
    );
}

#[test]
fn macro_hidden_map_is_missed() {
    // Function-like macros are not expanded (§4.3 "macros").
    let driver = r#"
        #define MAP_IT(dev, buf, len) dma_map_single(dev, buf, len, DMA_TO_DEVICE)
        int hidden(struct device *dev) {
            char scratch[32];
            MAP_IT(dev, scratch, 32);
            return 0;
        }
    "#;
    let tree = SourceTree::load([("h.h", HDR), ("drv.c", driver)]);
    let findings = analyze(&tree);
    // The callee name after (non-)expansion is MAP_IT, not dma_map_single.
    assert!(
        findings.is_empty(),
        "macro-wrapped map sites are (knowingly) missed"
    );
}
