//! Property-based tests for the C front end: the lexer and parser must
//! be total (never panic, always terminate) on arbitrary input — the
//! fault-tolerance cscope-style tooling requires — and the layout engine
//! must uphold its arithmetic invariants.

use proptest::prelude::*;
use spade::layout::TypeTable;
use spade::lex::lex;
use spade::parse::parse_file;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lexer_is_total_on_arbitrary_bytes(src in "\\PC*") {
        // Any unicode junk: must terminate without panicking.
        let toks = lex(&src);
        prop_assert!(toks.len() <= src.len() + 1);
    }

    #[test]
    fn lexer_line_numbers_are_monotone(src in "[a-z0-9 \\n;{}()*&>.,\"/#-]*") {
        let toks = lex(&src);
        for w in toks.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
    }

    #[test]
    fn parser_is_total_on_arbitrary_text(src in "\\PC{0,400}") {
        let _ = parse_file("fuzz.c", &src);
    }

    #[test]
    fn parser_is_total_on_c_like_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("struct"), Just("int"), Just("void"), Just("*"), Just("{"), Just("}"),
                Just("("), Just(")"), Just(";"), Just(","), Just("="), Just("->"), Just("&"),
                Just("foo"), Just("bar"), Just("dma_map_single"), Just("if"), Just("return"),
                Just("typedef"), Just("u32"), Just("["), Just("]"), Just("42"),
            ],
            0..150,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_file("soup.c", &src);
    }

    #[test]
    fn struct_roundtrip_preserves_fields(nfields in 1usize..12) {
        let fields: String = (0..nfields).map(|i| format!("    u32 field_{i};\n")).collect();
        let src = format!("struct generated {{\n{fields}}};");
        let f = parse_file("gen.c", &src);
        prop_assert_eq!(f.structs.len(), 1);
        prop_assert_eq!(f.structs[0].fields.len(), nfields);
    }

    #[test]
    fn layout_offsets_are_ordered_and_in_bounds(
        kinds in proptest::collection::vec(0u8..5, 1..16)
    ) {
        let fields: String = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let ty = match k { 0 => "u8", 1 => "u16", 2 => "u32", 3 => "u64", _ => "void *" };
                format!("    {ty} f{i};\n")
            })
            .collect();
        let src = format!("struct s {{\n{fields}}};");
        let f = parse_file("gen.c", &src);
        let t = TypeTable::new(&f.structs, &f.typedefs);
        let l = t.layout_of_name("s").unwrap();
        let mut prev_end = 0usize;
        for (_, off, size) in &l.fields {
            prop_assert!(*off >= prev_end, "fields must not overlap");
            prop_assert_eq!(off % size.min(&8), 0, "natural alignment");
            prev_end = off + size;
        }
        prop_assert!(l.size >= prev_end);
        prop_assert_eq!(l.size % l.align, 0);
    }

    #[test]
    fn callback_census_counts_exactly(fnptrs in 0usize..8, scalars in 0usize..8) {
        let mut body = String::new();
        for i in 0..fnptrs {
            body.push_str(&format!("    void (*cb{i})(void);\n"));
        }
        for i in 0..scalars {
            body.push_str(&format!("    u64 x{i};\n"));
        }
        let src = format!("struct s {{\n{body}}};");
        let f = parse_file("gen.c", &src);
        let t = TypeTable::new(&f.structs, &f.typedefs);
        prop_assert_eq!(t.direct_callbacks("s"), fnptrs);
        prop_assert_eq!(t.spoofable_callbacks("s", 4), 0);
        prop_assert_eq!(t.heap_pointers("s"), 0, "no data pointers declared");
    }

    #[test]
    fn heap_pointer_census_counts_exactly(ptrs in 0usize..8, scalars in 0usize..8) {
        let mut body = String::new();
        for i in 0..ptrs {
            body.push_str(&format!("    void *p{i};\n"));
        }
        for i in 0..scalars {
            body.push_str(&format!("    u32 x{i};\n"));
        }
        let src = format!("struct s {{\n{body}}};");
        let f = parse_file("gen.c", &src);
        let t = TypeTable::new(&f.structs, &f.typedefs);
        prop_assert_eq!(t.heap_pointers("s"), ptrs);
        prop_assert_eq!(t.direct_callbacks("s"), 0);
    }

    #[test]
    fn generated_driver_analysis_is_stable(seed in any::<u64>()) {
        // Any generator seed must produce a parseable corpus with the
        // same number of findings as dma-map call sites.
        let mix = spade::corpus::CorpusMix {
            frag_skb_files: 3,
            frag_only_files: 2,
            skb_tx_files: 2,
            embedded_direct_files: 2,
            embedded_spoof_files: 1,
            private_files: 1,
            build_skb_files: 1,
            clean_files: 2,
        };
        let corpus = spade::corpus::full_corpus(&mix, seed);
        let tree = spade::xref::SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
        let findings = spade::analysis::analyze(&tree);
        prop_assert!(findings.len() >= 14, "at least one finding per generated call site");
        // Determinism: same seed, same result.
        let corpus2 = spade::corpus::full_corpus(&mix, seed);
        prop_assert_eq!(corpus, corpus2);
    }
}
