//! Property-style tests for the C front end: the lexer and parser must
//! be total (never panic, always terminate) on arbitrary input — the
//! fault-tolerance cscope-style tooling requires — and the layout engine
//! must uphold its arithmetic invariants.
//!
//! Inputs are generated from the in-tree seeded `dma_core::DetRng` (no
//! external property-testing framework) so the suite builds offline.

use dma_core::DetRng;
use spade::layout::TypeTable;
use spade::lex::lex;
use spade::parse::parse_file;

const CASES: usize = 128;

/// Arbitrary (possibly multi-byte) unicode junk of bounded length.
fn junk_string(rng: &mut DetRng, max_len: usize) -> String {
    let n = rng.below(max_len as u64 + 1) as usize;
    (0..n)
        .map(|_| {
            // Mix plain ASCII with the odd multi-byte scalar.
            if rng.chance(7, 8) {
                (rng.range(0x20, 0x7e) as u8) as char
            } else {
                char::from_u32(rng.below(0xd800) as u32).unwrap_or('\u{fffd}')
            }
        })
        .collect()
}

/// A string drawn from the C-adjacent charset the seed suite fuzzed with.
fn c_soup_string(rng: &mut DetRng, max_len: usize) -> String {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 \n;{}()*&>.,\"/#-";
    let n = rng.below(max_len as u64 + 1) as usize;
    (0..n)
        .map(|_| CHARSET[rng.below(CHARSET.len() as u64) as usize] as char)
        .collect()
}

#[test]
fn lexer_is_total_on_arbitrary_bytes() {
    let mut meta = DetRng::new(0x61);
    for case in 0..CASES {
        let mut rng = meta.fork();
        // Any unicode junk: must terminate without panicking.
        let src = junk_string(&mut rng, 400);
        let toks = lex(&src);
        assert!(toks.len() <= src.len() + 1, "case {case}");
    }
}

#[test]
fn lexer_line_numbers_are_monotone() {
    let mut meta = DetRng::new(0x62);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let src = c_soup_string(&mut rng, 300);
        let toks = lex(&src);
        for w in toks.windows(2) {
            assert!(w[0].line <= w[1].line, "case {case}");
        }
    }
}

#[test]
fn parser_is_total_on_arbitrary_text() {
    let mut meta = DetRng::new(0x63);
    for _ in 0..CASES {
        let mut rng = meta.fork();
        let src = junk_string(&mut rng, 400);
        let _ = parse_file("fuzz.c", &src);
    }
}

#[test]
fn parser_is_total_on_c_like_soup() {
    const WORDS: &[&str] = &[
        "struct",
        "int",
        "void",
        "*",
        "{",
        "}",
        "(",
        ")",
        ";",
        ",",
        "=",
        "->",
        "&",
        "foo",
        "bar",
        "dma_map_single",
        "if",
        "return",
        "typedef",
        "u32",
        "[",
        "]",
        "42",
    ];
    let mut meta = DetRng::new(0x64);
    for _ in 0..CASES {
        let mut rng = meta.fork();
        let n = rng.below(150) as usize;
        let words: Vec<&str> = (0..n)
            .map(|_| WORDS[rng.below(WORDS.len() as u64) as usize])
            .collect();
        let src = words.join(" ");
        let _ = parse_file("soup.c", &src);
    }
}

#[test]
fn struct_roundtrip_preserves_fields() {
    for nfields in 1usize..12 {
        let fields: String = (0..nfields)
            .map(|i| format!("    u32 field_{i};\n"))
            .collect();
        let src = format!("struct generated {{\n{fields}}};");
        let f = parse_file("gen.c", &src);
        assert_eq!(f.structs.len(), 1, "nfields={nfields}");
        assert_eq!(f.structs[0].fields.len(), nfields, "nfields={nfields}");
    }
}

#[test]
fn layout_offsets_are_ordered_and_in_bounds() {
    let mut meta = DetRng::new(0x66);
    for case in 0..CASES {
        let mut rng = meta.fork();
        let nkinds = rng.range(1, 15) as usize;
        let kinds: Vec<u8> = (0..nkinds).map(|_| rng.below(5) as u8).collect();
        let fields: String = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let ty = match k {
                    0 => "u8",
                    1 => "u16",
                    2 => "u32",
                    3 => "u64",
                    _ => "void *",
                };
                format!("    {ty} f{i};\n")
            })
            .collect();
        let src = format!("struct s {{\n{fields}}};");
        let f = parse_file("gen.c", &src);
        let t = TypeTable::new(&f.structs, &f.typedefs);
        let l = t.layout_of_name("s").unwrap();
        let mut prev_end = 0usize;
        for (_, off, size) in &l.fields {
            assert!(*off >= prev_end, "case {case}: fields must not overlap");
            assert_eq!(off % size.min(&8), 0, "case {case}: natural alignment");
            prev_end = off + size;
        }
        assert!(l.size >= prev_end, "case {case}");
        assert_eq!(l.size % l.align, 0, "case {case}");
    }
}

#[test]
fn callback_census_counts_exactly() {
    for fnptrs in 0usize..8 {
        for scalars in 0usize..8 {
            let mut body = String::new();
            for i in 0..fnptrs {
                body.push_str(&format!("    void (*cb{i})(void);\n"));
            }
            for i in 0..scalars {
                body.push_str(&format!("    u64 x{i};\n"));
            }
            let src = format!("struct s {{\n{body}}};");
            let f = parse_file("gen.c", &src);
            let t = TypeTable::new(&f.structs, &f.typedefs);
            assert_eq!(t.direct_callbacks("s"), fnptrs);
            assert_eq!(t.spoofable_callbacks("s", 4), 0);
            assert_eq!(t.heap_pointers("s"), 0, "no data pointers declared");
        }
    }
}

#[test]
fn heap_pointer_census_counts_exactly() {
    for ptrs in 0usize..8 {
        for scalars in 0usize..8 {
            let mut body = String::new();
            for i in 0..ptrs {
                body.push_str(&format!("    void *p{i};\n"));
            }
            for i in 0..scalars {
                body.push_str(&format!("    u32 x{i};\n"));
            }
            let src = format!("struct s {{\n{body}}};");
            let f = parse_file("gen.c", &src);
            let t = TypeTable::new(&f.structs, &f.typedefs);
            assert_eq!(t.heap_pointers("s"), ptrs);
            assert_eq!(t.direct_callbacks("s"), 0);
        }
    }
}

#[test]
fn generated_driver_analysis_is_stable() {
    // Any generator seed must produce a parseable corpus with the
    // same number of findings as dma-map call sites.
    let mut meta = DetRng::new(0x68);
    for case in 0..4 {
        let seed = meta.next_u64();
        let mix = spade::corpus::CorpusMix {
            frag_skb_files: 3,
            frag_only_files: 2,
            skb_tx_files: 2,
            embedded_direct_files: 2,
            embedded_spoof_files: 1,
            private_files: 1,
            build_skb_files: 1,
            clean_files: 2,
        };
        let corpus = spade::corpus::full_corpus(&mix, seed);
        let tree =
            spade::xref::SourceTree::load(corpus.iter().map(|(p, s)| (p.as_str(), s.as_str())));
        let findings = spade::analysis::analyze(&tree);
        assert!(
            findings.len() >= 14,
            "case {case} seed={seed}: at least one finding per generated call site"
        );
        // Determinism: same seed, same result.
        let corpus2 = spade::corpus::full_corpus(&mix, seed);
        assert_eq!(corpus, corpus2, "case {case} seed={seed}");
    }
}
