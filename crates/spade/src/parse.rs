//! A fault-tolerant, fuzzy C parser.
//!
//! Like Cscope, SPADE does not need a conforming C front end — it needs
//! struct layouts, function bodies reduced to declarations / assignments
//! / calls, and the ability to skip anything it does not understand.
//! Statements that fail to parse are skipped to the next `;`, control
//! flow is flattened (the analysis is flow-insensitive), and binary
//! expressions collapse to their left operand (pointer arithmetic does
//! not change which page a buffer exposes).

use crate::lex::{lex, SpannedTok, Tok};
use std::collections::HashMap;

/// A C type, reduced to what layout and exposure analysis need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CType {
    /// `void`.
    Void,
    /// A named scalar or struct type (`int`, `u64`, `sk_buff`, ...).
    /// Struct types are stored by bare tag name.
    Named(String),
    /// Pointer to a type.
    Ptr(Box<CType>),
    /// Fixed-size array.
    Array(Box<CType>, usize),
    /// A function pointer (the callback pointers SPADE hunts).
    FnPtr,
}

impl CType {
    /// Strips pointers/arrays down to the base named type, if any.
    pub fn base_name(&self) -> Option<&str> {
        match self {
            CType::Named(n) => Some(n),
            CType::Ptr(inner) | CType::Array(inner, _) => inner.base_name(),
            _ => None,
        }
    }
}

/// A struct field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: CType,
}

/// A struct definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Definition line.
    pub line: u32,
    /// `true` for unions (all fields at offset 0).
    pub is_union: bool,
}

/// An expression (fuzzy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Integer literal.
    Num(i64),
    /// `base->field` or `base.field`.
    Member {
        /// The accessed object.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// `&expr`.
    AddrOf(Box<Expr>),
    /// `*expr`.
    Deref(Box<Expr>),
    /// `name(args)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Call line.
        line: u32,
    },
    /// `base[...]` (index expression dropped).
    Index(Box<Expr>),
    /// Anything unparsed.
    Other,
}

/// A statement (fuzzy, flattened).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// A local declaration, possibly initialized.
    Decl {
        /// Declared type.
        ty: CType,
        /// Variable name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `lhs = rhs;`
    Assign {
        /// Left-hand side.
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
        /// Source line.
        line: u32,
    },
    /// An expression statement (usually a call).
    ExprStmt(Expr, u32),
    /// `return expr;`
    Return(Option<Expr>, u32),
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Parameter type.
    pub ty: CType,
    /// Parameter name.
    pub name: String,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Flattened body statements.
    pub body: Vec<Stmt>,
    /// Definition line.
    pub line: u32,
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Source path (for reports).
    pub path: String,
    /// Struct/union definitions.
    pub structs: Vec<StructDef>,
    /// `typedef` aliases.
    pub typedefs: HashMap<String, CType>,
    /// Function definitions.
    pub funcs: Vec<FuncDef>,
}

const TYPE_KEYWORDS: &[&str] = &[
    "void",
    "char",
    "short",
    "int",
    "long",
    "unsigned",
    "signed",
    "float",
    "double",
    "bool",
    "u8",
    "u16",
    "u32",
    "u64",
    "s8",
    "s16",
    "s32",
    "s64",
    "__u8",
    "__u16",
    "__u32",
    "__u64",
    "size_t",
    "ssize_t",
    "dma_addr_t",
    "atomic_t",
    "gfp_t",
    "netdev_tx_t",
    "irqreturn_t",
    "spinlock_t",
    "wait_queue_head_t",
    "u_char",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
];

const QUALIFIERS: &[&str] = &[
    "static",
    "inline",
    "__always_inline",
    "extern",
    "const",
    "volatile",
    "__iomem",
    "__user",
    "__rcu",
    "noinline",
    "register",
    "__init",
    "__exit",
    "__must_check",
];

struct Parser<'a> {
    toks: &'a [SpannedTok],
    pos: usize,
    known_types: Vec<String>,
}

/// Parses a C source file.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let toks = lex(src);
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        known_types: Vec::new(),
    };
    let mut out = ParsedFile {
        path: path.to_string(),
        ..Default::default()
    };

    while !p.at_end() {
        let start = p.pos;
        if !p.parse_top_level(&mut out) {
            // Recovery: skip one token.
            p.pos = start + 1;
        }
    }
    out
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<String> {
        if let Some(Tok::Ident(w)) = self.peek() {
            let w = w.clone();
            self.pos += 1;
            Some(w)
        } else {
            None
        }
    }

    fn skip_to_punct(&mut self, p: &str) {
        while let Some(t) = self.peek() {
            if matches!(t, Tok::Punct(q) if *q == p) {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// Skips a balanced `{...}` (assumes positioned at `{`).
    fn skip_block(&mut self) {
        if !self.eat_punct("{") {
            return;
        }
        let mut depth = 1;
        while depth > 0 && !self.at_end() {
            match self.bump() {
                Some(Tok::Punct("{")) => depth += 1,
                Some(Tok::Punct("}")) => depth -= 1,
                _ => {}
            }
        }
    }

    fn skip_qualifiers(&mut self) {
        while let Some(Tok::Ident(w)) = self.peek() {
            if QUALIFIERS.contains(&w.as_str()) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn is_type_start(&self) -> bool {
        match self.peek() {
            Some(Tok::Ident(w)) => {
                w == "struct"
                    || w == "union"
                    || w == "enum"
                    || TYPE_KEYWORDS.contains(&w.as_str())
                    || QUALIFIERS.contains(&w.as_str())
                    || self.known_types.contains(w)
            }
            _ => false,
        }
    }

    /// Parses type specifiers (not declarator stars): `struct foo`,
    /// `unsigned long`, `u32`, typedef names.
    fn parse_type_spec(&mut self) -> Option<CType> {
        self.skip_qualifiers();
        if self.eat_ident("struct") || self.eat_ident("union") || self.eat_ident("enum") {
            let name = self.ident()?;
            return Some(CType::Named(name));
        }
        if let Some(Tok::Ident(w)) = self.peek() {
            if TYPE_KEYWORDS.contains(&w.as_str()) {
                // Consume possibly multiple keywords (unsigned long int).
                let mut last = String::new();
                while let Some(Tok::Ident(w)) = self.peek() {
                    if TYPE_KEYWORDS.contains(&w.as_str()) {
                        last = w.clone();
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                return Some(if last == "void" {
                    CType::Void
                } else {
                    CType::Named(last)
                });
            }
            if self.known_types.contains(w) {
                let w = w.clone();
                self.pos += 1;
                return Some(CType::Named(w));
            }
        }
        None
    }

    fn wrap_ptrs(&mut self, mut ty: CType) -> CType {
        while self.eat_punct("*") {
            self.skip_qualifiers();
            ty = CType::Ptr(Box::new(ty));
        }
        ty
    }

    /// Parses one top-level construct; returns false on no progress.
    fn parse_top_level(&mut self, out: &mut ParsedFile) -> bool {
        self.skip_qualifiers();
        // typedef ...
        if self.eat_ident("typedef") {
            return self.parse_typedef(out);
        }
        // struct/union definition?
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == "struct" || w == "union") {
            if let (Some(Tok::Ident(_)), Some(Tok::Punct("{"))) = (self.peek_at(1), self.peek_at(2))
            {
                return self.parse_struct_def(out).is_some();
            }
        }
        // Otherwise: a declaration or function definition.
        let Some(ty) = self.parse_type_spec() else {
            // Unknown top-level token: advance by one and retry (coarser
            // skipping could swallow a following definition).
            if matches!(self.peek(), Some(Tok::Punct("{"))) {
                self.skip_block();
            } else {
                self.pos += 1;
            }
            return true;
        };
        let _ty = self.wrap_ptrs(ty);
        let Some(name) = self.ident() else {
            self.skip_to_punct(";");
            return true;
        };
        if self.eat_punct("(") {
            // Function: parse params.
            let line = self.line();
            let params = self.parse_params();
            self.skip_qualifiers();
            if self.eat_punct(";") {
                return true; // Prototype.
            }
            if matches!(self.peek(), Some(Tok::Punct("{"))) {
                let body = self.parse_body();
                out.funcs.push(FuncDef {
                    name,
                    params,
                    body,
                    line,
                });
                return true;
            }
            self.skip_to_punct(";");
            return true;
        }
        // Global variable (possibly array / initializer): skip.
        self.skip_to_punct(";");
        true
    }

    fn parse_typedef(&mut self, out: &mut ParsedFile) -> bool {
        // typedef struct X { ... } Y;  |  typedef struct X Y;  |  typedef u64 Y;
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == "struct" || w == "union") {
            if let (Some(Tok::Ident(_)), Some(Tok::Punct("{"))) = (self.peek_at(1), self.peek_at(2))
            {
                if let Some(tag) = self.parse_struct_def_inner(out) {
                    if let Some(alias) = self.ident() {
                        out.typedefs.insert(alias.clone(), CType::Named(tag));
                        self.known_types.push(alias);
                    }
                    self.skip_to_punct(";");
                    return true;
                }
            }
        }
        let Some(ty) = self.parse_type_spec() else {
            self.skip_to_punct(";");
            return true;
        };
        let ty = self.wrap_ptrs(ty);
        if let Some(alias) = self.ident() {
            out.typedefs.insert(alias.clone(), ty);
            self.known_types.push(alias);
        }
        self.skip_to_punct(";");
        true
    }

    fn parse_struct_def(&mut self, out: &mut ParsedFile) -> Option<String> {
        let tag = self.parse_struct_def_inner(out)?;
        self.skip_to_punct(";");
        Some(tag)
    }

    /// Parses `struct TAG { fields }` and registers it; leaves the
    /// cursor after `}`.
    fn parse_struct_def_inner(&mut self, out: &mut ParsedFile) -> Option<String> {
        let is_union = matches!(self.peek(), Some(Tok::Ident(w)) if w == "union");
        self.pos += 1; // struct/union
        let tag = self.ident()?;
        let line = self.line();
        if !self.eat_punct("{") {
            return None;
        }
        let mut fields = Vec::new();
        while !self.at_end() && !matches!(self.peek(), Some(Tok::Punct("}"))) {
            if let Some(mut fs) = self.parse_field_decl() {
                fields.append(&mut fs);
            } else {
                self.skip_to_punct(";");
            }
        }
        self.eat_punct("}");
        out.structs.push(StructDef {
            name: tag.clone(),
            fields,
            line,
            is_union,
        });
        Some(tag)
    }

    /// Parses one field declaration (may declare several comma-separated
    /// fields, arrays, or a function pointer).
    fn parse_field_decl(&mut self) -> Option<Vec<Field>> {
        self.skip_qualifiers();
        let base = self.parse_type_spec()?;
        let mut fields = Vec::new();
        loop {
            let mut ty = base.clone();
            while self.eat_punct("*") {
                self.skip_qualifiers();
                ty = CType::Ptr(Box::new(ty));
            }
            // Function pointer: `ret (*name)(params)`.
            if self.eat_punct("(") {
                if self.eat_punct("*") {
                    let name = self.ident()?;
                    self.eat_punct(")");
                    if self.eat_punct("(") {
                        self.skip_paren_group();
                    }
                    fields.push(Field {
                        name,
                        ty: CType::FnPtr,
                    });
                } else {
                    self.skip_paren_group();
                }
            } else {
                let name = self.ident()?;
                while self.eat_punct("[") {
                    let n = if let Some(Tok::Num(v)) = self.peek() {
                        let v = *v as usize;
                        self.pos += 1;
                        v
                    } else {
                        0
                    };
                    self.skip_to_punct("]");
                    // skip_to_punct consumed "]"; nothing else to do.
                    ty = CType::Array(Box::new(ty), n);
                }
                // Bitfields: `u8 x : 3` — record and move on.
                if self.eat_punct(":") {
                    self.bump();
                }
                fields.push(Field { name, ty });
            }
            if self.eat_punct(",") {
                continue;
            }
            break;
        }
        self.eat_punct(";");
        Some(fields)
    }

    /// Skips a balanced `(...)` group, cursor after opening paren.
    fn skip_paren_group(&mut self) {
        let mut depth = 1;
        while depth > 0 && !self.at_end() {
            match self.bump() {
                Some(Tok::Punct("(")) => depth += 1,
                Some(Tok::Punct(")")) => depth -= 1,
                _ => {}
            }
        }
    }

    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        if self.eat_punct(")") {
            return params;
        }
        loop {
            self.skip_qualifiers();
            if self.eat_ident("void") && matches!(self.peek(), Some(Tok::Punct(")"))) {
                self.eat_punct(")");
                break;
            }
            // Back up if "void" consumed but not a lone void.
            if let Some(ty) = {
                // Re-handle void pointers: parse_type_spec below does it,
                // but we may have eaten "void" above.
                let prev = &self.toks[self.pos - 1].tok;
                if matches!(prev, Tok::Ident(w) if w == "void") {
                    Some(CType::Void)
                } else {
                    self.parse_type_spec()
                }
            } {
                let ty = self.wrap_ptrs(ty);
                let name = self.ident().unwrap_or_default();
                // Array parameter suffix.
                if self.eat_punct("[") {
                    self.skip_to_punct("]");
                }
                params.push(Param { ty, name });
            } else {
                // Unparseable parameter: skip to , or ).
                while !self.at_end()
                    && !matches!(self.peek(), Some(Tok::Punct(",")) | Some(Tok::Punct(")")))
                {
                    self.pos += 1;
                }
            }
            if self.eat_punct(",") {
                continue;
            }
            self.eat_punct(")");
            break;
        }
        params
    }

    /// Parses a `{ ... }` body into a flattened statement list.
    fn parse_body(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        if !self.eat_punct("{") {
            return stmts;
        }
        self.parse_stmts_until_close(&mut stmts);
        stmts
    }

    fn parse_stmts_until_close(&mut self, out: &mut Vec<Stmt>) {
        while !self.at_end() {
            if self.eat_punct("}") {
                return;
            }
            self.parse_stmt(out);
        }
    }

    fn parse_stmt(&mut self, out: &mut Vec<Stmt>) {
        let line = self.line();
        // Control flow: flatten.
        if let Some(Tok::Ident(w)) = self.peek() {
            match w.as_str() {
                "if" | "while" | "for" | "switch" => {
                    self.pos += 1;
                    if self.eat_punct("(") {
                        self.skip_paren_group();
                    }
                    if matches!(self.peek(), Some(Tok::Punct("{"))) {
                        self.eat_punct("{");
                        self.parse_stmts_until_close(out);
                    } else {
                        self.parse_stmt(out);
                    }
                    // else / else if
                    while self.eat_ident("else") {
                        if matches!(self.peek(), Some(Tok::Punct("{"))) {
                            self.eat_punct("{");
                            self.parse_stmts_until_close(out);
                        } else {
                            self.parse_stmt(out);
                        }
                    }
                    return;
                }
                "do" => {
                    self.pos += 1;
                    if matches!(self.peek(), Some(Tok::Punct("{"))) {
                        self.eat_punct("{");
                        self.parse_stmts_until_close(out);
                    }
                    self.skip_to_punct(";");
                    return;
                }
                "return" => {
                    self.pos += 1;
                    if self.eat_punct(";") {
                        out.push(Stmt::Return(None, line));
                    } else {
                        let e = self.parse_expr();
                        self.skip_to_punct(";");
                        out.push(Stmt::Return(Some(e), line));
                    }
                    return;
                }
                "goto" | "break" | "continue" | "case" | "default" => {
                    self.skip_to_punct(";");
                    return;
                }
                _ => {}
            }
        }
        if matches!(self.peek(), Some(Tok::Punct("{"))) {
            self.eat_punct("{");
            self.parse_stmts_until_close(out);
            return;
        }
        if self.eat_punct(";") {
            return;
        }
        // Declaration?
        if self.is_decl_lookahead() {
            if let Some(ty) = self.parse_type_spec() {
                let ty = self.wrap_ptrs(ty);
                if let Some(name) = self.ident() {
                    let mut ty = ty;
                    while self.eat_punct("[") {
                        let n = if let Some(Tok::Num(v)) = self.peek() {
                            let v = *v as usize;
                            self.pos += 1;
                            v
                        } else {
                            0
                        };
                        self.skip_to_punct("]");
                        ty = CType::Array(Box::new(ty), n);
                    }
                    let init = if self.eat_punct("=") {
                        let e = self.parse_expr();
                        Some(e)
                    } else {
                        None
                    };
                    self.skip_to_punct(";");
                    out.push(Stmt::Decl {
                        ty,
                        name,
                        init,
                        line,
                    });
                    return;
                }
            }
            self.skip_to_punct(";");
            return;
        }
        // Expression / assignment statement.
        let lhs = self.parse_expr();
        if self.eat_punct("=") {
            let rhs = self.parse_expr();
            self.skip_to_punct(";");
            out.push(Stmt::Assign { lhs, rhs, line });
            return;
        }
        self.skip_to_punct(";");
        out.push(Stmt::ExprStmt(lhs, line));
    }

    /// Heuristic: is the statement at the cursor a declaration?
    fn is_decl_lookahead(&self) -> bool {
        match self.peek() {
            Some(Tok::Ident(w)) => {
                if w == "struct" || w == "union" || w == "enum" {
                    return true;
                }
                if TYPE_KEYWORDS.contains(&w.as_str()) || QUALIFIERS.contains(&w.as_str()) {
                    return true;
                }
                if self.known_types.contains(w) {
                    return true;
                }
                // Two consecutive identifiers: `foo_t bar`.
                matches!(
                    (self.peek(), self.peek_at(1)),
                    (Some(Tok::Ident(_)), Some(Tok::Ident(_)))
                )
            }
            _ => false,
        }
    }

    /// Parses a (fuzzy) expression. Binary operators collapse to the
    /// left operand; `?:` collapses to the condition's left arm.
    fn parse_expr(&mut self) -> Expr {
        let lhs = self.parse_unary();
        // Swallow binary tails without representing them.
        loop {
            match self.peek() {
                Some(Tok::Punct(p))
                    if [
                        "+", "-", "*", "/", "%", "<<", ">>", "<", ">", "<=", ">=", "==", "!=", "&",
                        "|", "^", "&&", "||", "?", ":",
                    ]
                    .contains(p) =>
                {
                    self.pos += 1;
                    let _ = self.parse_unary();
                }
                _ => break,
            }
        }
        lhs
    }

    fn parse_unary(&mut self) -> Expr {
        if self.eat_punct("&") {
            return Expr::AddrOf(Box::new(self.parse_unary()));
        }
        if self.eat_punct("*") {
            return Expr::Deref(Box::new(self.parse_unary()));
        }
        if self.eat_punct("!") || self.eat_punct("~") || self.eat_punct("-") || self.eat_punct("+")
        {
            return self.parse_unary();
        }
        if self.eat_punct("(") {
            // Cast or parenthesized expression.
            if self.is_type_start() {
                let _ty = self.parse_type_spec();
                // Wrap pointers and close.
                while self.eat_punct("*") {}
                self.eat_punct(")");
                return self.parse_unary(); // The cast target.
            }
            let e = self.parse_expr();
            self.eat_punct(")");
            return self.parse_postfix(e);
        }
        match self.peek().cloned() {
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Expr::Num(v)
            }
            Some(Tok::Str(_)) => {
                self.pos += 1;
                Expr::Other
            }
            Some(Tok::Ident(w)) => {
                let line = self.line();
                self.pos += 1;
                if self.eat_punct("(") {
                    // Call.
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr());
                            if self.eat_punct(",") {
                                continue;
                            }
                            self.eat_punct(")");
                            break;
                        }
                    }
                    return self.parse_postfix(Expr::Call {
                        name: w,
                        args,
                        line,
                    });
                }
                self.parse_postfix(Expr::Ident(w))
            }
            _ => {
                self.pos += 1;
                Expr::Other
            }
        }
    }

    fn parse_postfix(&mut self, mut e: Expr) -> Expr {
        loop {
            if self.eat_punct("->") {
                if let Some(f) = self.ident() {
                    e = Expr::Member {
                        base: Box::new(e),
                        field: f,
                        arrow: true,
                    };
                    continue;
                }
                return e;
            }
            if self.eat_punct(".") {
                if let Some(f) = self.ident() {
                    e = Expr::Member {
                        base: Box::new(e),
                        field: f,
                        arrow: false,
                    };
                    continue;
                }
                return e;
            }
            if self.eat_punct("[") {
                let _ = self.parse_expr();
                self.eat_punct("]");
                e = Expr::Index(Box::new(e));
                continue;
            }
            if self.eat_punct("++") || self.eat_punct("--") {
                continue;
            }
            return e;
        }
    }
}

/// Collects every call expression in a statement, recursively.
pub fn calls_in_stmt(stmt: &Stmt) -> Vec<&Expr> {
    let mut out = Vec::new();
    match stmt {
        Stmt::Decl { init: Some(e), .. } => calls_in_expr(e, &mut out),
        Stmt::Decl { .. } => {}
        Stmt::Assign { lhs, rhs, .. } => {
            calls_in_expr(lhs, &mut out);
            calls_in_expr(rhs, &mut out);
        }
        Stmt::ExprStmt(e, _) => calls_in_expr(e, &mut out),
        Stmt::Return(Some(e), _) => calls_in_expr(e, &mut out),
        Stmt::Return(None, _) => {}
    }
    out
}

fn calls_in_expr<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Call { args, .. } => {
            out.push(e);
            for a in args {
                calls_in_expr(a, out);
            }
        }
        Expr::Member { base, .. } | Expr::AddrOf(base) | Expr::Deref(base) | Expr::Index(base) => {
            calls_in_expr(base, out)
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_struct_with_fn_ptr() {
        let f = parse_file(
            "t.c",
            r#"
            struct ubuf_info {
                void (*callback)(struct ubuf_info *, bool);
                void *ctx;
                unsigned long desc;
            };
            "#,
        );
        assert_eq!(f.structs.len(), 1);
        let s = &f.structs[0];
        assert_eq!(s.name, "ubuf_info");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(
            s.fields[0],
            Field {
                name: "callback".into(),
                ty: CType::FnPtr
            }
        );
        assert_eq!(s.fields[1].ty, CType::Ptr(Box::new(CType::Void)));
    }

    #[test]
    fn parses_arrays_and_nested_struct_fields() {
        let f = parse_file(
            "t.c",
            r#"
            struct skb_frag { struct page *page; u32 offset; u32 size; };
            struct skb_shared_info {
                u8 nr_frags;
                struct ubuf_info *destructor_arg;
                struct skb_frag frags[17];
            };
            "#,
        );
        let s = &f.structs[1];
        assert_eq!(s.fields[2].name, "frags");
        assert_eq!(
            s.fields[2].ty,
            CType::Array(Box::new(CType::Named("skb_frag".into())), 17)
        );
    }

    #[test]
    fn parses_function_with_decl_assign_call() {
        let f = parse_file(
            "t.c",
            r#"
            static int my_rx(struct my_priv *priv, int len)
            {
                struct sk_buff *skb;
                dma_addr_t dma;
                skb = netdev_alloc_skb(priv->dev, len);
                dma = dma_map_single(priv->dev, skb->data, len, DMA_FROM_DEVICE);
                return 0;
            }
            "#,
        );
        assert_eq!(f.funcs.len(), 1);
        let func = &f.funcs[0];
        assert_eq!(func.name, "my_rx");
        assert_eq!(func.params.len(), 2);
        // Two decls, two assigns, one return.
        let assigns: Vec<_> = func
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { .. }))
            .collect();
        assert_eq!(assigns.len(), 2);
        if let Stmt::Assign {
            rhs: Expr::Call { name, args, .. },
            ..
        } = assigns[1]
        {
            assert_eq!(name, "dma_map_single");
            assert_eq!(args.len(), 4);
            assert!(matches!(&args[1], Expr::Member { field, arrow: true, .. } if field == "data"));
        } else {
            panic!("expected dma_map_single assign, got {:?}", assigns[1]);
        }
    }

    #[test]
    fn flattens_control_flow() {
        let f = parse_file(
            "t.c",
            r#"
            void f(int x) {
                if (x > 0) {
                    g(x);
                } else {
                    h(x);
                }
                for (i = 0; i < 10; i++)
                    k(i);
                while (x) { m(); }
            }
            "#,
        );
        let names: Vec<String> = f.funcs[0]
            .body
            .iter()
            .flat_map(calls_in_stmt)
            .filter_map(|c| match c {
                Expr::Call { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["g", "h", "k", "m"]);
    }

    #[test]
    fn addr_of_member_expression() {
        let f = parse_file("t.c", "void f(struct op *op) { map(&op->rsp_iu, 96); }");
        let calls: Vec<_> = f.funcs[0].body.iter().flat_map(calls_in_stmt).collect();
        let Expr::Call { args, .. } = calls[0] else {
            panic!()
        };
        assert!(matches!(
            &args[0],
            Expr::AddrOf(inner) if matches!(&**inner, Expr::Member { field, .. } if field == "rsp_iu")
        ));
    }

    #[test]
    fn typedefs_become_known_types() {
        let f = parse_file(
            "t.c",
            r#"
            typedef struct my_ring { int head; } my_ring_t;
            void f(void) { my_ring_t r; }
            "#,
        );
        assert_eq!(
            f.typedefs.get("my_ring_t"),
            Some(&CType::Named("my_ring".into()))
        );
        assert!(matches!(&f.funcs[0].body[0], Stmt::Decl { name, .. } if name == "r"));
    }

    #[test]
    fn garbage_is_skipped_without_panic() {
        let f = parse_file("t.c", "@@@ ??? struct ok { int x; }; $$$ void g(void){}");
        assert_eq!(f.structs.len(), 1);
        assert_eq!(f.funcs.len(), 1);
    }

    #[test]
    fn local_array_decl() {
        let f = parse_file("t.c", "void f(void) { char buf[64]; map(buf); }");
        assert!(matches!(
            &f.funcs[0].body[0],
            Stmt::Decl { ty: CType::Array(_, 64), name, .. } if name == "buf"
        ));
    }

    #[test]
    fn casts_collapse_to_target() {
        let f = parse_file("t.c", "void f(void *p) { q = (struct foo *)p; }");
        assert!(matches!(
            &f.funcs[0].body[0],
            Stmt::Assign { rhs: Expr::Ident(id), .. } if id == "p"
        ));
    }
}
